# SPI — SOAP Passing Interface. Stdlib-only; the go toolchain is the only
# build dependency.

GO ?= go

.PHONY: check build vet test race bench figures

## check: the full gate — build, vet, race-enabled tests.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: the tier-1 suite (what CI holds the line on).
test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper's experiments as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

## figures: regenerate the paper's evaluation tables (EXPERIMENTS.md source).
figures:
	$(GO) run ./cmd/spibench
	$(GO) run ./cmd/spibench -fig faults
