# SPI — SOAP Passing Interface. Stdlib-only; the go toolchain is the only
# build dependency.

GO ?= go

.PHONY: check build vet test race race-pools race-gateway race-controlplane race-transport race-streamfeatures bench figures fuzz-smoke bench-check bench-gate vet-escapes vet-faults docs-check

## check: the full gate — build, vet, race-enabled shuffled tests,
## pool-lifecycle tests under -race, the gateway differential/chaos suite
## under -race, the cluster control-plane tier under -race, the transport
## tier (pipelining + C10k soak) under -race, the unified-fast-path parity
## suite under -race, the encode-path escape audit, the docs link audit,
## and the perf-regression gate vs the baseline chain.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -shuffle=on ./...
	$(MAKE) race-pools
	$(MAKE) race-gateway
	$(MAKE) race-controlplane
	$(MAKE) race-transport
	$(MAKE) race-streamfeatures
	$(MAKE) vet-escapes
	$(MAKE) vet-faults
	$(MAKE) docs-check
	$(MAKE) bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: the tier-1 suite (what CI holds the line on).
test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-pools: hammer the recycled-memory surfaces (arena, buffer pool,
## interning, streaming decode) under the race detector with extra runs.
race-pools:
	$(GO) test -race -count=3 -run='Arena|Pool|Intern|Stream' \
		./internal/xmldom ./internal/xmltext ./internal/soap \
		./internal/core ./internal/httpx

## race-gateway: extra runs of the scatter–gather differential and chaos
## suites under the race detector — the gateway's concurrency (shard
## fan-out, reorder-window gather, circuit state, pool slots) is the code
## under test here.
race-gateway:
	$(GO) test -race -count=2 -run='Differential|Chaos|Failover|Ejection|Probe' \
		./internal/gateway

## race-controlplane: the cluster control-plane tier under the race
## detector — admin service routing state, membership polling, weighted
## convergence, drain-under-load loss/duplication, membership churn soak.
race-controlplane:
	$(GO) test -race -count=2 \
		-run='TestGatewayAdmin|TestMembership|TestWeightedConvergence|TestDrainUnderLoad|TestDrainReleases|TestDifferentialWeighted|TestAdminBypassesAppStage' \
		./internal/gateway ./internal/core
	$(GO) test -race -run='TestSoakMembershipChurn' .

## race-transport: the transport tier under the race detector — server and
## client pipelining state machines, deadline-wheel timers, the zero-copy
## passthrough, and the C10k soak (ten thousand pipelined keep-alive
## connections, every response checked for loss/duplication/cross-wiring).
race-transport:
	$(GO) test -race -shuffle=on -count=2 -run='TestServerPipeline|TestClientPipeline|TestPipelined|TestWheel|TestPassthrough|TestShutdownStopsDrainAlarm' \
		./internal/httpx ./internal/core ./internal/gateway
	$(GO) test -race -run='TestSoakC10kPipelined' .

## race-streamfeatures: the unified fast path under the race detector —
## streamed-vs-buffered byte parity across WSSE × differential cache ×
## entry interceptors, the concurrent WSSE verification goroutine, the
## sharded LRU, and the tamper-rejection property. Extra runs because the
## verify goroutine races entry dispatch by design.
race-streamfeatures:
	$(GO) test -race -count=2 \
		-run='TestUnifiedFastPathParity|TestStreamedWSSERejectsTamper|TestStreamResponseParity|TestDifferentialDeserialization|TestDiffCacheLRU|TestStreamPathActive' \
		./internal/core

## bench: the paper's experiments as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

## figures: regenerate the paper's evaluation tables (EXPERIMENTS.md source).
figures:
	$(GO) run ./cmd/spibench
	$(GO) run ./cmd/spibench -fig faults

## fuzz-smoke: run each fuzz target briefly against the codec layer.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzTokenizer$$' -fuzztime=10s ./internal/xmltext
	$(GO) test -run='^$$' -fuzz='^FuzzParseEnvelope$$' -fuzztime=10s ./internal/soap
	$(GO) test -run='^$$' -fuzz='^FuzzReadResponse$$' -fuzztime=10s ./internal/httpx
	$(GO) test -run='^$$' -fuzz='^FuzzReadRequestStream$$' -fuzztime=10s ./internal/httpx
	$(GO) test -run='^$$' -fuzz='^FuzzParseStats$$' -fuzztime=10s ./internal/admin
	$(GO) test -run='^$$' -fuzz='^FuzzDiffSubtree$$' -fuzztime=10s ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzFaultRoundTrip$$' -fuzztime=10s ./internal/fault

## bench-check: snapshot the key benchmarks to BENCH_pr9.json (perf guard).
bench-check:
	$(GO) run ./cmd/benchcheck

## bench-gate: fail if the key benchmarks regressed vs the baseline chain
## (first file that records a benchmark wins, so each benchmark keeps the
## baseline of the PR that introduced it). Short benchtime keeps the gate
## fast; the wide tolerance absorbs machine noise while still catching
## step-function regressions.
bench-gate:
	$(GO) run ./cmd/benchcheck -benchtime 200ms -out /tmp/benchgate.json \
		-baseline BENCH_pr8.json,BENCH_pr7.json,BENCH_pr6.json,BENCH_pr5.json,BENCH_pr4.json,BENCH_pr3.json,BENCH_pr2.json -tolerance 35

## docs-check: fail on broken relative links in README.md and docs/*.md.
docs-check:
	$(GO) run ./cmd/docscheck

## vet-escapes: audit the streaming encode hot path for unexpected heap
## escapes. The stack scratch buffers in the soap/soapenc writers must stay
## on the stack; a `moved to heap` on one of them would silently reintroduce
## the per-entry allocations this path exists to remove.
vet-escapes:
	@out=$$($(GO) build -gcflags='-m' ./internal/soap ./internal/soapenc 2>&1 | \
		grep -E 'moved to heap: (tmp|local|scratch)' || true); \
	if [ -n "$$out" ]; then \
		echo "vet-escapes: encode-path scratch buffers escaped to the heap:"; \
		echo "$$out"; exit 1; \
	fi; \
	echo "vet-escapes: encode-path scratch buffers stay on the stack"

## vet-faults: the fault-code literal audit. The dotted Server.* refinement
## codes may be spelled exactly once, in internal/fault's envelope edge —
## every other producer must go through the taxonomy constructors, so code
## and retry semantics can never drift apart. Tests are exempt (they pin
## wire bytes on purpose).
vet-faults:
	@out=$$(grep -rnE '"(Server\.(Timeout|Busy|Cancelled))' \
		--include='*.go' --exclude='*_test.go' \
		cmd internal *.go 2>/dev/null | grep -v '^internal/fault/' || true); \
	if [ -n "$$out" ]; then \
		echo "vet-faults: Server.* fault-code literals outside internal/fault:"; \
		echo "$$out"; \
		echo "use the internal/fault constructors (Timeoutf/Busyf/Cancelledf/...) instead"; \
		exit 1; \
	fi; \
	echo "vet-faults: fault-code literals confined to internal/fault"
