# SPI — SOAP Passing Interface. Stdlib-only; the go toolchain is the only
# build dependency.

GO ?= go

.PHONY: check build vet test race bench figures fuzz-smoke bench-check

## check: the full gate — build, vet, race-enabled tests.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: the tier-1 suite (what CI holds the line on).
test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper's experiments as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

## figures: regenerate the paper's evaluation tables (EXPERIMENTS.md source).
figures:
	$(GO) run ./cmd/spibench
	$(GO) run ./cmd/spibench -fig faults

## fuzz-smoke: run each fuzz target briefly against the codec layer.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzTokenizer$$' -fuzztime=10s ./internal/xmltext
	$(GO) test -run='^$$' -fuzz='^FuzzParseEnvelope$$' -fuzztime=10s ./internal/soap

## bench-check: snapshot the key benchmarks to BENCH_pr2.json (perf guard).
bench-check:
	$(GO) run ./cmd/benchcheck -out BENCH_pr2.json
