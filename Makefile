# SPI — SOAP Passing Interface. Stdlib-only; the go toolchain is the only
# build dependency.

GO ?= go

.PHONY: check build vet test race race-pools bench figures fuzz-smoke bench-check bench-gate

## check: the full gate — build, vet, race-enabled tests, pool-lifecycle
## tests under -race, and the perf-regression gate vs the PR 2 baseline.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) race-pools
	$(MAKE) bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: the tier-1 suite (what CI holds the line on).
test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-pools: hammer the recycled-memory surfaces (arena, buffer pool,
## interning, streaming decode) under the race detector with extra runs.
race-pools:
	$(GO) test -race -count=3 -run='Arena|Pool|Intern|Stream' \
		./internal/xmldom ./internal/xmltext ./internal/soap \
		./internal/core ./internal/httpx

## bench: the paper's experiments as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

## figures: regenerate the paper's evaluation tables (EXPERIMENTS.md source).
figures:
	$(GO) run ./cmd/spibench
	$(GO) run ./cmd/spibench -fig faults

## fuzz-smoke: run each fuzz target briefly against the codec layer.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzTokenizer$$' -fuzztime=10s ./internal/xmltext
	$(GO) test -run='^$$' -fuzz='^FuzzParseEnvelope$$' -fuzztime=10s ./internal/soap

## bench-check: snapshot the key benchmarks to BENCH_pr3.json (perf guard).
bench-check:
	$(GO) run ./cmd/benchcheck

## bench-gate: fail if the key benchmarks regressed vs the PR 2 snapshot.
## Short benchtime keeps the gate fast; the wide tolerance absorbs
## machine noise while still catching step-function regressions.
bench-gate:
	$(GO) run ./cmd/benchcheck -benchtime 200ms -out /tmp/benchgate.json \
		-baseline BENCH_pr2.json -tolerance 35
