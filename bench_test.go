// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4). Each sub-benchmark measures exactly what one point of a
// figure measures: the wall time to complete M service requests of N bytes
// under one of the three approaches, over the simulated 100 Mbit testbed
// link. ns/op therefore corresponds directly to the figures' y-axis
// (run time per M-request group); see internal/bench and cmd/spibench for
// the harness that prints the paper-style tables, and EXPERIMENTS.md for
// the recorded results.
//
//	Figure 5: payload 10 B    — packing wins, up to ~10x at M=128
//	Figure 6: payload 1 KB    — packing still wins
//	Figure 7: payload 100 KB  — packing loses (most time-consuming)
//	§4.3:     travel agent    — 11 messages vs 7, ~26% improvement
//	WSS:      future work     — header overhead amplifies the win
package spi_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	spi "repro"
	"repro/internal/bench"
	"repro/internal/services"
)

// paperM is the paper's x-axis: the number of service requests.
var paperM = []int{1, 2, 4, 8, 16, 32, 64, 128}

// benchEnv builds a fresh client/server pair over the simulated LAN.
func benchEnv(b *testing.B, opt bench.EnvOptions) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	return env
}

// runApproach performs one M-request group under the given approach.
func runApproach(b *testing.B, env *bench.Env, approach bench.Approach, m int, payload string) {
	b.Helper()
	arg := spi.F("data", payload)
	switch approach {
	case bench.NoOptimization:
		for i := 0; i < m; i++ {
			if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
				b.Fatal(err)
			}
		}
	case bench.MultipleThreads:
		calls := make([]*spi.Call, m)
		for i := 0; i < m; i++ {
			calls[i] = env.Client.Go("Echo", "echo", arg)
		}
		for _, c := range calls {
			if _, err := c.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	case bench.OurApproach:
		batch := env.Client.NewBatch()
		for i := 0; i < m; i++ {
			batch.Add("Echo", "echo", arg)
		}
		if err := batch.Send(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFigure runs one full figure: every M, every approach.
func benchFigure(b *testing.B, payloadBytes int, ms []int, opt bench.EnvOptions) {
	payload := strings.Repeat("a", payloadBytes)
	for _, approach := range bench.Approaches {
		approach := approach
		b.Run(strings.ReplaceAll(approach.String(), " ", ""), func(b *testing.B) {
			for _, m := range ms {
				m := m
				b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
					env := benchEnv(b, opt)
					b.SetBytes(int64(m * payloadBytes))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						runApproach(b, env, approach, m, payload)
					}
				})
			}
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: 10-byte service requests.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, 10, paperM, bench.EnvOptions{})
}

// BenchmarkFigure6 regenerates Figure 6: 1 KB service requests.
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, 1000, paperM, bench.EnvOptions{})
}

// BenchmarkFigure7 regenerates Figure 7: 100 KB service requests. The M
// range is thinned to keep the run affordable; cmd/spibench sweeps the
// full range.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, 100_000, []int{1, 8, 32, 128}, bench.EnvOptions{})
}

// BenchmarkWSSecurity regenerates the future-work experiment: Figure 5's
// 10-byte sweep with WS-Security signing and verification per message.
func BenchmarkWSSecurity(b *testing.B) {
	benchFigure(b, 10, []int{1, 8, 32, 128}, bench.EnvOptions{WSSecurity: true})
}

// BenchmarkTravelAgent regenerates §4.3: the eleven-invocation travel
// agent, unoptimized (11 messages) versus optimized (steps 1 and 3 packed,
// 7 messages).
func BenchmarkTravelAgent(b *testing.B) {
	for _, optimized := range []bool{false, true} {
		optimized := optimized
		name := "WithoutOptimization"
		if optimized {
			name = "WithOptimization"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, bench.EnvOptions{Travel: true, WorkTime: 2 * time.Millisecond})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := services.RunTravelAgent(env.Client, services.DefaultItinerary(), optimized); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStagedVsCoupled regenerates the staged-pool ablation:
// a packed message of 16 working operations on the staged versus coupled
// server architecture.
func BenchmarkAblationStagedVsCoupled(b *testing.B) {
	for _, coupled := range []bool{false, true} {
		coupled := coupled
		name := "Staged"
		if coupled {
			name = "Coupled"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, bench.EnvOptions{Coupled: coupled, WorkTime: 2 * time.Millisecond})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := env.Client.NewBatch()
				for j := 0; j < 16; j++ {
					batch.Add("Echo", "echo", spi.F("data", "x"))
				}
				if err := batch.Send(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConnectionReuse isolates the TCP-setup share of the
// per-message overhead: serial calls with and without keep-alive.
func BenchmarkAblationConnectionReuse(b *testing.B) {
	for _, keepAlive := range []bool{false, true} {
		keepAlive := keepAlive
		name := "DialPerMessage"
		if keepAlive {
			name = "KeepAlive"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, bench.EnvOptions{KeepAlive: keepAlive})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Client.Call("Echo", "echo", spi.F("data", "aaaaaaaaaa")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPoolWidth sweeps the application-stage width for a
// packed message of 32 working operations.
func BenchmarkAblationPoolWidth(b *testing.B) {
	for _, workers := range []int{1, 4, 16, 32} {
		workers := workers
		b.Run(fmt.Sprintf("Workers=%d", workers), func(b *testing.B) {
			env := benchEnv(b, bench.EnvOptions{AppWorkers: workers, WorkTime: 2 * time.Millisecond})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := env.Client.NewBatch()
				for j := 0; j < 32; j++ {
					batch.Add("Echo", "echo", spi.F("data", "x"))
				}
				if err := batch.Send(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAutoBatch compares explicit batching, automatic
// batching and per-call messages for 32 concurrent client goroutines.
func BenchmarkAblationAutoBatch(b *testing.B) {
	const m = 32
	b.Run("AutoBatcher", func(b *testing.B) {
		env := benchEnv(b, bench.EnvOptions{})
		auto := spi.NewAutoBatcher(env.Client, 500*time.Microsecond, m)
		defer auto.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for j := 0; j < m; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := auto.Call("Echo", "echo", spi.F("data", "aaaaaaaaaa")); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
	b.Run("ExplicitBatch", func(b *testing.B) {
		env := benchEnv(b, bench.EnvOptions{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := env.Client.NewBatch()
			for j := 0; j < m; j++ {
				batch.Add("Echo", "echo", spi.F("data", "aaaaaaaaaa"))
			}
			if err := batch.Send(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRemoteExecution measures the SPI remote-execution interface
// (the suite member the paper names but does not publish): a four-step
// dependent pipeline as four round trips versus one execution plan.
func BenchmarkRemoteExecution(b *testing.B) {
	b.Run("FourCalls", func(b *testing.B) {
		env := benchEnv(b, bench.EnvOptions{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prev := spi.Value(any("seed"))
			for j := 0; j < 4; j++ {
				res, err := env.Client.Call("Echo", "echo", spi.F("data", prev))
				if err != nil {
					b.Fatal(err)
				}
				prev = res[0].Value
			}
		}
	})
	b.Run("OnePlan", func(b *testing.B) {
		env := benchEnv(b, bench.EnvOptions{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan := env.Client.NewPlan()
			prev := plan.Add("Echo", "echo", spi.F("data", "seed"))
			for j := 0; j < 3; j++ {
				prev = plan.Add("Echo", "echo", spi.F("data", prev.Ref("data")))
			}
			if err := plan.Send(); err != nil {
				b.Fatal(err)
			}
			if _, err := prev.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkThroughput regenerates the §3.2 design-goal measurement:
// sustained requests per second at a fixed offered concurrency, per-call
// versus auto-packed. Throughput is the inverse of ns/op here (one op =
// one completed call under load); see cmd/spibench -fig throughput for
// the full sweep with req/s units.
func BenchmarkThroughput(b *testing.B) {
	for _, callers := range []int{16, 128} {
		callers := callers
		for _, packed := range []bool{false, true} {
			packed := packed
			name := fmt.Sprintf("Callers=%d/PerCall", callers)
			if packed {
				name = fmt.Sprintf("Callers=%d/AutoPacked", callers)
			}
			b.Run(name, func(b *testing.B) {
				env := benchEnv(b, bench.EnvOptions{})
				var auto *spi.AutoBatcher
				if packed {
					auto = spi.NewAutoBatcher(env.Client, 500*time.Microsecond, 256)
					defer auto.Close()
				}
				arg := spi.F("data", "aaaaaaaaaa")
				var wg sync.WaitGroup
				work := make(chan struct{}, callers)
				for i := 0; i < callers; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for range work {
							var err error
							if packed {
								_, err = auto.Call("Echo", "echo", arg)
							} else {
								_, err = env.Client.Call("Echo", "echo", arg)
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					work <- struct{}{}
				}
				close(work)
				wg.Wait()
			})
		}
	}
}

// BenchmarkRelatedWork regenerates the §2.2 comparison: the related-work
// per-message CPU optimizations (client template cache, server
// differential deserialization) versus packing, on the Figure-5 workload.
func BenchmarkRelatedWork(b *testing.B) {
	const m = 64
	payload := "aaaaaaaaaa"
	variants := []struct {
		name   string
		opt    bench.EnvOptions
		packed bool
	}{
		{"NoOptimization", bench.EnvOptions{}, false},
		{"TemplateCache", bench.EnvOptions{TemplateCache: true}, false},
		{"DiffDeserialization", bench.EnvOptions{DiffDeserialization: true}, false},
		{"BothCaches", bench.EnvOptions{TemplateCache: true, DiffDeserialization: true}, false},
		{"OurApproach", bench.EnvOptions{}, true},
		{"OursPlusCaches", bench.EnvOptions{TemplateCache: true, DiffDeserialization: true}, true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			env := benchEnv(b, v.opt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v.packed {
					batch := env.Client.NewBatch()
					for j := 0; j < m; j++ {
						batch.Add("Echo", "echo", spi.F("data", payload))
					}
					if err := batch.Send(); err != nil {
						b.Fatal(err)
					}
				} else {
					for j := 0; j < m; j++ {
						if _, err := env.Client.Call("Echo", "echo", spi.F("data", payload)); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkEnvelopeCodec measures the raw SOAP cost packing amortizes:
// encode+decode of an M-request packed envelope versus M singles.
func BenchmarkEnvelopeCodec(b *testing.B) {
	env := benchEnv(b, bench.EnvOptions{})
	payload := strings.Repeat("a", 100)
	b.Run("PackedM=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch := env.Client.NewBatch()
			for j := 0; j < 32; j++ {
				batch.Add("Echo", "echo", spi.F("data", payload))
			}
			if err := batch.Send(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
