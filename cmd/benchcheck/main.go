// Command benchcheck runs the key micro- and throughput benchmarks
// programmatically and writes a machine-readable JSON snapshot — the
// perf-trajectory guard. Each PR appends its snapshot (BENCH_prN.json) so
// regressions between PRs diff as numbers, not as vibes.
//
// Usage:
//
//	benchcheck                 # writes BENCH_pr2.json
//	benchcheck -out FILE.json  # custom path
//	benchcheck -benchtime 2s   # more stable numbers (default 1s)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/msgcache"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/trace"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the written snapshot.
type Report struct {
	GoVersion string   `json:"go_version"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		res.OpsPerSec = 1e9 / ns
	}
	fmt.Printf("%-32s %12d ops %14.1f ns/op %10.0f ops/s %8d allocs/op\n",
		name, res.N, res.NsPerOp, res.OpsPerSec, res.AllocsPerOp)
	return res
}

func main() {
	testing.Init() // registers test.benchtime before we touch it
	out := flag.String("out", "BENCH_pr2.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	flag.Parse()
	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: set benchtime: %v\n", err)
		os.Exit(1)
	}

	report := Report{Benchtime: benchtime.String()}
	add := func(r Result) { report.Results = append(report.Results, r) }

	// --- codec micro-benchmarks ---------------------------------------
	doc := sampleEnvelope(64)
	add(measure("soap/decode-64-entry", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := soap.Decode(bytes.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("soap/encode-64-entry", func(b *testing.B) {
		env := buildEnvelope(64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := env.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("msgcache/render-hit", func(b *testing.B) {
		c := msgcache.New()
		params := []soapenc.Field{soapenc.F("message", "hello"), soapenc.F("count", int32(3))}
		if _, ok, err := c.Render("Echo", "urn:spi:Echo", "echo", params); err != nil || !ok {
			b.Fatalf("prime: ok=%v err=%v", ok, err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Render("Echo", "urn:spi:Echo", "echo", params); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("trace/record-nil", func(b *testing.B) {
		var tr *trace.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Record(trace.Span{})
			}
		}
	}))
	add(measure("trace/record-enabled", func(b *testing.B) {
		tr := trace.New(4096)
		span := trace.Span{Trace: 1, Stage: trace.StageApp, Service: time.Millisecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Record(span)
		}
	}))

	// --- end-to-end hot paths -----------------------------------------
	arg := soapenc.F("data", strings.Repeat("a", 10))
	endToEnd := func(name string, tracer *trace.Tracer, packed bool) {
		env, err := bench.NewEnv(bench.EnvOptions{Tracer: tracer})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		defer env.Close()
		add(measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if packed {
					batch := env.Client.NewBatch()
					for j := 0; j < 16; j++ {
						batch.Add("Echo", "echo", arg)
					}
					if err := batch.Send(); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
	}
	endToEnd("e2e/serial-echo", nil, false)
	endToEnd("e2e/packed-echo-16", nil, true)
	endToEnd("e2e/packed-echo-16-traced", trace.New(8192), true)

	report.GoVersion = runtime.Version()
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Results))
}

// sampleEnvelope serializes a packed envelope with n echo entries.
func sampleEnvelope(n int) []byte {
	env := buildEnvelope(n)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func buildEnvelope(n int) *soap.Envelope {
	env := soap.New()
	for i := 0; i < n; i++ {
		el := newRequestElement("echo", []soapenc.Field{soapenc.F("data", "payload")})
		env.AddBody(el)
	}
	return env
}

func newRequestElement(op string, params []soapenc.Field) *xmldom.Element {
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", "urn:spi:Echo")
	if err := soapenc.EncodeParams(el, params); err != nil {
		panic(err)
	}
	return el
}
