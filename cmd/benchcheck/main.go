// Command benchcheck runs the key micro- and throughput benchmarks
// programmatically and writes a machine-readable JSON snapshot — the
// perf-trajectory guard. Each PR appends its snapshot (BENCH_prN.json) so
// regressions between PRs diff as numbers, not as vibes.
//
// Usage:
//
//	benchcheck                 # writes BENCH_pr9.json
//	benchcheck -out FILE.json  # custom path
//	benchcheck -benchtime 2s   # more stable numbers (default 1s)
//	benchcheck -baseline BENCH_pr3.json,BENCH_pr2.json -tolerance 10
//	                           # compare mode: exit non-zero when a
//	                           # benchmark regressed more than 10% in
//	                           # ns/op or allocs/op vs the baseline
//	                           # chain; each benchmark compares against
//	                           # the first file in the chain that has it,
//	                           # so benchmarks introduced mid-sequence
//	                           # keep their original baseline
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/msgcache"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/trace"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the written snapshot.
type Report struct {
	GoVersion string   `json:"go_version"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		res.OpsPerSec = 1e9 / ns
	}
	fmt.Printf("%-32s %12d ops %14.1f ns/op %10.0f ops/s %8d allocs/op\n",
		name, res.N, res.NsPerOp, res.OpsPerSec, res.AllocsPerOp)
	return res
}

func main() {
	testing.Init() // registers test.benchtime before we touch it
	out := flag.String("out", "BENCH_pr9.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	baseline := flag.String("baseline", "", "comma-separated baseline chain to compare against, first file wins per benchmark (empty disables)")
	tolerance := flag.Float64("tolerance", 10, "allowed regression percent vs the baseline")
	flag.Parse()
	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: set benchtime: %v\n", err)
		os.Exit(1)
	}

	report := Report{Benchtime: benchtime.String()}
	add := func(r Result) { report.Results = append(report.Results, r) }

	// --- codec micro-benchmarks ---------------------------------------
	doc := sampleEnvelope(64)
	add(measure("soap/decode-64-entry", func(b *testing.B) {
		// The server's decode hot path: interned names, arena-backed tree,
		// arena recycled per request.
		a := xmldom.AcquireArena()
		defer xmldom.ReleaseArena(a)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := soap.DecodeArena(bytes.NewReader(doc), a); err != nil {
				b.Fatal(err)
			}
			a.Reset()
		}
	}))
	add(measure("soap/decode-64-entry-heap", func(b *testing.B) {
		// The pre-arena buffered path, kept for the ablation delta.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := soap.Decode(bytes.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("soap/encode-64-entry", func(b *testing.B) {
		// The server's encode hot path: a pooled stream encoder writes the
		// envelope without intermediate buffers.
		env := buildEnvelope(64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := soap.NewStreamEncoder()
			if _, err := enc.EncodeEnvelope(env); err != nil {
				b.Fatal(err)
			}
			enc.Release()
		}
	}))
	add(measure("soap/encode-64-entry-dom", func(b *testing.B) {
		// The pre-streaming buffered path, kept for the ablation delta.
		env := buildEnvelope(64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := env.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("msgcache/render-hit", func(b *testing.B) {
		c := msgcache.New()
		params := []soapenc.Field{soapenc.F("message", "hello"), soapenc.F("count", int32(3))}
		if _, ok, err := c.Render("Echo", "urn:spi:Echo", "echo", params); err != nil || !ok {
			b.Fatalf("prime: ok=%v err=%v", ok, err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Render("Echo", "urn:spi:Echo", "echo", params); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(measure("msgcache/render-to-hit", func(b *testing.B) {
		// The zero-alloc form: splice onto a pooled emitter instead of
		// returning a fresh byte slice. allocs/op here must stay 0.
		c := msgcache.New()
		params := []soapenc.Field{soapenc.F("message", "hello"), soapenc.F("count", int32(3))}
		if _, ok, err := c.Render("Echo", "urn:spi:Echo", "echo", params); err != nil || !ok {
			b.Fatalf("prime: ok=%v err=%v", ok, err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			em := xmltext.AcquireEmitter()
			if ok, err := c.RenderTo(em, "Echo", "urn:spi:Echo", "echo", params); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			xmltext.ReleaseEmitter(em)
		}
	}))
	add(measure("trace/record-nil", func(b *testing.B) {
		var tr *trace.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Record(trace.Span{})
			}
		}
	}))
	add(measure("trace/record-enabled", func(b *testing.B) {
		tr := trace.New(4096)
		span := trace.Span{Trace: 1, Stage: trace.StageApp, Service: time.Millisecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Record(span)
		}
	}))

	// --- end-to-end hot paths -----------------------------------------
	arg := soapenc.F("data", strings.Repeat("a", 10))
	endToEnd := func(name string, opts bench.EnvOptions, packed bool) {
		env, err := bench.NewEnv(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		defer env.Close()
		add(measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if packed {
					batch := env.Client.NewBatch()
					for j := 0; j < 16; j++ {
						batch.Add("Echo", "echo", arg)
					}
					if err := batch.Send(); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
	}
	endToEnd("e2e/serial-echo", bench.EnvOptions{}, false)
	endToEnd("e2e/packed-echo-16", bench.EnvOptions{}, true)
	endToEnd("e2e/packed-echo-16-traced", bench.EnvOptions{Tracer: trace.New(8192)}, true)
	// The unified-fast-path row: WS-Security verification plus the
	// differential cache, both riding the streaming path. The gap to bare
	// e2e/packed-echo-16 is the price of those features per batch.
	endToEnd("e2e/packed-echo-16-wsse-diff", bench.EnvOptions{WSSecurity: true, DiffDeserialization: true}, true)

	// --- gateway scatter–gather ---------------------------------------
	gatewayE2E := func(name string, backends int) {
		env, err := bench.NewGatewayEnv(bench.GatewayOptions{
			Backends: backends, Network: netsim.Fast(), AppWorkers: 8,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		defer env.Close()
		add(measure(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch := env.Client.NewBatch()
				for j := 0; j < 16; j++ {
					batch.Add("Echo", "echo", arg)
				}
				if err := batch.Send(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	gatewayE2E("e2e/gw-packed-16-1-backend", 1)
	gatewayE2E("e2e/gw-packed-16-4-backends", 4)

	// --- control plane: weighted routing on a skewed fleet ------------
	// Four backends, one at 4× the per-op service time, with the admin
	// membership poller feeding the weighted policy. Guards the whole
	// control-plane loop end to end: poll → derate → shard placement.
	{
		env, err := bench.NewGatewayEnv(bench.GatewayOptions{
			Backends: 4, Network: netsim.Fast(), AppWorkers: 4,
			WorkTimes: []time.Duration{
				200 * time.Microsecond, 200 * time.Microsecond,
				200 * time.Microsecond, 800 * time.Microsecond,
			},
			Policy:       gateway.Weighted,
			AdminService: true,
			Membership: gateway.MembershipConfig{
				Enabled:      true,
				PollInterval: 10 * time.Millisecond,
				MinFactor:    0.05,
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		// Give the poller a few rounds to observe the skew before timing.
		warm := func() {
			batch := env.Client.NewBatch()
			for j := 0; j < 16; j++ {
				batch.Add("Echo", "echo", arg)
			}
			if err := batch.Send(); err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
		}
		for i := 0; i < 20; i++ {
			warm()
		}
		add(measure("e2e/gw-weighted-skewed-4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch := env.Client.NewBatch()
				for j := 0; j < 16; j++ {
					batch.Add("Echo", "echo", arg)
				}
				if err := batch.Send(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		env.Close()
	}

	// --- gateway cross-client coalescing ------------------------------
	// 16 independent single-call clients fire concurrently per iteration;
	// the gateway pools them into packed batches. Guards the coalescer's
	// end-to-end latency (flush window + batch round trip + split-back).
	{
		env, err := bench.NewGatewayEnv(bench.GatewayOptions{
			Backends: 2, Network: netsim.Fast(), AppWorkers: 8,
			Coalesce: gateway.CoalesceConfig{
				Enabled:     true,
				FlushWindow: 100 * time.Microsecond,
				MaxBatch:    16,
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		fleet := make([]*core.Client, 16)
		for i := range fleet {
			if fleet[i], err = env.NewClient(); err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
				os.Exit(1)
			}
		}
		add(measure("e2e/gw-coalesced-singles-16", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, len(fleet))
				for j := range fleet {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						_, errs[j] = fleet[j].Call("Echo", "echo", arg)
					}(j)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
		for _, c := range fleet {
			c.Close()
		}
		env.Close()
	}

	// --- transport tier -----------------------------------------------
	// The keep-alive row guards the pooled per-connection read buffers:
	// allocs/op on a steady keep-alive exchange is the number the bufpool
	// exists to hold down. The scaling rows guard the pipelined fleet path
	// at 1k and 10k connections — the C10k regime — where any per-exchange
	// overhead in the pipelined reader/writer loops multiplies by the
	// connection count.
	{
		f, err := bench.NewTransportFleet(1, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		add(measure("transport/keepalive-echo", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f.Echo(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		f.Close()
	}
	for _, tc := range []struct {
		name         string
		conns, calls int
	}{
		{"transport/pipelined-1k-conns", 1024, 4},
		{"transport/pipelined-10k-conns", 10_000, 2},
	} {
		f, err := bench.NewTransportFleet(tc.conns, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		add(measure(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f.Sweep(tc.calls); err != nil {
					b.Fatal(err)
				}
			}
		}))
		f.Close()
	}

	report.GoVersion = runtime.Version()
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Results))

	if *baseline != "" {
		if err := compare(*baseline, report, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
	}
}

// compare checks the report against a baseline chain: any benchmark whose
// ns/op or allocs/op regressed by more than tolerance percent fails the
// run. The chain is a comma-separated list of snapshots; each benchmark is
// compared against the first file that records it, so a benchmark
// introduced in PR N keeps its PR N baseline even after later snapshots
// supersede the file for everything else. Benchmarks present on only one
// side are reported but do not fail — snapshots gain benchmarks as the
// codebase grows.
func compare(spec string, cur Report, tolerance float64) error {
	byName := make(map[string]Result)
	for _, path := range strings.Split(spec, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base Report
		if err := json.Unmarshal(blob, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", path, err)
		}
		for _, r := range base.Results {
			if _, ok := byName[r.Name]; !ok {
				byName[r.Name] = r
			}
		}
	}
	limit := 1 + tolerance/100
	var failures []string
	fmt.Printf("\ncompare vs %s (tolerance %.0f%%):\n", spec, tolerance)
	for _, r := range cur.Results {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("  %-32s new benchmark, no baseline\n", r.Name)
			continue
		}
		delete(byName, r.Name)
		nsDelta := pctDelta(r.NsPerOp, b.NsPerOp)
		allocDelta := pctDelta(float64(r.AllocsPerOp), float64(b.AllocsPerOp))
		verdict := "ok"
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*limit {
			verdict = "REGRESSION(ns/op)"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, nsDelta))
		} else if b.AllocsPerOp > 0 && float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*limit {
			verdict = "REGRESSION(allocs/op)"
			failures = append(failures, fmt.Sprintf("%s: %d -> %d allocs/op (%+.1f%%)",
				r.Name, b.AllocsPerOp, r.AllocsPerOp, allocDelta))
		}
		fmt.Printf("  %-32s ns/op %+7.1f%%  allocs/op %+7.1f%%  %s\n",
			r.Name, nsDelta, allocDelta, verdict)
	}
	for name := range byName {
		fmt.Printf("  %-32s dropped (present only in baseline)\n", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%%:\n  %s",
			len(failures), tolerance, strings.Join(failures, "\n  "))
	}
	fmt.Println("no regressions past tolerance")
	return nil
}

// pctDelta returns the percent change from base to cur (negative = better).
func pctDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// sampleEnvelope serializes a packed envelope with n echo entries.
func sampleEnvelope(n int) []byte {
	env := buildEnvelope(n)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func buildEnvelope(n int) *soap.Envelope {
	env := soap.New()
	for i := 0; i < n; i++ {
		el := newRequestElement("echo", []soapenc.Field{soapenc.F("data", "payload")})
		env.AddBody(el)
	}
	return env
}

func newRequestElement(op string, params []soapenc.Field) *xmldom.Element {
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", "urn:spi:Echo")
	if err := soapenc.EncodeParams(el, params); err != nil {
		panic(err)
	}
	return el
}
