// Command docscheck audits the repository's markdown documentation for
// broken relative links. It scans README.md and docs/*.md for inline
// links — `[text](target)` — and verifies that every relative target
// resolves to an existing file or directory. External links (http, https,
// mailto) and pure in-page anchors (#fragment) are skipped; a fragment on
// a relative link is stripped before the existence check.
//
// Usage:
//
//	docscheck             # audit README.md and docs/*.md under the cwd
//	docscheck -root DIR   # audit another checkout
//
// Exit status is non-zero when any link is broken, so `make docs-check`
// can hold the line in CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links, capturing the target. It
// deliberately does not match reference-style definitions or autolinks —
// the repo's docs use inline links throughout.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root to audit")
	flag.Parse()

	var files []string
	if _, err := os.Stat(filepath.Join(*root, "README.md")); err == nil {
		files = append(files, filepath.Join(*root, "README.md"))
	}
	docs, err := filepath.Glob(filepath.Join(*root, "docs", "*.md"))
	if err != nil {
		fatal(err)
	}
	files = append(files, docs...)
	if len(files) == 0 {
		fatal(fmt.Errorf("no markdown files found under %s", *root))
	}

	broken := 0
	checked := 0
	for _, file := range files {
		blob, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		for lineNo, line := range strings.Split(string(blob), "\n") {
			for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				// Drop any #fragment: heading anchors can't be verified
				// without parsing the target, but the file must exist.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				checked++
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "docscheck: %s:%d: broken link %q (%s does not exist)\n",
						file, lineNo+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d files\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d relative links ok across %d files\n", checked, len(files))
}

// skip reports whether the link target is external or an in-page anchor —
// neither is checked against the filesystem.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
	os.Exit(1)
}
