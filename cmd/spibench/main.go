// Command spibench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout.
//
// Usage:
//
//	spibench                  # run everything (Figures 5-7, travel, WSS, ablations)
//	spibench -fig 5           # one figure: 5, 6, 7, wss, travel, ablation, ...
//	spibench -fig coalesce    # gateway cross-client coalescing on vs off
//	spibench -reps 10         # repetitions per point (default 5)
//	spibench -m 1,16,128      # restrict the M sweep
//
// The experiments run over the simulated 100 Mbit link (internal/netsim),
// so results are machine-independent up to scheduler noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 5, 6, 7, wss, wan, travel, throughput, breakdown, trace, micro, related, ablation, faults, gateway, coalesce, controlplane, transport, unified, all")
	reps := flag.Int("reps", 5, "repetitions per measured point")
	mlist := flag.String("m", "", "comma-separated M values (default: the paper's 1,2,4,...,128)")
	flag.Parse()

	var ms []int
	if *mlist != "" {
		for _, part := range strings.Split(*mlist, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "spibench: bad -m entry %q\n", part)
				os.Exit(2)
			}
			ms = append(ms, n)
		}
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false

	latency := func(cfg bench.LatencyConfig) {
		cfg.Repetitions = *reps
		if ms != nil {
			cfg.MessageCounts = ms
		}
		r, err := bench.RunLatency(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintLatency(os.Stdout, r)
	}

	if run("5") {
		latency(bench.Figure5())
		ran = true
	}
	if run("6") {
		latency(bench.Figure6())
		ran = true
	}
	if run("7") {
		latency(bench.Figure7())
		ran = true
	}
	if run("wss") {
		latency(bench.WSSecuritySweep())
		ran = true
	}
	if run("wan") {
		cfg := bench.WANSweep()
		cfg.Repetitions = minInt(*reps, 3) // WAN round trips are slow
		if ms != nil {
			cfg.MessageCounts = ms
		}
		r, err := bench.RunLatency(cfg)
		if err != nil {
			fatal(err)
		}
		bench.PrintLatency(os.Stdout, r)
		ran = true
	}
	if run("travel") {
		r, err := bench.RunTravel(bench.TravelConfig{
			Repetitions: maxInt(*reps, 10),
			WorkTime:    2_000_000, // 2ms of simulated vendor work per operation
		})
		if err != nil {
			fatal(err)
		}
		bench.PrintTravel(os.Stdout, r)
		ran = true
	}
	if run("micro") {
		for _, scale := range []int{10, 100, 1000} {
			r, err := bench.RunMicro(scale, 30)
			if err != nil {
				fatal(err)
			}
			r.Print(os.Stdout)
		}
		ran = true
	}
	if run("breakdown") {
		r, err := bench.RunBreakdown(64, 10, *reps)
		if err != nil {
			fatal(err)
		}
		r.Print(os.Stdout)
		ran = true
	}
	if run("trace") {
		m := 64
		if len(ms) > 0 {
			m = ms[0]
		}
		r, err := bench.RunTrace(m, 10, *reps)
		if err != nil {
			fatal(err)
		}
		r.Print(os.Stdout)
		ran = true
	}
	if run("throughput") {
		r, err := bench.RunThroughput(bench.ThroughputConfig{})
		if err != nil {
			fatal(err)
		}
		r.Print(os.Stdout)
		ran = true
	}
	if run("related") {
		r, err := bench.RunRelatedWork(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if run("ablation") {
		for _, f := range []func(int) (*bench.AblationResult, error){
			bench.RunStagedVsCoupled,
			bench.RunConnectionReuse,
			bench.RunPoolWidth,
			bench.RunAdaptiveStage,
			bench.RunAutoBatch,
		} {
			r, err := f(*reps)
			if err != nil {
				fatal(err)
			}
			bench.PrintAblation(os.Stdout, r)
		}
		ran = true
	}
	if run("faults") {
		for _, f := range []func(int) (*bench.AblationResult, error){
			bench.RunFaultInjection,
			bench.RunDeadlineDegradation,
		} {
			r, err := f(*reps)
			if err != nil {
				fatal(err)
			}
			bench.PrintAblation(os.Stdout, r)
		}
		ran = true
	}
	if run("gateway") {
		r, err := bench.RunGatewayScaling(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if run("coalesce") {
		r, err := bench.RunCoalesce(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if run("controlplane") {
		r, err := bench.RunControlPlane(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if run("transport") {
		r, err := bench.RunTransport(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if run("unified") {
		r, err := bench.RunUnifiedFastPath(*reps)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblation(os.Stdout, r)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "spibench: unknown -fig %q (want 5, 6, 7, wss, travel, related, ablation, faults, gateway, coalesce, controlplane, transport, unified or all)\n", *fig)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spibench: %v\n", err)
	os.Exit(1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
