// Command spiclient issues SOAP calls against an SPI server from the
// command line — single calls or packed batches.
//
// Usage:
//
//	spiclient -addr localhost:8080 -service Echo -op echo data=hello n:int=3
//	spiclient -addr localhost:8080 -service WeatherService -op GetWeather CityName=Beijing
//	spiclient -addr localhost:8080 -pack 8 -service Echo -op echo data=hi
//	spiclient -addr localhost:8080 -wsdl Echo
//
// Parameters are name=value pairs; a type may be given as name:type=value
// with type one of string (default), int, float, bool.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	spi "repro"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "server address")
	service := flag.String("service", "", "service name")
	op := flag.String("op", "", "operation name")
	pack := flag.Int("pack", 1, "pack this many copies of the call into one SOAP message")
	wsdlSvc := flag.String("wsdl", "", "fetch and print the WSDL of a service, then exit")
	timeout := flag.Duration("timeout", 10*time.Second, "per-exchange timeout")
	wssUser := flag.String("wss-user", "", "sign requests with WS-Security as this user")
	wssSecret := flag.String("wss-secret", "", "shared secret for -wss-user")
	flag.Parse()

	cfg := spi.ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", *addr) },
		Timeout: *timeout,
	}
	if *wssUser != "" {
		cfg.HeaderProviders = []spi.HeaderProvider{
			&spi.WSSecuritySigner{Username: *wssUser, Secret: []byte(*wssSecret)},
		}
	}
	client, err := spi.NewClient(cfg)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	if *wsdlSvc != "" {
		fetchWSDL(*addr, *wsdlSvc, *timeout)
		return
	}
	if *service == "" || *op == "" {
		fmt.Fprintln(os.Stderr, "spiclient: -service and -op are required (or -wsdl)")
		flag.Usage()
		os.Exit(2)
	}

	params, err := parseParams(flag.Args())
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	if *pack <= 1 {
		results, err := client.Call(*service, *op, params...)
		if err != nil {
			fatal(err)
		}
		printResults(0, results)
	} else {
		batch := client.NewBatch()
		calls := make([]*spi.Call, *pack)
		for i := range calls {
			calls[i] = batch.Add(*service, *op, params...)
		}
		if err := batch.Send(); err != nil {
			fatal(err)
		}
		for i, c := range calls {
			results, err := c.Wait()
			if err != nil {
				fmt.Printf("[%d] FAULT: %v\n", i, err)
				continue
			}
			printResults(i, results)
		}
	}
	fmt.Printf("elapsed: %v\n", time.Since(start))
}

// parseParams converts name[:type]=value arguments into fields.
func parseParams(args []string) ([]spi.Field, error) {
	var params []spi.Field
	for _, arg := range args {
		eq := strings.IndexByte(arg, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad parameter %q (want name=value)", arg)
		}
		name, raw := arg[:eq], arg[eq+1:]
		typ := "string"
		if colon := strings.IndexByte(name, ':'); colon >= 0 {
			name, typ = name[:colon], name[colon+1:]
		}
		var v spi.Value
		switch typ {
		case "string":
			v = raw
		case "int":
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad int %q: %v", raw, err)
			}
			v = n
		case "float":
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float %q: %v", raw, err)
			}
			v = f
		case "bool":
			b, err := strconv.ParseBool(raw)
			if err != nil {
				return nil, fmt.Errorf("bad bool %q: %v", raw, err)
			}
			v = b
		default:
			return nil, fmt.Errorf("unknown type %q (want string, int, float, bool)", typ)
		}
		params = append(params, spi.F(name, v))
	}
	return params, nil
}

func printResults(i int, results []spi.Field) {
	for _, r := range results {
		fmt.Printf("[%d] %s = %v\n", i, r.Name, r.Value)
	}
}

// fetchWSDL issues a plain HTTP GET for the service description.
func fetchWSDL(addr, service string, timeout time.Duration) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	fmt.Fprintf(conn, "GET /services/%s?wsdl HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", service, addr)
	buf := make([]byte, 1<<20)
	var out []byte
	for {
		n, err := conn.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	// Strip the HTTP header block.
	if i := strings.Index(string(out), "\r\n\r\n"); i >= 0 {
		out = out[i+4:]
	}
	fmt.Println(string(out))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spiclient: %v\n", err)
	os.Exit(1)
}
