package main

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/httpx"
	"repro/internal/soap"
)

// node is one scrape target: an SPI server or gateway whose Admin service
// answers GetStats at <prefix>Admin.
type node struct {
	name   string
	client *httpx.Client
}

// scrape is the last result for one node. Err is empty on success.
type scrape struct {
	Stats admin.Stats `json:"stats"`
	Err   string      `json:"error,omitempty"`
	At    time.Time   `json:"scraped_at"`
}

// exporter polls a fleet of Admin services and renders the latest
// snapshots as Prometheus-style text metrics and as JSON.
type exporter struct {
	prefix string
	nodes  []*node

	mu   sync.RWMutex
	last map[string]scrape
}

func newExporter(prefix string) *exporter {
	if prefix == "" {
		prefix = "/services/"
	}
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &exporter{prefix: prefix, last: make(map[string]scrape)}
}

// addNode registers one target under a unique name.
func (e *exporter) addNode(name string, dial httpx.Dialer, dialCtx httpx.DialerCtx) error {
	for _, n := range e.nodes {
		if n.name == name {
			return fmt.Errorf("spiexporter: duplicate target %q", name)
		}
	}
	e.nodes = append(e.nodes, &node{
		name:   name,
		client: &httpx.Client{Dial: dial, DialCtx: dialCtx, KeepAlive: true},
	})
	return nil
}

// scrapeAll polls every node concurrently, each bounded by timeout, and
// replaces the stored snapshots.
func (e *exporter) scrapeAll(timeout time.Duration) {
	var wg sync.WaitGroup
	for _, n := range e.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			s := scrape{At: time.Now()}
			stats, err := e.scrapeNode(ctx, n)
			if err != nil {
				s.Err = err.Error()
			} else {
				s.Stats = stats
			}
			e.mu.Lock()
			e.last[n.name] = s
			e.mu.Unlock()
		}(n)
	}
	wg.Wait()
}

// scrapeNode runs one GetStats exchange. The response body flows through
// admin.ParseStatsResponse — the parser FuzzParseStats hardens, since the
// exporter scrapes nodes it does not control.
func (e *exporter) scrapeNode(ctx context.Context, n *node) (admin.Stats, error) {
	env, err := admin.NewGetStatsRequest(soap.V11)
	if err != nil {
		return admin.Stats{}, err
	}
	var buf sliceBuffer
	if err := env.Encode(&buf); err != nil {
		return admin.Stats{}, err
	}
	resp, err := n.client.PostCtx(ctx, e.prefix+admin.ServiceName,
		soap.V11.ContentType(), buf.b, "SOAPAction", `""`)
	if err != nil {
		return admin.Stats{}, err
	}
	body := append([]byte(nil), resp.Body...)
	resp.Release()
	return admin.ParseStatsResponse(body)
}

// snapshot copies the stored results in stable (sorted) node order.
func (e *exporter) snapshot() (names []string, scrapes map[string]scrape) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	scrapes = make(map[string]scrape, len(e.last))
	for name, s := range e.last {
		names = append(names, name)
		scrapes[name] = s
	}
	sort.Strings(names)
	return names, scrapes
}

// metricFamily accumulates one family's samples under a single HELP/TYPE
// header, keeping output order deterministic.
type metricFamily struct {
	name, help, typ string
	samples         []string
}

func (f *metricFamily) add(labels string, value int64) {
	f.samples = append(f.samples, fmt.Sprintf("%s{%s} %d", f.name, labels, value))
}

// renderMetrics emits the Prometheus text exposition of the last scrape.
func (e *exporter) renderMetrics() []byte {
	names, scrapes := e.snapshot()

	up := &metricFamily{name: "spi_up", help: "whether the last Admin scrape of the node succeeded", typ: "gauge"}
	weight := &metricFamily{name: "spi_weight", help: "advertised routing weight", typ: "gauge"}
	draining := &metricFamily{name: "spi_draining", help: "whether the node advertises a drain", typ: "gauge"}
	workers := &metricFamily{name: "spi_workers", help: "application-stage pool width", typ: "gauge"}
	busy := &metricFamily{name: "spi_busy_workers", help: "application-stage workers currently executing", typ: "gauge"}
	idle := &metricFamily{name: "spi_idle_workers", help: "application-stage workers currently idle", typ: "gauge"}
	queueDepth := &metricFamily{name: "spi_queue_depth", help: "application-stage queue occupancy", typ: "gauge"}
	queueCap := &metricFamily{name: "spi_queue_cap", help: "application-stage queue capacity", typ: "gauge"}
	inflight := &metricFamily{name: "spi_inflight", help: "requests (or backend sub-batches) in flight", typ: "gauge"}
	envelopes := &metricFamily{name: "spi_envelopes_total", help: "envelopes accepted", typ: "counter"}
	requests := &metricFamily{name: "spi_requests_total", help: "requests executed (or dispatched)", typ: "counter"}
	packed := &metricFamily{name: "spi_packed_total", help: "packed envelopes handled", typ: "counter"}
	faults := &metricFamily{name: "spi_faults_total", help: "whole-message faults produced", typ: "counter"}
	itemFaults := &metricFamily{name: "spi_item_faults_total", help: "per-item faults in packed responses", typ: "counter"}
	faultCodes := &metricFamily{name: "spi_fault_code_total", help: "emitted faults by wire fault code", typ: "counter"}
	diffHits := &metricFamily{name: "spi_diff_hits_total", help: "differential-deserialization cache hits", typ: "counter"}
	diffMisses := &metricFamily{name: "spi_diff_misses_total", help: "differential-deserialization cache misses", typ: "counter"}
	opCount := &metricFamily{name: "spi_op_count_total", help: "operation executions", typ: "counter"}
	opLatency := &metricFamily{name: "spi_op_latency_microseconds", help: "operation execution latency quantiles", typ: "summary"}
	opMean := &metricFamily{name: "spi_op_latency_mean_microseconds", help: "mean operation execution latency", typ: "gauge"}

	for _, name := range names {
		s := scrapes[name]
		nl := fmt.Sprintf("node=%q", name)
		if s.Err != "" {
			up.add(nl, 0)
			continue
		}
		st := s.Stats
		up.add(nl+fmt.Sprintf(",role=%q", st.Role), 1)
		weight.add(nl, st.Weight)
		draining.add(nl, boolToInt(st.Draining))
		workers.add(nl, st.Workers)
		busy.add(nl, st.Busy)
		idle.add(nl, st.Idle)
		queueDepth.add(nl, st.QueueDepth)
		queueCap.add(nl, st.QueueCap)
		inflight.add(nl, st.Inflight)
		envelopes.add(nl, st.Envelopes)
		requests.add(nl, st.Requests)
		packed.add(nl, st.Packed)
		faults.add(nl, st.Faults)
		itemFaults.add(nl, st.ItemFaults)
		for _, fc := range st.FaultCodes {
			faultCodes.add(nl+fmt.Sprintf(",code=%q", fc.Code), fc.Count)
		}
		diffHits.add(nl, st.DiffHits)
		diffMisses.add(nl, st.DiffMisses)
		for _, op := range st.Ops {
			ol := nl + fmt.Sprintf(",op=%q", op.Op)
			opCount.add(ol, op.Count)
			opMean.add(ol, op.MeanUs)
			opLatency.add(ol+`,quantile="0.5"`, op.P50Us)
			opLatency.add(ol+`,quantile="0.9"`, op.P90Us)
			opLatency.add(ol+`,quantile="0.99"`, op.P99Us)
		}
	}

	var b strings.Builder
	for _, f := range []*metricFamily{
		up, weight, draining, workers, busy, idle, queueDepth, queueCap,
		inflight, envelopes, requests, packed, faults, itemFaults,
		faultCodes, diffHits, diffMisses, opCount, opLatency, opMean,
	} {
		if len(f.samples) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// renderJSON emits the last scrape of every node as one JSON document.
func (e *exporter) renderJSON() ([]byte, error) {
	_, scrapes := e.snapshot()
	return json.MarshalIndent(scrapes, "", "  ")
}

// handle serves GET /metrics (Prometheus text) and GET /snapshot (JSON).
func (e *exporter) handle(ctx context.Context, req *httpx.Request) *httpx.Response {
	target := req.Target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	if req.Method != "GET" {
		resp := httpx.NewResponse(405, []byte("method not allowed\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	switch target {
	case "/metrics":
		resp := httpx.NewResponse(200, e.renderMetrics())
		resp.Header.Set("Content-Type", "text/plain; version=0.0.4")
		return resp
	case "/snapshot":
		body, err := e.renderJSON()
		if err != nil {
			resp := httpx.NewResponse(500, []byte("snapshot marshal failed\n"))
			resp.Header.Set("Content-Type", "text/plain")
			return resp
		}
		resp := httpx.NewResponse(200, append(body, '\n'))
		resp.Header.Set("Content-Type", "application/json")
		return resp
	}
	resp := httpx.NewResponse(404, []byte("spiexporter serves GET /metrics and GET /snapshot\n"))
	resp.Header.Set("Content-Type", "text/plain")
	return resp
}

// close releases every target's connection pool.
func (e *exporter) close() {
	for _, n := range e.nodes {
		n.client.Close()
	}
}

// sliceBuffer is a minimal io.Writer over an appended byte slice.
type sliceBuffer struct{ b []byte }

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
