package main

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// startAdminServer stands up one admin-enabled SPI server on an in-memory
// link and returns its dialer.
func startAdminServer(t *testing.T) func() (net.Conn, error) {
	t.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "test echo")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	srv, err := core.NewServer(core.ServerConfig{
		Container: c, AppWorkers: 4, AppQueue: 16, AdminService: true, AdminWeight: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); link.Close() })

	// Execute one call so the per-op summaries have content.
	cli, err := core.NewClient(core.ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call("Echo", "echo", soapenc.F("msg", "warm")); err != nil {
		t.Fatal(err)
	}
	return link.Dial
}

func TestExporterScrapeAndRender(t *testing.T) {
	e := newExporter("/services/")
	defer e.close()
	if err := e.addNode("good:8080", startAdminServer(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.addNode("dead:8080", func() (net.Conn, error) {
		return nil, errors.New("connection refused")
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.addNode("good:8080", startAdminServer(t), nil); err == nil {
		t.Error("duplicate target accepted")
	}

	e.scrapeAll(2 * time.Second)

	metrics := string(e.renderMetrics())
	for _, want := range []string{
		`spi_up{node="good:8080",role="server"} 1`,
		`spi_up{node="dead:8080"} 0`,
		`spi_weight{node="good:8080"} 3`,
		`spi_workers{node="good:8080"} 4`,
		`spi_op_count_total{node="good:8080",op="Echo.echo"} 1`,
		`spi_op_latency_microseconds{node="good:8080",op="Echo.echo",quantile="0.99"}`,
		"# TYPE spi_up gauge",
		"# TYPE spi_envelopes_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, `spi_weight{node="dead:8080"}`) {
		t.Error("dead node leaked gauge samples")
	}

	// The JSON snapshot carries both nodes, with the failure recorded.
	body, err := e.renderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]scrape
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, body)
	}
	if got := snap["good:8080"]; got.Err != "" || got.Stats.Role != "server" || got.Stats.Weight != 3 {
		t.Errorf("good node snapshot = %+v", got)
	}
	if got := snap["dead:8080"]; got.Err == "" {
		t.Errorf("dead node snapshot has no error: %+v", got)
	}
}

func TestExporterHTTPEndpoints(t *testing.T) {
	e := newExporter("/services/")
	defer e.close()
	if err := e.addNode("n0", startAdminServer(t), nil); err != nil {
		t.Fatal(err)
	}
	e.scrapeAll(2 * time.Second)

	get := func(target string) *httpx.Response {
		t.Helper()
		return e.handle(context.Background(), httpx.NewRequest("GET", target, nil))
	}
	if resp := get("/metrics"); resp.StatusCode != 200 ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("GET /metrics = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if resp := get("/snapshot?pretty"); resp.StatusCode != 200 ||
		resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("GET /snapshot = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if resp := get("/nope"); resp.StatusCode != 404 {
		t.Errorf("GET /nope = %d", resp.StatusCode)
	}
	if resp := e.handle(context.Background(), httpx.NewRequest("POST", "/metrics", nil)); resp.StatusCode != 405 {
		t.Errorf("POST /metrics = %d", resp.StatusCode)
	}
}
