// Command spiexporter scrapes a fleet of SPI nodes — servers and gateways
// running with their Admin control-plane service enabled — and re-serves
// the latest snapshots for monitoring systems:
//
//	GET /metrics     Prometheus text exposition
//	GET /snapshot    JSON, one entry per scraped node
//
// Usage:
//
//	spiexporter -addr :9090 -targets host1:8080,host2:8080,gw:8090
//	spiexporter -addr :9090 -targets host1:8080 -interval 5s -prefix /services/
//
// Each target is scraped with one Admin.GetStats exchange (a plain SOAP
// call — the exporter is just another SPI client) every -interval; a
// target that stops answering shows up as spi_up 0 until it recovers.
// See docs/CONTROL_PLANE.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/httpx"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	targets := flag.String("targets", "", "comma-separated node addresses to scrape (required)")
	prefix := flag.String("prefix", "/services/", "service mount point on the scraped nodes")
	interval := flag.Duration("interval", 5*time.Second, "scrape period")
	timeout := flag.Duration("timeout", 2*time.Second, "per-node scrape bound")
	flag.Parse()

	if *targets == "" {
		fatal(fmt.Errorf("-targets is required (comma-separated host:port list)"))
	}
	e := newExporter(*prefix)
	for _, hostport := range strings.Split(*targets, ",") {
		hostport = strings.TrimSpace(hostport)
		if hostport == "" {
			continue
		}
		d := &net.Dialer{Timeout: *timeout}
		target := hostport
		err := e.addNode(target, nil, func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", target)
		})
		if err != nil {
			fatal(err)
		}
	}
	defer e.close()

	e.scrapeAll(*timeout)
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.scrapeAll(*timeout)
			}
		}
	}()

	srv := &httpx.Server{Handler: e.handle}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spiexporter: listening on %s, scraping %d node(s) every %v\n",
		listener.Addr(), len(e.nodes), *interval)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(listener) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		close(stop)
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("spiexporter: %v, stopping\n", s)
		close(stop)
		srv.Shutdown(2 * time.Second)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spiexporter: %v\n", err)
	os.Exit(1)
}
