// Command spigateway fronts a pool of SPI servers with the scatter–gather
// gateway: packed Parallel_Method envelopes are sharded across the
// backends, everything else is proxied whole, and the reply is
// byte-identical to a single direct server's.
//
// Usage:
//
//	spigateway -addr :8090 -backends host1:8080,host2:8080
//	spigateway -addr :8090 -backends host1:8080,host2:8080 -policy least-loaded
//	spigateway -addr :8090 -backends host1:8080=4,host2:8080=1 -policy weighted -poll 250ms
//	spigateway -addr :8090 -backends host1:8080 -probe 2s -stats -admin
//	spigateway -addr :8090 -backends host1:8080,host2:8080 \
//	    -coalesce -flush-window 1ms -max-batch 64 -max-bytes 262144
//
// With -coalesce, concurrent single-call envelopes targeting the same
// operation are merged into synthetic packed batches toward the backends
// (each flushed after -flush-window, or sooner when -max-batch entries or
// -max-bytes of bodies accumulate, or when a member's SPI-Deadline is
// tight), then split back so every client's reply is byte-identical to
// the uncoalesced path.
//
// A backend may carry a routing weight after "=" (default 1), used by the
// weighted policy. With -poll, the membership manager scrapes every
// backend's Admin service on a jittered interval and modulates those
// weights by observed load (see docs/CONTROL_PLANE.md); with -admin the
// gateway self-hosts its own Admin service at /services/Admin so
// exporters and upstream tiers can scrape the gateway like any server.
//
// Endpoints mirror the servers':
//
//	POST /services/<Service>    one-request envelopes (proxied)
//	POST /services              packed envelopes (scattered)
//	GET  /services, ?wsdl       proxied to one backend
//	GET  /spi/stats             gateway counters (with -stats)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/registry"
	"repro/internal/services"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backendList := flag.String("backends", "", "comma-separated backend addresses (required)")
	policy := flag.String("policy", "round-robin", "sharding policy: round-robin, least-loaded, op-affinity, weighted")
	threshold := flag.Int("eject-after", 3, "consecutive failures that eject a backend")
	reprobe := flag.Duration("reprobe", 500*time.Millisecond, "how long an ejected backend sits out")
	probe := flag.Duration("probe", 0, "active health-check period (0: passive only)")
	exchangeTimeout := flag.Duration("exchange-timeout", 30*time.Second, "per-sub-batch exchange bound")
	maxIdle := flag.Int("max-idle", 16, "keep-alive connections pooled per backend")
	maxActive := flag.Int("max-active", 0, "concurrent exchanges per backend (0: unbounded)")
	stats := flag.Bool("stats", false, "serve GET /spi/stats")
	coalesce := flag.Bool("coalesce", false, "merge concurrent single calls into packed batches")
	flushWindow := flag.Duration("flush-window", time.Millisecond, "coalescer batch formation window (with -coalesce)")
	maxBatch := flag.Int("max-batch", 64, "coalescer flushes a batch at this many members (with -coalesce)")
	maxBytes := flag.Int("max-bytes", 256<<10, "coalescer flushes a batch at this many request-body bytes (with -coalesce)")
	poll := flag.Duration("poll", 0, "membership poll period for backend Admin services (0: disabled)")
	adminFlag := flag.Bool("admin", false, "self-host the gateway's Admin service at /services/Admin")
	adminWeight := flag.Int("admin-weight", 1, "gateway's initial advertised weight (with -admin)")
	passthrough := flag.Bool("passthrough", true, "splice single-call envelopes through a backend zero-copy (disabled automatically when -coalesce is set)")
	pipelineBackends := flag.Int("pipeline-backends", 0, "pipeline up to N exchanges per backend connection (0: one exchange per connection)")
	flag.Parse()

	if *backendList == "" {
		fatal(fmt.Errorf("-backends is required (comma-separated host:port list)"))
	}

	// The gateway needs the service catalogue only for idempotency
	// metadata: which operations may fail over after possibly executing.
	container := registry.NewContainer()
	if err := services.DeployEcho(container, services.Options{}); err != nil {
		fatal(err)
	}
	if err := services.DeployWeather(container, services.Options{}); err != nil {
		fatal(err)
	}
	if _, err := services.DeployTravel(container, services.Options{}); err != nil {
		fatal(err)
	}
	if svc, ok := container.Service("Echo"); ok {
		svc.MarkIdempotent("echo", "echoSize")
	}
	if svc, ok := container.Service("WeatherService"); ok {
		svc.MarkIdempotent("GetWeather")
	}

	var backends []gateway.BackendConfig
	for _, hostport := range strings.Split(*backendList, ",") {
		hostport = strings.TrimSpace(hostport)
		if hostport == "" {
			continue
		}
		weight := 1
		if i := strings.LastIndexByte(hostport, '='); i >= 0 {
			w, err := strconv.Atoi(hostport[i+1:])
			if err != nil || w < 1 {
				fatal(fmt.Errorf("backend %q: weight after '=' must be a positive integer", hostport))
			}
			weight = w
			hostport = hostport[:i]
		}
		d := &net.Dialer{Timeout: 5 * time.Second}
		target := hostport
		backends = append(backends, gateway.BackendConfig{
			Name:   target,
			Weight: weight,
			DialCtx: func(ctx context.Context) (net.Conn, error) {
				return d.DialContext(ctx, "tcp", target)
			},
		})
	}

	gw, err := gateway.New(gateway.Config{
		Backends:            backends,
		Policy:              gateway.ParsePolicy(*policy),
		Registry:            container,
		FailureThreshold:    *threshold,
		ReprobeAfter:        *reprobe,
		ProbeInterval:       *probe,
		ExchangeTimeout:     *exchangeTimeout,
		MaxIdlePerBackend:   *maxIdle,
		MaxActivePerBackend: *maxActive,
		Passthrough:         *passthrough,
		PipelineBackends:    *pipelineBackends,
		DebugEndpoints:      *stats,
		AdminService:        *adminFlag,
		AdminWeight:         *adminWeight,
		Membership: gateway.MembershipConfig{
			Enabled:      *poll > 0,
			PollInterval: *poll,
		},
		Coalesce: gateway.CoalesceConfig{
			Enabled:     *coalesce,
			FlushWindow: *flushWindow,
			MaxBatch:    *maxBatch,
			MaxBytes:    *maxBytes,
		},
	})
	if err != nil {
		fatal(err)
	}

	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spigateway: listening on %s, policy %s, %d backend(s):\n",
		listener.Addr(), gateway.ParsePolicy(*policy), len(backends))
	for _, b := range backends {
		fmt.Printf("  %s (weight %d)\n", b.Name, b.Weight)
	}
	if *poll > 0 {
		fmt.Printf("spigateway: polling backend Admin services every %v\n", *poll)
	}
	if *adminFlag {
		fmt.Println("spigateway: Admin service at /services/Admin")
	}
	if *passthrough && !*coalesce {
		fmt.Println("spigateway: zero-copy passthrough for single calls")
	}
	if *pipelineBackends > 0 {
		fmt.Printf("spigateway: pipelining up to %d exchanges per backend connection\n", *pipelineBackends)
	}
	if *coalesce {
		fmt.Printf("spigateway: coalescing singles (window %v, max %d entries / %d bytes)\n",
			*flushWindow, *maxBatch, *maxBytes)
	}

	done := make(chan error, 1)
	go func() { done <- gw.Serve(listener) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("spigateway: %v, draining\n", s)
		gw.Shutdown(5 * time.Second)
		select {
		case <-done:
		case <-time.After(time.Second):
		}
		st := gw.Stats()
		fmt.Printf("spigateway: %d envelopes (%d packed, %d proxied), %d sub-batches, %d failovers, %d degraded\n",
			st.Envelopes, st.Packed, st.Proxied, st.Scattered, st.Failovers, st.Degraded)
		if *coalesce {
			fmt.Printf("spigateway: %d singles coalesced into %d batches (%d passed through)\n",
				st.Coalesced, st.CoalesceBatches, st.CoalescePassthrough)
		}
		for _, bs := range st.Backends {
			fmt.Printf("  %-24s exchanges=%d failures=%d ejections=%d failovers=%d\n",
				bs.Name, bs.Exchanges, bs.Failures, bs.Ejections, bs.Failovers)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spigateway: %v\n", err)
	os.Exit(1)
}
