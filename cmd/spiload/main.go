// Command spiload drives sustained load against a live SPI server and
// reports throughput and latency percentiles — a general-purpose load
// generator in the spirit of the SOAP benchmark suite the paper cites as
// [10] (Head et al., SC-05), but aimable at any deployed service.
//
// Usage:
//
//	spiload -addr localhost:8080 -service Echo -op echo -d 10s -c 16 data=hello
//	spiload -addr localhost:8080 -service Echo -op echo -pack 32 -c 4 data=hi
//	spiload -addr localhost:8080 -service Echo -op echo -rate 500 data=x
//
// Modes:
//
//	closed loop (default): -c concurrent callers, each issuing
//	    back-to-back requests;
//	open loop: -rate R issues R requests/second regardless of
//	    completions (reveals queueing collapse);
//	packed: -pack N groups every N calls of a caller into one SOAP
//	    message via the pack interface.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spi "repro"
	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "server address")
	service := flag.String("service", "Echo", "service name")
	op := flag.String("op", "echo", "operation name")
	duration := flag.Duration("d", 5*time.Second, "test duration")
	concurrency := flag.Int("c", 8, "concurrent callers (closed loop)")
	rate := flag.Float64("rate", 0, "target requests/second (open loop; 0 = closed loop)")
	pack := flag.Int("pack", 1, "pack this many calls per SOAP message")
	timeout := flag.Duration("timeout", 10*time.Second, "per-exchange timeout")
	keepAlive := flag.Bool("keepalive", false, "reuse connections")
	flag.Parse()

	params, err := parseParams(flag.Args())
	if err != nil {
		fatal(err)
	}

	client, err := spi.NewClient(spi.ClientConfig{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", *addr) },
		Timeout:   *timeout,
		KeepAlive: *keepAlive,
	})
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	// Smoke-test the target before opening the floodgates.
	if _, err := client.Call(*service, *op, params...); err != nil {
		fatal(fmt.Errorf("preflight call failed: %w", err))
	}

	var rec metrics.Recorder
	var completed, failed atomic.Int64

	issue := func() {
		start := time.Now()
		var err error
		if *pack > 1 {
			b := client.NewBatch()
			for i := 0; i < *pack; i++ {
				b.Add(*service, *op, params...)
			}
			err = b.Send()
		} else {
			_, err = client.Call(*service, *op, params...)
		}
		if err != nil {
			failed.Add(1)
			return
		}
		rec.Record(time.Since(start))
		completed.Add(int64(*pack))
	}

	fmt.Printf("spiload: %s.%s on %s — %v, ", *service, *op, *addr, *duration)
	start := time.Now()
	if *rate > 0 {
		fmt.Printf("open loop at %.0f req/s\n", *rate)
		runOpenLoop(*rate, *duration, issue)
	} else {
		fmt.Printf("closed loop with %d callers\n", *concurrency)
		runClosedLoop(*concurrency, *duration, issue)
	}
	elapsed := time.Since(start)

	s := rec.Snapshot()
	fmt.Printf("\ncompleted %d requests (%d exchanges failed) in %v\n",
		completed.Load(), failed.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f req/s\n", float64(completed.Load())/elapsed.Seconds())
	if s.Count > 0 {
		fmt.Printf("exchange latency: mean %.2fms  p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			metrics.Millis(s.Mean), metrics.Millis(s.P50), metrics.Millis(s.P90),
			metrics.Millis(s.P99), metrics.Millis(s.Max))
	}
	st := client.Stats()
	fmt.Printf("messages sent: %d (%.1f calls per message)\n",
		st.Envelopes, float64(st.Calls)/float64(max64(st.Envelopes, 1)))
}

// runClosedLoop drives n workers issuing back-to-back requests until the
// duration elapses.
func runClosedLoop(n int, d time.Duration, issue func()) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					issue()
				}
			}
		}()
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
}

// runOpenLoop issues requests at a fixed arrival rate, independent of
// completions; each arrival gets its own goroutine, so latency inflation
// under overload is visible instead of throttling the generator.
func runOpenLoop(rate float64, d time.Duration, issue func()) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(d)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			issue()
		}()
	}
	wg.Wait()
}

// parseParams converts name[:type]=value arguments (same syntax as
// spiclient).
func parseParams(args []string) ([]spi.Field, error) {
	var params []spi.Field
	for _, arg := range args {
		eq := strings.IndexByte(arg, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad parameter %q (want name=value)", arg)
		}
		name, raw := arg[:eq], arg[eq+1:]
		typ := "string"
		if colon := strings.IndexByte(name, ':'); colon >= 0 {
			name, typ = name[:colon], name[colon+1:]
		}
		var v spi.Value
		switch typ {
		case "string":
			v = raw
		case "int":
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad int %q: %v", raw, err)
			}
			v = n
		case "float":
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float %q: %v", raw, err)
			}
			v = f
		case "bool":
			b, err := strconv.ParseBool(raw)
			if err != nil {
				return nil, fmt.Errorf("bad bool %q: %v", raw, err)
			}
			v = b
		default:
			return nil, fmt.Errorf("unknown type %q", typ)
		}
		params = append(params, spi.F(name, v))
	}
	return params, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spiload: %v\n", err)
	os.Exit(1)
}
