package main

import (
	"testing"

	spi "repro"
)

func TestParseParams(t *testing.T) {
	params, err := parseParams([]string{
		"name=hello",
		"count:int=42",
		"price:float=1.5",
		"flag:bool=true",
		"explicit:string=x=y", // value may contain '='
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []spi.Field{
		spi.F("name", "hello"),
		spi.F("count", int64(42)),
		spi.F("price", 1.5),
		spi.F("flag", true),
		spi.F("explicit", "x=y"),
	}
	if len(params) != len(want) {
		t.Fatalf("got %d params", len(params))
	}
	for i := range want {
		if params[i].Name != want[i].Name || !spi.ValueEqual(params[i].Value, want[i].Value) {
			t.Errorf("param %d = %+v, want %+v", i, params[i], want[i])
		}
	}
}

func TestParseParamsErrors(t *testing.T) {
	cases := [][]string{
		{"novalue"},
		{"=x"},
		{"n:int=notanumber"},
		{"n:float=wide"},
		{"n:bool=maybe"},
		{"n:complex=1+2i"},
	}
	for _, args := range cases {
		if _, err := parseParams(args); err == nil {
			t.Errorf("parseParams(%v) succeeded", args)
		}
	}
}
