// Command spiserver hosts the full SPI service suite (Echo, WeatherService
// and the travel-agent services) over real TCP.
//
// Usage:
//
//	spiserver -addr :8080
//	spiserver -addr :8080 -app-workers 64 -work 2ms
//	spiserver -addr :8080 -wss-user alice -wss-secret s3cret -diff
//	spiserver -addr :8080 -admin -weight 4 -debug
//
// Endpoints:
//
//	POST /services/<Service>    one-request SOAP envelopes
//	POST /services              packed Parallel_Method envelopes
//	GET  /services              deployed-service listing
//	GET  /services/<Service>?wsdl
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	spi "repro"
	"repro/internal/registry"
	"repro/internal/services"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	appWorkers := flag.Int("app-workers", 32, "application-stage pool width")
	coupled := flag.Bool("coupled", false, "use the traditional coupled architecture (no staged pools)")
	work := flag.Duration("work", 0, "simulated backend work per operation")
	wssUser := flag.String("wss-user", "", "require WS-Security and accept this username")
	wssSecret := flag.String("wss-secret", "", "shared secret for -wss-user")
	diff := flag.Bool("diff", false, "enable the differential-deserialization cache")
	debug := flag.Bool("debug", false, "expose GET /spi/stats and /spi/pprof/* operator endpoints")
	admin := flag.Bool("admin", false, "self-host the Admin control-plane service (GetStats/SetState) at /services/Admin")
	weight := flag.Int("weight", 1, "initial advertised routing weight (with -admin)")
	pipeline := flag.Int("pipeline", 8, "per-connection HTTP/1.1 pipelining window (0 or 1: serial)")
	readTimeout := flag.Duration("read-timeout", 0, "per-request read watchdog on the deadline wheel (0: none)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-response write watchdog on the deadline wheel (0: none)")
	flag.Parse()

	container := registry.NewContainer()
	opt := services.Options{WorkTime: *work}
	if err := services.DeployEcho(container, opt); err != nil {
		fatal(err)
	}
	if err := services.DeployWeather(container, opt); err != nil {
		fatal(err)
	}
	if _, err := services.DeployTravel(container, opt); err != nil {
		fatal(err)
	}

	cfg := spi.ServerConfig{
		Container:      container,
		AppWorkers:     *appWorkers,
		Coupled:        *coupled,
		AdminService:   *admin,
		AdminWeight:    *weight,
		PipelineWindow: *pipeline,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,

		DifferentialDeserialization: *diff,
		DebugEndpoints:              *debug,
	}
	if *wssUser != "" {
		if *wssSecret == "" {
			fatal(fmt.Errorf("-wss-user requires -wss-secret"))
		}
		cfg.HeaderProcessors = []spi.HeaderProcessor{
			&spi.WSSecurityVerifier{Secrets: map[string][]byte{*wssUser: []byte(*wssSecret)}},
		}
	}

	server, err := spi.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spiserver: listening on %s\n", listener.Addr())
	for _, svc := range container.Services() {
		fmt.Printf("  /services/%s — %s\n", svc.Name, svc.Doc)
	}

	done := make(chan error, 1)
	go func() { done <- server.Serve(listener) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("spiserver: %v, draining\n", s)
		server.Shutdown(5 * time.Second)
		select {
		case <-done:
		case <-time.After(time.Second):
		}
		st := server.Stats()
		fmt.Printf("spiserver: served %d envelopes, %d requests (%d packed messages, %d faults)\n",
			st.Envelopes, st.Requests, st.PackedMessages, st.Faults)
		if len(st.Operations) > 0 {
			names := make([]string, 0, len(st.Operations))
			for name := range st.Operations {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Println("per-operation execution times:")
			for _, name := range names {
				fmt.Printf("  %-32s %s\n", name, st.Operations[name])
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spiserver: %v\n", err)
	os.Exit(1)
}
