// Command travelagent runs the §4.3 travel-agent scenario end-to-end: the
// eleven-invocation booking sequence of Figure 8, with and without the
// pack optimization of steps 1 and 3, and reports the comparison the paper
// reports (408 ms vs 301 ms, ~26% improvement, on their testbed).
//
// By default it runs self-contained over the simulated 100 Mbit link; with
// -addr it runs against a live spiserver instead.
//
// Usage:
//
//	travelagent                      # simulated link, one booking each mode
//	travelagent -reps 10             # the paper's repetition count
//	travelagent -work 2ms            # simulated vendor work per operation
//	travelagent -addr localhost:8080 # against a running spiserver
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	spi "repro"
	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/services"
)

func main() {
	addr := flag.String("addr", "", "run against a live spiserver at this address (default: simulated link)")
	reps := flag.Int("reps", 10, "repetitions per mode")
	work := flag.Duration("work", 2*time.Millisecond, "simulated vendor work per operation (simulated link only)")
	flag.Parse()

	if *addr != "" {
		runAgainst(*addr, *reps)
		return
	}

	r, err := bench.RunTravel(bench.TravelConfig{Repetitions: *reps, WorkTime: *work})
	if err != nil {
		fatal(err)
	}
	// Show one concrete booking so the output is more than numbers.
	env, err := bench.NewEnv(bench.EnvOptions{Travel: true, WorkTime: *work})
	if err != nil {
		fatal(err)
	}
	it, err := services.RunTravelAgent(env.Client, services.DefaultItinerary(), true)
	env.Close()
	if err != nil {
		fatal(err)
	}
	printItinerary(it)
	bench.PrintTravel(os.Stdout, r)
}

// runAgainst replays the scenario against a live server.
func runAgainst(addr string, reps int) {
	client, err := spi.NewClient(spi.ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Timeout: 30 * time.Second,
	})
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	var it *services.Itinerary
	for _, optimized := range []bool{false, true} {
		var rec metrics.Recorder
		for i := 0; i < reps; i++ {
			start := time.Now()
			res, err := services.RunTravelAgent(client, services.DefaultItinerary(), optimized)
			if err != nil {
				fatal(err)
			}
			rec.Record(time.Since(start))
			it = res
		}
		mode := "without optimization"
		if optimized {
			mode = "with optimization   "
		}
		fmt.Printf("%s  %s  (%d messages/run)\n", mode, rec.Snapshot(), it.Messages)
	}
	printItinerary(it)
}

func printItinerary(it *services.Itinerary) {
	fmt.Printf("booked itinerary (%d service invocations, %d SOAP messages):\n", it.Invocations, it.Messages)
	fmt.Printf("  flight %s at %.2f (reservation %d)\n", it.Flight, it.FlightPrice, it.FlightReservation)
	fmt.Printf("  room   %s at %.2f (reservation %d)\n", it.Room, it.RoomPrice, it.RoomReservation)
	fmt.Printf("  paid   %.2f, authorization %s\n\n", it.Total, it.AuthorizationID)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "travelagent: %v\n", err)
	os.Exit(1)
}
