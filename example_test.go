package spi_test

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	spi "repro"
)

// startGreeter deploys a tiny service over real TCP for the examples.
func startGreeter() (addr string, cleanup func()) {
	container := spi.NewContainer()
	svc := container.MustAddService("Greeter", "urn:example:Greeter", "says hello")
	svc.MustRegister("Hello", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		name := "world"
		for _, p := range params {
			if p.Name == "name" {
				name, _ = p.Value.(string)
			}
		}
		return []spi.Field{spi.F("greeting", "hello, "+name)}, nil
	}, "greets the caller")
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		panic(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go server.Serve(listener)
	return listener.Addr().String(), func() { server.Close() }
}

func newClient(addr string) *spi.Client {
	client, err := spi.NewClient(spi.ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Timeout: 5 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	return client
}

// The traditional interface: one call, one SOAP message.
func ExampleClient_Call() {
	addr, cleanup := startGreeter()
	defer cleanup()
	client := newClient(addr)
	defer client.Close()

	results, err := client.Call("Greeter", "Hello", spi.F("name", "SPI"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(results[0].Value)
	// Output: hello, SPI
}

// The pack interface: several calls in ONE SOAP message, executed
// concurrently on the server's application stage.
func ExampleClient_NewBatch() {
	addr, cleanup := startGreeter()
	defer cleanup()
	client := newClient(addr)
	defer client.Close()

	batch := client.NewBatch()
	a := batch.Add("Greeter", "Hello", spi.F("name", "a"))
	b := batch.Add("Greeter", "Hello", spi.F("name", "b"))
	if err := batch.Send(); err != nil {
		fmt.Println("error:", err)
		return
	}
	ra, _ := a.Wait()
	rb, _ := b.Wait()
	fmt.Println(ra[0].Value)
	fmt.Println(rb[0].Value)
	fmt.Println("messages sent:", client.Stats().Envelopes)
	// Output:
	// hello, a
	// hello, b
	// messages sent: 1
}

// Transparent packing: concurrent unmodified call sites coalesce into
// shared messages — the paper's stated future work.
func ExampleAutoBatcher() {
	addr, cleanup := startGreeter()
	defer cleanup()
	client := newClient(addr)
	defer client.Close()

	auto := spi.NewAutoBatcher(client, 5*time.Millisecond, 8)
	defer auto.Close()

	var wg sync.WaitGroup
	greetings := make([]string, 3)
	for i, name := range []string{"x", "y", "z"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res, err := auto.Call("Greeter", "Hello", spi.F("name", name))
			if err == nil {
				greetings[i], _ = res[0].Value.(string)
			}
		}(i, name)
	}
	wg.Wait()
	sort.Strings(greetings)
	for _, g := range greetings {
		fmt.Println(g)
	}
	// Output:
	// hello, x
	// hello, y
	// hello, z
}

// Structured values: arrays and structs travel as typed SOAP parameters.
func ExampleStruct() {
	s := spi.NewStruct(
		spi.F("flight", "Airline2-F1"),
		spi.F("price", 450.0),
	)
	fmt.Println(s.GetString("flight"), s.GetFloat("price"))
	// Output: Airline2-F1 450
}

// Service descriptions: every deployed service exposes WSDL.
func ExampleParseWSDL() {
	container := spi.NewContainer()
	svc := container.MustAddService("Greeter", "urn:example:Greeter", "docs")
	svc.MustRegister("Hello", func(ctx *spi.HandlerContext, p []spi.Field) ([]spi.Field, error) {
		return p, nil
	}, "")

	doc := spi.DescribeService(svc, "http://localhost:8080/services/Greeter")
	d, err := spi.ParseWSDL(doc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(d.Service, d.Namespace, d.Operations)
	// Output: Greeter urn:example:Greeter [Hello]
}
