// Autobatch: the paper's future work, running. §5 promises "automatic
// communication techniques in order not to modify the code on client
// side" — this example shows independent goroutines written against the
// plain call interface whose requests are transparently coalesced into
// packed SOAP messages by an AutoBatcher.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	spi "repro"
)

func main() {
	container := spi.NewContainer()
	quotes := container.MustAddService("Quotes", "urn:example:Quotes", "stock quotes")
	quotes.MustRegister("Get", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		symbol := ""
		for _, p := range params {
			if p.Name == "symbol" {
				symbol, _ = p.Value.(string)
			}
		}
		// A deterministic toy price.
		price := 0.0
		for _, c := range symbol {
			price += float64(c)
		}
		return []spi.Field{spi.F("symbol", symbol), spi.F("price", price/10)}, nil
	}, "quotes one symbol")

	link := spi.NewLink(spi.LAN100())
	listener, err := link.Listen()
	if err != nil {
		log.Fatal(err)
	}
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()
	defer link.Close()

	client, err := spi.NewClient(spi.ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Define("Quotes", "urn:example:Quotes")

	symbols := []string{
		"IBM", "SUNW", "MSFT", "ORCL", "HPQ", "DELL", "CSCO", "INTC",
		"AMD", "TXN", "MOT", "NOK", "SAP", "RHAT", "ADBE", "EBAY",
	}

	// Sixteen goroutines, each making an ordinary blocking call — the
	// application code has no idea batching exists.
	auto := spi.NewAutoBatcher(client, 2*time.Millisecond, 32)
	defer auto.Close()

	var wg sync.WaitGroup
	results := make([]string, len(symbols))
	start := time.Now()
	for i, symbol := range symbols {
		wg.Add(1)
		go func(i int, symbol string) {
			defer wg.Done()
			res, err := auto.Call("Quotes", "Get", spi.F("symbol", symbol))
			if err != nil {
				results[i] = fmt.Sprintf("%-5s error: %v", symbol, err)
				return
			}
			price := 0.0
			for _, f := range res {
				if f.Name == "price" {
					price, _ = f.Value.(float64)
				}
			}
			results[i] = fmt.Sprintf("%-5s %7.2f", symbol, price)
		}(i, symbol)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, line := range results {
		fmt.Println(line)
	}
	stats := client.Stats()
	fmt.Printf("\n%d independent calls coalesced into %d SOAP message(s) over %d connection(s) in %v\n",
		stats.Calls, stats.Envelopes, link.Stats().Dials, elapsed.Round(time.Microsecond))
	fmt.Println("(each call site looks like a plain synchronous invocation — no batch objects in sight)")
}
