// Quickstart: deploy a service, call it once per message, then pack three
// calls into one SOAP message — the smallest end-to-end tour of the SPI
// public API, over real TCP on the loopback interface.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	spi "repro"
)

func main() {
	// 1. Deploy a service. Handlers are plain functions over named typed
	//    parameters; they never see transport, packing or threads.
	container := spi.NewContainer()
	greeter := container.MustAddService("Greeter", "urn:example:Greeter", "says hello")
	greeter.MustRegister("Hello", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		name := "world"
		for _, p := range params {
			if p.Name == "name" {
				name, _ = p.Value.(string)
			}
		}
		return []spi.Field{spi.F("greeting", "hello, "+name)}, nil
	}, "greets the caller")

	// 2. Serve it over TCP.
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()
	addr := listener.Addr().String()
	fmt.Println("serving on", addr)

	// 3. A client. Define() teaches it the service's XML namespace (in a
	//    full deployment this comes from the WSDL).
	client, err := spi.NewClient(spi.ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Timeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Define("Greeter", "urn:example:Greeter")

	// 4. The traditional interface: one call, one SOAP message.
	results, err := client.Call("Greeter", "Hello", spi.F("name", "SPI"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single call:", results[0].Value)

	// 5. The pack interface: three calls, ONE SOAP message, executed
	//    concurrently on the server's application stage.
	batch := client.NewBatch()
	a := batch.Add("Greeter", "Hello", spi.F("name", "Wang"))
	b := batch.Add("Greeter", "Hello", spi.F("name", "Tong"))
	c := batch.Add("Greeter", "Hello", spi.F("name", "Liu"))
	if err := batch.Send(); err != nil {
		log.Fatal(err)
	}
	for _, call := range []*spi.Call{a, b, c} {
		res, err := call.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("packed call:", res[0].Value)
	}

	stats := client.Stats()
	fmt.Printf("issued %d calls in %d SOAP messages (%d packed batch)\n",
		stats.Calls, stats.Envelopes, stats.Batches)
}
