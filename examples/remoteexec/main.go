// Remoteexec: the SPI "remote execution" interface. The paper introduces
// SPI as "interfaces like packing, remote execution and so on" and
// publishes only packing; this example shows the next interface in the
// suite: an execution plan.
//
// A booking pipeline — reserve a flight, authorize payment, confirm the
// reservation with the authorization id — normally costs one round trip
// per step because each step consumes the previous step's output. A Plan
// ships all three steps in ONE SOAP message; the server resolves the
// references and runs the chain locally, so the client pays one round trip
// for the whole pipeline.
package main

import (
	"fmt"
	"log"
	"time"

	spi "repro"
)

func deploy(container *spi.Container) {
	airline := container.MustAddService("Airline", "urn:example:Airline", "bookings")
	airline.MustRegister("Reserve", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		time.Sleep(time.Millisecond)
		return []spi.Field{spi.F("reservedID", int64(4711))}, nil
	}, "reserves a seat")
	airline.MustRegister("Confirm", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		time.Sleep(time.Millisecond)
		var reserved int64
		var auth string
		for _, p := range params {
			switch p.Name {
			case "reservedID":
				reserved, _ = p.Value.(int64)
			case "authorizationID":
				auth, _ = p.Value.(string)
			}
		}
		if reserved == 0 || auth == "" {
			return nil, fmt.Errorf("confirm needs a reservation and an authorization")
		}
		return []spi.Field{spi.F("ticket", fmt.Sprintf("TICKET-%d-%s", reserved, auth))}, nil
	}, "confirms a reservation")

	bank := container.MustAddService("Bank", "urn:example:Bank", "payments")
	bank.MustRegister("Authorize", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		time.Sleep(time.Millisecond)
		return []spi.Field{spi.F("authorizationID", "AUTH-77")}, nil
	}, "authorizes a payment")
}

func main() {
	container := spi.NewContainer()
	deploy(container)

	link := spi.NewLink(spi.LAN100())
	listener, err := link.Listen()
	if err != nil {
		log.Fatal(err)
	}
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()
	defer link.Close()

	client, err := spi.NewClient(spi.ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Define("Airline", "urn:example:Airline")
	client.Define("Bank", "urn:example:Bank")

	// The traditional way: three dependent calls, three round trips.
	start := time.Now()
	r1, err := client.Call("Airline", "Reserve", spi.F("flight", "CA1234"))
	if err != nil {
		log.Fatal(err)
	}
	reservedID := r1[0].Value
	r2, err := client.Call("Bank", "Authorize", spi.F("amount", 499.0))
	if err != nil {
		log.Fatal(err)
	}
	authID := r2[0].Value
	r3, err := client.Call("Airline", "Confirm",
		spi.F("reservedID", reservedID), spi.F("authorizationID", authID))
	if err != nil {
		log.Fatal(err)
	}
	callTime := time.Since(start)
	fmt.Printf("three calls:  %-22v in %7.2f ms over %d messages\n",
		r3[0].Value, ms(callTime), 3)

	// The remote-execution way: the same pipeline in ONE message. Later
	// steps reference earlier results; the server chains them locally.
	link.ResetStats()
	before := client.Stats().Envelopes
	start = time.Now()
	plan := client.NewPlan()
	reserve := plan.Add("Airline", "Reserve", spi.F("flight", "CA1234"))
	pay := plan.Add("Bank", "Authorize", spi.F("amount", 499.0))
	confirm := plan.Add("Airline", "Confirm",
		spi.F("reservedID", reserve.Ref("reservedID")),
		spi.F("authorizationID", pay.Ref("authorizationID")))
	if err := plan.Send(); err != nil {
		log.Fatal(err)
	}
	res, err := confirm.Wait()
	if err != nil {
		log.Fatal(err)
	}
	planTime := time.Since(start)
	fmt.Printf("one plan:     %-22v in %7.2f ms over %d message(s)\n",
		res[0].Value, ms(planTime), client.Stats().Envelopes-before)
	fmt.Printf("\nthe plan collapsed a %d-round-trip pipeline into one exchange (%.1fx faster here)\n",
		3, ms(callTime)/ms(planTime))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
