// Travelagent: the paper's §3.1/§4.3 use case (from the W3C Web Services
// Architecture Usage Scenarios) built against the public API. A travel
// agent books a vacation package: it queries three airline services and
// three hotel services, reserves the cheapest of each, authorizes payment
// and confirms — eleven service invocations. The two query fan-outs
// (steps 1 and 3) are logically concurrent, so the SPI pack interface
// ships each as one SOAP message instead of three.
//
// The example runs both modes over the simulated 100 Mbit testbed link and
// reports times and message counts; see cmd/travelagent for the full
// measured experiment.
package main

import (
	"fmt"
	"log"
	"time"

	spi "repro"
)

// deployVendors registers three airline services, three hotel services and
// a payment service in one container, mirroring the paper's deployment.
func deployVendors(container *spi.Container) {
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("Airline%d", i)
		price := 400.0 + float64(i*50) // Airline1 is cheapest
		svc := container.MustAddService(name, "urn:spi:"+name, "flights")
		svc.MustRegister("QueryFlights", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			time.Sleep(2 * time.Millisecond) // fare computation
			return []spi.Field{
				spi.F("flight", name+"-F1"),
				spi.F("price", price),
			}, nil
		}, "quotes the best fare")
		svc.MustRegister("Reserve", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			return []spi.Field{spi.F("reservedID", int64(7))}, nil
		}, "reserves a flight")
		svc.MustRegister("Confirm", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			return []spi.Field{spi.F("ok", true)}, nil
		}, "confirms a reservation")
	}
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("Hotel%d", i)
		price := 120.0 + float64(i*20) // Hotel1 is cheapest
		svc := container.MustAddService(name, "urn:spi:"+name, "rooms")
		svc.MustRegister("QueryRooms", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			time.Sleep(2 * time.Millisecond)
			return []spi.Field{
				spi.F("room", name+"-R1"),
				spi.F("price", price),
			}, nil
		}, "quotes the best room")
		svc.MustRegister("Reserve", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			return []spi.Field{spi.F("reservedID", int64(9))}, nil
		}, "reserves a room")
		svc.MustRegister("Confirm", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
			return []spi.Field{spi.F("ok", true)}, nil
		}, "confirms a reservation")
	}
	cc := container.MustAddService("CreditCard", "urn:spi:CreditCard", "payments")
	cc.MustRegister("ConfirmPayment", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		return []spi.Field{spi.F("authorizationID", "AUTH-42")}, nil
	}, "authorizes a payment")
}

// bookVacation runs the seven steps of Figure 8 and returns the elapsed
// time. With packed true, steps 1 and 3 each use one packed message.
func bookVacation(client *spi.Client, packed bool) (time.Duration, error) {
	start := time.Now()

	// Step 1: query flights from every airline.
	type offer struct {
		vendor string
		item   string
		price  float64
	}
	collect := func(vendor string, res []spi.Field) offer {
		o := offer{vendor: vendor}
		for _, f := range res {
			switch f.Name {
			case "flight", "room":
				o.item, _ = f.Value.(string)
			case "price":
				o.price, _ = f.Value.(float64)
			}
		}
		return o
	}
	queryAll := func(vendors []string, op string, params ...spi.Field) ([]offer, error) {
		offers := make([]offer, 0, len(vendors))
		if packed {
			batch := client.NewBatch()
			calls := make([]*spi.Call, len(vendors))
			for i, v := range vendors {
				calls[i] = batch.Add(v, op, params...)
			}
			if err := batch.Send(); err != nil {
				return nil, err
			}
			for i, c := range calls {
				res, err := c.Wait()
				if err != nil {
					return nil, err
				}
				offers = append(offers, collect(vendors[i], res))
			}
			return offers, nil
		}
		for _, v := range vendors {
			res, err := client.Call(v, op, params...)
			if err != nil {
				return nil, err
			}
			offers = append(offers, collect(v, res))
		}
		return offers, nil
	}
	cheapest := func(offers []offer) offer {
		best := offers[0]
		for _, o := range offers[1:] {
			if o.price < best.price {
				best = o
			}
		}
		return best
	}

	airlines := []string{"Airline1", "Airline2", "Airline3"}
	hotels := []string{"Hotel1", "Hotel2", "Hotel3"}

	flights, err := queryAll(airlines, "QueryFlights", spi.F("from", "Beijing"), spi.F("to", "Shanghai"))
	if err != nil {
		return 0, err
	}
	flight := cheapest(flights)

	// Step 2: reserve the chosen flight.
	if _, err := client.Call(flight.vendor, "Reserve", spi.F("flight", flight.item)); err != nil {
		return 0, err
	}

	// Step 3: query rooms from every hotel.
	rooms, err := queryAll(hotels, "QueryRooms", spi.F("city", "Shanghai"))
	if err != nil {
		return 0, err
	}
	room := cheapest(rooms)

	// Step 4: reserve the chosen room.
	if _, err := client.Call(room.vendor, "Reserve", spi.F("room", room.item)); err != nil {
		return 0, err
	}

	// Step 5: authorize payment.
	res, err := client.Call("CreditCard", "ConfirmPayment",
		spi.F("amount", flight.price+room.price), spi.F("card", "4111-1111"))
	if err != nil {
		return 0, err
	}
	auth, _ := res[0].Value.(string)

	// Steps 6 and 7: confirm flight and room with the authorization.
	if _, err := client.Call(flight.vendor, "Confirm",
		spi.F("reservedID", int64(7)), spi.F("authorizationID", auth)); err != nil {
		return 0, err
	}
	if _, err := client.Call(room.vendor, "Confirm",
		spi.F("reservedID", int64(9)), spi.F("authorizationID", auth)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func main() {
	container := spi.NewContainer()
	deployVendors(container)

	// The simulated 100 Mbit testbed link of the paper's evaluation.
	link := spi.NewLink(spi.LAN100())
	listener, err := link.Listen()
	if err != nil {
		log.Fatal(err)
	}
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()
	defer link.Close()

	client, err := spi.NewClient(spi.ClientConfig{Dial: link.Dial, Timeout: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	for _, packed := range []bool{false, true} {
		// Warm up once, then measure a few bookings.
		if _, err := bookVacation(client, packed); err != nil {
			log.Fatal(err)
		}
		link.ResetStats()
		var total time.Duration
		const runs = 5
		for i := 0; i < runs; i++ {
			d, err := bookVacation(client, packed)
			if err != nil {
				log.Fatal(err)
			}
			total += d
		}
		mode := "11 separate messages"
		if packed {
			mode = "steps 1+3 packed (7 messages)"
		}
		fmt.Printf("%-30s  %7.2f ms per booking, %d connections for %d bookings\n",
			mode, float64(total.Microseconds())/1000/runs, link.Stats().Dials, runs)
	}
}
