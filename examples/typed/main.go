// Typed: the reflection binding layer. WSDL-era toolkits generated typed
// stubs from service descriptions; here the Go type system plays that
// role: services are functions over plain structs, clients call through
// struct values, and the binding maps both onto SOAP parameters.
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	spi "repro"
)

// The service contract, as plain Go types.

// SearchRequest asks for books matching a query.
type SearchRequest struct {
	Query      string `soap:"query"`
	MaxResults int    `soap:"maxResults"`
}

// Book is one catalogue entry.
type Book struct {
	Title  string  `soap:"title"`
	Author string  `soap:"author"`
	Price  float64 `soap:"price"`
}

// SearchResponse carries the matches.
type SearchResponse struct {
	Books []Book `soap:"books"`
	Total int    `soap:"total"`
}

var catalogue = []Book{
	{Title: "The SOAP Envelope", Author: "van Engelen", Price: 35.0},
	{Title: "Staged Event-Driven Architectures", Author: "Welsh", Price: 42.0},
	{Title: "Differential Serialization", Author: "Abu-Ghazaleh", Price: 28.5},
	{Title: "Grid Services in Practice", Author: "Wang", Price: 31.0},
}

func main() {
	container := spi.NewContainer()
	svc := container.MustAddService("Catalogue", "urn:example:Catalogue", "book search")
	svc.MustRegister("Search", spi.MustTypedHandler(
		func(ctx *spi.HandlerContext, req SearchRequest) (SearchResponse, error) {
			if req.Query == "" {
				return SearchResponse{}, fmt.Errorf("empty query")
			}
			max := req.MaxResults
			if max <= 0 {
				max = len(catalogue)
			}
			var resp SearchResponse
			for _, b := range catalogue {
				if strings.Contains(strings.ToLower(b.Title), strings.ToLower(req.Query)) ||
					strings.Contains(strings.ToLower(b.Author), strings.ToLower(req.Query)) {
					resp.Total++
					if len(resp.Books) < max {
						resp.Books = append(resp.Books, b)
					}
				}
			}
			return resp, nil
		}), "finds books by title or author substring")

	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	client, err := spi.NewClient(spi.ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", listener.Addr().String()) },
		Timeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Define("Catalogue", "urn:example:Catalogue")

	// A typed call: structs in, structs out; the envelope is invisible.
	var resp SearchResponse
	err = spi.CallTyped(func(p ...spi.Field) ([]spi.Field, error) {
		return client.Call("Catalogue", "Search", p...)
	}, SearchRequest{Query: "seri", MaxResults: 5}, &resp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d match(es):\n", resp.Total)
	for _, b := range resp.Books {
		fmt.Printf("  %-34s %-14s %6.2f\n", b.Title, b.Author, b.Price)
	}

	// Typed calls pack like any other: the binding is orthogonal to the
	// message layer.
	batch := client.NewBatch()
	queries := []string{"soap", "grid", "welsh"}
	calls := make([]*spi.Call, len(queries))
	for i, q := range queries {
		params, err := spi.MarshalFields(SearchRequest{Query: q})
		if err != nil {
			log.Fatal(err)
		}
		calls[i] = batch.Add("Catalogue", "Search", params...)
	}
	if err := batch.Send(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthree packed searches in one SOAP message:")
	for i, c := range calls {
		fields, err := c.Wait()
		if err != nil {
			log.Fatal(err)
		}
		var r SearchResponse
		if err := spi.UnmarshalFields(fields, &r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s -> %d match(es)\n", queries[i], r.Total)
	}
	fmt.Printf("\nSOAP messages sent: %d\n", client.Stats().Envelopes)
}
