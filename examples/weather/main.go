// Weather: the paper's Figure 4 scenario. A client wants the weather for
// Beijing and Shanghai; traditionally that is two SOAP messages, with the
// SPI pack interface it is one message whose body is a Parallel_Method
// element carrying both requests. The example taps the connection so you
// can see the actual packed envelope on the wire.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	spi "repro"
)

// teeConn copies everything written through it into a shared buffer, so
// the example can show the raw SOAP message — the same message the paper
// prints in Figure 4.
type teeConn struct {
	net.Conn
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (t teeConn) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf.Write(p)
	t.mu.Unlock()
	return t.Conn.Write(p)
}

func main() {
	// Deploy a weather service like the WebServiceX.NET one the paper
	// queried.
	container := spi.NewContainer()
	weather := container.MustAddService("WeatherService", "urn:example:Weather", "city weather")
	reports := map[string]string{"Beijing": "Sunny, 31°C", "Shanghai": "Cloudy, 28°C"}
	weather.MustRegister("GetWeather", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		city := ""
		for _, p := range params {
			if p.Name == "CityName" {
				city, _ = p.Value.(string)
			}
		}
		city = strings.TrimSuffix(city, ", China")
		report, ok := reports[city]
		if !ok {
			report = "no data"
		}
		return []spi.Field{spi.F("GetWeatherResult", report)}, nil
	}, "returns the weather for a city")

	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		log.Fatal(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	var mu sync.Mutex
	var wire bytes.Buffer
	client, err := spi.NewClient(spi.ClientConfig{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", listener.Addr().String())
			if err != nil {
				return nil, err
			}
			return teeConn{Conn: c, mu: &mu, buf: &wire}, nil
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.Define("WeatherService", "urn:example:Weather")

	// Two weather queries packed into ONE SOAP message (Figure 4).
	batch := client.NewBatch()
	beijing := batch.Add("WeatherService", "GetWeather",
		spi.F("CityName", "Beijing, China"), spi.F("CountryName", "China"))
	shanghai := batch.Add("WeatherService", "GetWeather",
		spi.F("CityName", "Shanghai, China"), spi.F("CountryName", "China"))
	if err := batch.Send(); err != nil {
		log.Fatal(err)
	}

	rb, err := beijing.Wait()
	if err != nil {
		log.Fatal(err)
	}
	rs, err := shanghai.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Beijing :", rb[0].Value)
	fmt.Println("Shanghai:", rs[0].Value)
	fmt.Printf("\nSOAP messages sent: %d (for 2 service requests)\n\n", client.Stats().Envelopes)

	// Show the packed request envelope, as the paper's Figure 4 does.
	mu.Lock()
	raw := wire.String()
	mu.Unlock()
	if i := strings.Index(raw, "<?xml"); i >= 0 {
		fmt.Println("the packed SOAP request on the wire:")
		fmt.Println(raw[i:])
	}
}
