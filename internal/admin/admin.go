// Package admin implements the cluster control plane's management surface
// as an ordinary SPI service — the control plane dogfoods the data plane.
//
// Every spiserver and spigateway can self-host an "Admin" service (behind a
// config flag) exposing two operations:
//
//   - GetStats — a read-only, idempotent snapshot of the node's load state:
//     busy/idle application workers, queue depth, exchange counters and
//     per-operation latency digests. The gateway's membership manager polls
//     it to drive load-weighted routing; cmd/spiexporter scrapes it into
//     Prometheus-style metrics.
//   - SetState — mutates the node's advertised routing state: its weight
//     and whether it is draining. A draining backend stops receiving new
//     shards from gateways while in-flight work finishes.
//
// Because Admin is a plain registry service, both operations are
// packed-friendly: a monitoring client can pack GetStats entries for a
// whole fleet into one Parallel_Method envelope, exactly like any
// application operation. The wire format is pinned byte-for-byte by the
// golden suite in internal/core (testdata/admin_*.xml).
//
// See docs/CONTROL_PLANE.md for the full lifecycle.
package admin

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

const (
	// ServiceName is the control-plane service's deployed name.
	ServiceName = "Admin"
	// Namespace is the XML namespace of its request/response elements.
	Namespace = "urn:spi:Admin"
	// OpGetStats is the read-only stats snapshot operation.
	OpGetStats = "GetStats"
	// OpSetState is the routing-state mutation operation.
	OpSetState = "SetState"
)

// OpStat is one operation's latency digest inside a Stats snapshot —
// metrics.SummaryExport keyed by its dotted "Service.operation" name.
type OpStat struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	MeanUs int64  `json:"mean_us"`
	P50Us  int64  `json:"p50_us"`
	P90Us  int64  `json:"p90_us"`
	P99Us  int64  `json:"p99_us"`
}

// Stats is the control-plane snapshot one node advertises through
// Admin.GetStats. All counters are monotonic since process start; the
// worker/queue fields are instantaneous.
type Stats struct {
	// Role is "server" or "gateway".
	Role string `json:"role"`
	// Weight is the node's advertised routing weight (>= 1); Draining
	// reports whether it is draining (no new work should be routed).
	Weight   int64 `json:"weight"`
	Draining bool  `json:"draining"`

	// Workers is the application-stage pool width; Busy and Idle split it
	// by instantaneous occupancy. Zero on nodes without an app stage
	// (coupled servers, gateways without an exchange bound).
	Workers int64 `json:"workers"`
	Busy    int64 `json:"busy"`
	Idle    int64 `json:"idle"`
	// QueueDepth and QueueCap describe the application-stage queue.
	QueueDepth int64 `json:"queue_depth"`
	QueueCap   int64 `json:"queue_cap"`
	// Inflight is the node's in-flight unit count: dispatched app tasks on
	// a server, outstanding backend sub-batches on a gateway.
	Inflight int64 `json:"inflight"`

	Envelopes  int64 `json:"envelopes"`
	Requests   int64 `json:"requests"`
	Packed     int64 `json:"packed"`
	Faults     int64 `json:"faults"`
	ItemFaults int64 `json:"item_faults"`
	// DiffHits and DiffMisses count differential-deserialization cache
	// lookups (zero when the cache is disabled).
	DiffHits   int64 `json:"diff_hits"`
	DiffMisses int64 `json:"diff_misses"`

	// FaultCodes breaks Faults+ItemFaults down by emitted wire fault code
	// (Server.Timeout, Server.Busy, ...). Omitted from the wire when every
	// tally is zero, so nodes with no faults advertise the same bytes they
	// did before the taxonomy existed.
	FaultCodes []FaultCode `json:"fault_codes,omitempty"`

	// Ops holds per-operation latency digests, sorted by name.
	Ops []OpStat `json:"ops,omitempty"`
}

// FaultCode is one per-wire-code fault tally inside a Stats snapshot.
type FaultCode struct {
	Code  string `json:"code"`
	Count int64  `json:"count"`
}

// FaultCodes converts the error core's counter snapshot into the admin
// wire type.
func FaultCodes(cc []fault.CodeCount) []FaultCode {
	if len(cc) == 0 {
		return nil
	}
	out := make([]FaultCode, len(cc))
	for i, c := range cc {
		out[i] = FaultCode{Code: c.Code, Count: c.Count}
	}
	return out
}

// Source supplies the live snapshot behind GetStats. Both core.Server and
// gateway.Gateway implement it.
type Source interface {
	AdminStats() Stats
}

// State is the mutable routing state SetState controls: the advertised
// weight and drain flag. The zero value is invalid; use NewState. Safe for
// concurrent use.
type State struct {
	mu       sync.Mutex
	weight   int64
	draining bool
}

// NewState returns a state with the given starting weight (values < 1 are
// raised to 1) and draining off.
func NewState(weight int64) *State {
	if weight < 1 {
		weight = 1
	}
	return &State{weight: weight}
}

// Snapshot returns the current weight and drain flag.
func (st *State) Snapshot() (weight int64, draining bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.weight, st.draining
}

// SetWeight updates the advertised weight; values < 1 are rejected.
func (st *State) SetWeight(w int64) error {
	if w < 1 {
		return fmt.Errorf("admin: weight must be a positive integer, got %d", w)
	}
	st.mu.Lock()
	st.weight = w
	st.mu.Unlock()
	return nil
}

// SetDraining flips the drain flag.
func (st *State) SetDraining(d bool) {
	st.mu.Lock()
	st.draining = d
	st.mu.Unlock()
}

// Deploy registers the Admin service on a container: GetStats (marked
// idempotent — it is a pure read, so gateways may freely retry or fail it
// over) and SetState, which mutates st. The source supplies the snapshot;
// its Weight/Draining fields are expected to come from the same st.
func Deploy(c *registry.Container, src Source, st *State) error {
	svc, err := c.AddService(ServiceName, Namespace,
		"cluster control plane: load stats and routing state (docs/CONTROL_PLANE.md)")
	if err != nil {
		return err
	}
	if err := svc.Register(OpGetStats, func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return StatsFields(src.AdminStats()), nil
	}, "read-only snapshot of load state and counters"); err != nil {
		return err
	}
	if err := svc.Register(OpSetState, func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		for _, p := range params {
			switch p.Name {
			case "weight":
				w, ok := p.Value.(int64)
				if !ok {
					return nil, soap.ClientFault("SetState: weight must be an integer")
				}
				if err := st.SetWeight(w); err != nil {
					return nil, soap.ClientFault("SetState: weight must be a positive integer, got %d", w)
				}
			case "drain":
				d, ok := p.Value.(bool)
				if !ok {
					return nil, soap.ClientFault("SetState: drain must be a boolean")
				}
				st.SetDraining(d)
			}
		}
		w, d := st.Snapshot()
		return []soapenc.Field{soapenc.F("weight", w), soapenc.F("draining", d)}, nil
	}, "set the advertised routing weight and drain flag"); err != nil {
		return err
	}
	svc.MarkIdempotent(OpGetStats)
	return nil
}
