package admin

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// statsSource is a fixed-snapshot Source for tests.
type statsSource struct{ s Stats }

func (src *statsSource) AdminStats() Stats { return src.s }

func sampleStats() Stats {
	return Stats{
		Role:       "server",
		Weight:     4,
		Draining:   false,
		Workers:    32,
		Busy:       7,
		Idle:       25,
		QueueDepth: 3,
		QueueCap:   1024,
		Inflight:   10,
		Envelopes:  12345,
		Requests:   23456,
		Packed:     11111,
		Faults:     17,
		ItemFaults: 42,
		FaultCodes: []FaultCode{
			{Code: "Server.Timeout", Count: 12},
			{Code: "Server.Busy", Count: 5},
		},
		Ops: []OpStat{
			{Op: "Echo.echo", Count: 9000, MeanUs: 850, P50Us: 800, P90Us: 1200, P99Us: 2500},
			{Op: "Weather.get", Count: 120, MeanUs: 1500, P50Us: 1400, P90Us: 2100, P99Us: 4200},
		},
	}
}

// encodeStatsResponse renders the response envelope the way the server
// dispatcher would, so ParseStatsResponse sees realistic bytes.
func encodeStatsResponse(t *testing.T, v soap.Version, s Stats) []byte {
	t.Helper()
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: OpGetStats + "Response"})
	el.DeclareNamespace("m", Namespace)
	if err := soapenc.EncodeParams(el, StatsFields(s)); err != nil {
		t.Fatalf("encode stats: %v", err)
	}
	env := soap.New()
	env.Version = v
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatalf("encode envelope: %v", err)
	}
	return buf.Bytes()
}

func TestStatsRoundTrip(t *testing.T) {
	want := sampleStats()
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		body := encodeStatsResponse(t, v, want)
		got, err := ParseStatsResponse(body)
		if err != nil {
			t.Fatalf("%v: ParseStatsResponse: %v", v, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: stats = %+v, want %+v", v, got, want)
		}
	}
}

func TestParseStatsResponseRejects(t *testing.T) {
	bad := func(name string, mutate func(*Stats)) []byte {
		s := sampleStats()
		mutate(&s)
		return encodeStatsResponse(t, soap.V11, s)
	}
	cases := map[string][]byte{
		"not xml":          []byte("not xml at all"),
		"not an envelope":  []byte(`<?xml version="1.0"?><root/>`),
		"zero weight":      bad("zero weight", func(s *Stats) { s.Weight = 0 }),
		"negative busy":    bad("negative busy", func(s *Stats) { s.Busy = -1 }),
		"busy over pool":   bad("busy over pool", func(s *Stats) { s.Busy = s.Workers + 1 }),
		"negative queue":   bad("negative queue", func(s *Stats) { s.QueueDepth = -5 }),
		"negative counter": bad("negative counter", func(s *Stats) { s.Envelopes = -1 }),
		"negative fault code count": bad("negative fault code count",
			func(s *Stats) { s.FaultCodes[0].Count = -3 }),
		"nameless fault code": bad("nameless fault code",
			func(s *Stats) { s.FaultCodes[0].Code = "" }),
	}
	for name, body := range cases {
		if _, err := ParseStatsResponse(body); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseStatsResponseFault(t *testing.T) {
	f := soap.ServerFault("stats unavailable")
	var buf bytes.Buffer
	if err := f.EnvelopeFor(soap.V11).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ParseStatsResponse(buf.Bytes())
	var got *soap.Fault
	if !errors.As(err, &got) {
		t.Fatalf("error %v (%T), want *soap.Fault", err, err)
	}
	if got.String != "stats unavailable" {
		t.Errorf("fault string = %q", got.String)
	}
}

func TestStatsFromFieldsIgnoresUnknown(t *testing.T) {
	fields := append(StatsFields(sampleStats()), soapenc.F("future_field", "whatever"))
	if _, err := StatsFromFields(fields); err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
}

func deployTest(t *testing.T) (*registry.Container, *statsSource, *State) {
	t.Helper()
	c := registry.NewContainer()
	src := &statsSource{s: sampleStats()}
	st := NewState(4)
	if err := Deploy(c, src, st); err != nil {
		t.Fatal(err)
	}
	return c, src, st
}

func TestDeployGetStats(t *testing.T) {
	c, _, _ := deployTest(t)
	if !c.Idempotent(ServiceName, OpGetStats) {
		t.Error("GetStats not marked idempotent")
	}
	if c.Idempotent(ServiceName, OpSetState) {
		t.Error("SetState must not be idempotent")
	}
	op, fault := c.Lookup(ServiceName, OpGetStats)
	if fault != nil {
		t.Fatal(fault)
	}
	out, fault := registry.Invoke(op, &registry.Context{}, nil)
	if fault != nil {
		t.Fatal(fault)
	}
	got, err := StatsFromFields(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Role != "server" || got.Workers != 32 || len(got.Ops) != 2 {
		t.Errorf("unexpected snapshot %+v", got)
	}
}

func TestDeploySetState(t *testing.T) {
	c, _, st := deployTest(t)
	op, fault := c.Lookup(ServiceName, OpSetState)
	if fault != nil {
		t.Fatal(fault)
	}
	out, fault := registry.Invoke(op, &registry.Context{}, []soapenc.Field{
		soapenc.F("weight", int64(9)), soapenc.F("drain", true),
	})
	if fault != nil {
		t.Fatal(fault)
	}
	res := soapenc.NewStruct(out...)
	if res.GetInt("weight") != 9 || !res.GetBool("draining") {
		t.Errorf("response = %+v", out)
	}
	if w, d := st.Snapshot(); w != 9 || !d {
		t.Errorf("state = (%d, %v), want (9, true)", w, d)
	}

	// Partial update: only resume, weight untouched.
	out, fault = registry.Invoke(op, &registry.Context{}, []soapenc.Field{soapenc.F("drain", false)})
	if fault != nil {
		t.Fatal(fault)
	}
	res = soapenc.NewStruct(out...)
	if res.GetInt("weight") != 9 || res.GetBool("draining") {
		t.Errorf("partial response = %+v", out)
	}

	// Invalid weight is a Client fault and leaves state untouched.
	_, fault = registry.Invoke(op, &registry.Context{}, []soapenc.Field{soapenc.F("weight", int64(0))})
	if fault == nil || fault.Code != soap.FaultClient {
		t.Fatalf("weight=0 fault = %+v, want Client", fault)
	}
	_, fault = registry.Invoke(op, &registry.Context{}, []soapenc.Field{soapenc.F("weight", "heavy")})
	if fault == nil || fault.Code != soap.FaultClient {
		t.Fatalf("weight=string fault = %+v, want Client", fault)
	}
	if w, _ := st.Snapshot(); w != 9 {
		t.Errorf("weight mutated to %d by rejected updates", w)
	}
}

func TestRequestBuilders(t *testing.T) {
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		env, err := NewGetStatsRequest(v)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := env.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		re, err := soap.Decode(&buf)
		if err != nil {
			t.Fatalf("%v: round-trip: %v", v, err)
		}
		if re.Body[0].Name.Local != OpGetStats || re.Body[0].Namespace() != Namespace {
			t.Errorf("%v: body entry {%s}%s", v, re.Body[0].Namespace(), re.Body[0].Name.Local)
		}

		drain := true
		env, err = NewSetStateRequest(v, 3, &drain)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := env.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		re, err = soap.Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		params, err := soapenc.DecodeParams(re.Body[0])
		if err != nil {
			t.Fatal(err)
		}
		ps := soapenc.NewStruct(params...)
		if ps.GetInt("weight") != 3 || !ps.GetBool("drain") {
			t.Errorf("%v: SetState params = %+v", v, params)
		}
	}
}
