package admin

import (
	"testing"

	"repro/internal/soap"
)

// FuzzParseStats hammers the admin-stats response parser with malformed
// input. The membership manager and the exporter both feed it bytes
// scraped from remote processes, so it must never panic, and whatever
// snapshot it does accept must satisfy the documented invariants (positive
// weight, non-negative counts, busy <= workers).
func FuzzParseStats(f *testing.F) {
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		s := Stats{
			Role: "server", Weight: 4, Workers: 32, Busy: 7, Idle: 25,
			QueueDepth: 3, QueueCap: 1024, Inflight: 10,
			Envelopes: 12345, Requests: 23456, Packed: 11111,
			Faults: 17, ItemFaults: 42,
			Ops: []OpStat{{Op: "Echo.echo", Count: 9000, MeanUs: 850, P50Us: 800, P90Us: 1200, P99Us: 2500}},
		}
		env := soap.New()
		env.Version = v
		el, err := requestElement(OpGetStats+"Response", StatsFields(s))
		if err != nil {
			f.Fatal(err)
		}
		env.Body = append(env.Body, el)
		var buf []byte
		w := &appendWriter{buf: &buf}
		if err := env.Encode(w); err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte(`<?xml version="1.0"?><root/>`))
	f.Add([]byte(`not xml`))
	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := ParseStatsResponse(body)
		if err != nil {
			return
		}
		if s.Weight < 1 {
			t.Fatalf("accepted snapshot with weight %d", s.Weight)
		}
		if s.Busy < 0 || s.Workers < 0 || s.Busy > s.Workers {
			t.Fatalf("accepted snapshot with busy=%d workers=%d", s.Busy, s.Workers)
		}
		if s.QueueDepth < 0 || s.Inflight < 0 || s.Envelopes < 0 || s.Faults < 0 {
			t.Fatalf("accepted snapshot with negative counters: %+v", s)
		}
		for _, o := range s.Ops {
			if o.Op == "" || o.Count < 0 {
				t.Fatalf("accepted bad op stat %+v", o)
			}
		}
	})
}

// appendWriter adapts a byte-slice pointer to io.Writer for seed encoding.
type appendWriter struct{ buf *[]byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
