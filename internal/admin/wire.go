package admin

import (
	"bytes"
	"fmt"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// StatsFields flattens a snapshot into the named RPC result parameters of
// GetStatsResponse. The field order here is the wire order and is pinned by
// the admin goldens in internal/core/testdata — append new fields at the
// end (before ops) rather than reordering.
func StatsFields(s Stats) []soapenc.Field {
	ops := make(soapenc.Array, 0, len(s.Ops))
	for _, o := range s.Ops {
		ops = append(ops, soapenc.NewStruct(
			soapenc.F("op", o.Op),
			soapenc.F("count", o.Count),
			soapenc.F("mean_us", o.MeanUs),
			soapenc.F("p50_us", o.P50Us),
			soapenc.F("p90_us", o.P90Us),
			soapenc.F("p99_us", o.P99Us),
		))
	}
	fields := []soapenc.Field{
		soapenc.F("role", s.Role),
		soapenc.F("weight", s.Weight),
		soapenc.F("draining", s.Draining),
		soapenc.F("workers", s.Workers),
		soapenc.F("busy", s.Busy),
		soapenc.F("idle", s.Idle),
		soapenc.F("queue_depth", s.QueueDepth),
		soapenc.F("queue_cap", s.QueueCap),
		soapenc.F("inflight", s.Inflight),
		soapenc.F("envelopes", s.Envelopes),
		soapenc.F("requests", s.Requests),
		soapenc.F("packed", s.Packed),
		soapenc.F("faults", s.Faults),
		soapenc.F("item_faults", s.ItemFaults),
		soapenc.F("diff_hits", s.DiffHits),
		soapenc.F("diff_misses", s.DiffMisses),
	}
	// fault_codes is omitted when every tally is zero so fault-free nodes
	// advertise exactly the pre-taxonomy bytes (admin goldens stay pinned).
	if len(s.FaultCodes) > 0 {
		codes := make(soapenc.Array, 0, len(s.FaultCodes))
		for _, c := range s.FaultCodes {
			codes = append(codes, soapenc.NewStruct(
				soapenc.F("code", c.Code),
				soapenc.F("count", c.Count),
			))
		}
		fields = append(fields, soapenc.F("fault_codes", codes))
	}
	return append(fields, soapenc.F("ops", ops))
}

// statInt reads one integer stats field, rejecting wrong types and negative
// values — a scraped snapshot with a negative worker count is garbage, and
// the membership manager must not fold it into routing weights.
func statInt(name string, v soapenc.Value, dst *int64) error {
	n, ok := v.(int64)
	if !ok {
		return fmt.Errorf("admin: field %q is %T, want integer", name, v)
	}
	if n < 0 {
		return fmt.Errorf("admin: field %q is negative (%d)", name, n)
	}
	*dst = n
	return nil
}

// StatsFromFields rebuilds a snapshot from decoded GetStatsResponse
// parameters. Unknown fields are ignored (newer nodes may advertise more);
// known fields must carry the right type, counts must be non-negative, and
// weight must be positive.
func StatsFromFields(params []soapenc.Field) (Stats, error) {
	var s Stats
	for _, p := range params {
		switch p.Name {
		case "role":
			r, ok := p.Value.(string)
			if !ok {
				return Stats{}, fmt.Errorf("admin: field \"role\" is %T, want string", p.Value)
			}
			s.Role = r
		case "draining":
			d, ok := p.Value.(bool)
			if !ok {
				return Stats{}, fmt.Errorf("admin: field \"draining\" is %T, want boolean", p.Value)
			}
			s.Draining = d
		case "weight":
			if err := statInt(p.Name, p.Value, &s.Weight); err != nil {
				return Stats{}, err
			}
		case "workers":
			if err := statInt(p.Name, p.Value, &s.Workers); err != nil {
				return Stats{}, err
			}
		case "busy":
			if err := statInt(p.Name, p.Value, &s.Busy); err != nil {
				return Stats{}, err
			}
		case "idle":
			if err := statInt(p.Name, p.Value, &s.Idle); err != nil {
				return Stats{}, err
			}
		case "queue_depth":
			if err := statInt(p.Name, p.Value, &s.QueueDepth); err != nil {
				return Stats{}, err
			}
		case "queue_cap":
			if err := statInt(p.Name, p.Value, &s.QueueCap); err != nil {
				return Stats{}, err
			}
		case "inflight":
			if err := statInt(p.Name, p.Value, &s.Inflight); err != nil {
				return Stats{}, err
			}
		case "envelopes":
			if err := statInt(p.Name, p.Value, &s.Envelopes); err != nil {
				return Stats{}, err
			}
		case "requests":
			if err := statInt(p.Name, p.Value, &s.Requests); err != nil {
				return Stats{}, err
			}
		case "packed":
			if err := statInt(p.Name, p.Value, &s.Packed); err != nil {
				return Stats{}, err
			}
		case "faults":
			if err := statInt(p.Name, p.Value, &s.Faults); err != nil {
				return Stats{}, err
			}
		case "item_faults":
			if err := statInt(p.Name, p.Value, &s.ItemFaults); err != nil {
				return Stats{}, err
			}
		case "diff_hits":
			if err := statInt(p.Name, p.Value, &s.DiffHits); err != nil {
				return Stats{}, err
			}
		case "diff_misses":
			if err := statInt(p.Name, p.Value, &s.DiffMisses); err != nil {
				return Stats{}, err
			}
		case "fault_codes":
			arr, ok := p.Value.(soapenc.Array)
			if !ok {
				return Stats{}, fmt.Errorf("admin: field \"fault_codes\" is %T, want array", p.Value)
			}
			s.FaultCodes = make([]FaultCode, 0, len(arr))
			for i, item := range arr {
				st, ok := item.(*soapenc.Struct)
				if !ok || st == nil {
					return Stats{}, fmt.Errorf("admin: fault_codes[%d] is %T, want struct", i, item)
				}
				fc := FaultCode{Code: st.GetString("code")}
				if fc.Code == "" {
					return Stats{}, fmt.Errorf("admin: fault_codes[%d] has no code", i)
				}
				for _, f := range st.Fields {
					if f.Name != "count" {
						continue
					}
					if err := statInt("fault_codes.count", f.Value, &fc.Count); err != nil {
						return Stats{}, err
					}
				}
				s.FaultCodes = append(s.FaultCodes, fc)
			}
		case "ops":
			arr, ok := p.Value.(soapenc.Array)
			if !ok {
				return Stats{}, fmt.Errorf("admin: field \"ops\" is %T, want array", p.Value)
			}
			s.Ops = make([]OpStat, 0, len(arr))
			for i, item := range arr {
				st, ok := item.(*soapenc.Struct)
				if !ok || st == nil {
					return Stats{}, fmt.Errorf("admin: ops[%d] is %T, want struct", i, item)
				}
				o := OpStat{Op: st.GetString("op")}
				if o.Op == "" {
					return Stats{}, fmt.Errorf("admin: ops[%d] has no op name", i)
				}
				for _, f := range st.Fields {
					var dst *int64
					switch f.Name {
					case "count":
						dst = &o.Count
					case "mean_us":
						dst = &o.MeanUs
					case "p50_us":
						dst = &o.P50Us
					case "p90_us":
						dst = &o.P90Us
					case "p99_us":
						dst = &o.P99Us
					default:
						continue
					}
					if err := statInt("ops."+f.Name, f.Value, dst); err != nil {
						return Stats{}, err
					}
				}
				s.Ops = append(s.Ops, o)
			}
		}
	}
	if s.Weight < 1 {
		return Stats{}, fmt.Errorf("admin: snapshot weight %d is not positive", s.Weight)
	}
	if s.Busy > s.Workers {
		return Stats{}, fmt.Errorf("admin: snapshot busy %d exceeds workers %d", s.Busy, s.Workers)
	}
	return s, nil
}

// requestElement builds an Admin RPC request element in the service
// namespace, following the same prefix convention as the client stack.
func requestElement(op string, params []soapenc.Field) (*xmldom.Element, error) {
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", Namespace)
	if err := soapenc.EncodeParams(el, params); err != nil {
		return nil, err
	}
	return el, nil
}

// NewGetStatsRequest builds a single-call GetStats request envelope.
func NewGetStatsRequest(v soap.Version) (*soap.Envelope, error) {
	el, err := requestElement(OpGetStats, nil)
	if err != nil {
		return nil, err
	}
	env := soap.New()
	env.Version = v
	env.AddBody(el)
	return env, nil
}

// NewSetStateRequest builds a SetState request envelope. weight <= 0 omits
// the weight parameter (leave unchanged); drain nil omits the drain
// parameter likewise.
func NewSetStateRequest(v soap.Version, weight int64, drain *bool) (*soap.Envelope, error) {
	var params []soapenc.Field
	if weight > 0 {
		params = append(params, soapenc.F("weight", weight))
	}
	if drain != nil {
		params = append(params, soapenc.F("drain", *drain))
	}
	el, err := requestElement(OpSetState, params)
	if err != nil {
		return nil, err
	}
	env := soap.New()
	env.Version = v
	env.AddBody(el)
	return env, nil
}

// ParseStatsResponse decodes the body of a GetStats exchange — the raw HTTP
// response bytes of a single-call invocation — into a snapshot. A fault
// envelope comes back as the fault itself (*soap.Fault as error), so
// callers can distinguish "the node said no" from "the bytes are garbage".
// This is the parser the membership manager and cmd/spiexporter share, and
// the surface FuzzParseStats hardens: it must reject malformed input with
// an error, never a panic or a silently-wrong snapshot.
func ParseStatsResponse(body []byte) (Stats, error) {
	env, err := soap.Decode(bytes.NewReader(body))
	if err != nil {
		return Stats{}, err
	}
	if f := env.Fault(); f != nil {
		return Stats{}, f
	}
	if len(env.Body) != 1 {
		return Stats{}, fmt.Errorf("admin: response has %d body entries, want 1", len(env.Body))
	}
	el := env.Body[0]
	if el.Name.Local != OpGetStats+"Response" {
		return Stats{}, fmt.Errorf("admin: unexpected response element %q", el.Name.Local)
	}
	params, err := soapenc.DecodeParams(el)
	if err != nil {
		return Stats{}, err
	}
	return StatsFromFields(params)
}
