package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/soapenc"
)

// AblationRow is one measured configuration of an ablation study.
type AblationRow struct {
	Name   string
	Millis float64
	Note   string
}

// AblationResult is one completed ablation table.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// measure runs fn warmup+reps times and returns the mean milliseconds.
func measure(warmup, reps int, fn func() error) (float64, error) {
	var rec metrics.Recorder
	for i := 0; i < warmup+reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if i >= warmup {
			rec.Record(time.Since(start))
		}
	}
	return metrics.Millis(rec.Snapshot().Mean), nil
}

// packedRun sends one packed batch of m echo calls with the given payload.
func packedRun(c *core.Client, m int, payload string) error {
	b := c.NewBatch()
	for i := 0; i < m; i++ {
		b.Add("Echo", "echo", soapenc.F("data", payload))
	}
	return b.Send()
}

// RunStagedVsCoupled contrasts the staged independent thread pool (§3.3)
// with the traditional coupled architecture (Figure 1) on a packed message
// whose operations each carry real work: the staged server executes them
// concurrently, the coupled one serially.
func RunStagedVsCoupled(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 16
	const work = 2 * time.Millisecond
	result := &AblationResult{Title: fmt.Sprintf(
		"Ablation: staged pool vs coupled thread (packed M=%d, %v work/op)", m, work)}

	for _, coupled := range []bool{false, true} {
		env, err := NewEnv(EnvOptions{Coupled: coupled, WorkTime: work})
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error { return packedRun(env.Client, m, "x") })
		env.Close()
		if err != nil {
			return nil, err
		}
		name, note := "staged (two independent pools)", "operations run concurrently on the app stage"
		if coupled {
			name, note = "coupled (single thread, Figure 1)", "operations run serially on the protocol thread"
		}
		result.Rows = append(result.Rows, AblationRow{Name: name, Millis: ms, Note: note})
	}
	return result, nil
}

// RunConnectionReuse isolates the TCP-setup component of the per-message
// overhead: the serial baseline with and without keep-alive, versus
// packing, at M=64 small messages.
func RunConnectionReuse(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 64
	payload := "aaaaaaaaaa"
	result := &AblationResult{Title: fmt.Sprintf(
		"Ablation: connection reuse (serial M=%d, 10 B payloads)", m)}

	type variant struct {
		name      string
		keepAlive bool
		packed    bool
		note      string
	}
	for _, v := range []variant{
		{"serial, new connection per message", false, false, "the paper's No Optimization baseline"},
		{"serial, keep-alive connection", true, false, "removes TCP setup, keeps per-message headers"},
		{"packed (Our Approach)", false, true, "one connection, one set of headers"},
	} {
		env, err := NewEnv(EnvOptions{KeepAlive: v.keepAlive})
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error {
			if v.packed {
				return packedRun(env.Client, m, payload)
			}
			for i := 0; i < m; i++ {
				if _, err := env.Client.Call("Echo", "echo", soapenc.F("data", payload)); err != nil {
					return err
				}
			}
			return nil
		})
		env.Close()
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, AblationRow{Name: v.name, Millis: ms, Note: v.note})
	}
	return result, nil
}

// RunPoolWidth sweeps the application-stage width for a packed message of
// working operations, showing where server-side concurrency saturates.
func RunPoolWidth(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 32
	const work = 2 * time.Millisecond
	result := &AblationResult{Title: fmt.Sprintf(
		"Ablation: application-stage width (packed M=%d, %v work/op)", m, work)}

	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		env, err := NewEnv(EnvOptions{AppWorkers: workers, WorkTime: work})
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error { return packedRun(env.Client, m, "x") })
		env.Close()
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, AblationRow{
			Name:   fmt.Sprintf("%d app workers", workers),
			Millis: ms,
		})
	}
	return result, nil
}

// RunAdaptiveStage contrasts the fixed application pool with the
// SEDA-controlled adaptive pool (the resource-controller mechanism of the
// paper's reference [5]) under a bursty packed workload: the adaptive pool
// should reach comparable latency while provisioning threads on demand.
func RunAdaptiveStage(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 32
	const work = 2 * time.Millisecond
	result := &AblationResult{Title: fmt.Sprintf(
		"Ablation: SEDA adaptive pool vs fixed pool (packed M=%d bursts, %v work/op)", m, work)}

	for _, adaptive := range []bool{false, true} {
		env, err := NewEnv(EnvOptions{AppWorkers: 32, AdaptiveAppStage: adaptive, WorkTime: work})
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error {
			// A burst, a pause, a burst — the shape SEDA's controller is
			// built for.
			if err := packedRun(env.Client, m, "x"); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond)
			return packedRun(env.Client, m, "x")
		})
		workers := env.Server.Stats().AppStage.Workers
		env.Close()
		if err != nil {
			return nil, err
		}
		name, note := "fixed pool (32 workers always)", ""
		if adaptive {
			name = "adaptive pool (2..32 workers)"
			note = fmt.Sprintf("%d workers live at end of run", workers)
		}
		result.Rows = append(result.Rows, AblationRow{Name: name, Millis: ms, Note: note})
	}
	return result, nil
}

// RunAutoBatch compares explicit packing against the automatic batcher
// (the paper's future-work interface) and against plain concurrent calls,
// for M concurrent client goroutines.
func RunAutoBatch(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 32
	payload := "aaaaaaaaaa"
	result := &AblationResult{Title: fmt.Sprintf(
		"Ablation: automatic batching (%d concurrent client calls, 10 B payloads)", m)}

	// Plain concurrent calls (one message each).
	env, err := NewEnv(EnvOptions{})
	if err != nil {
		return nil, err
	}
	ms, err := measure(1, reps, func() error {
		calls := make([]*core.Call, m)
		for i := range calls {
			calls[i] = env.Client.Go("Echo", "echo", soapenc.F("data", payload))
		}
		for _, c := range calls {
			if _, err := c.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	env.Close()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name: "Multiple Threads (no batching)", Millis: ms,
		Note: "M messages, M connections"})

	// Explicit batch.
	env, err = NewEnv(EnvOptions{})
	if err != nil {
		return nil, err
	}
	ms, err = measure(1, reps, func() error { return packedRun(env.Client, m, payload) })
	env.Close()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name: "explicit Batch (pack interface)", Millis: ms,
		Note: "caller groups the calls"})

	// Auto batcher: concurrent unmodified callers coalesced by the window.
	env, err = NewEnv(EnvOptions{})
	if err != nil {
		return nil, err
	}
	ab := core.NewAutoBatcher(env.Client, 500*time.Microsecond, m)
	ms, err = measure(1, reps, func() error {
		var wg sync.WaitGroup
		errs := make([]error, m)
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = ab.Call("Echo", "echo", soapenc.F("data", payload))
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	})
	envelopes := env.Client.Stats().Envelopes
	ab.Close()
	env.Close()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name: "AutoBatcher (transparent packing)", Millis: ms,
		Note: fmt.Sprintf("window 500µs; %d envelopes total across runs", envelopes)})
	return result, nil
}
