package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// skipTiming skips shape tests in modes that distort timing ratios: the
// race detector slows CPU-bound code by an order of magnitude, shifting
// where the CPU/network balance sits, and -short skips sweeps entirely.
func skipTiming(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("timing-shape test in -short mode")
	}
	if raceEnabled {
		t.Skip("timing-shape test under the race detector")
	}
}

// quickSweep shrinks a figure config so tests stay fast while preserving
// the qualitative shape.
func quickSweep(cfg LatencyConfig, counts []int) LatencyConfig {
	cfg.MessageCounts = counts
	cfg.Repetitions = 2
	cfg.Warmup = 1
	return cfg
}

func TestFigure5Shape(t *testing.T) {
	skipTiming(t)
	cfg := quickSweep(Figure5(), []int{1, 32})
	cfg.Repetitions = 6
	r, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, p32 := r.Points[0], r.Points[1]

	// At M=1 packing costs extra: Our Approach must not beat No
	// Optimization ("the time consumption of Our Approach is more than
	// that of No Optimization"). The overhead is small at this scale, so
	// the assertion allows a noise band rather than a strict ordering.
	if p1.Millis[OurApproach] < p1.Millis[NoOptimization]*0.8 {
		t.Errorf("M=1: ours %.3fms vs noopt %.3fms — packing should not win at M=1",
			p1.Millis[OurApproach], p1.Millis[NoOptimization])
	}
	// At M=32 with 10-byte payloads packing must win clearly.
	if s := p32.Speedup(); s < 3 {
		t.Errorf("M=32 speedup = %.2fx, want >= 3x for small payloads", s)
	}
	// And beat the multi-threaded baseline too.
	if p32.Millis[OurApproach] >= p32.Millis[MultipleThreads] {
		t.Errorf("M=32: ours %.3fms vs threads %.3fms — packing should beat threads at 10 B",
			p32.Millis[OurApproach], p32.Millis[MultipleThreads])
	}
}

func TestFigure7Inversion(t *testing.T) {
	skipTiming(t)
	// At 100 KB payloads the packed approach loses its advantage
	// ("Our Approach becomes the most time consuming if the services
	// request data is huge").
	cfg := quickSweep(Figure7(), []int{8})
	cfg.Repetitions = 2
	r, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Points[0]
	if s := p.Speedup(); s > 1.5 {
		t.Errorf("100KB M=8 speedup = %.2fx; huge payloads should erase the packing win", s)
	}
	// Multiple threads should be at least as good as packing here
	// (full-duplex overlap vs fully serialized pack/transfer/unpack).
	if p.Millis[OurApproach] < p.Millis[MultipleThreads]*0.8 {
		t.Errorf("100KB: ours %.1fms clearly beats threads %.1fms, unlike Figure 7",
			p.Millis[OurApproach], p.Millis[MultipleThreads])
	}
}

func TestWSSecurityAmplifiesPacking(t *testing.T) {
	skipTiming(t)
	const m = 128
	plainCfg := quickSweep(Figure5(), []int{m})
	plainCfg.Repetitions = 5
	plain, err := RunLatency(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	securedCfg := quickSweep(WSSecuritySweep(), []int{m})
	securedCfg.Repetitions = 5
	secured, err := RunLatency(securedCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim is that per-message header overhead is amortized
	// by packing. Test the amortization directly with absolute medians
	// (speedup ratios are too noisy on shared boxes): the security cost
	// added to 128 serial messages must far exceed the cost added to one
	// packed message.
	ms := func(r *LatencyResult, a Approach) float64 {
		return metrics.Millis(r.Points[0].Samples[a].P50)
	}
	serialDelta := ms(secured, NoOptimization) - ms(plain, NoOptimization)
	packedDelta := ms(secured, OurApproach) - ms(plain, OurApproach)
	if serialDelta < 3 {
		// The expected signal is ~10-12 ms at M=128; if the measured delta
		// is inside the run-to-run noise band, the comparison is
		// meaningless this run.
		t.Skipf("noise: serial security delta %.3fms below the noise floor", serialDelta)
	}
	if packedDelta >= serialDelta/2 {
		t.Errorf("WSS cost: packed +%.3fms vs serial +%.3fms for M=%d — packing should amortize the header overhead",
			packedDelta, serialDelta, m)
	}
}

func TestWANAmplifiesPacking(t *testing.T) {
	skipTiming(t)
	cfg := WANSweep()
	cfg.MessageCounts = []int{8}
	cfg.Repetitions = 2
	cfg.Warmup = 1
	r, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On a 40 ms RTT link, 8 serial round trips vs 1 is ~8x minimum.
	if s := r.Points[0].Speedup(); s < 5 {
		t.Errorf("WAN M=8 speedup = %.2fx, want >= 5x", s)
	}
}

func TestTravelExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunTravel(TravelConfig{Repetitions: 3, WorkTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.UnoptimizedMessages != 11 || r.OptimizedMessages != 7 {
		t.Errorf("messages = %d/%d, want 11/7", r.UnoptimizedMessages, r.OptimizedMessages)
	}
	// The paper reports ~26%; we accept a generous band around the shape
	// (any solid improvement with the same semantics).
	if r.ImprovementPct < 10 {
		t.Errorf("improvement = %.1f%%, want >= 10%%", r.ImprovementPct)
	}
	if r.ImprovementPct > 70 {
		t.Errorf("improvement = %.1f%% is implausibly high", r.ImprovementPct)
	}
}

func TestStagedVsCoupledAblation(t *testing.T) {
	skipTiming(t)
	r, err := RunStagedVsCoupled(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	staged, coupled := r.Rows[0].Millis, r.Rows[1].Millis
	if staged >= coupled {
		t.Errorf("staged %.2fms should beat coupled %.2fms for working packed ops", staged, coupled)
	}
}

func TestConnectionReuseAblation(t *testing.T) {
	skipTiming(t)
	r, err := RunConnectionReuse(2)
	if err != nil {
		t.Fatal(err)
	}
	perConn, keepAlive, packed := r.Rows[0].Millis, r.Rows[1].Millis, r.Rows[2].Millis
	if keepAlive >= perConn {
		t.Errorf("keep-alive %.2fms should beat per-connection %.2fms", keepAlive, perConn)
	}
	if packed >= keepAlive {
		t.Errorf("packed %.2fms should beat keep-alive serial %.2fms", packed, keepAlive)
	}
}

func TestPoolWidthAblation(t *testing.T) {
	skipTiming(t)
	r, err := RunPoolWidth(2)
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Rows[0].Millis, r.Rows[len(r.Rows)-1].Millis
	if last >= first {
		t.Errorf("32 workers (%.2fms) should beat 1 worker (%.2fms) on working packed ops", last, first)
	}
}

func TestRelatedWorkExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunRelatedWork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	noOpt, packed := r.Rows[0].Millis, r.Rows[4].Millis
	// The paper's positioning: CPU-side caches cannot close the gap to
	// packing on many-small-messages workloads, because the overhead is
	// per-message network cost. Both caches combined must still be much
	// slower than packing.
	bothCaches := r.Rows[3].Millis
	if bothCaches < packed*2 {
		t.Errorf("caches (%.2fms) nearly match packing (%.2fms); they should not on M=64 x 10 B", bothCaches, packed)
	}
	if packed >= noOpt {
		t.Errorf("packing (%.2fms) did not beat the baseline (%.2fms)", packed, noOpt)
	}
}

func TestThroughputExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunThroughput(ThroughputConfig{
		CallerCounts: []int{8, 128},
		Duration:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	high := r.Points[1]
	// §3.2: packing improves whole-application throughput — the win must
	// show at high offered concurrency, where per-message overhead
	// congests the link.
	if high.Packed.RequestsPS <= high.PerCall.RequestsPS {
		t.Errorf("at %d callers, packed %.0f req/s should beat per-call %.0f req/s",
			high.Callers, high.Packed.RequestsPS, high.PerCall.RequestsPS)
	}
	// And it does so with far fewer messages.
	if high.Packed.Envelopes*4 > high.Packed.Requests {
		t.Errorf("auto-packing used %d envelopes for %d requests; expected heavy coalescing",
			high.Packed.Envelopes, high.Packed.Requests)
	}
	var b strings.Builder
	r.Print(&b)
	if !strings.Contains(b.String(), "req/s") {
		t.Errorf("print output: %s", b.String())
	}
}

func TestAutoBatchAblation(t *testing.T) {
	skipTiming(t)
	r, err := RunAutoBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestAdaptiveStageAblation(t *testing.T) {
	skipTiming(t)
	r, err := RunAdaptiveStage(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	fixed, adaptive := r.Rows[0].Millis, r.Rows[1].Millis
	// The adaptive pool must stay in the same performance class as the
	// fixed pool (SEDA's claim is equal service with demand-driven
	// provisioning, not a speedup).
	if adaptive > fixed*3 {
		t.Errorf("adaptive pool %.2fms far slower than fixed %.2fms", adaptive, fixed)
	}
}

func TestBreakdownExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunBreakdown(32, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	serial, packed := r.Rows[0], r.Rows[1]
	if serial.Envelopes != 32 || packed.Envelopes != 1 {
		t.Errorf("envelopes = %d / %d, want 32 / 1", serial.Envelopes, packed.Envelopes)
	}
	// Robust structural claims only (totals flutter with scheduler noise
	// at these microsecond scales; spibench reports the measured values):
	// the one packed message costs more to parse than one tiny message...
	if packed.ParseMs <= serial.ParseMs {
		t.Errorf("per-envelope parse: packed %.4fms <= serial %.4fms", packed.ParseMs, serial.ParseMs)
	}
	// ...but nowhere near 32x more (sub-linear in the number of packed
	// requests, which is what makes packing pay off CPU-wise too).
	if packed.TotalParseMs > serial.TotalParseMs*3 {
		t.Errorf("packed total parse %.3fms far exceeds serial %.3fms", packed.TotalParseMs, serial.TotalParseMs)
	}
	var b strings.Builder
	r.Print(&b)
	if !strings.Contains(b.String(), "parse (ms)") {
		t.Errorf("print output:\n%s", b.String())
	}
}

func TestMicroSuite(t *testing.T) {
	r, err := RunMicro(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Bytes <= 0 {
			t.Errorf("%s: zero envelope size", row.Shape)
		}
		if row.SerializeUs < 0 || row.ParseUs <= 0 {
			t.Errorf("%s: implausible timings %+v", row.Shape, row)
		}
	}
	var b strings.Builder
	r.Print(&b)
	if !strings.Contains(b.String(), "serialize") {
		t.Errorf("print:\n%s", b.String())
	}
}

func TestPrinters(t *testing.T) {
	r := &LatencyResult{Config: Figure5()}
	r.Config.fillDefaults()
	r.Points = []*LatencyPoint{{
		M: 1,
		Millis: map[Approach]float64{
			NoOptimization: 1.0, MultipleThreads: 0.9, OurApproach: 1.2,
		},
	}}
	var b strings.Builder
	PrintLatency(&b, r)
	out := b.String()
	for _, want := range []string{"Figure 5", "No Optimization", "Our Approach", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency table missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	PrintTravel(&b, &TravelResult{
		Config:              TravelConfig{Repetitions: 10},
		UnoptimizedMessages: 11, OptimizedMessages: 7, ImprovementPct: 26,
	})
	if !strings.Contains(b.String(), "improvement: 26.0%") {
		t.Errorf("travel table:\n%s", b.String())
	}

	b.Reset()
	PrintAblation(&b, &AblationResult{Title: "T", Rows: []AblationRow{{Name: "a", Millis: 1, Note: "n"}}})
	if !strings.Contains(b.String(), "T") || !strings.Contains(b.String(), "(n)") {
		t.Errorf("ablation table:\n%s", b.String())
	}
}

func TestApproachNames(t *testing.T) {
	if NoOptimization.String() != "No Optimization" ||
		MultipleThreads.String() != "Multiple Threads" ||
		OurApproach.String() != "Our Approach" {
		t.Error("approach legend names drifted from the paper")
	}
	if Approach(42).String() == "" {
		t.Error("unknown approach has empty name")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int]string{10: "10 bytes", 1000: "1K bytes", 100_000: "100K bytes", 2_000_000: "2M bytes"}
	for n, want := range cases {
		if got := humanBytes(n); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSpeedupEdgeCases(t *testing.T) {
	p := &LatencyPoint{Millis: map[Approach]float64{}}
	if p.Speedup() != 0 {
		t.Error("speedup without data should be 0")
	}
}
