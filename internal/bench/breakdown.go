package bench

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/soapenc"
	"repro/internal/trace"
)

// BreakdownRow decomposes where server protocol-thread time goes for one
// strategy: SOAP parsing, dispatch + operation execution, response
// encoding — per envelope and total across the workload. The numbers come
// from recorded spans (one per stage per envelope), not wall-clock deltas
// around the whole exchange.
type BreakdownRow struct {
	Name      string
	Envelopes int64
	// Per-envelope means.
	ParseMs    float64
	DispatchMs float64
	EncodeMs   float64
	// Totals across the whole workload (what the client actually waits
	// behind, aggregated).
	TotalParseMs    float64
	TotalDispatchMs float64
	TotalEncodeMs   float64
}

// BreakdownResult is the completed experiment.
type BreakdownResult struct {
	M            int
	PayloadBytes int
	Rows         []BreakdownRow
}

// RunBreakdown measures the server-side cost composition for the serial
// baseline versus the packed approach on the same workload (M requests of
// payloadBytes each). It substantiates the paper's §4.2 explanation: the
// packed message does not reduce the *application* work (M operations
// still execute) — it reduces the number of protocol traversals (M parses
// and M encodes collapse into one bigger parse and encode) and, off-server,
// the per-message network overhead.
func RunBreakdown(m, payloadBytes, reps int) (*BreakdownResult, error) {
	if m <= 0 {
		m = 64
	}
	if payloadBytes <= 0 {
		payloadBytes = 10
	}
	if reps <= 0 {
		reps = 5
	}
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = 'a'
	}
	arg := soapenc.F("data", string(payload))

	result := &BreakdownResult{M: m, PayloadBytes: payloadBytes}
	for _, packed := range []bool{false, true} {
		tr := trace.New(0)
		env, err := NewEnv(EnvOptions{Tracer: tr})
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < reps; rep++ {
			if packed {
				b := env.Client.NewBatch()
				for i := 0; i < m; i++ {
					b.Add("Echo", "echo", arg)
				}
				if err := b.Send(); err != nil {
					env.Close()
					return nil, err
				}
			} else {
				for i := 0; i < m; i++ {
					if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
						env.Close()
						return nil, err
					}
				}
			}
		}
		st := env.Server.Stats()
		stages := stageMap(tr.Stages())
		env.Close()

		name := "No Optimization"
		if packed {
			name = "Our Approach"
		}
		parse := stages[trace.StageProtocol].Service
		dispatch := stages[trace.StageDispatch].Service
		encode := stages[trace.StageAssemble].Service
		row := BreakdownRow{
			Name:       name,
			Envelopes:  st.Envelopes / int64(reps),
			ParseMs:    metrics.Millis(parse.Mean),
			DispatchMs: metrics.Millis(dispatch.Mean),
			EncodeMs:   metrics.Millis(encode.Mean),
		}
		row.TotalParseMs = metrics.Millis(parse.Sum) / float64(reps)
		row.TotalDispatchMs = metrics.Millis(dispatch.Sum) / float64(reps)
		row.TotalEncodeMs = metrics.Millis(encode.Sum) / float64(reps)
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// stageMap indexes stage summaries by name (missing stages yield zero
// summaries, which render as zeros rather than panicking).
func stageMap(stages []trace.StageSummary) map[string]trace.StageSummary {
	out := make(map[string]trace.StageSummary, len(stages))
	for _, s := range stages {
		out[s.Stage] = s
	}
	return out
}

// Print renders the breakdown table.
func (r *BreakdownResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Server-side cost breakdown — M=%d requests of %d B (per run of M, from spans)\n",
		r.M, r.PayloadBytes)
	fmt.Fprintf(w, "%-18s %10s %12s %14s %12s\n",
		"strategy", "envelopes", "parse (ms)", "dispatch (ms)", "encode (ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %10d %12.3f %14.3f %12.3f\n",
			row.Name, row.Envelopes, row.TotalParseMs, row.TotalDispatchMs, row.TotalEncodeMs)
	}
	fmt.Fprintln(w, "(dispatch includes operation execution; parse and encode are protocol-thread work)")
	fmt.Fprintln(w)
}
