package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// RunControlPlane measures the load-weighted routing policy on a skewed
// fleet: four backends, one of them with 4× the per-operation service
// time — the degraded-node regime static policies cannot see. Concurrent
// workers push packed batches for a fixed count per policy and every
// batch's completion time is sampled; the table reports mean and tail
// latency. Round-robin keeps feeding the slow backend its full share, so
// every batch that lands an entry there pays the 4× tax. Least-loaded
// reacts only to in-flight counts at the gateway. Weighted runs with the
// membership poller on: the gateway scrapes each backend's Admin service,
// sees the slow node's worker occupancy and queue depth, and shrinks its
// effective weight — so the tail, not just the mean, drops.
func RunControlPlane(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const backends = 4
	const workers = 4
	const m = 16 // entries per packed batch
	const concurrency = 6
	baseWork := 1 * time.Millisecond
	slowWork := 4 * baseWork
	batches := 40 * reps
	payload := strings.Repeat("a", 64)

	result := &AblationResult{Title: fmt.Sprintf(
		"Control plane: %d backends (one at %v vs %v ops), %d-entry packed batches × %d workers",
		backends, slowWork, baseWork, m, concurrency)}

	for _, row := range []struct {
		name       string
		policy     gateway.Policy
		membership gateway.MembershipConfig
	}{
		{"round-robin (load-blind)", gateway.RoundRobin, gateway.MembershipConfig{}},
		{"least-loaded (in-flight only)", gateway.LeastLoaded, gateway.MembershipConfig{}},
		// MinFactor 0.05 tells the poller a saturated backend may fall to
		// 5% of its nominal weight — the aggressive setting for fleets
		// where tail latency matters more than probing the stragglers.
		{"weighted + membership polling", gateway.Weighted, gateway.MembershipConfig{
			Enabled:      true,
			PollInterval: 10 * time.Millisecond,
			MinFactor:    0.05,
		}},
	} {
		env, err := NewGatewayEnv(GatewayOptions{
			Backends:   backends,
			Network:    netsim.Fast(),
			AppWorkers: workers,
			WorkTimes:  []time.Duration{baseWork, baseWork, baseWork, slowWork},
			Policy:     row.policy,
			// Admin services run in every configuration so the comparison
			// is policy-only; only Weighted's poller consumes them.
			AdminService: row.membership.Enabled,
			Membership:   row.membership,
		})
		if err != nil {
			return nil, err
		}

		// An unmeasured warm-up lets pools open and, for Weighted, gives
		// the poller enough rounds to derate the slow backend and drain
		// the backlog that accumulated before it did.
		samples, err := controlPlaneLoad(env, concurrency, m, payload, 30, nil)
		if err == nil {
			samples, err = controlPlaneLoad(env, concurrency, m, payload, batches, samples[:0])
		}
		if err != nil {
			env.Close()
			return nil, err
		}
		sum := metrics.Summarize(samples)
		st := env.Gateway.Stats()
		env.Close()

		slowShare := 0.0
		var exch int64
		for _, bs := range st.Backends {
			exch += bs.Exchanges
		}
		if exch > 0 {
			slowShare = 100 * float64(st.Backends[backends-1].Exchanges) / float64(exch)
		}
		result.Rows = append(result.Rows, AblationRow{
			Name:   row.name,
			Millis: metrics.Millis(sum.Mean),
			Note: fmt.Sprintf("p50 %.1fms, p99 %.1fms; slow backend took %.0f%% of sub-batches",
				metrics.Millis(sum.P50), metrics.Millis(sum.P99), slowShare),
		})
	}
	return result, nil
}

// controlPlaneLoad runs total packed batches through the gateway from
// concurrency workers and appends each batch's completion time to samples.
func controlPlaneLoad(env *GatewayEnv, concurrency, m int, payload string, total int, samples []time.Duration) ([]time.Duration, error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		next <- struct{}{}
	}
	close(next)
	errs := make([]error, concurrency)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for range next {
				start := time.Now()
				if err := packedRun(env.Client, m, payload); err != nil {
					errs[w] = err
					return
				}
				d := time.Since(start)
				mu.Lock()
				samples = append(samples, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}
