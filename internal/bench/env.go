// Package bench is the experiment harness: it reconstructs every
// measurement in the paper's evaluation (§4) — the Figure 5/6/7 latency
// sweeps, the §4.3 travel-agent throughput study — plus the WS-Security
// experiment the paper names as future work and ablations of the design
// choices (staged vs coupled threading, connection reuse, pool width).
//
// Experiments run a real client and a real server from internal/core over
// the simulated 100 Mbit link of internal/netsim, so every measured
// millisecond includes genuine XML serialization, HTTP framing, SOAP
// parsing, dispatch and thread-pool scheduling; only wire time is
// synthetic.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/trace"
	"repro/internal/wsse"
)

// EnvOptions configures one client/server/link environment.
type EnvOptions struct {
	// Network is the simulated link configuration (default LAN100).
	Network netsim.Config
	// AppWorkers sets the server's application-stage width (default 32).
	AppWorkers int
	// Coupled selects the traditional coupled architecture (Figure 1).
	Coupled bool
	// KeepAlive lets the client reuse connections (the measured baselines
	// dial per message, so the default is false).
	KeepAlive bool
	// WSSecurity attaches and verifies WS-Security headers on every
	// message.
	WSSecurity bool
	// WorkTime simulates per-operation backend work in the services.
	WorkTime time.Duration
	// Travel additionally deploys the travel-agent service suite.
	Travel bool
	// TemplateCache enables the §2.2 client-side parameterized message
	// cache ([1]/[3]).
	TemplateCache bool
	// DiffDeserialization enables the §2.2 server-side differential
	// deserialization cache ([4]/[11]).
	DiffDeserialization bool
	// BufferedDispatch forces the server off the streaming fast path onto
	// full-buffer decode — the explicit opt-out, used by the unified-fast-path
	// experiment to price what the old interceptor fallback cost.
	BufferedDispatch bool
	// AdaptiveAppStage swaps the fixed application pool for the
	// SEDA-controlled adaptive one (floor 2, ceiling AppWorkers).
	AdaptiveAppStage bool
	// Retry applies a client-side retry policy (nil: no retries), for the
	// fault-injection experiment.
	Retry *core.RetryPolicy
	// AdmissionTimeout bounds application-stage queue admission on the
	// server (zero: unbounded blocking submit).
	AdmissionTimeout time.Duration
	// Tracer, when non-nil, is shared by the client and the server so one
	// sink sees every hop of every message — the per-stage breakdown
	// experiments aggregate its spans. Nil runs untraced (the perf
	// baselines, where tracing must cost one branch per hop).
	Tracer *trace.Tracer
}

// Env is a running client/server pair over a simulated link.
type Env struct {
	Link      *netsim.Link
	Server    *core.Server
	Client    *core.Client
	Container *registry.Container
	Travel    *services.TravelState
}

// NewEnv builds and starts an environment.
func NewEnv(opt EnvOptions) (*Env, error) {
	if opt.Network.IsZero() {
		opt.Network = netsim.LAN100()
	}
	container := registry.NewContainer()
	if err := services.DeployEcho(container, services.Options{WorkTime: opt.WorkTime}); err != nil {
		return nil, err
	}
	if err := services.DeployWeather(container, services.Options{WorkTime: opt.WorkTime}); err != nil {
		return nil, err
	}
	env := &Env{Container: container}
	if opt.Travel {
		state, err := services.DeployTravel(container, services.Options{WorkTime: opt.WorkTime})
		if err != nil {
			return nil, err
		}
		env.Travel = state
	}

	env.Link = netsim.NewLink(opt.Network)
	lis, err := env.Link.Listen()
	if err != nil {
		return nil, err
	}

	secret := []byte("spi-benchmark-secret")
	scfg := core.ServerConfig{
		Container:                   container,
		AppWorkers:                  opt.AppWorkers,
		Coupled:                     opt.Coupled,
		DifferentialDeserialization: opt.DiffDeserialization,
		BufferedDispatch:            opt.BufferedDispatch,
		AdaptiveAppStage:            opt.AdaptiveAppStage,
		AdmissionTimeout:            opt.AdmissionTimeout,
		Tracer:                      opt.Tracer,
	}
	ccfg := core.ClientConfig{
		Dial:          env.Link.Dial,
		KeepAlive:     opt.KeepAlive,
		Timeout:       120 * time.Second,
		TemplateCache: opt.TemplateCache,
		Retry:         opt.Retry,
		Tracer:        opt.Tracer,
	}
	if opt.WSSecurity {
		scfg.HeaderProcessors = []core.HeaderProcessor{&wsse.Verifier{
			Secrets: map[string][]byte{"bench": secret},
		}}
		ccfg.HeaderProviders = []core.HeaderProvider{&wsse.Signer{
			Username: "bench", Secret: secret,
		}}
	}

	env.Server, err = core.NewServer(scfg)
	if err != nil {
		env.Link.Close()
		return nil, err
	}
	go env.Server.Serve(lis)

	env.Client, err = core.NewClient(ccfg)
	if err != nil {
		env.Server.Close()
		env.Link.Close()
		return nil, err
	}
	return env, nil
}

// Close tears the environment down.
func (e *Env) Close() {
	if e.Client != nil {
		e.Client.Close()
	}
	if e.Server != nil {
		e.Server.Close()
	}
	if e.Link != nil {
		e.Link.Close()
	}
}

// Approach is one of the three client strategies of §4.1.
type Approach int

// The three approaches, with the paper's figure-legend names.
const (
	// NoOptimization sends M request messages serially on one thread.
	NoOptimization Approach = iota
	// MultipleThreads sends M request messages simultaneously from M
	// goroutines.
	MultipleThreads
	// OurApproach packs the M request payloads into one SOAP message.
	OurApproach
)

// Approaches lists all three in figure order.
var Approaches = []Approach{NoOptimization, MultipleThreads, OurApproach}

// String returns the paper's legend name for the approach.
func (a Approach) String() string {
	switch a {
	case NoOptimization:
		return "No Optimization"
	case MultipleThreads:
		return "Multiple Threads"
	case OurApproach:
		return "Our Approach"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}
