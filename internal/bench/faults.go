package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// RunFaultInjection measures the serial baseline against the pack interface
// on a link that refuses every k-th connection attempt, with the client
// retry policy turned on. The pack interface's advantage compounds under
// faults: M serial messages expose the application to M dial attempts per
// round (each a chance to fail, back off and retry), while the packed
// message exposes it to exactly one — message reduction is also failure-
// surface reduction.
func RunFaultInjection(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 16
	const failEvery = 5 // every 5th dial is refused
	payload := "aaaaaaaaaa"
	retry := &core.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   500 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
		Multiplier:  2,
	}
	result := &AblationResult{Title: fmt.Sprintf(
		"Fault injection: serial vs packed, every %dth dial refused (M=%d, 10 B payloads, %d retry attempts)",
		failEvery, m, retry.MaxAttempts)}

	type variant struct {
		name   string
		packed bool
		faulty bool
	}
	for _, v := range []variant{
		{"serial, clean link", false, false},
		{"serial, faulty link + retries", false, true},
		{"packed, clean link", true, false},
		{"packed, faulty link + retries", true, true},
	} {
		cfg := netsim.LAN100()
		var dials atomic.Int64
		if v.faulty {
			cfg.DialFault = func() error {
				if dials.Add(1)%failEvery == 0 {
					return netsim.ErrDialFault
				}
				return nil
			}
		}
		env, err := NewEnv(EnvOptions{Network: cfg, Retry: retry})
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error {
			if v.packed {
				return packedRun(env.Client, m, payload)
			}
			for i := 0; i < m; i++ {
				if _, err := env.Client.Call("Echo", "echo", soapenc.F("data", payload)); err != nil {
					return err
				}
			}
			return nil
		})
		retries := env.Client.Stats().Resilience.Retries
		env.Close()
		if err != nil {
			return nil, err
		}
		note := ""
		if v.faulty {
			note = fmt.Sprintf("%d retries across all runs", retries)
		}
		result.Rows = append(result.Rows, AblationRow{Name: v.name, Millis: ms, Note: note})
	}
	return result, nil
}

// RunDeadlineDegradation measures the per-item deadline degradation path:
// a packed message mixing fast operations with one operation slower than
// the budget. The envelope comes back before the deadline with real
// results for the fast entries and a Server.Timeout fault for the slow one
// — the whole-message failure a deadline would otherwise cause is
// contained to the item that earned it.
func RunDeadlineDegradation(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 8 // fast entries per message, plus one slow entry
	result := &AblationResult{Title: fmt.Sprintf(
		"Deadline degradation: packed M=%d fast + 1 slow op, 40ms budget", m)}

	env, err := NewEnv(EnvOptions{WorkTime: time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	// The slow operation outlives the budget by an order of magnitude.
	svc, _ := env.Container.Service("Echo")
	svc.MustRegister("slowOp", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		select {
		case <-ctx.Context().Done():
			return nil, ctx.Context().Err()
		case <-time.After(400 * time.Millisecond):
			return params, nil
		}
	}, "sleeps past any reasonable budget")

	var degraded, fullResults int64
	ms, err := measure(1, reps, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
		defer cancel()
		b := env.Client.NewBatch()
		fast := make([]*core.Call, m)
		for i := range fast {
			fast[i] = b.Add("Echo", "echo", soapenc.F("data", "x"))
		}
		slow := b.Add("Echo", "slowOp")
		if err := b.SendCtx(ctx); err != nil {
			return fmt.Errorf("degraded send failed outright: %w", err)
		}
		for _, c := range fast {
			if _, err := c.Wait(); err != nil {
				return fmt.Errorf("fast entry lost to the slow one: %w", err)
			}
			fullResults++
		}
		if _, err := slow.Wait(); core.IsTimeoutFault(err) {
			degraded++
		} else if err == nil {
			return fmt.Errorf("slow entry finished inside a 40ms budget; not a degradation run")
		} else {
			return fmt.Errorf("slow entry: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name:   "packed with 40ms budget",
		Millis: ms,
		Note: fmt.Sprintf("%d fast results delivered, %d slow entries degraded to "+core.FaultCodeTimeout,
			fullResults, degraded),
	})
	return result, nil
}
