package bench

import (
	"strings"
	"testing"
)

func TestFaultInjectionExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunFaultInjection(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	serialClean, serialFaulty := r.Rows[0].Millis, r.Rows[1].Millis
	packedClean, packedFaulty := r.Rows[2].Millis, r.Rows[3].Millis
	// Faults plus backoff must cost the serial baseline something.
	if serialFaulty <= serialClean {
		t.Errorf("faulty serial %.2fms should exceed clean serial %.2fms", serialFaulty, serialClean)
	}
	// The packed approach keeps its Figure-5-shaped advantage under faults.
	if packedFaulty >= serialFaulty {
		t.Errorf("packed under faults %.2fms should beat serial under faults %.2fms", packedFaulty, serialFaulty)
	}
	if packedClean >= serialClean {
		t.Errorf("packed %.2fms should beat serial %.2fms on a clean link", packedClean, serialClean)
	}
	if !strings.Contains(r.Rows[1].Note, "retries") {
		t.Errorf("faulty serial note = %q, want retry count", r.Rows[1].Note)
	}
}

func TestDeadlineDegradationExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunDeadlineDegradation(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	// The run itself asserts the degradation semantics (fast entries all
	// resolve, the slow entry faults with Server.Timeout); here we check
	// the envelope came back around the budget, not after the slow op.
	if ms := r.Rows[0].Millis; ms < 20 || ms > 200 {
		t.Errorf("degraded round trip = %.2fms, want near the 40ms budget (not the 400ms op)", ms)
	}
	if !strings.Contains(r.Rows[0].Note, "degraded to Server.Timeout") {
		t.Errorf("note = %q", r.Rows[0].Note)
	}
}
