package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/soapenc"
)

// GatewayEnv is a scale-out deployment: K backend SPI servers behind one
// scatter–gather gateway, each server on its own simulated link, plus a
// client that talks only to the gateway.
type GatewayEnv struct {
	Client  *core.Client
	Gateway *gateway.Gateway

	links   []*netsim.Link
	servers []*core.Server
	gwLink  *netsim.Link
}

// GatewayOptions configures a scale-out environment.
type GatewayOptions struct {
	// Backends is the farm width (default 1).
	Backends int
	// Network is the per-hop link configuration (default LAN100 — both
	// the client→gateway and the gateway→backend hops pay wire costs).
	Network netsim.Config
	// AppWorkers narrows each backend's application stage so the farm, not
	// the protocol stage, is the bottleneck (default 4).
	AppWorkers int
	// WorkTime is per-operation backend work (zero: none): with real work
	// per entry, adding backends shows in the batch latency.
	WorkTime time.Duration
	// WorkTimes overrides WorkTime per backend (index i for backend i),
	// skewing the fleet — the regime the control-plane experiments probe.
	WorkTimes []time.Duration
	// Weights sets per-backend routing weights for the weighted policy
	// (index i for backend i; missing entries default to 1).
	Weights []int
	// Policy selects the sharding strategy (default round-robin).
	Policy gateway.Policy
	// AdminService enables the Admin control-plane service on every
	// backend server and on the gateway itself.
	AdminService bool
	// Membership configures the gateway's control-plane poller (zero:
	// disabled). Requires AdminService for the polls to succeed.
	Membership gateway.MembershipConfig
	// MaxActivePerBackend bounds concurrent gateway→backend exchanges
	// (zero: unbounded), the protective cap any production front tier
	// places on its backends.
	MaxActivePerBackend int
	// Coalesce configures cross-client coalescing of single calls at the
	// gateway (zero: off).
	Coalesce gateway.CoalesceConfig
}

// NewGatewayEnv builds and starts the farm.
func NewGatewayEnv(opt GatewayOptions) (*GatewayEnv, error) {
	if opt.Backends <= 0 {
		opt.Backends = 1
	}
	if opt.Network.IsZero() {
		opt.Network = netsim.LAN100()
	}
	if opt.AppWorkers <= 0 {
		opt.AppWorkers = 4
	}
	env := &GatewayEnv{}
	fail := func(err error) (*GatewayEnv, error) {
		env.Close()
		return nil, err
	}

	registryContainer := registry.NewContainer()
	if err := services.DeployEcho(registryContainer, services.Options{}); err != nil {
		return fail(err)
	}
	if svc, ok := registryContainer.Service("Echo"); ok {
		svc.MarkIdempotent("echo", "echoSize")
	}

	var backends []gateway.BackendConfig
	for i := 0; i < opt.Backends; i++ {
		work := opt.WorkTime
		if i < len(opt.WorkTimes) {
			work = opt.WorkTimes[i]
		}
		container := registry.NewContainer()
		if err := services.DeployEcho(container, services.Options{WorkTime: work}); err != nil {
			return fail(err)
		}
		link := netsim.NewLink(opt.Network)
		env.links = append(env.links, link)
		lis, err := link.Listen()
		if err != nil {
			return fail(err)
		}
		srv, err := core.NewServer(core.ServerConfig{
			Container: container, AppWorkers: opt.AppWorkers,
			AdminService: opt.AdminService,
		})
		if err != nil {
			return fail(err)
		}
		env.servers = append(env.servers, srv)
		go srv.Serve(lis)
		weight := 1
		if i < len(opt.Weights) && opt.Weights[i] > 0 {
			weight = opt.Weights[i]
		}
		backends = append(backends, gateway.BackendConfig{
			Name: fmt.Sprintf("b%d", i), Dial: link.Dial, Weight: weight,
		})
	}

	gw, err := gateway.New(gateway.Config{
		Backends:            backends,
		Policy:              opt.Policy,
		Registry:            registryContainer,
		MaxActivePerBackend: opt.MaxActivePerBackend,
		Coalesce:            opt.Coalesce,
		AdminService:        opt.AdminService,
		Membership:          opt.Membership,
	})
	if err != nil {
		return fail(err)
	}
	env.Gateway = gw
	env.gwLink = netsim.NewLink(opt.Network)
	glis, err := env.gwLink.Listen()
	if err != nil {
		return fail(err)
	}
	go gw.Serve(glis)

	env.Client, err = core.NewClient(core.ClientConfig{
		Dial: env.gwLink.Dial, KeepAlive: true, Timeout: 120 * time.Second,
	})
	if err != nil {
		return fail(err)
	}
	return env, nil
}

// NewClient dials a fresh client connection to the gateway — one per
// simulated end user in the many-small-clients experiments, so each has
// its own TCP connection like independent processes would.
func (e *GatewayEnv) NewClient() (*core.Client, error) {
	return core.NewClient(core.ClientConfig{
		Dial: e.gwLink.Dial, KeepAlive: true, Timeout: 120 * time.Second,
	})
}

// Close tears the farm down.
func (e *GatewayEnv) Close() {
	if e.Client != nil {
		e.Client.Close()
	}
	if e.Gateway != nil {
		e.Gateway.Close()
	}
	if e.gwLink != nil {
		e.gwLink.Close()
	}
	for _, s := range e.servers {
		s.Close()
	}
	for _, l := range e.links {
		l.Close()
	}
}

// RunCoalesce measures the many-small-clients regime the coalescer is
// built for: a fleet of independent clients, each issuing plain serial
// single calls (no pack interface anywhere on the client side), against
// the same farm with cross-client coalescing off and on. The gateway
// caps concurrent exchanges per backend — the protective bound any real
// front tier applies — so without coalescing the concurrent singles
// queue for exchange slots in waves, each paying its own connection,
// HTTP framing and envelope overhead. With coalescing the same calls
// merge into a few packed batches that fit comfortably under the cap,
// amortizing the per-message costs — so the burst completes sooner even
// though every individual call briefly parks in the flush window.
func RunCoalesce(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const clients = 64
	const callsPerClient = 4
	const work = 500 * time.Microsecond
	const workers = 16
	const maxActive = 8
	const window = 300 * time.Microsecond
	payload := strings.Repeat("a", 64)

	result := &AblationResult{Title: fmt.Sprintf(
		"Gateway coalescing: %d single-call clients × %d serial calls, %v ops, 2 backends, %d exchange slots per backend",
		clients, callsPerClient, work, maxActive)}

	for _, coalesce := range []bool{false, true} {
		env, err := NewGatewayEnv(GatewayOptions{
			Backends: 2, AppWorkers: workers, WorkTime: work,
			MaxActivePerBackend: maxActive,
			Coalesce: gateway.CoalesceConfig{
				Enabled:     coalesce,
				FlushWindow: window,
				MaxBatch:    16,
			},
		})
		if err != nil {
			return nil, err
		}
		// Each simulated end user gets its own access link to the gateway —
		// independent client machines don't share a NIC — so the contended
		// resource is the gateway→backend hop, the one coalescing thins out.
		fleet := make([]*core.Client, clients)
		fleetLinks := make([]*netsim.Link, clients)
		closeFleet := func() {
			for _, c := range fleet {
				if c != nil {
					c.Close()
				}
			}
			for _, l := range fleetLinks {
				if l != nil {
					l.Close()
				}
			}
		}
		for i := range fleet {
			link := netsim.NewLink(netsim.LAN100())
			fleetLinks[i] = link
			lis, err := link.Listen()
			if err == nil {
				go env.Gateway.Serve(lis)
				fleet[i], err = core.NewClient(core.ClientConfig{
					Dial: link.Dial, KeepAlive: true, Timeout: 120 * time.Second,
				})
			}
			if err != nil {
				closeFleet()
				env.Close()
				return nil, err
			}
		}
		ms, err := measure(1, reps, func() error {
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for i := range fleet {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < callsPerClient; j++ {
						if _, err := fleet[i].Call("Echo", "echo", soapenc.F("data", payload)); err != nil {
							errs[i] = err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		})
		st := env.Gateway.Stats()
		closeFleet()
		env.Close()
		if err != nil {
			return nil, err
		}
		name := "coalescing off (every single proxied whole)"
		note := fmt.Sprintf("%d backend exchanges", st.Proxied)
		if coalesce {
			name = fmt.Sprintf("coalescing on (%v flush window)", window)
			mean := 0.0
			if st.CoalesceBatches > 0 {
				mean = float64(st.Coalesced) / float64(st.CoalesceBatches)
			}
			note = fmt.Sprintf("%d calls pooled into %d batches (mean size %.1f)",
				st.Coalesced, st.CoalesceBatches, mean)
		}
		calls := float64(clients * callsPerClient)
		note += fmt.Sprintf("; %.0f calls/s", calls/(ms/1000))
		result.Rows = append(result.Rows, AblationRow{Name: name, Millis: ms, Note: note})
	}
	return result, nil
}

// RunGatewayScaling measures one packed batch against a saturated farm as
// it widens from one backend to four: each entry carries real application
// work and each backend has a narrow app stage, so the batch latency is
// bounded by farm compute and must drop as backends are added. The direct
// row (no gateway at all) isolates the gateway's own overhead at width 1.
func RunGatewayScaling(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 32
	const work = 2 * time.Millisecond
	const workers = 4
	payload := strings.Repeat("a", 128)

	result := &AblationResult{Title: fmt.Sprintf(
		"Scale-out gateway: packed batch of %d × %v ops, %d app workers per backend", m, work, workers)}

	direct, err := NewEnv(EnvOptions{
		AppWorkers: workers, KeepAlive: true, WorkTime: work,
	})
	if err != nil {
		return nil, err
	}
	ms, err := measure(2, reps, func() error { return packedRun(direct.Client, m, payload) })
	direct.Close()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name: "direct (no gateway)", Millis: ms,
		Note: "single server, client dials it straight",
	})

	for _, k := range []int{1, 2, 4} {
		env, err := NewGatewayEnv(GatewayOptions{
			Backends: k, AppWorkers: workers, WorkTime: work,
		})
		if err != nil {
			return nil, err
		}
		ms, err := measure(2, reps, func() error { return packedRun(env.Client, m, payload) })
		if err != nil {
			env.Close()
			return nil, err
		}
		st := env.Gateway.Stats()
		env.Close()
		result.Rows = append(result.Rows, AblationRow{
			Name:   fmt.Sprintf("gateway, %d backend(s)", k),
			Millis: ms,
			Note:   fmt.Sprintf("%d sub-batches scattered over %d packed batches", st.Scattered, st.Packed),
		})
	}
	return result, nil
}
