package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
)

// GatewayEnv is a scale-out deployment: K backend SPI servers behind one
// scatter–gather gateway, each server on its own simulated link, plus a
// client that talks only to the gateway.
type GatewayEnv struct {
	Client  *core.Client
	Gateway *gateway.Gateway

	links   []*netsim.Link
	servers []*core.Server
	gwLink  *netsim.Link
}

// GatewayOptions configures a scale-out environment.
type GatewayOptions struct {
	// Backends is the farm width (default 1).
	Backends int
	// Network is the per-hop link configuration (default LAN100 — both
	// the client→gateway and the gateway→backend hops pay wire costs).
	Network netsim.Config
	// AppWorkers narrows each backend's application stage so the farm, not
	// the protocol stage, is the bottleneck (default 4).
	AppWorkers int
	// WorkTime is per-operation backend work (zero: none): with real work
	// per entry, adding backends shows in the batch latency.
	WorkTime time.Duration
	// Policy selects the sharding strategy (default round-robin).
	Policy gateway.Policy
}

// NewGatewayEnv builds and starts the farm.
func NewGatewayEnv(opt GatewayOptions) (*GatewayEnv, error) {
	if opt.Backends <= 0 {
		opt.Backends = 1
	}
	if opt.Network.IsZero() {
		opt.Network = netsim.LAN100()
	}
	if opt.AppWorkers <= 0 {
		opt.AppWorkers = 4
	}
	env := &GatewayEnv{}
	fail := func(err error) (*GatewayEnv, error) {
		env.Close()
		return nil, err
	}

	registryContainer := registry.NewContainer()
	if err := services.DeployEcho(registryContainer, services.Options{}); err != nil {
		return fail(err)
	}
	if svc, ok := registryContainer.Service("Echo"); ok {
		svc.MarkIdempotent("echo", "echoSize")
	}

	var backends []gateway.BackendConfig
	for i := 0; i < opt.Backends; i++ {
		container := registry.NewContainer()
		if err := services.DeployEcho(container, services.Options{WorkTime: opt.WorkTime}); err != nil {
			return fail(err)
		}
		link := netsim.NewLink(opt.Network)
		env.links = append(env.links, link)
		lis, err := link.Listen()
		if err != nil {
			return fail(err)
		}
		srv, err := core.NewServer(core.ServerConfig{
			Container: container, AppWorkers: opt.AppWorkers,
		})
		if err != nil {
			return fail(err)
		}
		env.servers = append(env.servers, srv)
		go srv.Serve(lis)
		backends = append(backends, gateway.BackendConfig{
			Name: fmt.Sprintf("b%d", i), Dial: link.Dial,
		})
	}

	gw, err := gateway.New(gateway.Config{
		Backends: backends,
		Policy:   opt.Policy,
		Registry: registryContainer,
	})
	if err != nil {
		return fail(err)
	}
	env.Gateway = gw
	env.gwLink = netsim.NewLink(opt.Network)
	glis, err := env.gwLink.Listen()
	if err != nil {
		return fail(err)
	}
	go gw.Serve(glis)

	env.Client, err = core.NewClient(core.ClientConfig{
		Dial: env.gwLink.Dial, KeepAlive: true, Timeout: 120 * time.Second,
	})
	if err != nil {
		return fail(err)
	}
	return env, nil
}

// Close tears the farm down.
func (e *GatewayEnv) Close() {
	if e.Client != nil {
		e.Client.Close()
	}
	if e.Gateway != nil {
		e.Gateway.Close()
	}
	if e.gwLink != nil {
		e.gwLink.Close()
	}
	for _, s := range e.servers {
		s.Close()
	}
	for _, l := range e.links {
		l.Close()
	}
}

// RunGatewayScaling measures one packed batch against a saturated farm as
// it widens from one backend to four: each entry carries real application
// work and each backend has a narrow app stage, so the batch latency is
// bounded by farm compute and must drop as backends are added. The direct
// row (no gateway at all) isolates the gateway's own overhead at width 1.
func RunGatewayScaling(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 32
	const work = 2 * time.Millisecond
	const workers = 4
	payload := strings.Repeat("a", 128)

	result := &AblationResult{Title: fmt.Sprintf(
		"Scale-out gateway: packed batch of %d × %v ops, %d app workers per backend", m, work, workers)}

	direct, err := NewEnv(EnvOptions{
		AppWorkers: workers, KeepAlive: true, WorkTime: work,
	})
	if err != nil {
		return nil, err
	}
	ms, err := measure(2, reps, func() error { return packedRun(direct.Client, m, payload) })
	direct.Close()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, AblationRow{
		Name: "direct (no gateway)", Millis: ms,
		Note: "single server, client dials it straight",
	})

	for _, k := range []int{1, 2, 4} {
		env, err := NewGatewayEnv(GatewayOptions{
			Backends: k, AppWorkers: workers, WorkTime: work,
		})
		if err != nil {
			return nil, err
		}
		ms, err := measure(2, reps, func() error { return packedRun(env.Client, m, payload) })
		if err != nil {
			env.Close()
			return nil, err
		}
		st := env.Gateway.Stats()
		env.Close()
		result.Rows = append(result.Rows, AblationRow{
			Name:   fmt.Sprintf("gateway, %d backend(s)", k),
			Millis: ms,
			Note:   fmt.Sprintf("%d sub-batches scattered over %d packed batches", st.Scattered, st.Packed),
		})
	}
	return result, nil
}
