package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/soapenc"
)

// LatencyConfig parameterizes one Figure 5/6/7-style sweep.
type LatencyConfig struct {
	// Label names the experiment in the printed table (e.g. "Figure 5").
	Label string
	// PayloadBytes is N, the size of each service request's data.
	PayloadBytes int
	// MessageCounts lists the M values. Default 1,2,4,...,128 (the
	// paper's x-axis).
	MessageCounts []int
	// Repetitions is how many times each point is measured; the mean is
	// reported. Default 5. ("The test in each case is repeated" — §4.3
	// uses 10; the latency figures report averaged runs.)
	Repetitions int
	// Warmup runs before measurement at each point (default 1).
	Warmup int
	// Env configures the environment the sweep runs in.
	Env EnvOptions
	// Approaches restricts which strategies run (default all three).
	Approaches []Approach
}

func (c *LatencyConfig) fillDefaults() {
	if len(c.MessageCounts) == 0 {
		c.MessageCounts = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 5
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 1
	}
	if len(c.Approaches) == 0 {
		c.Approaches = Approaches
	}
}

// LatencyPoint is one row of a latency table: the mean run time of M
// service requests under each approach.
type LatencyPoint struct {
	M       int
	Millis  map[Approach]float64
	Samples map[Approach]metrics.Summary
}

// Speedup returns NoOptimization time divided by OurApproach time — the
// ratio behind the paper's "up to ten times faster" claim.
func (p *LatencyPoint) Speedup() float64 {
	ours, ok1 := p.Millis[OurApproach]
	noOpt, ok2 := p.Millis[NoOptimization]
	if !ok1 || !ok2 || ours <= 0 {
		return 0
	}
	return noOpt / ours
}

// LatencyResult is a completed sweep.
type LatencyResult struct {
	Config LatencyConfig
	Points []*LatencyPoint
}

// RunLatency performs the sweep: for each M and each approach, issue M echo
// requests of PayloadBytes each and measure the wall time until every
// response has arrived.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	cfg.fillDefaults()
	env, err := NewEnv(cfg.Env)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	payload := strings.Repeat("a", cfg.PayloadBytes)
	result := &LatencyResult{Config: cfg}

	// Global warm-up: touch every approach once so first-use costs (pool
	// spin-up, allocator growth, page faults) do not land on the first
	// measured point.
	for _, approach := range cfg.Approaches {
		if _, err := runOnce(env, approach, 2, "warmup"); err != nil {
			return nil, fmt.Errorf("%s: warmup %s: %w", cfg.Label, approach, err)
		}
	}

	for _, m := range cfg.MessageCounts {
		point := &LatencyPoint{
			M:       m,
			Millis:  make(map[Approach]float64),
			Samples: make(map[Approach]metrics.Summary),
		}
		for _, approach := range cfg.Approaches {
			var rec metrics.Recorder
			for rep := 0; rep < cfg.Warmup+cfg.Repetitions; rep++ {
				d, err := runOnce(env, approach, m, payload)
				if err != nil {
					return nil, fmt.Errorf("%s: M=%d %s: %w", cfg.Label, m, approach, err)
				}
				if rep >= cfg.Warmup {
					rec.Record(d)
				}
			}
			s := rec.Snapshot()
			point.Millis[approach] = metrics.Millis(s.Mean)
			point.Samples[approach] = s
		}
		result.Points = append(result.Points, point)
	}
	return result, nil
}

// runOnce measures one batch of M requests under the given approach.
func runOnce(env *Env, approach Approach, m int, payload string) (time.Duration, error) {
	arg := soapenc.F("data", payload)
	start := time.Now()
	switch approach {
	case NoOptimization:
		for i := 0; i < m; i++ {
			if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
				return 0, err
			}
		}
	case MultipleThreads:
		calls := make([]interface {
			Wait() ([]soapenc.Field, error)
		}, m)
		for i := 0; i < m; i++ {
			calls[i] = env.Client.Go("Echo", "echo", arg)
		}
		for _, c := range calls {
			if _, err := c.Wait(); err != nil {
				return 0, err
			}
		}
	case OurApproach:
		b := env.Client.NewBatch()
		for i := 0; i < m; i++ {
			b.Add("Echo", "echo", arg)
		}
		if err := b.Send(); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("bench: unknown approach %d", approach)
	}
	return time.Since(start), nil
}

// Figure5 is the paper's Figure 5 configuration: 10-byte payloads.
func Figure5() LatencyConfig {
	return LatencyConfig{Label: "Figure 5", PayloadBytes: 10}
}

// Figure6 is the paper's Figure 6 configuration: 1 KB payloads.
func Figure6() LatencyConfig {
	return LatencyConfig{Label: "Figure 6", PayloadBytes: 1000}
}

// Figure7 is the paper's Figure 7 configuration: 100 KB payloads.
func Figure7() LatencyConfig {
	return LatencyConfig{Label: "Figure 7", PayloadBytes: 100_000}
}

// WANSweep runs the Figure 5 workload over a wide-area link (10 Mbit/s,
// 40 ms RTT): the environment the paper's opening motivates. Per-message
// round trips dominate completely, so the packing win is amplified.
func WANSweep() LatencyConfig {
	cfg := Figure5()
	cfg.Label = "WAN (10 Mbit, 40 ms RTT)"
	cfg.Env.Network = netsim.WAN()
	// WAN round trips make serial sweeps slow; trim the tail.
	cfg.MessageCounts = []int{1, 2, 4, 8, 16, 32}
	cfg.Repetitions = 3
	return cfg
}

// WSSecuritySweep is the future-work experiment: Figure 5's sweep with
// WS-Security headers attached and verified, where packing amortizes the
// larger per-message header overhead.
func WSSecuritySweep() LatencyConfig {
	cfg := Figure5()
	cfg.Label = "WS-Security"
	cfg.Env.WSSecurity = true
	return cfg
}
