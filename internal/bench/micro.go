package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// The SOAP-codec microbenchmark suite, after Head et al., "A Benchmark
// Suite for SOAP-based Communication in Grid Web Services" (SC-05, the
// paper's reference [10]): serialization and deserialization cost per
// value shape. The shapes mirror that suite's payload classes — arrays of
// ints, doubles and strings, binary blobs, nested structures — because
// those are the parameters scientific grid services actually shipped.

// MicroShape is one payload class of the suite.
type MicroShape struct {
	Name  string
	Value soapenc.Value
	// Bytes is the serialized envelope size, filled in by the run.
	Bytes int
}

// microShapes builds the suite's payload classes at the given scale
// (element count for arrays).
func microShapes(n int) []*MicroShape {
	ints := make(soapenc.Array, n)
	doubles := make(soapenc.Array, n)
	strs := make(soapenc.Array, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i)
		doubles[i] = float64(i) + 0.5
		strs[i] = fmt.Sprintf("element-%d", i)
	}
	blob := make([]byte, n*8)
	for i := range blob {
		blob[i] = byte(i)
	}
	nested := soapenc.Array{}
	for i := 0; i < n/10+1; i++ {
		nested = append(nested, soapenc.NewStruct(
			soapenc.F("id", int64(i)),
			soapenc.F("name", fmt.Sprintf("item-%d", i)),
			soapenc.F("score", float64(i)*1.5),
			soapenc.F("tags", soapenc.Array{"a", "b"}),
		))
	}
	return []*MicroShape{
		{Name: fmt.Sprintf("int[%d]", n), Value: ints},
		{Name: fmt.Sprintf("double[%d]", n), Value: doubles},
		{Name: fmt.Sprintf("string[%d]", n), Value: strs},
		{Name: fmt.Sprintf("base64[%d B]", len(blob)), Value: blob},
		{Name: fmt.Sprintf("struct[%d]", len(nested)), Value: nested},
	}
}

// MicroRow is one measured payload class.
type MicroRow struct {
	Shape       string
	Bytes       int
	SerializeUs float64 // mean microseconds per envelope encode
	ParseUs     float64 // mean microseconds per envelope decode
	DecodeUs    float64 // mean microseconds per typed-value decode
}

// MicroResult is the completed suite.
type MicroResult struct {
	Scale int
	Rows  []MicroRow
}

// RunMicro measures the SOAP codec layer in isolation for each payload
// class: envelope serialization, envelope parsing, and typed-value
// decoding, without any network.
func RunMicro(scale, reps int) (*MicroResult, error) {
	if scale <= 0 {
		scale = 100
	}
	if reps <= 0 {
		reps = 50
	}
	result := &MicroResult{Scale: scale}
	for _, shape := range microShapes(scale) {
		row := MicroRow{Shape: shape.Name}

		buildEnvelope := func() (*soap.Envelope, error) {
			env := soap.New()
			op := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: "Op"})
			op.DeclareNamespace("m", "urn:micro")
			if _, err := soapenc.Encode(op, "payload", shape.Value); err != nil {
				return nil, err
			}
			env.AddBody(op)
			return env, nil
		}

		// Serialization.
		var ser metrics.Recorder
		var doc []byte
		for i := 0; i < reps; i++ {
			env, err := buildEnvelope()
			if err != nil {
				return nil, fmt.Errorf("micro %s: %w", shape.Name, err)
			}
			var buf bytes.Buffer
			start := time.Now()
			if err := env.Encode(&buf); err != nil {
				return nil, err
			}
			ser.Record(time.Since(start))
			doc = buf.Bytes()
		}
		row.Bytes = len(doc)

		// Envelope parse (tokenize + DOM + envelope interpretation).
		var parse metrics.Recorder
		var parsed *soap.Envelope
		for i := 0; i < reps; i++ {
			start := time.Now()
			env, err := soap.Decode(bytes.NewReader(doc))
			if err != nil {
				return nil, fmt.Errorf("micro %s parse: %w", shape.Name, err)
			}
			parse.Record(time.Since(start))
			parsed = env
		}

		// Typed-value decode from the DOM.
		var dec metrics.Recorder
		for i := 0; i < reps; i++ {
			start := time.Now()
			v, err := soapenc.Decode(parsed.Body[0].Child("", "payload"))
			if err != nil {
				return nil, fmt.Errorf("micro %s decode: %w", shape.Name, err)
			}
			dec.Record(time.Since(start))
			if i == 0 && !soapenc.Equal(v, shape.Value) {
				return nil, fmt.Errorf("micro %s: decoded value differs from input", shape.Name)
			}
		}

		row.SerializeUs = float64(ser.Snapshot().Mean.Microseconds())
		row.ParseUs = float64(parse.Snapshot().Mean.Microseconds())
		row.DecodeUs = float64(dec.Snapshot().Mean.Microseconds())
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// Print renders the microbenchmark table.
func (r *MicroResult) Print(w io.Writer) {
	fmt.Fprintf(w, "SOAP codec microbenchmarks (after [10]) — arrays of %d elements\n", r.Scale)
	fmt.Fprintf(w, "%-16s %10s %16s %12s %12s\n", "payload", "bytes", "serialize (µs)", "parse (µs)", "decode (µs)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %10d %16.0f %12.0f %12.0f\n",
			row.Shape, row.Bytes, row.SerializeUs, row.ParseUs, row.DecodeUs)
	}
	fmt.Fprintln(w, "(serialize = envelope encode; parse = tokenize+DOM+envelope; decode = xsi:type value mapping)")
	fmt.Fprintln(w)
}
