//go:build !race

package bench

// raceEnabled reports that the race detector is not active.
const raceEnabled = false
