package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/soapenc"
	"repro/internal/trace"
)

// packedEchoOnce sends one packed batch of m echo calls.
func packedEchoOnce(b *testing.B, env *Env, m int, arg soapenc.Field) {
	b.Helper()
	batch := env.Client.NewBatch()
	for i := 0; i < m; i++ {
		batch.Add("Echo", "echo", arg)
	}
	if err := batch.Send(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPackedEcho is the acceptance benchmark for the tracing fast
// path: the disabled variant (nil tracer, the default configuration) and
// the enabled variant run the identical packed-echo workload. Compare
// ns/op between sub-benchmarks; disabled must sit within noise of a
// pre-tracing build (<2% — its only cost is one nil check per hop).
func BenchmarkPackedEcho(b *testing.B) {
	const m = 16
	arg := soapenc.F("data", strings.Repeat("a", 10))
	for _, mode := range []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"tracing=disabled", nil},
		{"tracing=enabled", trace.New(4096)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			env, err := NewEnv(EnvOptions{Tracer: mode.tracer})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			packedEchoOnce(b, env, m, arg) // warm pools and caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				packedEchoOnce(b, env, m, arg)
			}
		})
	}
}

// BenchmarkSerialEcho is the unpacked baseline in both tracing modes.
func BenchmarkSerialEcho(b *testing.B) {
	arg := soapenc.F("data", strings.Repeat("a", 10))
	for _, mode := range []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"tracing=disabled", nil},
		{"tracing=enabled", trace.New(4096)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			env, err := NewEnv(EnvOptions{Tracer: mode.tracer})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracerRecord prices the disabled hop in isolation: a nil
// tracer's Enabled check plus nothing else.
func BenchmarkTracerRecord(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var tr *trace.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Record(trace.Span{})
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := trace.New(4096)
		span := trace.Span{Trace: 1, Stage: trace.StageApp, ID: 0,
			Op: "Echo.echo", Queue: time.Microsecond, Service: time.Millisecond}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Record(span)
			}
		}
	})
}

func TestTraceExperiment(t *testing.T) {
	skipTiming(t)
	r, err := RunTrace(16, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Modes) != 2 {
		t.Fatalf("modes = %d", len(r.Modes))
	}
	for _, mode := range r.Modes {
		if mode.SpansDropped != 0 {
			t.Errorf("%s: %d spans dropped — ring undersized for the workload", mode.Name, mode.SpansDropped)
		}
		stages := make(map[string]TraceStageRow)
		for _, row := range mode.Stages {
			stages[row.Stage] = row
		}
		for _, stage := range []string{trace.StageProtocol, trace.StageDispatch,
			trace.StageApp, trace.StageAssemble} {
			if stages[stage].Spans == 0 {
				t.Errorf("%s: no %s spans", mode.Name, stage)
			}
		}
		if got := stages[trace.StageApp].Spans; got != 32 {
			t.Errorf("%s: app spans = %d, want 32 (16 requests x 2 reps)", mode.Name, got)
		}
	}
	serial, packed := r.Modes[0], r.Modes[1]
	count := func(m TraceModeResult, stage string) int64 {
		for _, row := range m.Stages {
			if row.Stage == stage {
				return row.Spans
			}
		}
		return 0
	}
	// The packing story in span counts: 32 protocol traversals collapse to 2.
	if count(serial, trace.StageProtocol) != 32 || count(packed, trace.StageProtocol) != 2 {
		t.Errorf("protocol spans serial/packed = %d/%d, want 32/2",
			count(serial, trace.StageProtocol), count(packed, trace.StageProtocol))
	}
	if packed.AppQueuePeak == 0 {
		t.Error("packed fan-out never showed a non-zero app queue peak")
	}
	var b strings.Builder
	r.Print(&b)
	for _, want := range []string{"server.app", "queue-mean", "svc-p95", "Our Approach"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("trace table missing %q:\n%s", want, b.String())
		}
	}
}
