package bench

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// PrintLatency renders a latency sweep as the paper's figures do: one row
// per M, one column per approach, run time in milliseconds, plus the
// NoOptimization/OurApproach speedup.
func PrintLatency(w io.Writer, r *LatencyResult) {
	fmt.Fprintf(w, "%s — Size of Each Service Request: %s (run time in ms)\n",
		r.Config.Label, humanBytes(r.Config.PayloadBytes))
	if r.Config.Env.WSSecurity {
		fmt.Fprintf(w, "WS-Security headers: enabled (signed and verified per message)\n")
	}
	fmt.Fprintf(w, "%-6s", "M")
	for _, a := range r.Config.Approaches {
		fmt.Fprintf(w, " %18s", a)
	}
	if hasSpeedup(r) {
		fmt.Fprintf(w, " %10s", "Speedup")
	}
	fmt.Fprintln(w)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d", p.M)
		for _, a := range r.Config.Approaches {
			fmt.Fprintf(w, " %18.2f", p.Millis[a])
		}
		if hasSpeedup(r) {
			fmt.Fprintf(w, " %9.2fx", p.Speedup())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func hasSpeedup(r *LatencyResult) bool {
	has := map[Approach]bool{}
	for _, a := range r.Config.Approaches {
		has[a] = true
	}
	return has[NoOptimization] && has[OurApproach]
}

// PrintTravel renders the §4.3 comparison.
func PrintTravel(w io.Writer, r *TravelResult) {
	fmt.Fprintf(w, "Travel agent service (§4.3) — %d runs, %d service invocations per run\n",
		r.Config.Repetitions, 11)
	fmt.Fprintf(w, "%-22s %12s %10s\n", "mode", "time (ms)", "messages")
	fmt.Fprintf(w, "%-22s %12.2f %10d\n", "without optimization",
		metrics.Millis(r.Unoptimized.Mean), r.UnoptimizedMessages)
	fmt.Fprintf(w, "%-22s %12.2f %10d\n", "with optimization",
		metrics.Millis(r.Optimized.Mean), r.OptimizedMessages)
	fmt.Fprintf(w, "improvement: %.1f%% (paper: 408 ms -> 301 ms, ~26%%)\n\n", r.ImprovementPct)
}

// PrintAblation renders one ablation table.
func PrintAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintln(w, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-40s %10.2f ms", row.Name, row.Millis)
		if row.Note != "" {
			fmt.Fprintf(w, "   (%s)", row.Note)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func humanBytes(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%dM bytes", n/1_000_000)
	case n >= 1000:
		return fmt.Sprintf("%dK bytes", n/1000)
	default:
		return fmt.Sprintf("%d bytes", n)
	}
}
