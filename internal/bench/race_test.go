//go:build race

package bench

// raceEnabled reports that the race detector is active. The detector
// slows CPU-bound paths by an order of magnitude, which distorts the
// timing ratios the shape tests assert, so those tests skip themselves.
const raceEnabled = true
