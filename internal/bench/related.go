package bench

import (
	"fmt"

	"repro/internal/soapenc"
)

// RunRelatedWork measures the §2.2 related-work optimizations against the
// paper's approach on the Figure-5 workload (M small requests). The paper
// argues those techniques "speed up the process of SOAP message parsing"
// while SPI "is designed to reduce the number of SOAP messages" — i.e.
// they attack per-message CPU, not per-message network overhead — and that
// the two are therefore orthogonal. This experiment makes that argument
// measurable:
//
//   - client template caching ([1] Devaram & Andresen / [3] differential
//     serialization) removes client serialization cost;
//   - server differential deserialization ([4]/[11]) removes repeated
//     parse cost;
//   - both still send M messages, so connection setup and headers remain;
//   - packing removes the per-message overhead itself.
func RunRelatedWork(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 64
	payload := "aaaaaaaaaa" // 10 B, the Figure 5 regime
	result := &AblationResult{Title: fmt.Sprintf(
		"Related work (§2.2): per-message CPU optimizations vs packing (M=%d, 10 B payloads)", m)}

	type variant struct {
		name   string
		opt    EnvOptions
		packed bool
		note   string
	}
	variants := []variant{
		{"No Optimization", EnvOptions{}, false,
			"M messages, M connections"},
		{"+ client template cache [1,3]", EnvOptions{TemplateCache: true}, false,
			"serialization bypassed, M messages remain"},
		{"+ differential deserialization [4,11]", EnvOptions{DiffDeserialization: true}, false,
			"server parse bypassed, M messages remain"},
		{"+ both caches", EnvOptions{TemplateCache: true, DiffDeserialization: true}, false,
			"all per-message CPU removed, M messages remain"},
		{"Our Approach (pack interface)", EnvOptions{}, true,
			"1 message, 1 connection"},
		{"Ours + both caches", EnvOptions{TemplateCache: true, DiffDeserialization: true}, true,
			"orthogonal: packing and caching compose"},
	}

	for _, v := range variants {
		env, err := NewEnv(v.opt)
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error {
			if v.packed {
				return packedRun(env.Client, m, payload)
			}
			for i := 0; i < m; i++ {
				if _, err := env.Client.Call("Echo", "echo", soapenc.F("data", payload)); err != nil {
					return err
				}
			}
			return nil
		})
		env.Close()
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, AblationRow{Name: v.name, Millis: ms, Note: v.note})
	}
	return result, nil
}
