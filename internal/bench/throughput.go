package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/soapenc"
)

// ThroughputConfig parameterizes the sustained-load experiment. The
// paper's first design goal (§3.2) is "improving throughput of client
// side": packing "can greatly improve the throughput of whole application
// while at the same time may not increase the latency of every client
// invocation". This experiment drives fixed offered loads of concurrent
// callers for a fixed duration and reports completed requests per second
// plus per-call latency, with and without automatic packing.
//
// The interesting result is the crossover: at low concurrency per-call
// messages win (the batching window only adds latency), while at high
// concurrency the per-message overhead of hundreds of concurrent small
// messages congests the link and the server, and packing pulls ahead —
// which is precisely the regime the paper's motivation describes.
type ThroughputConfig struct {
	// CallerCounts lists the offered concurrency levels
	// (default 4, 16, 64, 128 — mirroring the figures' M axis).
	CallerCounts []int
	// Duration is how long each point is driven (default 1s).
	Duration time.Duration
	// PayloadBytes is the request payload size (default 10, the Figure 5
	// regime).
	PayloadBytes int
	// Window is the AutoBatcher flush window (default 500µs).
	Window time.Duration
	// Env configures the environment.
	Env EnvOptions
}

// ThroughputPoint is one concurrency level's result for both strategies.
type ThroughputPoint struct {
	Callers int
	PerCall ThroughputRow
	Packed  ThroughputRow
}

// ThroughputRow is one strategy's sustained-load measurement.
type ThroughputRow struct {
	RequestsPS float64
	MeanMs     float64 // mean per-call latency
	Requests   int64
	Envelopes  int64 // SOAP messages used
}

// ThroughputResult is the completed experiment.
type ThroughputResult struct {
	Config ThroughputConfig
	Points []ThroughputPoint
}

// RunThroughput measures sustained requests/second for per-call messages
// versus auto-packed messages across offered concurrency levels.
func RunThroughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	if len(cfg.CallerCounts) == 0 {
		cfg.CallerCounts = []int{4, 16, 64, 128}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = 500 * time.Microsecond
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = 'a'
	}
	arg := soapenc.F("data", string(payload))

	result := &ThroughputResult{Config: cfg}
	for _, callers := range cfg.CallerCounts {
		point := ThroughputPoint{Callers: callers}
		for _, packed := range []bool{false, true} {
			row, err := runThroughputPoint(cfg, callers, packed, arg)
			if err != nil {
				return nil, err
			}
			if packed {
				point.Packed = row
			} else {
				point.PerCall = row
			}
		}
		result.Points = append(result.Points, point)
	}
	return result, nil
}

func runThroughputPoint(cfg ThroughputConfig, callers int, packed bool, arg soapenc.Field) (ThroughputRow, error) {
	env, err := NewEnv(cfg.Env)
	if err != nil {
		return ThroughputRow{}, err
	}
	defer env.Close()
	var auto *core.AutoBatcher
	if packed {
		auto = core.NewAutoBatcher(env.Client, cfg.Window, 256)
		defer auto.Close()
	}
	call := func() error {
		var err error
		if packed {
			_, err = auto.Call("Echo", "echo", arg)
		} else {
			_, err = env.Client.Call("Echo", "echo", arg)
		}
		return err
	}

	var completed atomic.Int64
	var totalLatency atomic.Int64 // nanoseconds
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := call(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				totalLatency.Add(int64(time.Since(start)))
				completed.Add(1)
			}
		}()
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ThroughputRow{}, fmt.Errorf("throughput (callers=%d, packed=%v): %w", callers, packed, err)
	}

	n := completed.Load()
	row := ThroughputRow{
		Requests:   n,
		Envelopes:  env.Client.Stats().Envelopes,
		RequestsPS: float64(n) / cfg.Duration.Seconds(),
	}
	if n > 0 {
		row.MeanMs = float64(totalLatency.Load()) / float64(n) / 1e6
	}
	return row, nil
}

// Print renders the sustained-load comparison, one row per concurrency
// level.
func (r *ThroughputResult) Print(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "Throughput (§3.2 design goal) — %d B payloads, %v per point\n",
		r.Config.PayloadBytes, r.Config.Duration)
	fmt.Fprintf(w, "%-8s %16s %16s %14s %14s %12s\n",
		"callers", "per-call req/s", "packed req/s", "per-call ms", "packed ms", "msg ratio")
	for _, p := range r.Points {
		ratio := 0.0
		if p.Packed.Envelopes > 0 {
			ratio = float64(p.Packed.Requests) / float64(p.Packed.Envelopes)
		}
		fmt.Fprintf(w, "%-8d %16.0f %16.0f %14.3f %14.3f %11.1fx\n",
			p.Callers, p.PerCall.RequestsPS, p.Packed.RequestsPS,
			p.PerCall.MeanMs, p.Packed.MeanMs, ratio)
	}
	fmt.Fprintln(w)
}
