package bench

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/soapenc"
	"repro/internal/trace"
)

// TraceStageRow is one stage of the per-stage latency table: span count,
// queue-wait and service-time distributions.
type TraceStageRow struct {
	Stage   string
	Spans   int64
	Queue   metrics.HistogramSummary
	Service metrics.HistogramSummary
}

// TraceModeResult is the full-path trace picture for one client strategy.
type TraceModeResult struct {
	Name   string
	Stages []TraceStageRow
	// AppQueuePeak is the deepest the application-stage queue got.
	AppQueuePeak int64
	// AppOccupancy is the application-stage worker occupancy sampled at the
	// end of the run (informational; the peak gauge is the load signal).
	AppOccupancy float64
	// SpansDropped counts ring overwrites; non-zero means the table under-
	// counts early spans.
	SpansDropped int64
}

// TraceResult is the completed -fig trace experiment.
type TraceResult struct {
	M            int
	PayloadBytes int
	Reps         int
	Modes        []TraceModeResult
}

// RunTrace runs the same M-request workload serially ("No Optimization")
// and packed ("Our Approach") with a tracer shared between client and
// server, then renders the paper-style per-stage breakdown — protocol,
// dispatch, application (queue wait vs. service), assembly, plus the client
// hops — from the recorded spans. This is Figure 5–7's attribution story
// told from real per-hop measurements instead of end-to-end deltas.
func RunTrace(m, payloadBytes, reps int) (*TraceResult, error) {
	if m <= 0 {
		m = 64
	}
	if payloadBytes <= 0 {
		payloadBytes = 10
	}
	if reps <= 0 {
		reps = 5
	}
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = 'a'
	}
	arg := soapenc.F("data", string(payload))

	result := &TraceResult{M: m, PayloadBytes: payloadBytes, Reps: reps}
	for _, packed := range []bool{false, true} {
		// Ring sized to the workload so no span is dropped mid-experiment:
		// serial mode records 7 spans per request (every hop, per message).
		tr := trace.New(8 * reps * (m + 4))
		env, err := NewEnv(EnvOptions{Tracer: tr})
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < reps; rep++ {
			if packed {
				b := env.Client.NewBatch()
				for i := 0; i < m; i++ {
					b.Add("Echo", "echo", arg)
				}
				if err := b.Send(); err != nil {
					env.Close()
					return nil, err
				}
			} else {
				for i := 0; i < m; i++ {
					if _, err := env.Client.Call("Echo", "echo", arg); err != nil {
						env.Close()
						return nil, err
					}
				}
			}
		}
		mode := TraceModeResult{
			Name:         "No Optimization",
			AppOccupancy: env.Server.Stats().AppStage.Occupancy(),
			SpansDropped: tr.Dropped(),
		}
		if packed {
			mode.Name = "Our Approach"
		}
		for _, s := range tr.Stages() {
			mode.Stages = append(mode.Stages, TraceStageRow{
				Stage: s.Stage, Spans: s.Spans, Queue: s.Queue, Service: s.Service,
			})
		}
		for _, g := range tr.Gauges() {
			if g.Name == "app.queue" {
				mode.AppQueuePeak = g.Peak
			}
		}
		env.Close()
		result.Modes = append(result.Modes, mode)
	}
	return result, nil
}

// Print renders the per-stage tables.
func (r *TraceResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Per-stage latency from recorded spans — M=%d requests of %d B, %d reps\n\n",
		r.M, r.PayloadBytes, r.Reps)
	for _, mode := range r.Modes {
		fmt.Fprintf(w, "%s\n", mode.Name)
		fmt.Fprintf(w, "  %-16s %8s %12s %12s %12s %12s %12s\n",
			"stage", "spans", "queue-mean", "svc-mean", "svc-p50", "svc-p95", "svc-p99")
		for _, row := range mode.Stages {
			fmt.Fprintf(w, "  %-16s %8d %11.3fms %11.3fms %11.3fms %11.3fms %11.3fms\n",
				row.Stage, row.Spans,
				metrics.Millis(row.Queue.Mean),
				metrics.Millis(row.Service.Mean),
				metrics.Millis(row.Service.P50),
				metrics.Millis(row.Service.P95),
				metrics.Millis(row.Service.P99))
		}
		fmt.Fprintf(w, "  app queue peak %d, worker occupancy %.2f", mode.AppQueuePeak, mode.AppOccupancy)
		if mode.SpansDropped > 0 {
			fmt.Fprintf(w, ", %d spans dropped (ring full)", mode.SpansDropped)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(queue-mean is time waiting for an application-stage worker; only server.app queues.")
	fmt.Fprintln(w, " quantiles are power-of-two bucket bounds, exact to within 2x.)")
	fmt.Fprintln(w)
}
