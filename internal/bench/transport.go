package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/soapenc"
)

// RunTransport measures the transport tier at connection-count scale:
// a fleet of keep-alive connections each driving a burst of single calls
// against one pipelining server, serial (one exchange in flight per
// connection — a full RTT per call) versus pipelined (the burst written
// back-to-back, responses streamed in order — the RTTs amortize across
// the window).
//
// The link carries real propagation delay, so the serial row pays
// callsPerConn round trips per connection while the pipelined row pays
// roughly one; the app stage is deliberately bounded so the comparison is
// against a backend that cannot simply absorb the fleet.
func RunTransport(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const conns = 1024
	const callsPerConn = 8
	const window = 8
	const workers = 32
	const queue = 16384              // hold the full fleet burst without shedding
	const rtt = 120 * time.Millisecond // 60ms propagation each way

	result := &AblationResult{Title: fmt.Sprintf(
		"Transport tier: %d keep-alive connections × %d calls, %v RTT, pipeline window %d, %d app workers",
		conns, callsPerConn, rtt, window, workers)}

	for _, pipelined := range []bool{false, true} {
		container := registry.NewContainer()
		if err := services.DeployEcho(container, services.Options{}); err != nil {
			return nil, err
		}
		link := netsim.NewLink(netsim.Config{PropagationDelay: rtt / 2})
		lis, err := link.Listen()
		if err != nil {
			link.Close()
			return nil, err
		}
		srv, err := core.NewServer(core.ServerConfig{
			Container: container, AppWorkers: workers, AppQueue: queue,
			PipelineWindow: window,
		})
		if err != nil {
			link.Close()
			return nil, err
		}
		go srv.Serve(lis)

		fleet := make([]*core.Client, conns)
		closeAll := func() {
			for _, c := range fleet {
				if c != nil {
					c.Close()
				}
			}
			srv.Close()
			link.Close()
		}
		for i := range fleet {
			fleet[i], err = core.NewClient(core.ClientConfig{
				Dial: link.Dial, KeepAlive: true, Timeout: 120 * time.Second,
				Pipeline: pipelined, PipelineWindow: window,
			})
			if err != nil {
				closeAll()
				return nil, err
			}
		}
		// Warm every connection with one call so both rows measure steady
		// keep-alive traffic, not 1024 dials (and so the pipelined clients
		// each hold exactly one connection for the burst to share). Waved:
		// the whole fleet dialing at once would overflow the simulated
		// accept backlog, as a real SYN flood would.
		const wave = 64
		for lo := 0; lo < conns; lo += wave {
			hi := lo + wave
			if hi > conns {
				hi = conns
			}
			if err := transportSweep(fleet[lo:hi], 1, false); err != nil {
				closeAll()
				return nil, err
			}
		}

		ms, err := measure(1, reps, func() error {
			return transportSweep(fleet, callsPerConn, pipelined)
		})
		closeAll()
		if err != nil {
			return nil, err
		}
		calls := float64(conns * callsPerConn)
		name := "serial keep-alive (1 exchange in flight per conn)"
		if pipelined {
			name = fmt.Sprintf("pipelined (window %d)", window)
		}
		note := fmt.Sprintf("%.0f calls/s", calls/(ms/1000))
		if pipelined && len(result.Rows) > 0 && ms > 0 {
			note += fmt.Sprintf(" (%+.0f%% vs serial)", (result.Rows[0].Millis/ms-1)*100)
		}
		result.Rows = append(result.Rows, AblationRow{Name: name, Millis: ms, Note: note})
	}
	return result, nil
}

// TransportFleet is a warmed fleet of keep-alive connections against one
// pipelining echo server over a zero-delay link — the setup benchmark
// harnesses need for connection-count scaling rows without paying the dial
// storm inside the timed region. With window > 0 the clients pipeline;
// window 0 gives a single serial keep-alive connection (the alloc-per-call
// guard for the pooled read buffers).
type TransportFleet struct {
	fleet []*core.Client
	srv   *core.Server
	link  *netsim.Link
}

// NewTransportFleet deploys the echo container, starts the server, dials
// conns keep-alive connections in accept-backlog-sized waves and warms each
// with one call, so the first timed sweep sees steady-state traffic.
func NewTransportFleet(conns, window int) (*TransportFleet, error) {
	container := registry.NewContainer()
	if err := services.DeployEcho(container, services.Options{}); err != nil {
		return nil, err
	}
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		link.Close()
		return nil, err
	}
	queue := conns * 8
	if queue < 1024 {
		queue = 1024
	}
	srv, err := core.NewServer(core.ServerConfig{
		Container: container, AppWorkers: 16, AppQueue: queue,
		PipelineWindow: window,
	})
	if err != nil {
		link.Close()
		return nil, err
	}
	go srv.Serve(lis)
	f := &TransportFleet{fleet: make([]*core.Client, conns), srv: srv, link: link}
	for i := range f.fleet {
		f.fleet[i], err = core.NewClient(core.ClientConfig{
			Dial: link.Dial, KeepAlive: true, Timeout: 120 * time.Second,
			Pipeline: window > 0, PipelineWindow: window,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	const wave = 64 // stay under the simulated accept backlog
	for lo := 0; lo < conns; lo += wave {
		hi := lo + wave
		if hi > conns {
			hi = conns
		}
		if err := transportSweep(f.fleet[lo:hi], 1, false); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Sweep drives every connection through callsPerConn concurrent calls.
func (f *TransportFleet) Sweep(callsPerConn int) error {
	return transportSweep(f.fleet, callsPerConn, true)
}

// Echo performs one serial call on the first connection — the steady-state
// keep-alive exchange whose allocations the read-buffer pool bounds.
func (f *TransportFleet) Echo() error {
	_, err := f.fleet[0].Call("Echo", "echo", soapenc.F("data", "transport-tier"))
	return err
}

// Close tears down the fleet, the server and the link.
func (f *TransportFleet) Close() {
	for _, c := range f.fleet {
		if c != nil {
			c.Close()
		}
	}
	f.srv.Close()
	f.link.Close()
}

// transportSweep drives every client through calls echo exchanges: serially
// when burst is false (one at a time, the serial keep-alive regime), or all
// at once when true (the in-flight burst the pipeline coalesces onto one
// connection).
func transportSweep(fleet []*core.Client, calls int, burst bool) error {
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	arg := soapenc.F("data", "transport-tier")
	for i := range fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if burst {
				var cwg sync.WaitGroup
				cerrs := make([]error, calls)
				for j := 0; j < calls; j++ {
					cwg.Add(1)
					go func(j int) {
						defer cwg.Done()
						_, cerrs[j] = fleet[i].Call("Echo", "echo", arg)
					}(j)
				}
				cwg.Wait()
				for _, e := range cerrs {
					if e != nil {
						errs[i] = e
						return
					}
				}
				return
			}
			for j := 0; j < calls; j++ {
				if _, err := fleet[i].Call("Echo", "echo", arg); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
