package bench

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/services"
)

// TravelConfig parameterizes the §4.3 travel-agent experiment.
type TravelConfig struct {
	// Repetitions is how many times each mode runs (the paper: "The test
	// in each case is repeated 10 times").
	Repetitions int
	// Warmup runs before measurement (default 1).
	Warmup int
	// Env configures the environment. Travel services are always
	// deployed.
	Env EnvOptions
	// WorkTime simulates the vendors' backend work per operation.
	WorkTime time.Duration
}

// TravelResult reports the §4.3 comparison.
type TravelResult struct {
	Config TravelConfig

	Unoptimized metrics.Summary
	Optimized   metrics.Summary

	// Messages sent per run in each mode (11 vs 7).
	UnoptimizedMessages int
	OptimizedMessages   int

	// ImprovementPct is (unopt-opt)/unopt * 100 — the paper reports 26%.
	ImprovementPct float64
}

// RunTravel measures the travel-agent sequence with and without packing
// steps 1 and 3.
func RunTravel(cfg TravelConfig) (*TravelResult, error) {
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 10
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 1
	}
	cfg.Env.Travel = true
	if cfg.WorkTime > 0 {
		cfg.Env.WorkTime = cfg.WorkTime
	}

	result := &TravelResult{Config: cfg}
	for _, optimized := range []bool{false, true} {
		// A fresh environment per mode keeps reservation books disjoint.
		env, err := NewEnv(cfg.Env)
		if err != nil {
			return nil, err
		}
		var rec metrics.Recorder
		for rep := 0; rep < cfg.Warmup+cfg.Repetitions; rep++ {
			start := time.Now()
			it, err := services.RunTravelAgent(env.Client, services.DefaultItinerary(), optimized)
			elapsed := time.Since(start)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("travel agent (optimized=%v): %w", optimized, err)
			}
			if rep >= cfg.Warmup {
				rec.Record(elapsed)
			}
			if optimized {
				result.OptimizedMessages = it.Messages
			} else {
				result.UnoptimizedMessages = it.Messages
			}
		}
		if optimized {
			result.Optimized = rec.Snapshot()
		} else {
			result.Unoptimized = rec.Snapshot()
		}
		env.Close()
	}
	u, o := metrics.Millis(result.Unoptimized.Mean), metrics.Millis(result.Optimized.Mean)
	if u > 0 {
		result.ImprovementPct = (u - o) / u * 100
	}
	return result, nil
}
