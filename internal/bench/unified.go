package bench

import "fmt"

// RunUnifiedFastPath prices the re-unified streaming path (PR 9): before it,
// enabling WS-Security or differential deserialization silently dropped the
// server onto buffered full-tree dispatch; now both stream, and only the
// explicit BufferedDispatch opt-out (or a whole-tree Interceptor) buffers.
// The experiment runs the packed M=16 echo workload — the acceptance
// workload of the change — through each feature combination on the
// streaming path and through the buffered opt-out, so the table shows both
// what the features cost on the fast path (target: WSSE+diff within ~1.15×
// of bare streaming) and what falling off it would cost.
func RunUnifiedFastPath(reps int) (*AblationResult, error) {
	if reps <= 0 {
		reps = 5
	}
	const m = 16
	payload := "aaaaaaaaaa" // 10 B, the Figure 5 regime
	result := &AblationResult{Title: fmt.Sprintf(
		"Unified fast path: packed echo (M=%d, 10 B payloads), streaming vs buffered opt-out", m)}

	type variant struct {
		name string
		opt  EnvOptions
		note string
	}
	variants := []variant{
		{"streaming, bare", EnvOptions{},
			"the fast path, no features"},
		{"streaming + diff deser", EnvOptions{DiffDeserialization: true},
			"per-entry subtree cache, hits skip tokenizing"},
		{"streaming + WSSE", EnvOptions{WSSecurity: true},
			"signature verified concurrently with dispatch"},
		{"streaming + WSSE + diff", EnvOptions{WSSecurity: true, DiffDeserialization: true},
			"both features, still streaming (was: buffered)"},
		{"buffered opt-out + WSSE + diff", EnvOptions{
			WSSecurity: true, DiffDeserialization: true, BufferedDispatch: true},
			"the old fallback path, for comparison"},
	}

	for _, v := range variants {
		env, err := NewEnv(v.opt)
		if err != nil {
			return nil, err
		}
		ms, err := measure(1, reps, func() error {
			return packedRun(env.Client, m, payload)
		})
		env.Close()
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, AblationRow{Name: v.name, Millis: ms, Note: v.note})
	}
	return result, nil
}
