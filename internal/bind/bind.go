// Package bind maps Go structs onto the SOAP parameter model by
// reflection, in the style of net/rpc and encoding/json: services declare
// plain typed request/response structs and handler functions, and the
// binding layer converts to and from the dynamic soapenc values the wire
// uses.
//
// This is the programming model the Axis-era toolkits generated from WSDL
// with code generators; Go's reflection lets the same convenience come
// from the type system directly:
//
//	type HelloReq struct {
//	    Name string `soap:"name"`
//	}
//	type HelloResp struct {
//	    Greeting string `soap:"greeting"`
//	}
//	svc.Register("Hello", bind.MustHandler(func(ctx *registry.Context, req HelloReq) (HelloResp, error) {
//	    return HelloResp{Greeting: "hello, " + req.Name}, nil
//	}), "typed greeting")
//
// Supported field types: string, bool, all int/uint sizes (uint64 values
// above MaxInt64 are rejected), float32/64, []byte, time.Time, slices,
// pointers (nil maps to xsi:nil), and nested structs. The `soap` tag
// renames a field; `soap:"-"` skips it; unexported fields are skipped.
package bind

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/soapenc"
)

var (
	timeType  = reflect.TypeOf(time.Time{})
	bytesType = reflect.TypeOf([]byte(nil))
)

// Marshal converts a Go value into a soapenc.Value.
func Marshal(v any) (soapenc.Value, error) {
	if v == nil {
		return nil, nil
	}
	return marshalValue(reflect.ValueOf(v))
}

func marshalValue(rv reflect.Value) (soapenc.Value, error) {
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return nil, nil
		}
		return marshalValue(rv.Elem())
	case reflect.String:
		return rv.String(), nil
	case reflect.Bool:
		return rv.Bool(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := rv.Uint()
		if u > math.MaxInt64 {
			return nil, fmt.Errorf("bind: uint value %d overflows the wire integer type", u)
		}
		return int64(u), nil
	case reflect.Float32, reflect.Float64:
		return rv.Float(), nil
	case reflect.Slice:
		if rv.IsNil() {
			// nil slices map to xsi:nil so they round-trip distinctly
			// from empty slices (which become zero-item arrays).
			return nil, nil
		}
		if rv.Type() == bytesType {
			return append([]byte(nil), rv.Bytes()...), nil
		}
		arr := make(soapenc.Array, rv.Len())
		for i := 0; i < rv.Len(); i++ {
			v, err := marshalValue(rv.Index(i))
			if err != nil {
				return nil, err
			}
			arr[i] = v
		}
		return arr, nil
	case reflect.Array:
		arr := make(soapenc.Array, rv.Len())
		for i := 0; i < rv.Len(); i++ {
			v, err := marshalValue(rv.Index(i))
			if err != nil {
				return nil, err
			}
			arr[i] = v
		}
		return arr, nil
	case reflect.Struct:
		if rv.Type() == timeType {
			return rv.Interface().(time.Time), nil
		}
		fields, err := MarshalFields(rv.Interface())
		if err != nil {
			return nil, err
		}
		return &soapenc.Struct{Fields: fields}, nil
	default:
		return nil, fmt.Errorf("bind: cannot marshal %s", rv.Type())
	}
}

// MarshalFields converts a struct value into an ordered field list — the
// form RPC parameters and results take.
func MarshalFields(v any) ([]soapenc.Field, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, nil
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("bind: MarshalFields needs a struct, got %s", rv.Type())
	}
	rt := rv.Type()
	var out []soapenc.Field
	for i := 0; i < rt.NumField(); i++ {
		sf := rt.Field(i)
		name, skip := fieldName(sf)
		if skip {
			continue
		}
		val, err := marshalValue(rv.Field(i))
		if err != nil {
			return nil, fmt.Errorf("bind: field %s: %w", sf.Name, err)
		}
		out = append(out, soapenc.Field{Name: name, Value: val})
	}
	return out, nil
}

// fieldName resolves the wire name of a struct field from the `soap` tag.
func fieldName(sf reflect.StructField) (name string, skip bool) {
	if !sf.IsExported() {
		return "", true
	}
	tag := sf.Tag.Get("soap")
	if tag == "-" {
		return "", true
	}
	if tag != "" {
		if i := strings.IndexByte(tag, ','); i >= 0 {
			tag = tag[:i]
		}
		if tag != "" {
			return tag, false
		}
	}
	return sf.Name, false
}

// Unmarshal converts a soapenc.Value into the Go value pointed to by dst.
func Unmarshal(v soapenc.Value, dst any) error {
	rv := reflect.ValueOf(dst)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("bind: Unmarshal needs a non-nil pointer, got %T", dst)
	}
	return unmarshalValue(v, rv.Elem())
}

func unmarshalValue(v soapenc.Value, rv reflect.Value) error {
	if v == nil {
		// nil maps to the zero value; pointers become nil.
		rv.SetZero()
		return nil
	}
	if rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return unmarshalValue(v, rv.Elem())
	}
	switch val := v.(type) {
	case string:
		if rv.Kind() != reflect.String {
			return typeErr(v, rv)
		}
		rv.SetString(val)
	case bool:
		if rv.Kind() != reflect.Bool {
			return typeErr(v, rv)
		}
		rv.SetBool(val)
	case int64:
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if rv.OverflowInt(val) {
				return fmt.Errorf("bind: %d overflows %s", val, rv.Type())
			}
			rv.SetInt(val)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if val < 0 || rv.OverflowUint(uint64(val)) {
				return fmt.Errorf("bind: %d does not fit %s", val, rv.Type())
			}
			rv.SetUint(uint64(val))
		case reflect.Float32, reflect.Float64:
			rv.SetFloat(float64(val))
		default:
			return typeErr(v, rv)
		}
	case float64:
		switch rv.Kind() {
		case reflect.Float32, reflect.Float64:
			rv.SetFloat(val)
		default:
			return typeErr(v, rv)
		}
	case []byte:
		if rv.Type() != bytesType {
			return typeErr(v, rv)
		}
		rv.SetBytes(append([]byte(nil), val...))
	case time.Time:
		if rv.Type() != timeType {
			return typeErr(v, rv)
		}
		rv.Set(reflect.ValueOf(val))
	case soapenc.Array:
		if rv.Kind() != reflect.Slice {
			return typeErr(v, rv)
		}
		out := reflect.MakeSlice(rv.Type(), len(val), len(val))
		for i, item := range val {
			if err := unmarshalValue(item, out.Index(i)); err != nil {
				return fmt.Errorf("bind: element %d: %w", i, err)
			}
		}
		rv.Set(out)
	case *soapenc.Struct:
		if rv.Kind() != reflect.Struct || rv.Type() == timeType {
			return typeErr(v, rv)
		}
		return UnmarshalFields(val.Fields, rv.Addr().Interface())
	default:
		return fmt.Errorf("bind: unsupported wire value %T", v)
	}
	return nil
}

func typeErr(v soapenc.Value, rv reflect.Value) error {
	return fmt.Errorf("bind: cannot store wire %T into Go %s", v, rv.Type())
}

// UnmarshalFields fills a struct from an ordered field list, matching by
// wire name. Unknown wire fields are ignored (lenient, like the era's
// toolkits); missing ones leave the zero value.
func UnmarshalFields(fields []soapenc.Field, dst any) error {
	rv := reflect.ValueOf(dst)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("bind: UnmarshalFields needs a non-nil pointer, got %T", dst)
	}
	rv = rv.Elem()
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("bind: UnmarshalFields needs a struct pointer, got %T", dst)
	}
	rt := rv.Type()
	byName := make(map[string]int, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		name, skip := fieldName(rt.Field(i))
		if !skip {
			byName[name] = i
		}
	}
	for _, f := range fields {
		idx, ok := byName[f.Name]
		if !ok {
			continue
		}
		if err := unmarshalValue(f.Value, rv.Field(idx)); err != nil {
			return fmt.Errorf("bind: field %q: %w", f.Name, err)
		}
	}
	return nil
}

// Handler adapts a typed function to the registry.Handler signature. fn
// must be:
//
//	func(ctx *registry.Context, req ReqStruct) (RespStruct, error)
//
// where ReqStruct and RespStruct are struct types (or pointers to them).
func Handler(fn any) (registry.Handler, error) {
	fv := reflect.ValueOf(fn)
	ft := fv.Type()
	if ft.Kind() != reflect.Func {
		return nil, fmt.Errorf("bind: Handler needs a function, got %T", fn)
	}
	ctxType := reflect.TypeOf((*registry.Context)(nil))
	errType := reflect.TypeOf((*error)(nil)).Elem()
	if ft.NumIn() != 2 || ft.In(0) != ctxType {
		return nil, fmt.Errorf("bind: handler must be func(*registry.Context, Req) (Resp, error)")
	}
	if ft.NumOut() != 2 || !ft.Out(1).Implements(errType) || ft.Out(1) != errType {
		return nil, fmt.Errorf("bind: handler must return (Resp, error)")
	}
	reqType := ft.In(1)
	reqStruct := reqType
	for reqStruct.Kind() == reflect.Pointer {
		reqStruct = reqStruct.Elem()
	}
	if reqStruct.Kind() != reflect.Struct {
		return nil, fmt.Errorf("bind: request type %s is not a struct", reqType)
	}
	respType := ft.Out(0)
	respStruct := respType
	for respStruct.Kind() == reflect.Pointer {
		respStruct = respStruct.Elem()
	}
	if respStruct.Kind() != reflect.Struct {
		return nil, fmt.Errorf("bind: response type %s is not a struct", respType)
	}

	return func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		reqPtr := reflect.New(reqStruct)
		if err := UnmarshalFields(params, reqPtr.Interface()); err != nil {
			return nil, err
		}
		arg := reqPtr.Elem()
		if reqType.Kind() == reflect.Pointer {
			arg = reqPtr
		}
		out := fv.Call([]reflect.Value{reflect.ValueOf(ctx), arg})
		if errV := out[1]; !errV.IsNil() {
			return nil, errV.Interface().(error)
		}
		return MarshalFields(out[0].Interface())
	}, nil
}

// MustHandler is Handler that panics on a bad signature, for static wiring.
func MustHandler(fn any) registry.Handler {
	h, err := Handler(fn)
	if err != nil {
		panic(err)
	}
	return h
}

// CallTyped performs the client-side half of the typed binding: it
// marshals a request struct into parameters and unmarshals the results
// into a response struct. caller abstracts any of the client's invocation
// surfaces (Call, AutoBatcher.Call, ...).
func CallTyped(caller func(params ...soapenc.Field) ([]soapenc.Field, error), req, resp any) error {
	params, err := MarshalFields(req)
	if err != nil {
		return err
	}
	results, err := caller(params...)
	if err != nil {
		return err
	}
	return UnmarshalFields(results, resp)
}
