package bind

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/registry"
	"repro/internal/soapenc"
)

type inner struct {
	Label string  `soap:"label"`
	Score float64 `soap:"score"`
}

type everything struct {
	Name     string  `soap:"name"`
	Count    int     `soap:"count"`
	Small    int8    `soap:"small"`
	Wide     int64   `soap:"wide"`
	U        uint16  `soap:"u"`
	Ratio    float64 `soap:"ratio"`
	F32      float32 `soap:"f32"`
	OK       bool    `soap:"ok"`
	Blob     []byte  `soap:"blob"`
	When     time.Time
	Tags     []string `soap:"tags"`
	Nested   inner    `soap:"nested"`
	PtrVal   *string  `soap:"ptrVal"`
	NilPtr   *inner   `soap:"nilPtr"`
	Ignored  string   `soap:"-"`
	hidden   string
	Untagged int
}

func sample() everything {
	s := "pointed"
	return everything{
		Name:     "x",
		Count:    7,
		Small:    -3,
		Wide:     math.MaxInt64,
		U:        65535,
		Ratio:    2.5,
		F32:      1.25,
		OK:       true,
		Blob:     []byte{1, 2, 3},
		When:     time.Date(2006, 7, 5, 1, 2, 3, 0, time.UTC),
		Tags:     []string{"a", "b"},
		Nested:   inner{Label: "in", Score: 9.5},
		PtrVal:   &s,
		hidden:   "no",
		Untagged: 11,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	src := sample()
	fields, err := MarshalFields(src)
	if err != nil {
		t.Fatal(err)
	}
	var dst everything
	if err := UnmarshalFields(fields, &dst); err != nil {
		t.Fatal(err)
	}
	// hidden and Ignored are not carried.
	src.hidden, src.Ignored = "", ""
	if !reflect.DeepEqual(src, dst) {
		t.Errorf("round trip mismatch:\nsrc %+v\ndst %+v", src, dst)
	}
}

func TestMarshalThroughWire(t *testing.T) {
	// The binding must survive the actual wire encoding, not just the
	// in-memory value model.
	fields, err := MarshalFields(sample())
	if err != nil {
		t.Fatal(err)
	}
	v, err := Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	// Encode the fields as params into an element and decode back via
	// soapenc (exercised further in core integration tests).
	if len(fields) == 0 {
		t.Fatal("no fields")
	}
	names := map[string]bool{}
	for _, f := range fields {
		names[f.Name] = true
	}
	for _, want := range []string{"name", "count", "When", "Untagged", "nested"} {
		if !names[want] {
			t.Errorf("missing wire field %q (have %v)", want, names)
		}
	}
	if names["Ignored"] || names["hidden"] {
		t.Error("skipped fields leaked to the wire")
	}
}

func TestFieldNameTag(t *testing.T) {
	type tagged struct {
		A string `soap:"renamed,omitempty"` // options after comma ignored
		B string `soap:""`
	}
	fields, err := MarshalFields(tagged{A: "1", B: "2"})
	if err != nil {
		t.Fatal(err)
	}
	if fields[0].Name != "renamed" || fields[1].Name != "B" {
		t.Errorf("names = %v", fields)
	}
}

func TestUnmarshalLenient(t *testing.T) {
	var dst inner
	err := UnmarshalFields([]soapenc.Field{
		soapenc.F("label", "x"),
		soapenc.F("unknownField", "ignored"),
	}, &dst)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Label != "x" || dst.Score != 0 {
		t.Errorf("dst = %+v", dst)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s inner
	if err := UnmarshalFields(nil, s); err == nil {
		t.Error("non-pointer accepted")
	}
	var i int
	if err := UnmarshalFields(nil, &i); err == nil {
		t.Error("non-struct accepted")
	}
	if err := UnmarshalFields([]soapenc.Field{soapenc.F("score", "notafloat")}, &s); err == nil {
		t.Error("type mismatch accepted")
	}
	var narrow struct {
		N int8 `soap:"n"`
	}
	if err := UnmarshalFields([]soapenc.Field{soapenc.F("n", int64(1000))}, &narrow); err == nil {
		t.Error("overflow accepted")
	}
	var unsigned struct {
		N uint8 `soap:"n"`
	}
	if err := UnmarshalFields([]soapenc.Field{soapenc.F("n", int64(-1))}, &unsigned); err == nil {
		t.Error("negative into uint accepted")
	}
}

func TestMarshalRejectsUnsupported(t *testing.T) {
	type bad struct {
		M map[string]int `soap:"m"`
	}
	if _, err := MarshalFields(bad{M: map[string]int{}}); err == nil {
		t.Error("map accepted")
	}
	type overflow struct {
		U uint64 `soap:"u"`
	}
	if _, err := MarshalFields(overflow{U: math.MaxUint64}); err == nil {
		t.Error("uint64 overflow accepted")
	}
	if _, err := MarshalFields("not a struct"); err == nil {
		t.Error("non-struct accepted")
	}
}

func TestHandlerAdapter(t *testing.T) {
	type req struct {
		A int64 `soap:"a"`
		B int64 `soap:"b"`
	}
	type resp struct {
		Sum int64 `soap:"sum"`
	}
	h := MustHandler(func(ctx *registry.Context, r req) (resp, error) {
		if r.B == 0 {
			return resp{}, errors.New("b must not be zero")
		}
		return resp{Sum: r.A + r.B}, nil
	})
	out, err := h(&registry.Context{}, []soapenc.Field{soapenc.F("a", int64(2)), soapenc.F("b", int64(3))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Name != "sum" || !soapenc.Equal(out[0].Value, int64(5)) {
		t.Errorf("out = %v", out)
	}
	if _, err := h(&registry.Context{}, []soapenc.Field{soapenc.F("a", int64(1))}); err == nil {
		t.Error("handler error not propagated")
	}
}

func TestHandlerPointerTypes(t *testing.T) {
	type req struct {
		X string `soap:"x"`
	}
	type resp struct {
		Y string `soap:"y"`
	}
	h := MustHandler(func(ctx *registry.Context, r *req) (*resp, error) {
		return &resp{Y: r.X + "!"}, nil
	})
	out, err := h(&registry.Context{}, []soapenc.Field{soapenc.F("x", "hi")})
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(out[0].Value, "hi!") {
		t.Errorf("out = %v", out)
	}
}

func TestHandlerSignatureValidation(t *testing.T) {
	bads := []any{
		42,
		func() {},
		func(ctx *registry.Context) (struct{}, error) { return struct{}{}, nil },
		func(ctx *registry.Context, s string) (struct{}, error) { return struct{}{}, nil },
		func(ctx *registry.Context, s struct{}) struct{} { return struct{}{} },
		func(ctx *registry.Context, s struct{}) (string, error) { return "", nil },
	}
	for _, fn := range bads {
		if _, err := Handler(fn); err == nil {
			t.Errorf("signature %T accepted", fn)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustHandler did not panic")
		}
	}()
	MustHandler(7)
}

func TestCallTyped(t *testing.T) {
	type req struct {
		In string `soap:"in"`
	}
	type resp struct {
		Out string `soap:"out"`
	}
	caller := func(params ...soapenc.Field) ([]soapenc.Field, error) {
		if len(params) != 1 || params[0].Name != "in" {
			return nil, errors.New("bad params")
		}
		s, _ := params[0].Value.(string)
		return []soapenc.Field{soapenc.F("out", strings.ToUpper(s))}, nil
	}
	var out resp
	if err := CallTyped(caller, req{In: "soap"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Out != "SOAP" {
		t.Errorf("out = %+v", out)
	}
}

// Property: random instances of a mixed struct survive the binding round
// trip.
func TestQuickBindRoundTrip(t *testing.T) {
	type leaf struct {
		S string  `soap:"s"`
		N int32   `soap:"n"`
		F float64 `soap:"f"`
		B bool    `soap:"b"`
	}
	type node struct {
		Leaves []leaf `soap:"leaves"`
		Tag    string `soap:"tag"`
		Num    int64  `soap:"num"`
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := node{Tag: randASCII(r), Num: r.Int63()}
		for i := 0; i < r.Intn(4); i++ {
			src.Leaves = append(src.Leaves, leaf{
				S: randASCII(r), N: int32(r.Int31()), F: float64(r.Intn(1e6)) / 16, B: r.Intn(2) == 0,
			})
		}
		fields, err := MarshalFields(src)
		if err != nil {
			return false
		}
		var dst node
		if err := UnmarshalFields(fields, &dst); err != nil {
			return false
		}
		return reflect.DeepEqual(src, dst)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randASCII(r *rand.Rand) string {
	n := r.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}
