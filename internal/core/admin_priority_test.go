package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// TestAdminBypassesAppStage pins the control-plane priority lane: Admin
// operations execute on the protocol thread even in the staged
// architecture, so a GetStats poll answers while the application stage is
// completely wedged. Without the lane the poll would queue behind the very
// backlog it is supposed to report, time out at the gateway, and the
// membership manager would mark the most overloaded backend stale —
// reverting its weight exactly when derating matters most.
func TestAdminBypassesAppStage(t *testing.T) {
	gate := make(chan struct{})
	c := registry.NewContainer()
	svc := c.MustAddService("Block", "urn:spi:Block", "parks until released")
	svc.MustRegister("wait", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		<-gate
		return params, nil
	}, "blocks on a gate")

	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Container: c, AppWorkers: 1, AppQueue: 4,
		AdminService: true, AdminWeight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second, KeepAlive: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		link.Close()
	})

	// Wedge the app stage: the single worker parks on the gate and more
	// calls stack in the queue behind it.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blocked, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 30 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer blocked.Close()
			if _, err := blocked.Call("Block", "wait", soapenc.F("n", int64(1))); err != nil {
				t.Errorf("gated call: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.AppStage.Busy >= 1 && st.AppStage.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("app stage never saturated: %+v", st.AppStage)
		}
		time.Sleep(time.Millisecond)
	}

	// The control-plane call must answer promptly despite the wedge, and
	// its snapshot must show the saturation it bypassed.
	start := time.Now()
	fields, err := cli.Call(admin.ServiceName, admin.OpGetStats)
	if err != nil {
		t.Fatalf("GetStats while app stage wedged: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("GetStats took %v; control plane queued behind data plane", d)
	}
	stats, err := admin.StatsFromFields(fields)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Weight != 2 || stats.Busy < 1 || stats.QueueDepth < 1 {
		t.Errorf("stats = weight %d busy %d queue %d; want weight 2, busy ≥ 1, queue ≥ 1",
			stats.Weight, stats.Busy, stats.QueueDepth)
	}

	close(gate)
	wg.Wait()
}
