package core

import (
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// DOM-free packed assembly. The buffered path builds a Parallel_Response
// element tree per message and serializes it once at the end; the streaming
// assembler here writes the same bytes directly into a pooled emitter, one
// entry at a time, as workers complete. Differential tests pin the two
// paths byte-identical under randomized worker completion orders.

var (
	namePackResponse = xmltext.Name{Prefix: PrefixPack, Local: ElemParallelResponse}
	namePackMethod   = xmltext.Name{Prefix: PrefixPack, Local: ElemParallelMethod}
	nameXmlnsSpi     = xmltext.Name{Prefix: "xmlns", Local: PrefixPack}
	nameXmlnsM       = xmltext.Name{Prefix: "xmlns", Local: "m"}
)

// packedAssembler incrementally encodes Parallel_Response entries into a
// pooled body fragment. Entries are written in slot order; next is the head
// of the reorder window — the first slot whose result has not been encoded
// yet. The fragment is kept separate from the envelope emitter because
// response headers (contributed by handlers) are only known once every
// worker has finished.
type packedAssembler struct {
	em         *xmltext.Emitter
	next       int           // reorder-window head: first unencoded slot
	encDur     time.Duration // time spent encoding, for phase attribution
	itemFaults int
	faultCodes *fault.Counters // server's per-wire-code tallies; nil in tests
	failed     error           // first soapenc error; encoding stops once set
}

func newPackedAssembler() *packedAssembler {
	a := &packedAssembler{em: xmltext.AcquireEmitter()}
	a.em.Start(namePackResponse)
	a.em.Attr(nameXmlnsSpi, NSPack)
	return a
}

// release returns the fragment buffer to the pool. Idempotent: finish sets
// em to nil once ownership of the bytes has moved to the response encoder.
func (a *packedAssembler) release() {
	if a.em != nil {
		xmltext.ReleaseEmitter(a.em)
		a.em = nil
	}
}

// drain encodes every contiguous completed slot at the front of the
// reorder window. Slots are write-once, so the pointer read under the
// collector lock stays valid while encoding happens outside it.
func (a *packedAssembler) drain(col *streamCollector, serviceNS func(service string) string) {
	if a.failed != nil {
		return
	}
	for {
		col.mu.Lock()
		var r *rpcResult
		if a.next < len(col.results) {
			r = col.results[a.next]
		}
		col.mu.Unlock()
		if r == nil {
			return
		}
		if err := a.encodeEntry(r, serviceNS); err != nil {
			a.failed = err
			return
		}
		a.next++
	}
}

// encodeEntry writes one response entry, byte-identical to the
// buildPackedResponse child for the same result: a per-item SOAP 1.1 Fault
// or <m:opResponse xmlns:m="ns" spi:id="..">, attributes in DOM SetAttr
// order.
func (a *packedAssembler) encodeEntry(r *rpcResult, serviceNS func(service string) string) error {
	start := time.Now()
	var tmp [24]byte
	id := xmltext.Intern(strconv.AppendInt(tmp[:0], int64(r.id), 10))
	if r.fault != nil {
		a.itemFaults++
		if a.faultCodes != nil {
			a.faultCodes.NoteSOAP(r.fault)
		}
		// Per-item faults use the SOAP 1.1 layout regardless of envelope
		// version, as the buffered path's Fault.Element does.
		r.fault.AppendElementFor(a.em, soap.V11, xmltext.Attr{Name: attrID, Value: id})
		a.encDur += time.Since(start)
		return nil
	}
	var local [96]byte
	op := append(local[:0], r.op...)
	op = append(op, "Response"...)
	a.em.Start(xmltext.Name{Prefix: "m", Local: xmltext.Intern(op)})
	a.em.Attr(nameXmlnsM, serviceNS(r.service))
	a.em.Attr(attrID, id)
	err := soapenc.EncodeParamsTo(a.em, r.results)
	if err == nil {
		a.em.End()
	}
	a.encDur += time.Since(start)
	return err
}

// finish closes the Parallel_Response fragment, wraps it in an envelope
// with the response headers, and returns the HTTP response backed by a
// pooled buffer that is released after the bytes hit the wire.
func (a *packedAssembler) finish(v soap.Version, headers []*xmldom.Element) (*httpx.Response, error) {
	start := time.Now()
	a.em.End() // Parallel_Response
	if err := a.em.Finish(); err != nil {
		a.encDur += time.Since(start)
		return nil, err
	}
	enc := soap.NewStreamEncoder()
	enc.Begin(v, headers)
	enc.Emitter().Raw(a.em.Bytes())
	body, err := enc.Finish()
	a.release()
	if err != nil {
		enc.Release()
		a.encDur += time.Since(start)
		return nil, err
	}
	resp := httpx.NewResponse(200, body)
	resp.Header.Set("Content-Type", v.ContentType())
	resp.SetRelease(enc.Release)
	a.encDur += time.Since(start)
	return resp, nil
}

// appendRequestEntry streams one RPC request element — the DOM-free form
// of encodeRequestElement plus, when id >= 0, the packed-entry correlation
// attributes buildPackedRequest sets.
func appendRequestEntry(em *xmltext.Emitter, ns, op string, params []soapenc.Field, id int, service string) error {
	em.Start(xmltext.Name{Prefix: "m", Local: op})
	em.Attr(nameXmlnsM, ns)
	if id >= 0 {
		var tmp [24]byte
		em.Attr(attrID, xmltext.Intern(strconv.AppendInt(tmp[:0], int64(id), 10)))
		em.Attr(attrService, service)
	}
	if err := soapenc.EncodeParamsTo(em, params); err != nil {
		return err
	}
	em.End()
	return nil
}

// detachFault deep-copies a fault's arena-owned detail so the fault can
// outlive the response arena it was decoded from.
func detachFault(f *soap.Fault) *soap.Fault {
	if f != nil && f.Detail != nil {
		f.Detail = f.Detail.Clone()
	}
	return f
}
