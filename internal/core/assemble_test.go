package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// These tests pin the DOM-free encode paths byte-identical to the buffered
// DOM paths they replace: the streamed Parallel_Response assembler against
// buildPackedResponse (under randomized worker completion orders), the
// streamed packed request against buildPackedRequest, and the full streamed
// server response against the buffered server's bytes end to end.

// testNS resolves service namespaces the way the echo container does.
func testNS(service string) string { return "urn:spi:" + service }

// sampleResults builds a result set exercising every entry shape the
// assembler encodes: multi-typed params, empty results, per-item faults
// (minimal and fully populated, with arena-free Detail trees), and spi:id
// values that differ from slot order.
func sampleResults() []*rpcResult {
	detail := xmldom.NewElement(xmltext.Name{Local: "detail"})
	detail.AddElement(xmltext.Name{Local: "info"}).SetText("stage <3> & co")
	return []*rpcResult{
		{id: 0, service: "Echo", op: "echo", results: []soapenc.Field{
			soapenc.F("msg", "a<b&c]]>\"'"), soapenc.F("n", int64(-42)),
		}},
		{id: 7, service: "Echo", op: "echo", results: []soapenc.Field{
			soapenc.F("ok", true), soapenc.F("ratio", 0.25), soapenc.F("blob", []byte{0, 1, 2, 0xff}),
		}},
		{id: 2, service: "Echo", op: "slow", fault: &soap.Fault{
			Code: soap.FaultServer, String: "deliberate <failure>", Actor: "urn:actor", Detail: detail,
		}},
		{id: 3, service: "WeatherService", op: "GetWeather", results: []soapenc.Field{
			soapenc.F("GetWeatherResult", "Sunny in \tBeijing\n"),
		}},
		{id: 4, service: "Echo", op: "echo", results: nil},
		{id: 5, service: "Echo", op: "fail", fault: &soap.Fault{
			Code: FaultCodeTimeout, String: "deadline expired before Echo.fail finished",
		}},
		{id: 6, service: "Echo", op: "echo", results: []soapenc.Field{
			soapenc.F("when", time.Date(2026, 8, 5, 12, 34, 56, 789000000, time.UTC)),
			soapenc.F("nothing", nil),
		}},
	}
}

// assembleStreamed replays dispatchPackedStream's assembly loop: results are
// delivered into the collector from another goroutine in the given order
// while the reorder window drains contiguous completed slots, then the
// closed fragment bytes are returned.
func assembleStreamed(t *testing.T, results []*rpcResult, order []int) string {
	t.Helper()
	col := newStreamCollector()
	for range results {
		col.addSlot()
	}
	asm := newPackedAssembler()
	defer asm.release()

	go func() {
		for _, slot := range order {
			col.deliver(slot, results[slot])
		}
	}()

	ctx := context.Background()
	for asm.next < len(results) {
		asm.drain(col, testNS)
		if asm.failed != nil || asm.next >= len(results) {
			break
		}
		col.waitSlot(ctx, asm.next)
	}
	if asm.failed != nil {
		t.Fatalf("assembler failed: %v", asm.failed)
	}
	asm.em.End() // Parallel_Response
	if err := asm.em.Finish(); err != nil {
		t.Fatalf("fragment finish: %v", err)
	}
	return string(asm.em.Bytes())
}

func TestStreamAssemblerFragmentParity(t *testing.T) {
	results := sampleResults()
	dom, err := buildPackedResponse(results, testNS)
	if err != nil {
		t.Fatal(err)
	}
	want := dom.String()

	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0}, // head delivered last: window parks on slot 0
	}
	for seed := int64(0); seed < 6; seed++ {
		order := rand.New(rand.NewSource(seed)).Perm(len(results))
		orders = append(orders, order)
	}
	for _, order := range orders {
		got := assembleStreamed(t, results, order)
		if got != want {
			t.Fatalf("fragment diverges for delivery order %v:\nstreamed: %s\nbuffered: %s", order, got, want)
		}
	}
	if asm := newPackedAssembler(); asm.itemFaults != 0 {
		t.Errorf("fresh assembler itemFaults = %d", asm.itemFaults)
	} else {
		asm.release()
	}
}

// TestStreamAssemblerPoolRecycling hammers the pooled fragment emitters from
// concurrent assemblers with distinct payloads; recycled buffers must never
// bleed one response's bytes into another. Run with -race.
func TestStreamAssemblerPoolRecycling(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 25; round++ {
				tag := fmt.Sprintf("g%d-r%d", g, round)
				results := []*rpcResult{
					{id: 0, service: "Echo", op: "echo", results: []soapenc.Field{soapenc.F("tag", tag)}},
					{id: 1, service: "Echo", op: "echo", results: []soapenc.Field{soapenc.F("n", int64(g*100 + round))}},
					{id: 2, service: "Echo", op: "fail", fault: &soap.Fault{Code: soap.FaultServer, String: "boom " + tag}},
				}
				dom, err := buildPackedResponse(results, testNS)
				if err != nil {
					t.Error(err)
					return
				}
				got := assembleStreamed(t, results, rng.Perm(len(results)))
				if want := dom.String(); got != want {
					t.Errorf("round %s diverged:\nstreamed: %s\nbuffered: %s", tag, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStreamRequestDocParity pins the client's DOM-free request encoders —
// Batch.encodeRequest and the single-call appendRequestEntry path — to the
// bytes of the DOM path (buildPackedRequest / encodeRequestElement wrapped
// in an Envelope).
func TestStreamRequestDocParity(t *testing.T) {
	sys := newSystem(t, nil)
	sys.client.Define("WeatherService", "urn:weather:v2")

	params := [][]soapenc.Field{
		{soapenc.F("msg", "x<y&z\""), soapenc.F("n", int64(9))},
		{soapenc.F("CityName", "São Paulo")},
		nil,
		{soapenc.F("blob", []byte("raw\x00bytes")), soapenc.F("flag", false)},
	}
	b := sys.client.NewBatch()
	b.Add("Echo", "echo", params[0]...)
	b.Add("WeatherService", "GetWeather", params[1]...)
	b.Add("Echo", "slow", params[2]...)
	b.Add("Echo", "echo", params[3]...)

	doc, release, err := b.encodeRequest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	pm, err := b.buildPackedElement()
	if err != nil {
		t.Fatal(err)
	}
	env := soap.New()
	env.Body = []*xmldom.Element{pm}
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if string(doc) != buf.String() {
		t.Errorf("packed request diverges:\nstreamed: %s\nbuffered: %s", doc, buf.Bytes())
	}

	// Single-call path, both envelope versions.
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		enc := soap.NewStreamEncoder()
		enc.Begin(v, nil)
		if err := appendRequestEntry(enc.Emitter(), "urn:spi:Echo", "echo", params[0], -1, ""); err != nil {
			t.Fatal(err)
		}
		got, err := enc.Finish()
		if err != nil {
			t.Fatal(err)
		}
		el, err := encodeRequestElement("urn:spi:Echo", "echo", params[0])
		if err != nil {
			t.Fatal(err)
		}
		denv := soap.New()
		denv.Version = v
		denv.Body = []*xmldom.Element{el}
		buf.Reset()
		if err := denv.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if string(got) != buf.String() {
			t.Errorf("single request (%v) diverges:\nstreamed: %s\nbuffered: %s", v, got, buf.Bytes())
		}
		enc.Release()
	}
}

// TestStreamResponseParityE2E posts identical packed requests to a streaming
// server and to a buffered one (streaming disabled via BufferedDispatch)
// and requires byte-identical responses — including per-item faults, slow
// entries that force the reorder window to park, and spi:id overrides.
func TestStreamResponseParityE2E(t *testing.T) {
	streamed := newSystem(t, nil)
	buffered := newSystem(t, func(s *ServerConfig, _ *ClientConfig) {
		s.BufferedDispatch = true
	})
	if !streamed.server.canStream() {
		t.Fatal("streamed system not on the streaming path")
	}
	if buffered.server.canStream() {
		t.Fatal("buffered system unexpectedly on the streaming path")
	}

	docs := []string{
		// slow entries first so later echoes complete before the window head.
		testEnv11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
			`<m:slow xmlns:m="urn:spi:Echo" spi:id="0" spi:service="Echo"><p>first</p></m:slow>` +
			`<m:slow xmlns:m="urn:spi:Echo" spi:id="1" spi:service="Echo"><p>second</p></m:slow>` +
			`<m:echo xmlns:m="urn:spi:Echo" spi:id="2" spi:service="Echo"><msg>a&amp;b</msg><n xsi:type="xsd:int" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema">5</n></m:echo>` +
			`<m:fail xmlns:m="urn:spi:Echo" spi:id="3" spi:service="Echo"/>` +
			`<m:GetWeather xmlns:m="urn:spi:WeatherService" spi:id="4" spi:service="WeatherService"><CityName>Oslo</CityName></m:GetWeather>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// spi:id values out of order relative to slots.
		testEnv11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
			`<m:echo xmlns:m="urn:spi:Echo" spi:id="9" spi:service="Echo"><msg>nine</msg></m:echo>` +
			`<m:echo xmlns:m="urn:spi:Echo" spi:id="1" spi:service="Echo"><msg>one</msg></m:echo>` +
			`<m:noSuchOp xmlns:m="urn:spi:Echo" spi:id="5" spi:service="Echo"/>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Single unfaulted entry.
		testEnv11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
			`<m:echo xmlns:m="urn:spi:Echo" spi:id="0" spi:service="Echo"><msg>solo</msg></m:echo>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
	}
	for i, doc := range docs {
		sResp, err := streamed.client.http.Post("/services/", "text/xml", []byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		bResp, err := buffered.client.http.Post("/services/", "text/xml", []byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if sResp.StatusCode != bResp.StatusCode {
			t.Errorf("doc %d: status %d (streamed) != %d (buffered)", i, sResp.StatusCode, bResp.StatusCode)
		}
		if sc, bc := sResp.Header.Get("Content-Type"), bResp.Header.Get("Content-Type"); sc != bc {
			t.Errorf("doc %d: content-type %q != %q", i, sc, bc)
		}
		if !bytes.Equal(sResp.Body, bResp.Body) {
			t.Errorf("doc %d: response bytes diverge:\nstreamed: %s\nbuffered: %s", i, sResp.Body, bResp.Body)
		}
		if !strings.Contains(string(sResp.Body), "Parallel_Response") {
			t.Errorf("doc %d: response is not packed: %s", i, sResp.Body)
		}
	}
}
