package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/soapenc"
)

// AutoBatcher packs calls into shared SOAP messages automatically: calls
// issued within a flush window (or until a size cap) travel together,
// without the caller managing Batch objects. This implements the paper's
// stated future work — "we will develop automatic communication techniques
// in order not to modify the code on client side": code written against the
// plain Call interface gains packing transparently.
//
// Safe for concurrent use; that is its point — independent goroutines'
// calls coalesce into one message.
type AutoBatcher struct {
	client   *Client
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending *Batch
	timer   *time.Timer
	closed  bool
	flushWG sync.WaitGroup
}

// NewAutoBatcher wraps a client. window is how long the first call in a
// batch waits for companions (default 1ms); maxBatch flushes early when
// that many calls have gathered (default 128, the largest M in the
// evaluation).
func NewAutoBatcher(c *Client, window time.Duration, maxBatch int) *AutoBatcher {
	if window <= 0 {
		window = time.Millisecond
	}
	if maxBatch <= 0 {
		maxBatch = 128
	}
	return &AutoBatcher{client: c, window: window, maxBatch: maxBatch}
}

// Go enqueues a call into the current window and returns its future.
func (a *AutoBatcher) Go(service, op string, params ...soapenc.Field) *Call {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		call := newCall(service, op)
		call.resolve(nil, errors.New("core: autobatcher closed"))
		return call
	}
	if a.pending == nil {
		a.pending = a.client.NewBatch()
		a.timer = time.AfterFunc(a.window, a.flushTimer)
	}
	call := a.pending.Add(service, op, params...)
	if a.pending.Len() >= a.maxBatch {
		a.flushLocked()
	}
	a.mu.Unlock()
	return call
}

// Call is the synchronous form of Go.
func (a *AutoBatcher) Call(service, op string, params ...soapenc.Field) ([]soapenc.Field, error) {
	return a.Go(service, op, params...).Wait()
}

// Flush sends the current window immediately, if any.
func (a *AutoBatcher) Flush() {
	a.mu.Lock()
	a.flushLocked()
	a.mu.Unlock()
}

func (a *AutoBatcher) flushTimer() {
	a.mu.Lock()
	a.flushLocked()
	a.mu.Unlock()
}

// flushLocked launches the pending batch. Caller holds a.mu.
func (a *AutoBatcher) flushLocked() {
	if a.pending == nil {
		return
	}
	batch := a.pending
	a.pending = nil
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	a.flushWG.Add(1)
	go func() {
		defer a.flushWG.Done()
		// Errors surface through the batch's futures.
		_ = batch.Send()
	}()
}

// Close flushes any pending window and waits for in-flight batches.
func (a *AutoBatcher) Close() {
	a.mu.Lock()
	a.closed = true
	a.flushLocked()
	a.mu.Unlock()
	a.flushWG.Wait()
}
