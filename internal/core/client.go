package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/msgcache"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/trace"
	"repro/internal/wsdl"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// HeaderDeadline is the HTTP request header that propagates the client's
// remaining deadline budget to the server, in integer milliseconds. The
// server derives the dispatch context's deadline from it (minus a grace
// period so the degraded response still reaches the client in time).
const HeaderDeadline = "SPI-Deadline"

// HeaderTrace is the HTTP request header that propagates the client's
// trace id to the server, so spans recorded on both sides of one exchange
// correlate. Sent only when the client's tracer is enabled.
const HeaderTrace = "SPI-Trace"

// HeaderProvider contributes header blocks to outgoing envelopes — the
// client-side extension point WS-Security plugs into. body is the canonical
// serialization of the body entries, available for signing.
type HeaderProvider interface {
	MakeHeaders(body []byte) ([]*xmldom.Element, error)
}

// ClientConfig configures an SPI client.
type ClientConfig struct {
	// Dial opens a connection to the server. Required.
	Dial httpx.Dialer
	// KeepAlive reuses connections across calls. The paper's measured
	// baselines dial per message (false); setting true isolates the
	// header-overhead component in ablations.
	KeepAlive bool
	// Pipeline drives keep-alive connections pipelined: concurrent calls
	// share a connection (up to PipelineWindow in flight, FIFO responses)
	// instead of each claiming one. Requires KeepAlive and a server with
	// pipelining enabled (core ServerConfig.PipelineWindow / httpx
	// Server.MaxPipeline).
	Pipeline bool
	// PipelineWindow caps in-flight exchanges per pipelined connection
	// (default 8).
	PipelineWindow int
	// PathPrefix must match the server's (default "/services/").
	PathPrefix string
	// Timeout bounds one HTTP exchange; zero means none.
	Timeout time.Duration
	// HeaderProviders contribute header blocks to every request.
	HeaderProviders []HeaderProvider
	// MaxBodyBytes caps response bodies; zero means the httpx default.
	MaxBodyBytes int64
	// SOAP12 sends SOAP 1.2 envelopes (default is the paper's SOAP 1.1).
	// The server replies in kind.
	SOAP12 bool
	// TemplateCache enables parameterized client-side message caching for
	// single (unpacked) calls — the §2.2 related-work optimization of
	// Devaram & Andresen [1] / differential serialization [3]: repeated
	// calls with the same parameter shape splice their values into a
	// cached serialized envelope instead of re-serializing. Orthogonal to
	// packing; ignored when HeaderProviders are set (headers vary per
	// message).
	TemplateCache bool

	// CallTimeout bounds one logical Call/Go — all retry attempts and
	// backoffs included — when the caller's context carries no deadline
	// of its own. Zero means none.
	CallTimeout time.Duration
	// BatchTimeout is CallTimeout's analogue for Batch.Send and
	// Plan.Send. Zero means none.
	BatchTimeout time.Duration
	// Retry, when non-nil, retries failed exchanges with backoff. See
	// RetryPolicy for what is eligible; mark operations idempotent with
	// Client.MarkIdempotent to widen it.
	Retry *RetryPolicy

	// Tracer, when non-nil, records client-side spans (client.pack,
	// client.send, client.unpack) for every call and propagates a trace id
	// to the server in the SPI-Trace header. Share one Tracer between a
	// client and a server to see a message's full path in one sink. Nil
	// disables tracing; the disabled path costs one branch per hop.
	Tracer *trace.Tracer
}

// ClientStats counts client-side traffic.
type ClientStats struct {
	Calls     int64 // service invocations issued (batched or not)
	Envelopes int64 // SOAP messages sent
	Batches   int64 // packed messages sent
	Faults    int64 // calls that returned a fault
	// Resilience counts retries and abandoned work: Retries are backoff
	// re-sends, Timeouts are exchanges that died of deadline expiry,
	// Cancellations are exchanges abandoned by explicit cancel.
	Resilience metrics.ResilienceSummary
}

// Client issues SOAP calls, either one per message (Call/Go) or packed many
// to a message (NewBatch) — the SPI pack interface.
type Client struct {
	cfg  ClientConfig
	http *httpx.Client

	mu         sync.RWMutex
	namespaces map[string]string
	idempotent map[string]bool // "Service.op" -> safe to re-send

	templates *msgcache.Cache // nil unless TemplateCache

	calls     atomic.Int64
	envelopes atomic.Int64
	batches   atomic.Int64
	faults    atomic.Int64
	resil     metrics.Resilience
}

// NewClient builds a client from the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("core: ClientConfig.Dial is required")
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/services/"
	}
	if !strings.HasSuffix(cfg.PathPrefix, "/") {
		cfg.PathPrefix += "/"
	}
	c := &Client{
		cfg: cfg,
		http: &httpx.Client{
			Dial:         cfg.Dial,
			KeepAlive:    cfg.KeepAlive,
			Pipeline:     cfg.Pipeline,
			MaxPerConn:   cfg.PipelineWindow,
			Timeout:      cfg.Timeout,
			MaxBodyBytes: cfg.MaxBodyBytes,
			Tracer:       cfg.Tracer,
		},
		namespaces: make(map[string]string),
		idempotent: make(map[string]bool),
	}
	// The template cache renders SOAP 1.1 envelopes; it is disabled when
	// headers vary per message or the client speaks SOAP 1.2.
	if cfg.TemplateCache && len(cfg.HeaderProviders) == 0 && !cfg.SOAP12 {
		c.templates = msgcache.New()
	}
	return c, nil
}

// TemplateStats reports template-cache behaviour (zero value when the
// cache is disabled).
func (c *Client) TemplateStats() msgcache.Stats {
	if c.templates == nil {
		return msgcache.Stats{}
	}
	return c.templates.Stats()
}

// Close releases pooled connections.
func (c *Client) Close() { c.http.Close() }

// Stats returns a snapshot of client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:      c.calls.Load(),
		Envelopes:  c.envelopes.Load(),
		Batches:    c.batches.Load(),
		Faults:     c.faults.Load(),
		Resilience: c.resil.Snapshot(),
	}
}

// MarkIdempotent declares operations of a service safe to re-send even
// when a previous attempt may have executed (reads, pure computations,
// writes with client-supplied keys). The retry policy widens from
// connect-only retries to transport-error retries for marked operations.
func (c *Client) MarkIdempotent(service string, ops ...string) {
	c.mu.Lock()
	for _, op := range ops {
		c.idempotent[service+"."+op] = true
	}
	c.mu.Unlock()
}

// isIdempotent reports whether Service.op was marked idempotent.
func (c *Client) isIdempotent(service, op string) bool {
	c.mu.RLock()
	ok := c.idempotent[service+"."+op]
	c.mu.RUnlock()
	return ok
}

// noteOutcome feeds the resilience counters from a finished logical
// call's error.
func (c *Client) noteOutcome(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		c.resil.Timeouts.Inc()
	case errors.Is(err, context.Canceled):
		c.resil.Cancellations.Inc()
	}
}

// Define associates a service name with its XML namespace, overriding the
// "urn:spi:<name>" convention. In a full deployment this mapping comes from
// the service's WSDL (see package wsdl).
func (c *Client) Define(service, namespace string) {
	c.mu.Lock()
	c.namespaces[service] = namespace
	c.mu.Unlock()
}

// DefineFromWSDL teaches the client a service's name and namespace from
// its WSDL document (as served on GET <prefix><Service>?wsdl). It returns
// the parsed description.
func (c *Client) DefineFromWSDL(doc string) (*wsdl.Description, error) {
	d, err := wsdl.ParseString(doc)
	if err != nil {
		return nil, err
	}
	c.Define(d.Service, d.Namespace)
	return d, nil
}

// FetchWSDL retrieves and registers the WSDL of a deployed service over
// the client's own transport.
func (c *Client) FetchWSDL(service string) (*wsdl.Description, error) {
	req := httpx.NewRequest("GET", c.cfg.PathPrefix+service+"?wsdl", nil)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("core: WSDL fetch for %q: HTTP %d", service, resp.StatusCode)
	}
	return c.DefineFromWSDL(string(resp.Body))
}

// NamespaceOf returns the namespace used for a service's request elements.
func (c *Client) NamespaceOf(service string) string {
	c.mu.RLock()
	ns, ok := c.namespaces[service]
	c.mu.RUnlock()
	if ok {
		return ns
	}
	return "urn:spi:" + service
}

// Call invokes one operation synchronously in its own SOAP message — the
// traditional interface ("No Optimization" in the evaluation).
func (c *Client) Call(service, op string, params ...soapenc.Field) ([]soapenc.Field, error) {
	return c.CallCtx(context.Background(), service, op, params...)
}

// CallCtx is Call under a context: the deadline bounds the whole logical
// call (every retry attempt and backoff included) and is propagated to
// the server, and cancellation closes the in-flight connection. When ctx
// carries no deadline, ClientConfig.CallTimeout supplies one.
func (c *Client) CallCtx(ctx context.Context, service, op string, params ...soapenc.Field) ([]soapenc.Field, error) {
	c.calls.Add(1)
	ctx = c.traceCtx(ctx)
	if _, has := ctx.Deadline(); !has && c.cfg.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CallTimeout)
		defer cancel()
	}
	var results []soapenc.Field
	err := c.withRetry(ctx, c.isIdempotent(service, op), func() error {
		r, rerr := c.callOnce(ctx, service, op, params)
		results = r
		return rerr
	})
	c.noteOutcome(err)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// callOnce performs one attempt of a single-message call. The response is
// decoded from a pooled arena released before return; everything handed to
// the caller (decoded params, detached faults) is copied off it by then.
func (c *Client) callOnce(ctx context.Context, service, op string, params []soapenc.Field) ([]soapenc.Field, error) {
	target := c.cfg.PathPrefix + service
	tr := c.cfg.Tracer

	var respEnv *soap.Envelope
	var release func()
	var err error
	if c.templates != nil {
		// Template-cache fast path: splice values into the cached
		// serialized envelope on a pooled emitter, skipping DOM
		// construction and the render copy entirely.
		var packStart time.Time
		if tr.Enabled() {
			packStart = time.Now()
		}
		em := xmltext.AcquireEmitter()
		ok, terr := c.templates.RenderTo(em, service, c.NamespaceOf(service), op, params)
		if terr != nil {
			xmltext.ReleaseEmitter(em)
			return nil, fmt.Errorf("core: template for %s.%s: %w", service, op, terr)
		}
		if ok {
			if tr.Enabled() {
				tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientPack,
					ID: -1, Op: service + "." + op, Start: packStart, Service: time.Since(packStart)})
			}
			respEnv, release, err = c.postPooled(ctx, target, em.Bytes())
			xmltext.ReleaseEmitter(em)
		} else {
			xmltext.ReleaseEmitter(em)
			respEnv, release, err = c.exchangeCall(ctx, target, service, op, params)
		}
	} else {
		respEnv, release, err = c.exchangeCall(ctx, target, service, op, params)
	}
	if err != nil {
		return nil, err
	}
	defer release()
	if f := respEnv.Fault(); f != nil {
		c.faults.Add(1)
		// Classify at the decode edge: callers get a taxonomy value
		// (errors.Is(err, fault.Timeout) etc.) whose Error text and
		// errors.As(*soap.Fault) behaviour are unchanged.
		return nil, fault.Classify(detachFault(f))
	}
	if len(respEnv.Body) != 1 {
		return nil, fmt.Errorf("core: response has %d body entries", len(respEnv.Body))
	}
	var unpackStart time.Time
	if tr.Enabled() {
		unpackStart = time.Now()
	}
	results, err := soapenc.DecodeParams(respEnv.Body[0])
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientUnpack,
			ID: -1, Op: service + "." + op, Start: unpackStart, Service: time.Since(unpackStart)})
	}
	return results, err
}

// traceCtx attaches a fresh trace id to ctx when tracing is enabled and
// the caller has not already established one (a Batch's calls share the
// batch's id).
func (c *Client) traceCtx(ctx context.Context) context.Context {
	tr := c.cfg.Tracer
	if !tr.Enabled() || trace.FromContext(ctx) != 0 {
		return ctx
	}
	return trace.NewContext(ctx, tr.Begin())
}

// exchangeCall serializes one RPC request. Without header providers the
// request document streams straight into a pooled buffer — no DOM is
// built; with them it falls back to the DOM path, which providers need
// for the canonical body serialization.
func (c *Client) exchangeCall(ctx context.Context, target, service, op string, params []soapenc.Field) (*soap.Envelope, func(), error) {
	if len(c.cfg.HeaderProviders) > 0 {
		reqEl, err := encodeRequestElement(c.NamespaceOf(service), op, params)
		if err != nil {
			return nil, nil, fmt.Errorf("core: encoding %s.%s: %w", service, op, err)
		}
		return c.exchange(ctx, target, []*xmldom.Element{reqEl})
	}
	tr := c.cfg.Tracer
	var packStart time.Time
	if tr.Enabled() {
		packStart = time.Now()
	}
	enc := soap.NewStreamEncoder()
	enc.Begin(c.version(), nil)
	if err := appendRequestEntry(enc.Emitter(), c.NamespaceOf(service), op, params, -1, ""); err != nil {
		enc.Release()
		return nil, nil, fmt.Errorf("core: encoding %s.%s: %w", service, op, err)
	}
	doc, err := enc.Finish()
	if err != nil {
		enc.Release()
		return nil, nil, fmt.Errorf("core: encoding envelope: %w", err)
	}
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientPack,
			ID: -1, Op: target, Start: packStart, Service: time.Since(packStart)})
	}
	respEnv, release, perr := c.postPooled(ctx, target, doc)
	enc.Release()
	return respEnv, release, perr
}

// Call is a pending invocation: a future resolved when its response (or
// fault) arrives.
type Call struct {
	Service string
	Op      string

	done    chan struct{}
	results []soapenc.Field
	err     error
}

func newCall(service, op string) *Call {
	return &Call{Service: service, Op: op, done: make(chan struct{})}
}

func (cl *Call) resolve(results []soapenc.Field, err error) {
	cl.results = results
	cl.err = err
	close(cl.done)
}

// Done is closed when the call has completed.
func (cl *Call) Done() <-chan struct{} { return cl.done }

// Wait blocks until completion and returns the results or error.
func (cl *Call) Wait() ([]soapenc.Field, error) {
	<-cl.done
	return cl.results, cl.err
}

// Go invokes one operation asynchronously in its own SOAP message and
// connection — the "Multiple Threads" baseline of the evaluation.
func (c *Client) Go(service, op string, params ...soapenc.Field) *Call {
	return c.GoCtx(context.Background(), service, op, params...)
}

// GoCtx is Go under a context (see CallCtx for its semantics).
func (c *Client) GoCtx(ctx context.Context, service, op string, params ...soapenc.Field) *Call {
	call := newCall(service, op)
	go func() {
		results, err := c.CallCtx(ctx, service, op, params...)
		call.resolve(results, err)
	}()
	return call
}

// Batch collects calls to be packed into a single SOAP message — the SPI
// pack interface. Add calls, then Send once; each Add returns a future
// resolved by Send. A Batch is not safe for concurrent Add/Send (build it
// on one goroutine); the returned futures may be awaited anywhere.
type Batch struct {
	client *Client
	// entries and calls are parallel slices indexed by correlation id.
	entries []batchEntry
	calls   []*Call
	sent    bool
}

// batchEntry is one queued invocation in decoded form. Serialization is
// deferred to Send, where the whole packed document streams into one
// pooled buffer instead of building a request DOM per entry.
type batchEntry struct {
	service string
	op      string
	ns      string
	params  []soapenc.Field
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch {
	// Batches in the paper's range (8-128 calls) hit at most a few slice
	// growth steps from a non-trivial starting capacity.
	return &Batch{
		client:  c,
		entries: make([]batchEntry, 0, 8),
		calls:   make([]*Call, 0, 8),
	}
}

// Add appends an invocation to the batch and returns its future.
func (b *Batch) Add(service, op string, params ...soapenc.Field) *Call {
	call := newCall(service, op)
	if b.sent {
		call.resolve(nil, fmt.Errorf("core: Add after Send"))
		return call
	}
	b.entries = append(b.entries, batchEntry{
		service: service, op: op, ns: b.client.NamespaceOf(service), params: params,
	})
	b.calls = append(b.calls, call)
	b.client.calls.Add(1)
	return call
}

// Len returns the number of calls added so far.
func (b *Batch) Len() int { return len(b.calls) }

// Send packs every added call into one SOAP message, performs the exchange
// and resolves all futures. It returns the first transport- or
// message-level error; per-call faults are delivered through the futures.
func (b *Batch) Send() error {
	return b.SendCtx(context.Background())
}

// SendCtx is Send under a context. The deadline bounds the whole packed
// exchange and travels to the server, which degrades gracefully: entries
// it finishes in time return real results, unfinished entries come back
// as per-item Server.Timeout faults on their futures. Cancelling ctx
// closes the in-flight connection and resolves every future with the
// context's error. When ctx carries no deadline,
// ClientConfig.BatchTimeout supplies one.
func (b *Batch) SendCtx(ctx context.Context) error {
	if b.sent {
		return fmt.Errorf("core: batch already sent")
	}
	b.sent = true
	if len(b.calls) == 0 {
		return fmt.Errorf("core: empty batch")
	}
	ctx = b.client.traceCtx(ctx)
	if _, has := ctx.Deadline(); !has && b.client.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.client.cfg.BatchTimeout)
		defer cancel()
	}

	if len(b.client.cfg.HeaderProviders) > 0 {
		// Header providers may vary their blocks per attempt (nonces,
		// timestamps), so the DOM fallback re-runs them inside the retry
		// loop, exactly as before.
		pm, err := b.buildPackedElement()
		if err != nil {
			b.resolveAll(nil, err)
			return err
		}
		b.client.batches.Add(1)
		var respEnv *soap.Envelope
		var release func()
		err = b.client.withRetry(ctx, b.allIdempotent(), func() error {
			env, rel, rerr := b.client.exchange(ctx, b.client.packTarget(), []*xmldom.Element{pm})
			respEnv, release = env, rel
			return rerr
		})
		b.client.noteOutcome(err)
		if err != nil {
			b.resolveAll(nil, err)
			return err
		}
		defer release()
		return b.dispatchResponse(ctx, respEnv)
	}

	// DOM-free fast path: stream every entry into one pooled request
	// document, encoded once and re-sent verbatim on retries.
	doc, encRelease, err := b.encodeRequest(ctx)
	if err != nil {
		b.resolveAll(nil, err)
		return err
	}
	b.client.batches.Add(1)
	var respEnv *soap.Envelope
	var release func()
	err = b.client.withRetry(ctx, b.allIdempotent(), func() error {
		env, rel, rerr := b.client.postPooled(ctx, b.client.packTarget(), doc)
		respEnv, release = env, rel
		return rerr
	})
	encRelease()
	b.client.noteOutcome(err)
	if err != nil {
		b.resolveAll(nil, err)
		return err
	}
	defer release()
	return b.dispatchResponse(ctx, respEnv)
}

// encodeRequest streams the whole packed request document into a pooled
// buffer: envelope preamble, Parallel_Method, and each entry with its
// correlation attributes — no element tree is built. The returned bytes
// are valid until the returned release runs.
func (b *Batch) encodeRequest(ctx context.Context) ([]byte, func(), error) {
	tr := b.client.cfg.Tracer
	var packStart time.Time
	if tr.Enabled() {
		packStart = time.Now()
	}
	enc := soap.NewStreamEncoder()
	enc.Begin(b.client.version(), nil)
	em := enc.Emitter()
	em.Start(namePackMethod)
	em.Attr(nameXmlnsSpi, NSPack)
	for i, e := range b.entries {
		if err := appendRequestEntry(em, e.ns, e.op, e.params, i, e.service); err != nil {
			enc.Release()
			return nil, nil, fmt.Errorf("core: encoding %s.%s: %w", e.service, e.op, err)
		}
	}
	em.End()
	doc, err := enc.Finish()
	if err != nil {
		enc.Release()
		return nil, nil, fmt.Errorf("core: encoding envelope: %w", err)
	}
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientPack,
			ID: -1, Op: b.client.packTarget(), Start: packStart, Service: time.Since(packStart)})
	}
	return doc, enc.Release, nil
}

// buildPackedElement is the DOM form of encodeRequest's body: it builds
// each entry element and assembles the Parallel_Method tree, with the
// same first-error-wins semantics and error text.
func (b *Batch) buildPackedElement() (*xmldom.Element, error) {
	entries := make([]*packedEntry, len(b.entries))
	for i, e := range b.entries {
		el, err := encodeRequestElement(e.ns, e.op, e.params)
		if err != nil {
			return nil, fmt.Errorf("core: encoding %s.%s: %w", e.service, e.op, err)
		}
		entries[i] = &packedEntry{service: e.service, element: el}
	}
	return buildPackedRequest(entries), nil
}

// dispatchResponse routes a decoded packed response to the pending calls.
// respEnv may be arena-backed (released by the caller after return), so
// every fault handed to a future is detached first.
func (b *Batch) dispatchResponse(ctx context.Context, respEnv *soap.Envelope) error {
	if f := respEnv.Fault(); f != nil {
		b.client.faults.Add(1)
		cf := fault.Classify(detachFault(f))
		b.resolveAll(nil, cf)
		return cf
	}
	if len(respEnv.Body) != 1 || !isPackedResponse(respEnv.Body[0]) {
		err := fmt.Errorf("core: response is not a %s", ElemParallelResponse)
		b.resolveAll(nil, err)
		return err
	}
	tr := b.client.cfg.Tracer
	var unpackStart time.Time
	if tr.Enabled() {
		unpackStart = time.Now()
	}
	results, err := decodePackedResponse(respEnv.Body[0])
	if err != nil {
		b.resolveAll(nil, err)
		return err
	}
	// Client-side dispatcher: route each entry to its pending call.
	for id, call := range b.calls {
		res, ok := results[id]
		switch {
		case !ok:
			call.resolve(nil, fmt.Errorf("core: no response for packed call %d (%s.%s)", id, call.Service, call.Op))
		case res.fault != nil:
			b.client.faults.Add(1)
			cf := fault.Classify(detachFault(res.fault))
			if errors.Is(cf, fault.Timeout) {
				b.client.resil.Timeouts.Inc()
			}
			call.resolve(nil, cf)
		default:
			call.resolve(res.results, nil)
		}
	}
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientUnpack,
			ID: -1, Op: fmt.Sprintf("batch[%d]", len(b.calls)), Start: unpackStart, Service: time.Since(unpackStart)})
	}
	return nil
}

func (b *Batch) resolveAll(results []soapenc.Field, err error) {
	for _, call := range b.calls {
		call.resolve(results, err)
	}
}

// allIdempotent reports whether every entry's operation was marked
// idempotent — the condition for retrying a packed message after a
// transport failure that may have executed it.
func (b *Batch) allIdempotent() bool {
	for _, call := range b.calls {
		if !b.client.isIdempotent(call.Service, call.Op) {
			return false
		}
	}
	return true
}

// packTarget is the URL packed messages are POSTed to: the bare services
// prefix, since one message may span services.
func (c *Client) packTarget() string {
	return strings.TrimSuffix(c.cfg.PathPrefix, "/")
}

// version returns the envelope version this client speaks.
func (c *Client) version() soap.Version {
	if c.cfg.SOAP12 {
		return soap.V12
	}
	return soap.V11
}

// exchange performs one envelope round trip through the DOM encode path
// (header providers need the element tree for canonical serialization).
// The serialized document still goes out of a pooled buffer and the reply
// is decoded from a pooled arena; the caller runs the returned release
// once it is done with the response envelope.
func (c *Client) exchange(ctx context.Context, target string, body []*xmldom.Element) (*soap.Envelope, func(), error) {
	tr := c.cfg.Tracer
	var packStart time.Time
	if tr.Enabled() {
		packStart = time.Now()
	}
	env := soap.New()
	env.Version = c.version()
	env.Body = body
	if len(c.cfg.HeaderProviders) > 0 {
		canonical := canonicalBody(env)
		for _, p := range c.cfg.HeaderProviders {
			blocks, err := p.MakeHeaders(canonical)
			if err != nil {
				return nil, nil, fmt.Errorf("core: header provider: %w", err)
			}
			env.Header = append(env.Header, blocks...)
		}
	}
	enc := soap.NewStreamEncoder()
	doc, err := enc.EncodeEnvelope(env)
	if err != nil {
		enc.Release()
		return nil, nil, fmt.Errorf("core: encoding envelope: %w", err)
	}
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageClientPack,
			ID: -1, Op: target, Start: packStart, Service: time.Since(packStart)})
	}
	respEnv, release, perr := c.postPooled(ctx, target, doc)
	enc.Release()
	return respEnv, release, perr
}

// postPooled ships a fully-serialized envelope and decodes the reply into
// a pooled arena. A context deadline rides along as the SPI-Deadline
// header (remaining budget in milliseconds) so the server dispatches
// under the same clock. On success the caller must run the returned
// release once it is done with the envelope; decoded parameter values are
// plain copies, but fault Detail elements are arena-owned and must be
// detached (detachFault) before they escape.
func (c *Client) postPooled(ctx context.Context, target string, doc []byte) (*soap.Envelope, func(), error) {
	c.envelopes.Add(1)
	extra := make([]string, 0, 6)
	extra = append(extra, "SOAPAction", `""`)
	if deadline, ok := ctx.Deadline(); ok {
		if budget := time.Until(deadline); budget > 0 {
			extra = append(extra, HeaderDeadline, strconv.FormatInt(budget.Milliseconds(), 10))
		}
	}
	if id := trace.FromContext(ctx); id != 0 {
		extra = append(extra, HeaderTrace, strconv.FormatUint(id, 10))
	}
	resp, err := c.http.PostCtx(ctx, target, c.version().ContentType(), doc, extra...)
	if err != nil {
		return nil, nil, err
	}
	arena := xmldom.AcquireArena()
	respEnv, decErr := soap.DecodeArenaBytes(resp.Body, arena)
	if decErr != nil {
		xmldom.ReleaseArena(arena)
		if resp.StatusCode != 200 {
			return nil, nil, fmt.Errorf("core: HTTP %d: %s", resp.StatusCode, truncate(resp.Body, 200))
		}
		return nil, nil, fmt.Errorf("core: decoding response: %w", decErr)
	}
	return respEnv, func() { xmldom.ReleaseArena(arena) }, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
