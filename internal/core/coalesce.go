package core

import (
	"bytes"
	"strconv"

	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/xmldom"
)

// Cross-client coalescing support for the gateway: the pieces that turn a
// plain single-call envelope into a shardable ScatterEntry and, after the
// synthetic batch comes back, splice its packed-response segment into the
// HTTP response a direct server would have produced for the original call.
//
// The same byte-identity argument as the scatter path applies (see the
// comment atop gateway.go in this package): the segment bytes are never
// re-serialized. A packed-response entry differs from the direct server's
// single-response body entry in exactly one way — the trailing
// spi:id="N" attribute on its root start tag (both the DOM assembler and
// the streaming encoder emit xmlns:m first, then spi:id) — so removing
// that attribute and re-framing the segment in a fresh envelope reproduces
// the direct response byte for byte. Per-item faults are the one place a
// re-encode is unavoidable: packed responses carry them in the SOAP 1.1
// per-item layout while a direct server answers with a whole-message
// HTTP 500 fault in the request's version, so the fault is decoded from
// the segment and re-rendered through the same GatewayFaultResponse the
// scatter path uses (which serializes exactly like the server's own
// faultResponse).

// SingleCall is one coalescible single-request envelope, parsed for
// merging into a synthetic Parallel_Method batch.
type SingleCall struct {
	// Version is the request's envelope version; the coalesced batch and
	// the spliced response both use it.
	Version soap.Version
	// Entry is the request element prepared for sharding. Its ID and
	// spi:id/spi:service annotations are assigned at flush time via
	// SealID, once the entry's position in its batch is known.
	Entry *ScatterEntry
}

// ParseSingleCall decodes a non-packed POST body into a coalescible entry.
// reg, when non-nil, resolves entries on the bare pack endpoint by
// namespace, the way a direct server's dispatchSingle does.
//
// A nil return means the call must NOT be coalesced: the envelope is
// malformed, carries header blocks (header processing and response-header
// attribution are per-envelope), is a packed or plan body, or its request
// element does not decode. All of those fall back to the byte-transparent
// proxy path, which trivially preserves whatever the direct server would
// answer.
func ParseSingleCall(body []byte, defaultService string, reg *registry.Container) *SingleCall {
	arena := xmldom.AcquireArena()
	defer xmldom.ReleaseArena(arena)
	env, err := soap.DecodeArenaBytes(body, arena)
	if err != nil || len(env.Header) > 0 || len(env.Body) != 1 {
		return nil
	}
	entry := env.Body[0]
	if isPackedRequest(entry) || isPackedResponse(entry) || isPlanBody(entry) {
		return nil
	}
	service := defaultService
	if service == "" && reg != nil {
		if svc, ok := reg.ServiceByNamespace(entry.Namespace()); ok {
			service = svc.Name
		}
	}
	req, fault := decodeRequestElement(entry, service, 0)
	if fault != nil {
		return nil
	}
	// Clone detaches the element from the arena and pulls inherited
	// namespace declarations down, so it serializes standalone inside the
	// synthetic batch.
	return &SingleCall{
		Version: env.Version,
		Entry:   &ScatterEntry{Service: req.service, Op: req.op, Element: entry.Clone()},
	}
}

// SealID assigns a coalesced entry's slot and correlation id once its
// batch is sealed, annotating the element exactly as ParseScatterRequest
// does for explicitly packed entries (spi:id first, then spi:service).
func (e *ScatterEntry) SealID(id int) {
	e.Slot = id
	e.ID = id
	e.Element.SetAttr(attrID, strconv.Itoa(id))
	e.Element.SetAttr(attrService, e.Service)
}

// entryIDAttr is the serialized spi:id attribute prefix inside a start
// tag. The emitter always double-quotes attribute values.
var entryIDAttr = []byte(` ` + PrefixPack + `:id="`)

// entryFaultOpen is the start of a per-item fault segment (after its
// spi:id attribute has been stripped).
var entryFaultOpen = []byte(`<` + soap.PrefixEnvelope + `:Fault`)

// StripEntryID returns the segment with the spi:id attribute removed from
// its root start tag, which is the only byte-level difference between a
// packed-response entry and the direct server's single-response body
// entry. Segments come from the server's own emitter (attribute values
// double-quoted, namespace URIs attribute-safe), so a plain byte scan
// bounded by the root tag is exact. A segment with no spi:id is returned
// unchanged.
func StripEntryID(segment []byte) []byte {
	gt, _, _, err := scanTag(segment, 0)
	if err != nil {
		return segment
	}
	i := bytes.Index(segment[:gt], entryIDAttr)
	if i < 0 {
		return segment
	}
	rest := segment[i+len(entryIDAttr) : gt]
	q := bytes.IndexByte(rest, '"')
	if q < 0 {
		return segment
	}
	end := i + len(entryIDAttr) + q + 1
	out := make([]byte, 0, len(segment)-(end-i))
	out = append(out, segment[:i]...)
	out = append(out, segment[end:]...)
	return out
}

// IsEntryFault reports whether a stripped segment is a per-item fault
// entry rather than an operation response.
func IsEntryFault(segment []byte) bool {
	if !bytes.HasPrefix(segment, entryFaultOpen) {
		return false
	}
	if len(segment) == len(entryFaultOpen) {
		return false
	}
	c := segment[len(entryFaultOpen)]
	return c == '>' || c == ' ' || c == '/'
}

// DecodeEntryFault decodes a per-item fault segment by re-homing it in a
// synthetic envelope that binds the SOAP-ENV prefix. Per-item faults
// always use the SOAP 1.1 layout regardless of the batch's envelope
// version, so the synthetic envelope is SOAP 1.1. Nil when the segment
// does not parse as a fault.
func DecodeEntryFault(segment []byte) *soap.Fault {
	var buf bytes.Buffer
	buf.Grow(len(segment) + 128)
	buf.WriteString(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.NSEnvelope + `"><SOAP-ENV:Body>`)
	buf.Write(segment)
	buf.WriteString(`</SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	env, err := soap.Decode(&buf)
	if err != nil {
		return nil
	}
	return detachFault(env.Fault())
}

// SpliceSingleResponse turns one packed-response segment back into the
// HTTP response a direct server would have produced for the same single
// call. Operation responses become a 200 envelope framed around the raw
// segment bytes (rawHeader, usually nil, splices the backend's response
// header section in, as the scatter path does). Per-item fault segments
// become the whole-message HTTP 500 fault in the request's version —
// rendered through the same encoder as the server's own faultResponse, so
// the bytes match a direct server faulting the same call. The second
// return value reports that fault case.
func SpliceSingleResponse(v soap.Version, segment, rawHeader []byte) (*httpx.Response, bool) {
	seg := StripEntryID(segment)
	if IsEntryFault(seg) {
		f := DecodeEntryFault(seg)
		if f == nil {
			f = soap.ServerFault("gateway: undecodable fault entry from backend")
		}
		return GatewayFaultResponse(f, v), true
	}
	enc := soap.NewStreamEncoder()
	enc.BeginRawHeader(v, rawHeader)
	enc.Emitter().Raw(seg)
	body, err := enc.Finish()
	if err != nil {
		enc.Release()
		return encodeFailureResponse(), true
	}
	resp := httpx.NewResponse(200, body)
	resp.Header.Set("Content-Type", v.ContentType())
	resp.SetRelease(enc.Release)
	return resp, false
}
