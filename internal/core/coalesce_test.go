package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmltext"
)

func singleDoc(v soap.Version, entry string) []byte {
	env := "http://schemas.xmlsoap.org/soap/envelope/"
	if v == soap.V12 {
		env = soap.NSEnvelope12
	}
	return []byte(`<?xml version="1.0" encoding="UTF-8"?>` +
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + env + `" xmlns:spi="` + NSPack + `">` +
		`<SOAP-ENV:Body>` + entry + `</SOAP-ENV:Body></SOAP-ENV:Envelope>`)
}

func TestParseSingleCall(t *testing.T) {
	reg := registry.NewContainer()
	reg.MustAddService("Echo", "urn:spi:Echo", "echo")

	for _, v := range []soap.Version{soap.V11, soap.V12} {
		doc := singleDoc(v, `<m:echo xmlns:m="urn:spi:Echo"><data>hi</data></m:echo>`)
		sc := ParseSingleCall(doc, "Echo", nil)
		if sc == nil {
			t.Fatalf("%v: coalescible call rejected", v)
		}
		if sc.Version != v || sc.Entry.Service != "Echo" || sc.Entry.Op != "echo" {
			t.Fatalf("%v: parsed %q.%q version %v", v, sc.Entry.Service, sc.Entry.Op, sc.Version)
		}
	}

	// Bare pack endpoint: the service resolves by namespace via the registry.
	doc := singleDoc(soap.V11, `<m:echo xmlns:m="urn:spi:Echo"><data>hi</data></m:echo>`)
	sc := ParseSingleCall(doc, "", reg)
	if sc == nil || sc.Entry.Service != "Echo" {
		t.Fatalf("namespace resolution failed: %+v", sc)
	}

	rejected := []struct {
		name string
		body []byte
	}{
		{"malformed", []byte(`<not-xml`)},
		{"header blocks", []byte(`<?xml version="1.0" encoding="UTF-8"?>` +
			`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">` +
			`<SOAP-ENV:Header><h xmlns="urn:h">x</h></SOAP-ENV:Header>` +
			`<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`)},
		{"packed body", singleDoc(soap.V11,
			`<spi:Parallel_Method><m:echo xmlns:m="urn:spi:Echo"/></spi:Parallel_Method>`)},
		{"no service", singleDoc(soap.V11, `<m:echo xmlns:m="urn:unknown"/>`)},
		{"bad spi id", singleDoc(soap.V11, `<m:echo xmlns:m="urn:spi:Echo" spi:id="x"/>`)},
	}
	for _, tc := range rejected {
		if got := ParseSingleCall(tc.body, "", reg); got != nil {
			t.Errorf("%s: expected nil, got %+v", tc.name, got)
		}
	}
}

func TestSealIDMatchesScatterAnnotation(t *testing.T) {
	doc := singleDoc(soap.V11, `<m:echo xmlns:m="urn:spi:Echo" spi:service="Echo"><data>v</data></m:echo>`)
	sc := ParseSingleCall(doc, "", nil)
	if sc == nil {
		t.Fatal("parse failed")
	}
	sc.Entry.SealID(7)
	if sc.Entry.ID != 7 || sc.Entry.Slot != 7 {
		t.Fatalf("SealID set ID=%d Slot=%d", sc.Entry.ID, sc.Entry.Slot)
	}

	// The sealed entry must build a sub-batch that round-trips through
	// ParseScatterRequest with the same id, service and operation — i.e. a
	// backend sees exactly what an explicitly packed client would send.
	// (Attribute order inside the request element may differ from a
	// scatter-parsed entry; backends decode attributes by name.)
	doc2, err := BuildSubBatch(soap.V11, nil, []*ScatterEntry{sc.Entry})
	if err != nil {
		t.Fatal(err)
	}
	sr, fault := ParseScatterRequest(doc2, "")
	if fault != nil || !sr.Packed || len(sr.Entries) != 1 {
		t.Fatalf("scatter re-parse: fault=%v", fault)
	}
	e := sr.Entries[0]
	if e.Fault != nil || e.ID != 7 || e.Service != "Echo" || e.Op != "echo" {
		t.Fatalf("re-parsed entry: %+v (fault %v)", e, e.Fault)
	}
}

func TestStripEntryID(t *testing.T) {
	cases := []struct{ in, want string }{
		{`<m:echoResponse xmlns:m="urn:x" spi:id="3"><data>v</data></m:echoResponse>`,
			`<m:echoResponse xmlns:m="urn:x"><data>v</data></m:echoResponse>`},
		{`<SOAP-ENV:Fault spi:id="12"><faultcode>SOAP-ENV:Server</faultcode></SOAP-ENV:Fault>`,
			`<SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode></SOAP-ENV:Fault>`},
		// No spi:id: unchanged.
		{`<m:r xmlns:m="urn:x"><a>1</a></m:r>`, `<m:r xmlns:m="urn:x"><a>1</a></m:r>`},
		// spi:id beyond the root tag is not touched.
		{`<m:r xmlns:m="urn:x"><a spi:id="9">1</a></m:r>`, `<m:r xmlns:m="urn:x"><a spi:id="9">1</a></m:r>`},
	}
	for _, tc := range cases {
		if got := string(StripEntryID([]byte(tc.in))); got != tc.want {
			t.Errorf("StripEntryID(%s)\n got %s\nwant %s", tc.in, got, tc.want)
		}
	}
}

func TestIsEntryFault(t *testing.T) {
	if !IsEntryFault([]byte(`<SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode></SOAP-ENV:Fault>`)) {
		t.Error("fault segment not recognized")
	}
	if IsEntryFault([]byte(`<SOAP-ENV:Faulty xmlns:m="urn:x"/>`)) {
		t.Error("prefix-similar element misclassified as fault")
	}
	if IsEntryFault([]byte(`<m:echoResponse xmlns:m="urn:x"></m:echoResponse>`)) {
		t.Error("response segment misclassified as fault")
	}
}

// TestSpliceSingleResponseParity pins the splice against the server's own
// encoders: an op segment re-frames to the exact bytes envelopeResponse
// produces for the same element, and a fault segment re-renders to the
// exact whole-message fault bytes, in both envelope versions.
func TestSpliceSingleResponseParity(t *testing.T) {
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		t.Run(fmt.Sprint(v), func(t *testing.T) {
			// Success: what a backend's packed response carries for slot 3...
			respEl, err := encodeResponseElement("urn:spi:Echo", "echo", []soapenc.Field{soapenc.F("data", "v")})
			if err != nil {
				t.Fatal(err)
			}
			segEnc := soap.NewStreamEncoder()
			em := segEnc.Emitter()
			respEl.AppendTo(em)
			if err := em.Finish(); err != nil {
				t.Fatal(err)
			}
			plain := append([]byte(nil), em.Bytes()...)
			segEnc.Release()
			seg := bytes.Replace(plain, []byte(` xmlns:m="urn:spi:Echo"`),
				[]byte(` xmlns:m="urn:spi:Echo" spi:id="3"`), 1)

			// ...must splice to what the direct server would answer.
			wantEnc := soap.NewStreamEncoder()
			wantEnc.Begin(v, nil)
			wantEnc.Emitter().Raw(plain)
			want, err := wantEnc.Finish()
			if err != nil {
				t.Fatal(err)
			}
			resp, isFault := SpliceSingleResponse(v, seg, nil)
			if isFault || resp.StatusCode != 200 {
				t.Fatalf("splice: fault=%v status=%d", isFault, resp.StatusCode)
			}
			if !bytes.Equal(resp.Body, want) {
				t.Errorf("success splice diverged\n got %s\nwant %s", resp.Body, want)
			}
			if ct := resp.Header.Get("Content-Type"); ct != v.ContentType() {
				t.Errorf("content type %q", ct)
			}
			resp.Release()
			wantEnc.Release()

			// Fault: the per-item SOAP 1.1 fault entry for slot 5 must
			// splice to the direct server's whole-message HTTP 500 fault.
			f := &soap.Fault{Code: FaultCodeTimeout, String: "deadline expired before Echo.echo finished"}
			fEnc := soap.NewStreamEncoder()
			fem := fEnc.Emitter()
			f.AppendElementFor(fem, soap.V11, xmltext.Attr{Name: attrID, Value: "5"})
			if err := fem.Finish(); err != nil {
				t.Fatal(err)
			}
			fseg := append([]byte(nil), fem.Bytes()...)
			fEnc.Release()

			wantFault := GatewayFaultResponse(f, v)
			resp, isFault = SpliceSingleResponse(v, fseg, nil)
			if !isFault || resp.StatusCode != 500 {
				t.Fatalf("fault splice: fault=%v status=%d", isFault, resp.StatusCode)
			}
			if !bytes.Equal(resp.Body, wantFault.Body) {
				t.Errorf("fault splice diverged\n got %s\nwant %s", resp.Body, wantFault.Body)
			}
			resp.Release()
			wantFault.Release()
		})
	}
}
