package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/msgcache"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// newEchoContainer deploys the Echo service used throughout the evaluation
// plus a Weather service matching Figure 4.
func newEchoContainer(t *testing.T) *registry.Container {
	t.Helper()
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "returns its input")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	echo.MustRegister("fail", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return nil, errors.New("deliberate failure")
	}, "always faults")
	echo.MustRegister("slow", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		time.Sleep(20 * time.Millisecond)
		return params, nil
	}, "sleeps 20ms")

	weather := c.MustAddService("WeatherService", "urn:spi:WeatherService", "Figure 4 weather service")
	weather.MustRegister("GetWeather", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		city := ""
		for _, p := range params {
			if p.Name == "CityName" {
				city, _ = p.Value.(string)
			}
		}
		return []soapenc.Field{soapenc.F("GetWeatherResult", "Sunny in "+city)}, nil
	}, "city weather")
	return c
}

// system wires a client and server over an in-memory link.
type system struct {
	client *Client
	server *Server
	link   *netsim.Link
}

func newSystem(t *testing.T, mutate func(*ServerConfig, *ClientConfig)) *system {
	t.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	scfg := ServerConfig{Container: newEchoContainer(t), AppWorkers: 8, AppQueue: 64}
	ccfg := ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second}
	if mutate != nil {
		mutate(&scfg, &ccfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		link.Close()
	})
	return &system{client: cli, server: srv, link: link}
}

func TestSingleCallRoundTrip(t *testing.T) {
	sys := newSystem(t, nil)
	results, err := sys.client.Call("Echo", "echo", soapenc.F("msg", "hello"), soapenc.F("n", int64(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "msg" || !soapenc.Equal(results[0].Value, "hello") {
		t.Errorf("results = %v", results)
	}
	if !soapenc.Equal(results[1].Value, int64(7)) {
		t.Errorf("int result = %v", results[1].Value)
	}
}

func TestSingleCallFault(t *testing.T) {
	sys := newSystem(t, nil)
	_, err := sys.client.Call("Echo", "fail")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *soap.Fault", err)
	}
	if f.Code != soap.FaultServer || !strings.Contains(f.String, "deliberate failure") {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnknownServiceAndOperation(t *testing.T) {
	sys := newSystem(t, nil)
	_, err := sys.client.Call("NoSuch", "echo")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultClient {
		t.Errorf("unknown service err = %v", err)
	}
	_, err = sys.client.Call("Echo", "noSuchOp")
	if !errors.As(err, &f) || f.Code != soap.FaultClient {
		t.Errorf("unknown op err = %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	sys := newSystem(t, nil)
	b := sys.client.NewBatch()
	var calls []*Call
	for i := 0; i < 10; i++ {
		calls = append(calls, b.Add("Echo", "echo", soapenc.F("i", int64(i))))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		results, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(results) != 1 || !soapenc.Equal(results[0].Value, int64(i)) {
			t.Errorf("call %d results = %v", i, results)
		}
	}
	// The whole batch used exactly one envelope and one connection.
	if st := sys.client.Stats(); st.Envelopes != 1 || st.Batches != 1 || st.Calls != 10 {
		t.Errorf("client stats = %+v", st)
	}
	if st := sys.link.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1", st.Dials)
	}
	if st := sys.server.Stats(); st.PackedMessages != 1 || st.Requests != 10 {
		t.Errorf("server stats = %+v", st)
	}
}

func TestBatchMixedServices(t *testing.T) {
	sys := newSystem(t, nil)
	b := sys.client.NewBatch()
	c1 := b.Add("Echo", "echo", soapenc.F("x", "1"))
	c2 := b.Add("WeatherService", "GetWeather", soapenc.F("CityName", "Beijing"))
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Wait(); err != nil {
		t.Errorf("echo in mixed batch: %v", err)
	}
	results, err := c2.Wait()
	if err != nil {
		t.Fatalf("weather in mixed batch: %v", err)
	}
	if len(results) != 1 || !soapenc.Equal(results[0].Value, "Sunny in Beijing") {
		t.Errorf("weather results = %v", results)
	}
}

func TestBatchPerItemFaults(t *testing.T) {
	sys := newSystem(t, nil)
	b := sys.client.NewBatch()
	ok1 := b.Add("Echo", "echo", soapenc.F("x", "a"))
	bad := b.Add("Echo", "fail")
	ok2 := b.Add("Echo", "echo", soapenc.F("x", "b"))
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok1.Wait(); err != nil {
		t.Errorf("ok1: %v", err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Error("faulting call succeeded")
	} else {
		var f *soap.Fault
		if !errors.As(err, &f) || !strings.Contains(f.String, "deliberate failure") {
			t.Errorf("bad call err = %v", err)
		}
	}
	results, err := ok2.Wait()
	if err != nil || !soapenc.Equal(results[0].Value, "b") {
		t.Errorf("ok2 after faulting sibling: %v %v", results, err)
	}
	if st := sys.server.Stats(); st.ItemFaults != 1 {
		t.Errorf("item faults = %d", st.ItemFaults)
	}
}

func TestBatchExecutesConcurrently(t *testing.T) {
	sys := newSystem(t, nil)
	b := sys.client.NewBatch()
	var calls []*Call
	for i := 0; i < 8; i++ {
		calls = append(calls, b.Add("Echo", "slow"))
	}
	start := time.Now()
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 8 x 20ms serial would be 160ms; the app stage (8 workers) runs them
	// together.
	if elapsed > 120*time.Millisecond {
		t.Errorf("packed slow calls took %v, want concurrent execution", elapsed)
	}
}

func TestCoupledModeSerializesPackedRequests(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) { s.Coupled = true })
	b := sys.client.NewBatch()
	for i := 0; i < 4; i++ {
		b.Add("Echo", "slow")
	}
	start := time.Now()
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Errorf("coupled mode finished in %v, want >= 4x20ms serial execution", elapsed)
	}
}

func TestGoFutures(t *testing.T) {
	sys := newSystem(t, nil)
	var calls []*Call
	for i := 0; i < 6; i++ {
		calls = append(calls, sys.client.Go("Echo", "echo", soapenc.F("i", int64(i))))
	}
	for i, c := range calls {
		results, err := c.Wait()
		if err != nil {
			t.Fatalf("go %d: %v", i, err)
		}
		if !soapenc.Equal(results[0].Value, int64(i)) {
			t.Errorf("go %d = %v", i, results)
		}
	}
	// Each Go used its own envelope.
	if st := sys.client.Stats(); st.Envelopes != 6 {
		t.Errorf("envelopes = %d", st.Envelopes)
	}
}

func TestEmptyAndDoubleSendBatch(t *testing.T) {
	sys := newSystem(t, nil)
	b := sys.client.NewBatch()
	if err := b.Send(); err == nil {
		t.Error("empty batch sent")
	}
	b2 := sys.client.NewBatch()
	b2.Add("Echo", "echo")
	if err := b2.Send(); err != nil {
		t.Fatal(err)
	}
	if err := b2.Send(); err == nil {
		t.Error("double send accepted")
	}
	late := b2.Add("Echo", "echo")
	if _, err := late.Wait(); err == nil {
		t.Error("Add after Send resolved successfully")
	}
}

func TestSingleRequestOnPackEndpoint(t *testing.T) {
	// A plain (unpacked) request POSTed to the pack endpoint resolves its
	// service by body namespace.
	sys := newSystem(t, nil)
	reqEl, err := encodeRequestElement("urn:spi:Echo", "echo", []soapenc.Field{soapenc.F("m", "x")})
	if err != nil {
		t.Fatal(err)
	}
	env, release, err := sys.client.exchange(context.Background(), sys.client.packTarget(), []*xmldom.Element{reqEl})
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if f := env.Fault(); f != nil {
		t.Fatal(f)
	}
	params, err := soapenc.DecodeParams(env.Body[0])
	if err != nil || len(params) != 1 || !soapenc.Equal(params[0].Value, "x") {
		t.Errorf("params = %v, err = %v", params, err)
	}
}

func TestFigure4WireFormat(t *testing.T) {
	// Golden test for the packed request message of the paper's Figure 4:
	// two weather queries (Beijing, Shanghai) in one envelope whose body is
	// a Parallel_Method element with two child request elements.
	entries := []*packedEntry{}
	for _, city := range []string{"Beijing, China", "Shanghai, China"} {
		el, err := encodeRequestElement("urn:spi:WeatherService", "GetWeather",
			[]soapenc.Field{soapenc.F("CityName", city), soapenc.F("CountryName", "China")})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, &packedEntry{service: "WeatherService", element: el})
	}
	env := soap.New()
	env.AddBody(buildPackedRequest(entries))
	var buf strings.Builder
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()

	for _, want := range []string{
		`SOAP-ENV:Envelope`,
		`xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"`,
		`<spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">`,
		`spi:id="0"`,
		`spi:id="1"`,
		`spi:service="WeatherService"`,
		`<CityName xsi:type="xsd:string">Beijing, China</CityName>`,
		`<CityName xsi:type="xsd:string">Shanghai, China</CityName>`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("Figure 4 message missing %q:\n%s", want, doc)
		}
	}

	// And the body must parse back into two requests.
	parsed, err := soap.Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !isPackedRequest(parsed.Body[0]) {
		t.Fatal("body not recognized as Parallel_Method")
	}
	kids := parsed.Body[0].ChildElements()
	if len(kids) != 2 {
		t.Fatalf("packed children = %d", len(kids))
	}
	req, fault := decodeRequestElement(kids[1], "", 99)
	if fault != nil {
		t.Fatal(fault)
	}
	if req.service != "WeatherService" || req.op != "GetWeather" || req.id != 1 {
		t.Errorf("decoded request = %+v", req)
	}
}

func TestHeaderProcessorAndMustUnderstand(t *testing.T) {
	var seen []string
	proc := &testHeaderProc{ns: "urn:test:auth", local: "Token", fn: func(block *xmldom.Element, body []byte) error {
		seen = append(seen, block.Text())
		if block.Text() == "bad" {
			return errors.New("invalid token")
		}
		return nil
	}}
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.HeaderProcessors = []HeaderProcessor{proc}
		c.HeaderProviders = []HeaderProvider{headerProviderFunc(func(body []byte) ([]*xmldom.Element, error) {
			h := xmldom.NewElement(xmltext.Name{Local: "Token"})
			h.DeclareNamespace("", "urn:test:auth")
			h.SetAttr(xmltext.Name{Prefix: soap.PrefixEnvelope, Local: "mustUnderstand"}, "1")
			h.DeclareNamespace(soap.PrefixEnvelope, soap.NSEnvelope)
			h.SetText("good")
			return []*xmldom.Element{h}, nil
		})}
	})
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "good" {
		t.Errorf("processor saw %v", seen)
	}
}

func TestMustUnderstandUnknownHeaderFaults(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		c.HeaderProviders = []HeaderProvider{headerProviderFunc(func(body []byte) ([]*xmldom.Element, error) {
			h := xmldom.NewElement(xmltext.Name{Local: "Mystery"})
			h.DeclareNamespace("", "urn:test:unknown")
			h.DeclareNamespace(soap.PrefixEnvelope, soap.NSEnvelope)
			h.SetAttr(xmltext.Name{Prefix: soap.PrefixEnvelope, Local: "mustUnderstand"}, "1")
			return []*xmldom.Element{h}, nil
		})}
	})
	_, err := sys.client.Call("Echo", "echo")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultMustUnderstand {
		t.Errorf("err = %v, want MustUnderstand fault", err)
	}
}

type testHeaderProc struct {
	ns, local string
	fn        func(*xmldom.Element, []byte) error
}

func (p *testHeaderProc) HeaderName() (string, string) { return p.ns, p.local }
func (p *testHeaderProc) ProcessHeader(b *xmldom.Element, body []byte) error {
	return p.fn(b, body)
}

type headerProviderFunc func([]byte) ([]*xmldom.Element, error)

func (f headerProviderFunc) MakeHeaders(body []byte) ([]*xmldom.Element, error) { return f(body) }

func TestAutoBatcherCoalesces(t *testing.T) {
	sys := newSystem(t, nil)
	ab := NewAutoBatcher(sys.client, 20*time.Millisecond, 64)
	defer ab.Close()

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results, err := ab.Call("Echo", "echo", soapenc.F("i", int64(i)))
			if err == nil && !soapenc.Equal(results[0].Value, int64(i)) {
				err = fmt.Errorf("wrong result %v", results)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	// All calls issued within the window must share few envelopes.
	if st := sys.client.Stats(); st.Envelopes >= n {
		t.Errorf("auto batcher sent %d envelopes for %d calls", st.Envelopes, n)
	}
}

func TestAutoBatcherMaxBatchFlush(t *testing.T) {
	sys := newSystem(t, nil)
	ab := NewAutoBatcher(sys.client, time.Hour, 4) // window never fires
	defer ab.Close()
	var calls []*Call
	for i := 0; i < 4; i++ {
		calls = append(calls, ab.Go("Echo", "echo", soapenc.F("i", int64(i))))
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutoBatcherExplicitFlush(t *testing.T) {
	sys := newSystem(t, nil)
	ab := NewAutoBatcher(sys.client, time.Hour, 1024) // window never fires on its own
	defer ab.Close()
	call := ab.Go("Echo", "echo", soapenc.F("m", "flushed"))
	select {
	case <-call.Done():
		t.Fatal("call resolved before flush")
	case <-time.After(10 * time.Millisecond):
	}
	ab.Flush()
	select {
	case <-call.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flush did not release the call")
	}
	res, err := call.Wait()
	if err != nil || !soapenc.Equal(res[0].Value, "flushed") {
		t.Errorf("flushed call = %v, %v", res, err)
	}
	// Flushing with nothing pending is a no-op.
	ab.Flush()
}

func TestAutoBatcherClosed(t *testing.T) {
	sys := newSystem(t, nil)
	ab := NewAutoBatcher(sys.client, time.Millisecond, 8)
	ab.Close()
	if _, err := ab.Call("Echo", "echo"); err == nil {
		t.Error("call on closed autobatcher succeeded")
	}
}

func TestNotFoundAndMethodNotAllowed(t *testing.T) {
	sys := newSystem(t, nil)
	// Bad path segment.
	_, err := sys.client.Call("Echo/extra", "echo")
	if err == nil {
		t.Error("nested path accepted")
	}
}

func TestWSDLEndpoint(t *testing.T) {
	sys := newSystem(t, nil)
	get := func(target string) (*httpx.Response, error) {
		req := httpx.NewRequest("GET", target, nil)
		return sys.client.http.Do(req)
	}
	resp, err := get("/services/Echo?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "wsdl:definitions") {
		t.Errorf("wsdl endpoint = %d %q", resp.StatusCode, truncate(resp.Body, 100))
	}
	resp, err = get("/services")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "Echo") {
		t.Errorf("service listing = %d %q", resp.StatusCode, truncate(resp.Body, 100))
	}
	resp, err = get("/services/NoSuch?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("missing service wsdl = %d", resp.StatusCode)
	}
	resp, err = get("/services/Echo")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "?wsdl") {
		t.Errorf("service info = %d %q", resp.StatusCode, truncate(resp.Body, 100))
	}
}

func TestMalformedEnvelopeFaults(t *testing.T) {
	sys := newSystem(t, nil)
	resp, err := sys.client.http.Post("/services/Echo", "text/xml", []byte("<not-soap/>"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	env, err := soap.Decode(strings.NewReader(string(resp.Body)))
	if err != nil {
		t.Fatal(err)
	}
	if f := env.Fault(); f == nil || f.Code != soap.FaultClient {
		t.Errorf("fault = %v", f)
	}
}

func TestProtocolWorkerLimit(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.ProtocolWorkers = 1
	})
	// With a single protocol worker, two concurrent slow single calls
	// serialize at the protocol stage in coupled mode; in staged mode the
	// app stage still runs them but the protocol thread holds the slot
	// while waiting, so they serialize too.
	start := time.Now()
	c1 := sys.client.Go("Echo", "slow")
	c2 := sys.client.Go("Echo", "slow")
	if _, err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Errorf("protocol-limited calls took %v, want >= 40ms serial", elapsed)
	}
}

func TestInterceptorChain(t *testing.T) {
	var order []string
	mk := func(name string) Interceptor {
		return func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault) {
			order = append(order, name+"-in")
			resp, fault := next(env)
			order = append(order, name+"-out")
			return resp, fault
		}
	}
	var sawInfo *RequestInfo
	capture := func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault) {
		sawInfo = info
		return next(env)
	}
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.Interceptors = []Interceptor{mk("outer"), mk("inner"), capture}
	})
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer-in", "inner-in", "inner-out", "outer-out"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sawInfo == nil || sawInfo.DefaultService != "Echo" || sawInfo.Target != "/services/Echo" {
		t.Errorf("info = %+v", sawInfo)
	}
}

func TestInterceptorShortCircuit(t *testing.T) {
	reject := func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault) {
		return nil, soap.ClientFault("blocked by policy")
	}
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.Interceptors = []Interceptor{reject}
	})
	_, err := sys.client.Call("Echo", "echo")
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "blocked by policy") {
		t.Errorf("err = %v", err)
	}
	// The terminal dispatcher never ran.
	if sys.server.Stats().Requests != 0 {
		t.Error("request executed despite short-circuit")
	}
}

func TestInterceptorNilResponseBecomesFault(t *testing.T) {
	broken := func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault) {
		return nil, nil
	}
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.Interceptors = []Interceptor{broken}
	})
	_, err := sys.client.Call("Echo", "echo")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultServer {
		t.Errorf("err = %v", err)
	}
}

func TestPerOperationStats(t *testing.T) {
	sys := newSystem(t, nil)
	for i := 0; i < 3; i++ {
		if _, err := sys.client.Call("Echo", "echo", soapenc.F("i", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.client.Call("WeatherService", "GetWeather", soapenc.F("CityName", "Beijing")); err != nil {
		t.Fatal(err)
	}
	st := sys.server.Stats()
	if st.Operations == nil {
		t.Fatal("no per-operation stats")
	}
	if got := st.Operations["Echo.echo"].Count; got != 3 {
		t.Errorf("Echo.echo count = %d, want 3", got)
	}
	if got := st.Operations["WeatherService.GetWeather"].Count; got != 1 {
		t.Errorf("GetWeather count = %d, want 1", got)
	}
}

func TestServerStatsCounts(t *testing.T) {
	sys := newSystem(t, nil)
	sys.client.Call("Echo", "echo")
	b := sys.client.NewBatch()
	b.Add("Echo", "echo")
	b.Add("Echo", "echo")
	b.Send()
	st := sys.server.Stats()
	if st.Envelopes != 2 || st.Requests != 3 || st.PackedMessages != 1 {
		t.Errorf("server stats = %+v", st)
	}
	if st.AppStage.Completed < 3 {
		t.Errorf("app stage completed = %d", st.AppStage.Completed)
	}
}

func TestFetchWSDLDefines(t *testing.T) {
	sys := newSystem(t, nil)
	d, err := sys.client.FetchWSDL("WeatherService")
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "WeatherService" || d.Namespace != "urn:spi:WeatherService" {
		t.Errorf("description = %+v", d)
	}
	if len(d.Operations) == 0 || d.Operations[0] != "GetWeather" {
		t.Errorf("operations = %v", d.Operations)
	}
	if ns := sys.client.NamespaceOf("WeatherService"); ns != "urn:spi:WeatherService" {
		t.Errorf("namespace after fetch = %q", ns)
	}
	if _, err := sys.client.FetchWSDL("NoSuchService"); err == nil {
		t.Error("WSDL fetch for missing service succeeded")
	}
}

func TestNamespaceDefineOverride(t *testing.T) {
	sys := newSystem(t, nil)
	if ns := sys.client.NamespaceOf("Echo"); ns != "urn:spi:Echo" {
		t.Errorf("default ns = %q", ns)
	}
	sys.client.Define("Echo", "urn:custom")
	if ns := sys.client.NamespaceOf("Echo"); ns != "urn:custom" {
		t.Errorf("defined ns = %q", ns)
	}
}

func TestTemplateCacheEndToEnd(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		c.TemplateCache = true
	})
	for i := 0; i < 5; i++ {
		res, err := sys.client.Call("Echo", "echo", soapenc.F("data", fmt.Sprintf("msg-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !soapenc.Equal(res[0].Value, fmt.Sprintf("msg-%d", i)) {
			t.Errorf("call %d = %v", i, res)
		}
	}
	st := sys.client.TemplateStats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("template stats = %+v, want 1 miss, 4 hits", st)
	}
	// Uncacheable shapes still work through the normal path.
	res, err := sys.client.Call("Echo", "echo", soapenc.F("arr", soapenc.Array{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if arr, ok := res[0].Value.(soapenc.Array); !ok || len(arr) != 2 {
		t.Errorf("uncacheable call result = %v", res)
	}
	if st := sys.client.TemplateStats(); st.Uncached != 1 {
		t.Errorf("uncached = %d", st.Uncached)
	}
}

func TestTemplateCacheDisabledForSOAP12(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		c.TemplateCache = true
		c.SOAP12 = true
	})
	// Calls work, but bypass the 1.1-format template cache.
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	if st := sys.client.TemplateStats(); st.Hits+st.Misses != 0 {
		t.Errorf("template cache active under SOAP 1.2: %+v", st)
	}
}

func TestTemplateCacheDisabledStats(t *testing.T) {
	sys := newSystem(t, nil)
	if st := sys.client.TemplateStats(); st != (msgcache.Stats{}) {
		t.Errorf("stats with cache disabled = %+v", st)
	}
}

func TestDifferentialDeserialization(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.DifferentialDeserialization = true
	})
	// Identical calls hit the cache; results stay correct.
	for i := 0; i < 4; i++ {
		res, err := sys.client.Call("Echo", "echo", soapenc.F("data", "same"))
		if err != nil {
			t.Fatal(err)
		}
		if !soapenc.Equal(res[0].Value, "same") {
			t.Errorf("call %d = %v", i, res)
		}
	}
	// A different message must not be served from the cache.
	res, err := sys.client.Call("Echo", "echo", soapenc.F("data", "different"))
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, "different") {
		t.Errorf("different call = %v", res)
	}
	st := sys.server.Stats()
	if st.DiffHits != 3 || st.DiffMisses != 2 {
		t.Errorf("diff stats = hits %d misses %d, want 3/2", st.DiffHits, st.DiffMisses)
	}
	// Packed repeats hit too — per entry: the first batch misses on both
	// of its children, the repeat hits on both.
	for i := 0; i < 2; i++ {
		b := sys.client.NewBatch()
		c1 := b.Add("Echo", "echo", soapenc.F("data", "packed"))
		c2 := b.Add("WeatherService", "GetWeather", soapenc.F("CityName", "Beijing"))
		if err := b.Send(); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.Wait(); err != nil {
			t.Fatal(err)
		}
		if res, err := c2.Wait(); err != nil || !soapenc.Equal(res[0].Value, "Sunny in Beijing") {
			t.Errorf("packed weather = %v, %v", res, err)
		}
	}
	st = sys.server.Stats()
	if st.DiffHits != 5 || st.DiffMisses != 4 {
		t.Errorf("diff stats after packed repeats = hits %d misses %d, want 5/4", st.DiffHits, st.DiffMisses)
	}
}

// TestDiffCacheLRU pins the store's recency behaviour deterministically by
// driving one shard directly: keys share a first byte, so with capacity 16
// (two slots per shard) the shard holds two entries, and a lookup refreshes
// recency — FIFO would evict the older insert, LRU evicts the unused one.
func TestDiffCacheLRU(t *testing.T) {
	d := newDiffCache(16)
	key := func(b byte) (k [32]byte) { k[1] = b; return }
	tree := xmldom.NewElement(xmltext.Name{Local: "x"})
	d.insert(key(1), tree)
	d.insert(key(2), tree)
	if d.lookup(key(1)) == nil {
		t.Fatal("key 1 missing after insert")
	}
	d.insert(key(3), tree) // shard full: must evict key 2, the LRU
	if d.lookup(key(2)) != nil {
		t.Error("key 2 survived eviction (FIFO order, want LRU)")
	}
	if d.lookup(key(1)) == nil {
		t.Error("key 1 evicted despite being recently used")
	}
	if d.lookup(key(3)) == nil {
		t.Error("key 3 missing after insert")
	}
	hits, misses := d.stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats = hits %d misses %d, want 3/1", hits, misses)
	}
}

func TestAdaptiveAppStage(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.AdaptiveAppStage = true
		s.AppWorkersMin = 1
		s.AppWorkers = 16
	})
	// Drive a packed burst of slow operations: the controller should grow
	// the stage, and the requests must all succeed.
	b := sys.client.NewBatch()
	var calls []*Call
	for i := 0; i < 24; i++ {
		calls = append(calls, b.Add("Echo", "slow"))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	st := sys.server.Stats()
	if st.AppStage.Completed < 24 {
		t.Errorf("app stage completed = %d", st.AppStage.Completed)
	}
	if st.AppStage.Workers < 1 || st.AppStage.Workers > 16 {
		t.Errorf("adaptive workers = %d, want within [1,16]", st.AppStage.Workers)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("server without container accepted")
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("client without dialer accepted")
	}
}
