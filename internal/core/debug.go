package core

import (
	"bytes"
	"encoding/json"
	"runtime/pprof"
	"strings"

	"repro/internal/httpx"
	"repro/internal/trace"
)

// debugPathPrefix is the URL prefix the operator endpoints live under when
// ServerConfig.DebugEndpoints is set. It is deliberately outside PathPrefix
// so it can never shadow a deployed service.
const debugPathPrefix = "/spi/"

// statsSnapshot is the JSON document GET /spi/stats returns: the server
// counters plus, when a tracer is attached, the per-stage latency summaries
// and gauges the trace sink has aggregated.
type statsSnapshot struct {
	Server ServerStats `json:"server"`

	// AppOccupancy is the application-stage worker occupancy in [0, 1]
	// at snapshot time.
	AppOccupancy float64 `json:"app_occupancy"`
	// AppQueueLen is the instantaneous application-stage queue length.
	AppQueueLen int `json:"app_queue_len"`

	// Stages is present only when a tracer is attached.
	Stages []trace.StageSummary `json:"stages,omitempty"`
	// Gauges is present only when a tracer is attached.
	Gauges []trace.GaugeValue `json:"gauges,omitempty"`
	// SpansDropped counts ring-buffer overwrites since the last Reset.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// handleDebug serves the operator endpoints:
//
//	GET /spi/stats          — JSON snapshot of ServerStats + trace summaries
//	GET /spi/pprof/<name>   — a runtime profile (goroutine, heap, allocs,
//	                          block, mutex, threadcreate) in pprof format
func (s *Server) handleDebug(req *httpx.Request) *httpx.Response {
	target := req.Target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	switch {
	case target == debugPathPrefix+"stats":
		return s.handleStats()
	case strings.HasPrefix(target, debugPathPrefix+"pprof/"):
		return s.handlePprof(strings.TrimPrefix(target, debugPathPrefix+"pprof/"))
	}
	resp := httpx.NewResponse(404, []byte("unknown debug endpoint; try /spi/stats or /spi/pprof/goroutine\n"))
	resp.Header.Set("Content-Type", "text/plain")
	return resp
}

func (s *Server) handleStats() *httpx.Response {
	snap := statsSnapshot{Server: s.Stats()}
	if s.appPool != nil {
		snap.AppOccupancy = snap.Server.AppStage.Occupancy()
		snap.AppQueueLen = s.appPool.QueueLen()
	}
	if tr := s.cfg.Tracer; tr.Enabled() {
		snap.Stages = tr.Stages()
		snap.Gauges = tr.Gauges()
		snap.SpansDropped = tr.Dropped()
	}
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		resp := httpx.NewResponse(500, []byte("stats encoding failed\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	body = append(body, '\n')
	resp := httpx.NewResponse(200, body)
	resp.Header.Set("Content-Type", "application/json")
	return resp
}

func (s *Server) handlePprof(name string) *httpx.Response {
	p := pprof.Lookup(name)
	if p == nil {
		resp := httpx.NewResponse(404, []byte("unknown profile "+name+"\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	var buf bytes.Buffer
	// debug=1 renders the legible text form; these endpoints exist for a
	// human with curl, not for the pprof binary protocol.
	if err := p.WriteTo(&buf, 1); err != nil {
		resp := httpx.NewResponse(500, []byte("profile write failed\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	resp := httpx.NewResponse(200, buf.Bytes())
	resp.Header.Set("Content-Type", "text/plain; charset=utf-8")
	return resp
}
