package core

import (
	"bytes"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/soap"
	"repro/internal/xmldom"
)

// diffCache implements server-side differential deserialization, the §2.2
// related-work optimization of Abu-Ghazaleh & Lewis (SC-05, the paper's
// [4]) and Suzumura et al. (ICWS'05, [11]): "both of the approaches take
// advantage of similarities among messages in an incoming message stream
// to a web service" to bypass parsing work.
//
// Where [4] checkpoints parser state to skip the unchanged prefix of a
// similar message, this implementation takes the limiting (and very
// common in benchmarks and polling workloads) case of byte-identical
// subtrees. Two granularities share one store:
//
//   - per-entry (streaming path): each body subtree — a Parallel_Method
//     child, or a single call's entry — is keyed by a hash of its raw span
//     mixed with the ancestor start tags that govern its namespace
//     resolution. A packed message with 60 repeated entries and 4 novel
//     ones re-parses only the 4; hits clone the cached subtree into the
//     request arena without tokenizing the span at all.
//   - whole-body (buffered opt-out path): the parsed document of each
//     recently-seen request, keyed by a hash of the full raw body.
//
// Cached trees are immutable once stored, so hits clone them outside any
// critical section; the store itself is an LRU sharded eight ways by key
// byte, keeping the lock hold time to a map probe and two list splices.
// Like the original, the cache is orthogonal to packing: it cuts
// per-message CPU, not the number of messages.
type diffCache struct {
	shards [diffShards]diffShard
	hits   atomic.Int64
	misses atomic.Int64
}

const diffShards = 8

type diffShard struct {
	mu      sync.Mutex
	cap     int
	entries map[[sha256.Size]byte]*diffEntry
	// Intrusive LRU list: head is most recent, tail next to evict.
	head, tail *diffEntry
}

type diffEntry struct {
	key        [sha256.Size]byte
	tree       *xmldom.Element // immutable once stored
	prev, next *diffEntry
}

func newDiffCache(capacity int) *diffCache {
	if capacity <= 0 {
		capacity = 256
	}
	perShard := (capacity + diffShards - 1) / diffShards
	d := &diffCache{}
	for i := range d.shards {
		d.shards[i].cap = perShard
		d.shards[i].entries = make(map[[sha256.Size]byte]*diffEntry, perShard)
	}
	return d
}

func (d *diffCache) shard(key [sha256.Size]byte) *diffShard {
	return &d.shards[key[0]%diffShards]
}

// lookup returns the cached immutable tree for key, or nil. The caller
// clones it outside the lock (into an arena on the streaming path).
func (d *diffCache) lookup(key [sha256.Size]byte) *xmldom.Element {
	s := d.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		d.misses.Add(1)
		return nil
	}
	s.moveToFront(e)
	tree := e.tree
	s.mu.Unlock()
	d.hits.Add(1)
	return tree
}

// insert stores tree — which must never be mutated again — under key,
// evicting the least recently used entry of the shard when full.
func (d *diffCache) insert(key [sha256.Size]byte, tree *xmldom.Element) {
	s := d.shard(key)
	s.mu.Lock()
	if _, dup := s.entries[key]; !dup {
		if len(s.entries) >= s.cap {
			if lru := s.tail; lru != nil {
				s.unlink(lru)
				delete(s.entries, lru.key)
			}
		}
		e := &diffEntry{key: key, tree: tree}
		s.entries[key] = e
		s.pushFront(e)
	}
	s.mu.Unlock()
}

func (s *diffShard) pushFront(e *diffEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *diffShard) unlink(e *diffEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *diffShard) moveToFront(e *diffEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// subtreeKey derives the cache key for one raw subtree span. ctxSum is the
// digest of the ancestor start tags (envelope root, Body, and the packed
// entry for per-child spans) — mixing it in guarantees byte-identical
// spans under different namespace declarations never share an entry.
func subtreeKey(ctxSum [sha256.Size]byte, raw []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(ctxSum[:])
	h.Write(raw)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// contextSum digests the ancestor start tags for subtreeKey.
func contextSum(tags ...[]byte) [sha256.Size]byte {
	h := sha256.New()
	for _, t := range tags {
		h.Write(t)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// decode parses body, consulting the cache at whole-body granularity —
// the buffered dispatch path, which holds the complete raw body anyway.
// The returned envelope is always private to the caller (a clone on
// hits), since dispatch mutates the tree.
func (d *diffCache) decode(body []byte) (*soap.Envelope, error) {
	key := sha256.Sum256(body)
	if root := d.lookup(key); root != nil {
		return soap.FromElement(root.Clone())
	}

	parsed, err := xmldom.Parse(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	env, err := soap.FromElement(parsed)
	if err != nil {
		return nil, err
	}

	// Store a pristine copy: the caller's tree gets mutated by dispatch.
	d.insert(key, parsed.Clone())
	return env, nil
}

// stats returns (hits, misses).
func (d *diffCache) stats() (int64, int64) {
	return d.hits.Load(), d.misses.Load()
}
