package core

import (
	"bytes"
	"crypto/sha256"
	"sync"

	"repro/internal/soap"
	"repro/internal/xmldom"
)

// diffCache implements server-side differential deserialization, the §2.2
// related-work optimization of Abu-Ghazaleh & Lewis (SC-05, the paper's
// [4]) and Suzumura et al. (ICWS'05, [11]): "both of the approaches take
// advantage of similarities among messages in an incoming message stream
// to a web service" to bypass parsing work.
//
// Where [4] checkpoints parser state to skip the unchanged prefix of a
// similar message, this implementation takes the limiting (and very
// common in benchmarks and polling workloads) case of byte-identical
// messages: the parsed document of each recently-seen request is kept,
// keyed by a hash of the raw body, and a hit deep-clones the cached tree
// instead of re-tokenizing — the same externally-observable effect with a
// much simpler mechanism. Like the original, it is orthogonal to packing:
// it cuts per-message CPU, not the number of messages.
type diffCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[sha256.Size]byte]*xmldom.Element
	order   [][sha256.Size]byte // FIFO eviction
	hits    int64
	misses  int64
}

func newDiffCache(capacity int) *diffCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &diffCache{
		cap:     capacity,
		entries: make(map[[sha256.Size]byte]*xmldom.Element, capacity),
	}
}

// decode parses body, consulting the cache. The returned envelope is
// always private to the caller (a clone on hits), since dispatch mutates
// the tree.
func (d *diffCache) decode(body []byte) (*soap.Envelope, error) {
	key := sha256.Sum256(body)

	d.mu.Lock()
	root := d.entries[key]
	if root != nil {
		d.hits++
		// Clone while holding the lock: eviction could otherwise race
		// with cloning. The tree is small relative to the lock scope.
		root = root.Clone()
		d.mu.Unlock()
		return soap.FromElement(root)
	}
	d.misses++
	d.mu.Unlock()

	parsed, err := xmldom.Parse(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	env, err := soap.FromElement(parsed)
	if err != nil {
		return nil, err
	}

	// Store a pristine copy: the caller's tree gets mutated by dispatch.
	d.mu.Lock()
	if _, dup := d.entries[key]; !dup {
		if len(d.order) >= d.cap {
			oldest := d.order[0]
			d.order = d.order[1:]
			delete(d.entries, oldest)
		}
		d.entries[key] = parsed.Clone()
		d.order = append(d.order, key)
	}
	d.mu.Unlock()
	return env, nil
}

// stats returns (hits, misses).
func (d *diffCache) stats() (int64, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses
}
