package core

import (
	"bytes"
	"testing"

	"repro/internal/xmldom"
)

// FuzzDiffSubtree feeds adversarial bytes through the per-subtree hashing
// path of the differential cache and checks the invariant the streaming
// server relies on: for any span that parses at all, the tree recovered
// through the cache (insert a clone, look it up, clone into a fresh arena —
// exactly what dispatchPackedStream does on a hit) serializes to the same
// bytes as a direct cache-off parse of the span. Any divergence would mean
// cache hits could silently change what a service method sees.
func FuzzDiffSubtree(f *testing.F) {
	f.Add([]byte("<a>1</a>"), []byte("<Body>"))
	f.Add([]byte(`<m:op xmlns:m="urn:x"><data xsi:type="xsd:string">hi</data></m:op>`), []byte("<Body>"))
	f.Add([]byte(`<e spi:id="0" spi:service="Echo"><v>1 &amp; 2</v></e>`), []byte(`<spi:Parallel_Method xmlns:spi="urn:p">`))
	f.Add([]byte("<a><b/><b></b><c attr='&lt;'/></a>"), []byte(""))
	f.Add([]byte("<a>"), []byte("<Body>"))
	f.Add([]byte("text only"), []byte("<Body>"))

	f.Fuzz(func(t *testing.T, raw, ctx []byte) {
		// Key derivation must be total — it runs before the span is parsed.
		sum := contextSum([]byte("<Envelope>"), ctx)
		key := subtreeKey(sum, raw)

		arena := xmldom.AcquireArena()
		defer xmldom.ReleaseArena(arena)
		direct, err := xmldom.ParseBytesInArena(raw, arena)
		if err != nil {
			return // unparseable spans never reach the cache
		}
		var want bytes.Buffer
		if err := direct.Serialize(&want); err != nil {
			t.Fatalf("serialize direct parse: %v", err)
		}

		cache := newDiffCache(8)
		if cache.lookup(key) != nil {
			t.Fatal("hit in empty cache")
		}
		cache.insert(key, direct.Clone())
		cached := cache.lookup(key)
		if cached == nil {
			t.Fatal("miss immediately after insert")
		}

		hitArena := xmldom.AcquireArena()
		defer xmldom.ReleaseArena(hitArena)
		var got bytes.Buffer
		if err := cached.CloneInArena(hitArena).Serialize(&got); err != nil {
			t.Fatalf("serialize cache hit: %v", err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("cache hit diverges from direct parse\nraw:    %q\ndirect: %s\nhit:    %s",
				raw, want.Bytes(), got.Bytes())
		}

		// Same span under a different ancestor context must key separately:
		// identical bytes can resolve prefixes differently there.
		other := subtreeKey(contextSum([]byte("<Envelope>"), append(ctx, '!')), raw)
		if other == key {
			t.Error("context change did not change subtree key")
		}
	})
}
