package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// Failure injection: the paper's system runs in a grid environment where
// servers restart, links drop and operations hang; a credible
// implementation must fail cleanly, resolve every future exactly once and
// never deadlock.

func TestClientTimeoutExpires(t *testing.T) {
	container := registry.NewContainer()
	svc := container.MustAddService("Hang", "urn:spi:Hang", "")
	release := make(chan struct{})
	svc.MustRegister("forever", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		<-release
		return nil, nil
	}, "")

	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Container: container, AppWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(release)
		cli.Close()
		srv.Close()
		link.Close()
	})

	start := time.Now()
	_, err = cli.Call("Hang", "forever")
	if err == nil {
		t.Fatal("hung call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~60ms", elapsed)
	}

	// Batches time out too, and every future resolves.
	b := cli.NewBatch()
	c1 := b.Add("Hang", "forever")
	c2 := b.Add("Hang", "forever")
	if err := b.Send(); err == nil {
		t.Fatal("hung batch succeeded")
	}
	for _, c := range []*Call{c1, c2} {
		if _, err := c.Wait(); err == nil {
			t.Error("future of failed batch resolved without error")
		}
	}
}

func TestGracefulServerShutdown(t *testing.T) {
	container := registry.NewContainer()
	svc := container.MustAddService("Slowish", "urn:spi:Slowish", "")
	started := make(chan struct{}, 1)
	svc.MustRegister("op", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		started <- struct{}{}
		time.Sleep(30 * time.Millisecond)
		return []soapenc.Field{soapenc.F("done", true)}, nil
	}, "")

	link := netsim.NewLink(netsim.Fast())
	lis, _ := link.Listen()
	srv, err := NewServer(ServerConfig{Container: container})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); link.Close() })

	// Fire a call, then shut down while it is in flight: the call must
	// complete successfully.
	result := make(chan error, 1)
	go func() {
		_, err := cli.Call("Slowish", "op")
		result <- err
	}()
	<-started
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Errorf("in-flight call failed during graceful shutdown: %v", err)
	}
	// New calls are refused afterwards.
	if _, err := cli.Call("Slowish", "op"); err == nil {
		t.Error("call after shutdown succeeded")
	}
}

func TestServerClosedMidSession(t *testing.T) {
	sys := newSystem(t, nil)
	if _, err := sys.client.Call("Echo", "echo"); err != nil {
		t.Fatal(err)
	}
	sys.server.Close()
	if _, err := sys.client.Call("Echo", "echo"); err == nil {
		t.Error("call after server close succeeded")
	}
	// Batch futures also resolve with errors, never hang.
	b := sys.client.NewBatch()
	call := b.Add("Echo", "echo")
	if err := b.Send(); err == nil {
		t.Error("batch after server close succeeded")
	}
	done := make(chan struct{})
	go func() {
		call.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("future never resolved after server close")
	}
}

func TestLinkClosedMidSession(t *testing.T) {
	sys := newSystem(t, nil)
	if _, err := sys.client.Call("Echo", "echo"); err != nil {
		t.Fatal(err)
	}
	sys.link.Close()
	if _, err := sys.client.Call("Echo", "echo"); err == nil {
		t.Error("call over closed link succeeded")
	}
}

func TestConcurrentCallsDuringClose(t *testing.T) {
	// Hammer the server with calls while it shuts down: no panics, no
	// hangs; each call either succeeds or errors.
	sys := newSystem(t, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, _ = sys.client.Call("Echo", "echo", soapenc.F("j", int64(j)))
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	sys.server.Close()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("calls hung during server close")
	}
}

func TestPanickingHandlerInPackDoesNotPoisonBatch(t *testing.T) {
	container := registry.NewContainer()
	svc := container.MustAddService("Mix", "urn:spi:Mix", "")
	svc.MustRegister("ok", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return p, nil
	}, "")
	svc.MustRegister("boom", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		panic("handler exploded")
	}, "")

	link := netsim.NewLink(netsim.Fast())
	lis, _ := link.Listen()
	srv, err := NewServer(ServerConfig{Container: container})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close(); link.Close() })

	b := cli.NewBatch()
	good := b.Add("Mix", "ok", soapenc.F("v", "survives"))
	bad := b.Add("Mix", "boom")
	good2 := b.Add("Mix", "ok", soapenc.F("v", "also survives"))
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if res, err := good.Wait(); err != nil || !soapenc.Equal(res[0].Value, "survives") {
		t.Errorf("good = %v, %v", res, err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Error("panicking op succeeded")
	}
	if res, err := good2.Wait(); err != nil || !soapenc.Equal(res[0].Value, "also survives") {
		t.Errorf("good2 = %v, %v", res, err)
	}
	// The server survives for further traffic.
	if _, err := cli.Call("Mix", "ok", soapenc.F("v", "after")); err != nil {
		t.Errorf("server dead after handler panic: %v", err)
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.MaxBodyBytes = 1024
	})
	_, err := sys.client.Call("Echo", "echo", soapenc.F("data", string(make([]byte, 10_000))))
	if err == nil {
		t.Error("oversized request accepted")
	}
}

func TestTransportErrorIsNotAFault(t *testing.T) {
	// A pure transport failure must not masquerade as a SOAP fault.
	link := netsim.NewLink(netsim.Fast())
	cli, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	defer link.Close()
	_, err = cli.Call("Echo", "echo") // no listener at all
	if err == nil {
		t.Fatal("call without server succeeded")
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		t.Errorf("transport error surfaced as fault: %v", err)
	}
}
