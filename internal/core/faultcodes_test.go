package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/soapenc"
)

// TestFaultCodeCounters drives one whole-message application fault and one
// packed per-item watchdog timeout through a live system and asserts both
// show up, keyed by wire code, in Stats().FaultCodes and the admin
// snapshot's fault_codes — the taxonomy's observability surface.
func TestFaultCodeCounters(t *testing.T) {
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.OperationTimeout = 5 * time.Millisecond
	})

	if _, err := sys.client.Call("Echo", "fail"); err == nil {
		t.Fatal("fail op did not fault")
	}
	b := sys.client.NewBatch()
	quick := b.Add("Echo", "echo", soapenc.F("msg", "quick"))
	slow := b.Add("Echo", "slow") // sleeps past the 5ms watchdog
	if err := b.Send(); err != nil {
		t.Fatalf("batch send: %v", err)
	}
	if _, err := quick.Wait(); err != nil {
		t.Fatalf("quick entry: %v", err)
	}
	_, err := slow.Wait()
	if err == nil {
		t.Fatal("parked entry did not fault")
	}
	if !errors.Is(fault.ClassifyError(err), fault.Timeout) {
		t.Fatalf("parked entry err = %v, want a timeout fault", err)
	}

	counts := func(cc []fault.CodeCount) map[string]int64 {
		m := make(map[string]int64, len(cc))
		for _, c := range cc {
			m[c.Code] = c.Count
		}
		return m
	}
	got := counts(sys.server.Stats().FaultCodes)
	if got["Server"] != 1 {
		t.Errorf("FaultCodes[Server] = %d, want 1 (the app fault): %v", got["Server"], got)
	}
	if got[FaultCodeTimeout] != 1 {
		t.Errorf("FaultCodes[%s] = %d, want 1 (the watchdog item): %v", FaultCodeTimeout, got[FaultCodeTimeout], got)
	}

	// The admin snapshot advertises the same tallies under fault_codes.
	adm := sys.server.AdminStats()
	am := make(map[string]int64, len(adm.FaultCodes))
	for _, fc := range adm.FaultCodes {
		am[fc.Code] = fc.Count
	}
	if am["Server"] != got["Server"] || am[FaultCodeTimeout] != got[FaultCodeTimeout] {
		t.Errorf("admin fault_codes = %v, want the server tallies %v", am, got)
	}
}
