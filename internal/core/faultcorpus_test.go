package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// The fault corpus drives every fault emission site in the server end to
// end — watchdog timeout, per-item packed degradation, cancellation,
// admission shedding, application faults, header rejection (WSSE and
// mustUnderstand), malformed envelopes and version mismatch — and pins the
// exact response bytes in both SOAP versions under testdata/faultcorpus/.
// The goldens were committed green against the stringly-typed fault code
// and must pass unchanged across the internal/fault refactor: the corpus
// is the proof that retyping the taxonomy produced zero wire drift.
//
// Scenarios a remote caller cannot observe deterministically (a caller
// that cancels and walks away never reads the Server.Cancelled response)
// are driven at the emission function instead and encoded through the same
// envelope edge the wire path uses.

// corpusGolden compares got against testdata/faultcorpus/<name>, honoring
// the shared -update flag.
func corpusGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "faultcorpus", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response bytes diverged from golden %s\n got: %s\nwant: %s", name, got, want)
	}
}

// corpusSingleDoc frames one single-call request envelope for op on the
// Echo service.
func corpusSingleDoc(t *testing.T, v soap.Version, op string, params ...soapenc.Field) []byte {
	t.Helper()
	el, err := encodeRequestElement("urn:spi:Echo", op, params)
	if err != nil {
		t.Fatal(err)
	}
	env := soap.New()
	env.Version = v
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corpusPackedDoc frames a two-entry packed request: a fast echo plus the
// blocking park operation, ids 0 and 1.
func corpusPackedDoc(t *testing.T, v soap.Version) []byte {
	t.Helper()
	fast, err := encodeRequestElement("urn:spi:Echo", "echo", []soapenc.Field{soapenc.F("m", "quick")})
	if err != nil {
		t.Fatal(err)
	}
	stuck, err := encodeRequestElement("urn:spi:Echo", "park", nil)
	if err != nil {
		t.Fatal(err)
	}
	env := soap.New()
	env.Version = v
	env.AddBody(buildPackedRequest([]*packedEntry{
		{service: "Echo", element: fast},
		{service: "Echo", element: stuck},
	}))
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postCorpus posts a request with optional extra headers and returns the
// raw response status and body bytes.
func postCorpus(t *testing.T, sys *system, target string, v soap.Version, doc []byte, extra ...string) (int, []byte) {
	t.Helper()
	resp, err := sys.client.http.Post(target, v.ContentType(), doc, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Body
}

func TestFaultCorpusWatchdogTimeout(t *testing.T) {
	// ServerConfig.OperationTimeout bounds the runaway handler; the
	// watchdog answers with the whole-message timeout fault.
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.OperationTimeout = 50 * time.Millisecond
	})
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		code, body := postCorpus(t, sys, "/services/Echo", v, corpusSingleDoc(t, v, "park"))
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "watchdog_timeout_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusPackedDeadlineDegrade(t *testing.T) {
	// A packed batch whose propagated deadline expires mid-flight returns a
	// mixed response: the finished echo entry verbatim, the stuck park
	// entry as a per-item timeout fault carrying its spi:id.
	sys, _ := newResilienceSystem(t, nil)
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		code, body := postCorpus(t, sys, "/services/", v, corpusPackedDoc(t, v),
			HeaderDeadline, "400")
		if code != 200 {
			t.Errorf("%s: status = %d, want 200 (degraded, not failed)", v, code)
		}
		corpusGolden(t, "packed_degrade_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusCancelled(t *testing.T) {
	// A caller that cancels and disconnects never reads the response, so
	// the cancellation fault cannot be captured off the wire; drive the
	// emission site (abandonResult) directly and encode through the same
	// envelope edge faultResponse uses.
	sys, _ := newResilienceSystem(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := sys.server.abandonResult(ctx, &rpcRequest{id: 1, service: "Echo", op: "park"})
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		var buf bytes.Buffer
		if err := res.fault.EnvelopeFor(v).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		corpusGolden(t, "cancelled_"+corpusSuffix(v), buf.Bytes())
	}
}

func TestFaultCorpusAdmissionShed(t *testing.T) {
	// One worker, one queue slot, 5ms admission patience: with both
	// occupied by gated calls, the probe is shed with the busy fault.
	sys, release := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.AppWorkers = 1
		sc.AppQueue = 1
		sc.AdmissionTimeout = 5 * time.Millisecond
	})
	defer release()
	sys.client.Go("Echo", "gate")
	sys.client.Go("Echo", "gate")
	deadline := time.Now().Add(2 * time.Second)
	for sys.server.Stats().AppStage.Submitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("gated calls never reached the application stage")
		}
		time.Sleep(time.Millisecond)
	}
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		code, body := postCorpus(t, sys, "/services/Echo", v, corpusSingleDoc(t, v, "echo"))
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "admission_shed_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusAppFault(t *testing.T) {
	// A handler error surfaces as a plain Server fault with the handler's
	// own text — the taxonomy's app-fault carrier must keep it verbatim.
	sys := newSystem(t, nil)
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		code, body := postCorpus(t, sys, "/services/Echo", v, corpusSingleDoc(t, v, "fail"))
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "app_fault_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusMustUnderstand(t *testing.T) {
	sys := newSystem(t, nil)
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		doc := `<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + v.Namespace() + `">` +
			`<SOAP-ENV:Header><x:token xmlns:x="urn:corpus" SOAP-ENV:mustUnderstand="1"/></SOAP-ENV:Header>` +
			`<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`
		code, body := postCorpus(t, sys, "/services/Echo", v, []byte(doc))
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "must_understand_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusWSSEReject(t *testing.T) {
	// A tampered body under a WSSE verifier is rejected at the header
	// processing stage with a Client fault carrying the verifier's error.
	sys := newSystem(t, parityConfig(parityFeatures{wsse: true}, false))
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		doc := parityDoc(t, v, true, parityEcho(t, "echo", "tamper-target"))
		tampered := bytes.Replace(doc, []byte("tamper-target"), []byte("tamper-forgery"), 1)
		if bytes.Equal(doc, tampered) {
			t.Fatal("tamper marker not found in document")
		}
		code, body := postCorpus(t, sys, "/services/Echo", v, tampered)
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "wsse_reject_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusEmptyPack(t *testing.T) {
	sys := newSystem(t, nil)
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		pm := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelMethod})
		pm.DeclareNamespace(PrefixPack, NSPack)
		env := soap.New()
		env.Version = v
		env.AddBody(pm)
		var buf bytes.Buffer
		if err := env.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		code, body := postCorpus(t, sys, "/services/", v, buf.Bytes())
		if code != 500 {
			t.Errorf("%s: status = %d, want 500", v, code)
		}
		corpusGolden(t, "empty_pack_"+corpusSuffix(v), body)
	}
}

func TestFaultCorpusMalformed(t *testing.T) {
	// Bytes that are not an envelope at all are answered with a SOAP 1.1
	// Client fault regardless of what the request claimed to be.
	sys := newSystem(t, nil)
	code, body := postCorpus(t, sys, "/services/Echo", soap.V11, []byte("<not-soap/>"))
	if code != 500 {
		t.Errorf("status = %d, want 500", code)
	}
	corpusGolden(t, "malformed.xml", body)
}

func TestFaultCorpusVersionMismatch(t *testing.T) {
	sys := newSystem(t, nil)
	doc := `<e:Envelope xmlns:e="urn:not-a-soap-namespace"><e:Body/></e:Envelope>`
	code, body := postCorpus(t, sys, "/services/Echo", soap.V11, []byte(doc))
	if code != 500 {
		t.Errorf("status = %d, want 500", code)
	}
	corpusGolden(t, "version_mismatch.xml", body)
}

func corpusSuffix(v soap.Version) string {
	if v == soap.V12 {
		return "12.xml"
	}
	return "11.xml"
}
