package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Scatter–gather support for the SPI gateway (package gateway): parsing a
// packed envelope into shardable entries, building per-backend sub-batches,
// splitting backend replies back into per-entry byte segments, and
// reassembling them — through the same reorder-window assembler the server
// uses — into one packed response that is byte-identical to what a single
// direct server would have produced.
//
// Byte identity is why replies are spliced as raw segments instead of being
// re-serialized through the DOM: parse→serialize is not the identity on
// this codebase's wire format (an empty element parses into a node that
// serializes as <a/>, while the server's typed encoder deliberately emits
// <a></a> for empty string results). The server's response framing is
// deterministic — same prefixes, same attribute order, same namespace
// declarations for both SOAP versions — so the gateway can anchor on exact
// byte markers and never touch the entry bytes in between.

// ScatterEntry is one Parallel_Method entry prepared for sharding.
type ScatterEntry struct {
	// Slot is the entry's position in the original packed request; the
	// reassembled response preserves slot order.
	Slot int
	// ID is the entry's effective correlation id: the explicit spi:id, or
	// the slot for entries that carry none. For entries that failed to
	// decode it is the slot, matching the server's positional fault ids.
	ID int
	// Service and Op name the target operation (empty on faulted entries).
	Service string
	Op      string
	// Element is the request element, detached from the parse arena and
	// annotated with the effective spi:id and spi:service, ready to drop
	// into a sub-batch. Nil when Fault is set.
	Element *xmldom.Element
	// Fault is set when the entry failed to decode; the gateway answers
	// such entries locally with the exact fault a direct server emits.
	Fault *soap.Fault
}

// ScatterRequest is a parsed packed request ready for sharding.
type ScatterRequest struct {
	Version soap.Version
	// Headers are the request header blocks, detached from the arena;
	// every sub-batch carries them so backends see the same envelope
	// context the client sent.
	Headers []*xmldom.Element
	// Entries are the Parallel_Method children in document order. Empty
	// when Packed is false.
	Entries []*ScatterEntry
	// Packed reports whether the body was a Parallel_Method at all; a
	// false value means the request should be proxied whole.
	Packed bool
}

// ParseScatterRequest decodes a packed request for sharding. The returned
// fault, when non-nil, is the whole-message fault a direct server would
// return for the same bytes (malformed envelope, version mismatch, extra
// body entries, empty pack); render it with GatewayFaultResponse in the
// version carried by the (possibly nil) ScatterRequest.
func ParseScatterRequest(body []byte, defaultService string) (*ScatterRequest, *soap.Fault) {
	arena := xmldom.AcquireArena()
	defer xmldom.ReleaseArena(arena)
	env, err := soap.DecodeArenaBytes(body, arena)
	if err != nil {
		if vm, ok := err.(*soap.VersionMismatchError); ok {
			return nil, &soap.Fault{Code: soap.FaultVersionMismatch, String: vm.Error()}
		}
		return nil, soap.ClientFault("malformed envelope: %v", err)
	}
	sr := &ScatterRequest{Version: env.Version, Headers: cloneHeaders(env.Header)}
	if len(env.Body) != 1 {
		return sr, soap.ClientFault("expected exactly one body entry, got %d", len(env.Body))
	}
	entry := env.Body[0]
	if !isPackedRequest(entry) {
		return sr, nil
	}
	sr.Packed = true
	children := entry.ChildElements()
	if len(children) == 0 {
		return sr, soap.ClientFault("%s has no requests", ElemParallelMethod)
	}
	sr.Entries = make([]*ScatterEntry, len(children))
	for i, el := range children {
		se := &ScatterEntry{Slot: i, ID: i}
		req, fault := decodeRequestElement(el, defaultService, i)
		if fault != nil {
			// The server answers undecodable entries with a positional id,
			// even when the entry carried a valid explicit spi:id.
			se.Fault = fault
		} else {
			se.ID = req.id
			se.Service = req.service
			se.Op = req.op
			// Clone detaches the element from the arena and pulls inherited
			// namespace declarations down, so it serializes standalone.
			c := el.Clone()
			c.SetAttr(attrID, strconv.Itoa(req.id))
			c.SetAttr(attrService, req.service)
			se.Element = c
		}
		sr.Entries[i] = se
	}
	return sr, nil
}

// BuildSubBatch serializes one backend's share of the entries as a packed
// request document. The bytes are freshly allocated and stable, so a
// failed sub-batch can be re-sent verbatim to another backend.
func BuildSubBatch(v soap.Version, headers []*xmldom.Element, entries []*ScatterEntry) ([]byte, error) {
	env := soap.New()
	env.Version = v
	for _, h := range headers {
		env.AddHeader(h)
	}
	pm := xmldom.NewElement(namePackMethod)
	pm.DeclareNamespace(PrefixPack, NSPack)
	for _, e := range entries {
		pm.AddChild(e.Element)
	}
	env.AddBody(pm)
	// The Writer path escapes attribute values (entity references were
	// decoded at parse time), unlike the emitter fast path, which assumes
	// producer-controlled escape-free attributes.
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Byte anchors of the server's canonical packed-response serialization.
// The SOAP-ENV prefix is the same for both envelope versions (only the
// namespace URI differs), so these are version-independent.
var (
	gatherBodyOpen   = []byte(`<SOAP-ENV:Body><` + PrefixPack + `:` + ElemParallelResponse + ` xmlns:` + PrefixPack + `="` + NSPack + `">`)
	gatherBodyClose  = []byte(`</` + PrefixPack + `:` + ElemParallelResponse + `></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	gatherHeaderOpen = []byte(`<SOAP-ENV:Header>`)
	gatherHeaderEnd  = []byte(`</SOAP-ENV:Header>`)
)

// SplitGatherResponse slices a backend's packed-response document into its
// per-entry byte segments plus the raw contents of its Header element (nil
// when absent). Segments are copies: the response body they came from may
// be pooled and recycled by the transport.
func SplitGatherResponse(body []byte) (segments [][]byte, rawHeader []byte, err error) {
	i := bytes.Index(body, gatherBodyOpen)
	if i < 0 {
		return nil, nil, fmt.Errorf("core: backend response is not a packed response")
	}
	if !bytes.HasSuffix(body, gatherBodyClose) {
		return nil, nil, fmt.Errorf("core: backend packed response has an unexpected tail")
	}
	if h := bytes.Index(body[:i], gatherHeaderOpen); h >= 0 {
		end := bytes.Index(body[h:i], gatherHeaderEnd)
		if end < 0 {
			return nil, nil, fmt.Errorf("core: backend response header is malformed")
		}
		rawHeader = append([]byte(nil), body[h+len(gatherHeaderOpen):h+end]...)
	}
	children := body[i+len(gatherBodyOpen) : len(body)-len(gatherBodyClose)]
	segments, err = splitTopLevelElements(children)
	if err != nil {
		return nil, nil, err
	}
	return segments, rawHeader, nil
}

// splitTopLevelElements divides a well-formed element sequence into one
// copied byte segment per top-level element. The input comes from the
// server's own emitter, so text never contains a raw '<', attribute values
// are double-quoted, and the only markup to skip inside a tag is a quoted
// string. Comments and PIs do not occur but are tolerated at depth.
func splitTopLevelElements(b []byte) ([][]byte, error) {
	var out [][]byte
	start, depth := 0, 0
	for pos := 0; pos < len(b); {
		lt := bytes.IndexByte(b[pos:], '<')
		if lt < 0 {
			if depth != 0 {
				return nil, fmt.Errorf("core: truncated packed response entry")
			}
			break
		}
		pos += lt
		if depth == 0 {
			start = pos
		}
		gt, selfClosing, closing, err := scanTag(b, pos)
		if err != nil {
			return nil, err
		}
		switch {
		case closing:
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("core: unbalanced packed response entry")
			}
		case selfClosing:
			// depth unchanged
		default:
			depth++
		}
		pos = gt + 1
		if depth == 0 {
			out = append(out, append([]byte(nil), b[start:pos]...))
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("core: truncated packed response entry")
	}
	return out, nil
}

// scanTag finds the '>' ending the tag that starts at b[pos] (which is
// '<'), honoring quoted attribute values, and classifies the tag.
func scanTag(b []byte, pos int) (gt int, selfClosing, closing bool, err error) {
	closing = pos+1 < len(b) && b[pos+1] == '/'
	inQuote := byte(0)
	for j := pos + 1; j < len(b); j++ {
		c := b[j]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '>':
			return j, b[j-1] == '/', closing, nil
		}
	}
	return 0, false, false, fmt.Errorf("core: unterminated tag in packed response")
}

// DecodeBackendFault extracts the fault from a backend's whole-message
// fault document (an HTTP 500 body), detached from any arena. Nil when the
// body is not a parseable fault envelope.
func DecodeBackendFault(body []byte) *soap.Fault {
	env, err := soap.Decode(bytes.NewReader(body))
	if err != nil {
		return nil
	}
	return detachFault(env.Fault())
}

// RetryableError exposes the client retry classification to the gateway's
// failover logic: connect failures and Server.Busy faults are always safe
// to re-send; other transport losses only when every affected operation is
// idempotent; definitive SOAP faults and the caller's own context expiry
// never.
func RetryableError(err error, idempotent bool) bool {
	return retryable(err, idempotent)
}

// GatherCollector accumulates per-slot response segments (or faults) as
// backend sub-batches complete, in any order, and reassembles them into
// the packed response through the same reorder-window loop the server's
// streaming assembler uses. Slots are write-once: late deliveries after a
// slot was degraded are dropped, exactly like detached server workers.
type GatherCollector struct {
	ids []int // effective spi:id per slot, for fault entries

	mu       sync.Mutex
	segments [][]byte
	faults   []*soap.Fault
	filled   []bool
	headers  map[int][]byte // backend index -> raw header bytes
	wake     chan struct{}
}

// NewGatherCollector returns a collector for len(ids) slots; ids[slot] is
// the effective correlation id used when a slot resolves to a fault.
func NewGatherCollector(ids []int) *GatherCollector {
	return &GatherCollector{
		ids:      ids,
		segments: make([][]byte, len(ids)),
		faults:   make([]*soap.Fault, len(ids)),
		filled:   make([]bool, len(ids)),
		wake:     make(chan struct{}, 1),
	}
}

func (c *GatherCollector) nudge() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Deliver stores a slot's response segment. The first write wins.
func (c *GatherCollector) Deliver(slot int, segment []byte) {
	c.mu.Lock()
	if !c.filled[slot] {
		c.filled[slot] = true
		c.segments[slot] = segment
	}
	c.mu.Unlock()
	c.nudge()
}

// Fail stores a slot's per-item fault. The first write wins.
func (c *GatherCollector) Fail(slot int, f *soap.Fault) {
	c.mu.Lock()
	if !c.filled[slot] {
		c.filled[slot] = true
		c.faults[slot] = f
	}
	c.mu.Unlock()
	c.nudge()
}

// AddHeader records the raw header bytes a backend's reply carried. At
// assembly the sections are concatenated in backend-index order, so a
// single contributing backend reproduces a direct server's header bytes
// exactly.
func (c *GatherCollector) AddHeader(backend int, raw []byte) {
	if len(raw) == 0 {
		return
	}
	c.mu.Lock()
	if c.headers == nil {
		c.headers = make(map[int][]byte)
	}
	c.headers[backend] = raw
	c.mu.Unlock()
}

// rawHeader merges the recorded header sections.
func (c *GatherCollector) rawHeader() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.headers) == 0 {
		return nil
	}
	idx := make([]int, 0, len(c.headers))
	for i := range c.headers {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var out []byte
	for _, i := range idx {
		out = append(out, c.headers[i]...)
	}
	return out
}

// Assemble drains slots in order into the packed-response fragment,
// parking on the reorder window's head until it fills or ctx expires.
// On expiry every unfilled slot is degraded to the per-item fault
// degrade(slot) supplies — the gateway's analogue of the server
// abandoning unfinished workers. Returns the finished HTTP response and
// the number of per-item faults it contains.
func (c *GatherCollector) Assemble(ctx context.Context, v soap.Version, degrade func(slot int) *soap.Fault) (*httpx.Response, int, error) {
	asm := newPackedAssembler()
	defer asm.release()
	for slot := 0; slot < len(c.ids); slot++ {
		for {
			c.mu.Lock()
			ok := c.filled[slot]
			seg, f := c.segments[slot], c.faults[slot]
			c.mu.Unlock()
			if ok {
				if f != nil {
					asm.itemFaults++
					var tmp [24]byte
					id := xmltext.Intern(strconv.AppendInt(tmp[:0], int64(c.ids[slot]), 10))
					// Per-item faults use the SOAP 1.1 layout regardless of
					// envelope version, like every packed-response fault.
					f.AppendElementFor(asm.em, soap.V11, xmltext.Attr{Name: attrID, Value: id})
				} else {
					asm.em.Raw(seg)
				}
				break
			}
			select {
			case <-c.wake:
			case <-ctx.Done():
				c.mu.Lock()
				for i := range c.filled {
					if !c.filled[i] {
						c.filled[i] = true
						c.faults[i] = degrade(i)
					}
				}
				c.mu.Unlock()
			}
		}
	}
	asm.em.End() // Parallel_Response
	if err := asm.em.Finish(); err != nil {
		return nil, asm.itemFaults, err
	}
	enc := soap.NewStreamEncoder()
	enc.BeginRawHeader(v, c.rawHeader())
	enc.Emitter().Raw(asm.em.Bytes())
	body, err := enc.Finish()
	if err != nil {
		enc.Release()
		return nil, asm.itemFaults, err
	}
	resp := httpx.NewResponse(200, body)
	resp.Header.Set("Content-Type", v.ContentType())
	resp.SetRelease(enc.Release)
	return resp, asm.itemFaults, nil
}

// GatewayFaultResponse renders a whole-message fault exactly as a direct
// server would: the fault envelope in the requested version under HTTP 500.
func GatewayFaultResponse(f *soap.Fault, v soap.Version) *httpx.Response {
	enc := soap.NewStreamEncoder()
	body, err := enc.EncodeEnvelope(f.EnvelopeFor(v))
	if err != nil {
		enc.Release()
		return encodeFailureResponse()
	}
	resp := httpx.NewResponse(500, body)
	resp.Header.Set("Content-Type", v.ContentType())
	resp.SetRelease(enc.Release)
	return resp
}
