package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// buildServerResponse renders the packed response a direct server would
// produce for the given results, headers included.
func buildServerResponse(t *testing.T, v soap.Version, results []*rpcResult, headers []*xmldom.Element) []byte {
	t.Helper()
	pr, err := buildPackedResponse(results, testNS)
	if err != nil {
		t.Fatal(err)
	}
	env := soap.New()
	env.Version = v
	env.Header = headers
	env.AddBody(pr)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// The server encodes through the stream encoder; pin the paths equal
	// here so the splice test below anchors on real server bytes.
	enc := soap.NewStreamEncoder()
	streamed, err := enc.EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), streamed...)
	enc.Release()
	if !bytes.Equal(out, buf.Bytes()) {
		t.Fatalf("encoder paths diverge:\n%s\n%s", out, buf.Bytes())
	}
	return out
}

// TestSplitGatherResponseRoundTrip pins the raw-splice invariant the whole
// gateway rests on: splitting a server's packed response into segments and
// reassembling them through the GatherCollector reproduces the original
// document byte for byte, for both SOAP versions and under randomized
// delivery orders.
func TestSplitGatherResponseRoundTrip(t *testing.T) {
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		results := sampleResults()
		direct := buildServerResponse(t, v, results, nil)

		segs, rawHeader, err := SplitGatherResponse(direct)
		if err != nil {
			t.Fatal(err)
		}
		if rawHeader != nil {
			t.Fatalf("unexpected header bytes: %q", rawHeader)
		}
		if len(segs) != len(results) {
			t.Fatalf("got %d segments, want %d", len(segs), len(results))
		}

		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			ids := make([]int, len(results))
			for i, r := range results {
				ids[i] = r.id
			}
			col := NewGatherCollector(ids)
			order := rng.Perm(len(segs))
			go func() {
				for _, slot := range order {
					col.Deliver(slot, segs[slot])
				}
			}()
			resp, faults, err := col.Assemble(context.Background(), v, nil)
			if err != nil {
				t.Fatal(err)
			}
			if faults != 0 {
				t.Fatalf("spliced segments counted as faults: %d", faults)
			}
			if !bytes.Equal(resp.Body, direct) {
				t.Fatalf("reassembly diverges (v=%v):\n got %s\nwant %s", v, resp.Body, direct)
			}
			resp.Release()
		}
	}
}

// TestSplitGatherResponseHeader checks header bytes survive the splice.
func TestSplitGatherResponseHeader(t *testing.T) {
	h := xmldom.NewElement(xmltext.Name{Prefix: "h", Local: "Signed"})
	h.DeclareNamespace("h", "urn:hdr")
	h.SetText("token<&>")
	results := sampleResults()
	direct := buildServerResponse(t, soap.V11, results, []*xmldom.Element{h})

	segs, rawHeader, err := SplitGatherResponse(direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawHeader) == 0 {
		t.Fatal("header bytes not extracted")
	}
	ids := make([]int, len(results))
	for i, r := range results {
		ids[i] = r.id
	}
	col := NewGatherCollector(ids)
	col.AddHeader(0, rawHeader)
	for slot, seg := range segs {
		col.Deliver(slot, seg)
	}
	resp, _, err := col.Assemble(context.Background(), soap.V11, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Release()
	if !bytes.Equal(resp.Body, direct) {
		t.Fatalf("header splice diverges:\n got %s\nwant %s", resp.Body, direct)
	}
}

// TestGatherCollectorFaultsAndDegrade exercises locally-faulted slots and
// deadline degradation: faulted and never-delivered slots must encode the
// same per-item fault bytes a direct server emits for the same results.
func TestGatherCollectorFaultsAndDegrade(t *testing.T) {
	results := []*rpcResult{
		{id: 0, service: "Echo", op: "echo", results: nil},
		{id: 4, service: "Echo", op: "bad", fault: soap.ClientFault("request %q: bad spi:id %q", "bad", "x")},
		{id: 2, service: "Echo", op: "slow", fault: &soap.Fault{
			Code: FaultCodeTimeout, String: "deadline expired before Echo.slow finished"}},
	}
	direct := buildServerResponse(t, soap.V11, results, nil)

	// Slot 0 arrives as a spliced segment, slot 1 fails locally, slot 2
	// never arrives and is degraded at the deadline.
	okOnly := buildServerResponse(t, soap.V11, results[:1], nil)
	segs, _, err := SplitGatherResponse(okOnly)
	if err != nil {
		t.Fatal(err)
	}
	col := NewGatherCollector([]int{0, 4, 2})
	col.Deliver(0, segs[0])
	col.Fail(1, results[1].fault)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: slot 2 degrades immediately
	resp, faults, err := col.Assemble(ctx, soap.V11, func(slot int) *soap.Fault {
		if slot != 2 {
			t.Fatalf("degrade called for slot %d", slot)
		}
		return results[2].fault
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Release()
	if faults != 2 {
		t.Fatalf("fault count = %d, want 2", faults)
	}
	if !bytes.Equal(resp.Body, direct) {
		t.Fatalf("fault assembly diverges:\n got %s\nwant %s", resp.Body, direct)
	}
}

// TestParseScatterRequest covers entry decoding, effective ids, local
// faults, and the whole-message fault precedence mirrored from the server.
func TestParseScatterRequest(t *testing.T) {
	doc := `<?xml version="1.0"?>` +
		`<e:Envelope xmlns:e="` + soap.NSEnvelope + `" xmlns:spi="` + NSPack + `"><e:Body>` +
		`<spi:Parallel_Method>` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:service="Echo"><data>hi</data></m:echo>` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:id="9" spi:service="Echo"><data>&lt;x&gt;</data></m:echo>` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:id="oops" spi:service="Echo"/>` +
		`<m:orphan xmlns:m="urn:x"/>` +
		`</spi:Parallel_Method>` +
		`</e:Body></e:Envelope>`
	sr, fault := ParseScatterRequest([]byte(doc), "")
	if fault != nil {
		t.Fatalf("unexpected fault: %v", fault)
	}
	if !sr.Packed || len(sr.Entries) != 4 {
		t.Fatalf("packed=%v entries=%d", sr.Packed, len(sr.Entries))
	}
	if e := sr.Entries[0]; e.Fault != nil || e.ID != 0 || e.Service != "Echo" || e.Op != "echo" {
		t.Fatalf("entry 0: %+v fault=%v", e, e.Fault)
	}
	if e := sr.Entries[1]; e.Fault != nil || e.ID != 9 {
		t.Fatalf("entry 1: %+v fault=%v", e, e.Fault)
	}
	if e := sr.Entries[2]; e.Fault == nil || !strings.Contains(e.Fault.String, `bad spi:id "oops"`) || e.ID != 2 {
		t.Fatalf("entry 2: %+v fault=%v", e, e.Fault)
	}
	if e := sr.Entries[3]; e.Fault == nil || !strings.Contains(e.Fault.String, "names no service") {
		t.Fatalf("entry 3: %+v fault=%v", e, e.Fault)
	}
	// The annotated clone must re-serialize with the effective id attached.
	var buf bytes.Buffer
	if err := sr.Entries[0].Element.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `spi:id="0"`) || !strings.Contains(buf.String(), `spi:service="Echo"`) {
		t.Fatalf("entry 0 not annotated: %s", buf.String())
	}

	for _, c := range []struct{ doc, want string }{
		{"<garbage", "malformed envelope"},
		{`<e:Envelope xmlns:e="` + soap.NSEnvelope + `"><e:Body>` +
			`<spi:Parallel_Method xmlns:spi="` + NSPack + `"/>` +
			`</e:Body></e:Envelope>`, "has no requests"},
		{`<e:Envelope xmlns:e="` + soap.NSEnvelope + `"><e:Body><a/><b/></e:Body></e:Envelope>`,
			"expected exactly one body entry, got 2"},
	} {
		_, fault := ParseScatterRequest([]byte(c.doc), "")
		if fault == nil || !strings.Contains(fault.String, c.want) {
			t.Fatalf("doc %q: fault %v, want substring %q", c.doc, fault, c.want)
		}
	}
}

// TestBuildSubBatchRoundTrip checks a sub-batch re-parses into the same
// operations and params the original entries carried, including entity
// escapes in attribute values.
func TestBuildSubBatchRoundTrip(t *testing.T) {
	doc := `<e:Envelope xmlns:e="` + soap.NSEnvelope + `" xmlns:spi="` + NSPack + `"><e:Body>` +
		`<spi:Parallel_Method>` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:service="Echo" note="a&amp;&quot;b"><data>x&amp;y</data></m:echo>` +
		`<m:nap xmlns:m="urn:spi:Echo" spi:id="5" spi:service="Echo"><ms>3</ms></m:nap>` +
		`</spi:Parallel_Method>` +
		`</e:Body></e:Envelope>`
	sr, fault := ParseScatterRequest([]byte(doc), "")
	if fault != nil {
		t.Fatal(fault)
	}
	sub, err := BuildSubBatch(sr.Version, sr.Headers, sr.Entries)
	if err != nil {
		t.Fatal(err)
	}
	sr2, fault := ParseScatterRequest(sub, "")
	if fault != nil {
		t.Fatalf("sub-batch does not re-parse: %v\n%s", fault, sub)
	}
	if len(sr2.Entries) != 2 {
		t.Fatalf("entries = %d", len(sr2.Entries))
	}
	for i, e := range sr2.Entries {
		if e.Fault != nil {
			t.Fatalf("entry %d faulted: %v", i, e.Fault)
		}
		if e.ID != sr.Entries[i].ID || e.Op != sr.Entries[i].Op {
			t.Fatalf("entry %d: id=%d op=%q", i, e.ID, e.Op)
		}
	}
	if !bytes.Contains(sub, []byte("a&amp;")) {
		t.Fatalf("attribute escaping lost:\n%s", sub)
	}
}

// TestSplitTopLevelElements hits the scanner's edge cases directly.
func TestSplitTopLevelElements(t *testing.T) {
	in := `<a x="a>b"><b/></a><c></c><d t='>'>text &lt; more</d>`
	segs, err := splitTopLevelElements([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`<a x="a>b"><b/></a>`, `<c></c>`, `<d t='>'>text &lt; more</d>`}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments: %q", len(segs), segs)
	}
	for i := range want {
		if string(segs[i]) != want[i] {
			t.Fatalf("segment %d = %q, want %q", i, segs[i], want[i])
		}
	}
	// The scanner validates balance, not tag names — its input comes from
	// the server's own emitter, which cannot emit mismatched names.
	for _, bad := range []string{"<a>", "</a>", "<a", "<a><b></a>"} {
		if _, err := splitTopLevelElements([]byte(bad)); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

// TestRetryableErrorBridge pins the exported classification against the
// internal one for the cases the gateway keys on.
func TestRetryableErrorBridge(t *testing.T) {
	busy := &soap.Fault{Code: FaultCodeBusy, String: "shed"}
	definitive := soap.ClientFault("no such service %q", "X")
	plain := fmt.Errorf("connection reset")
	if !RetryableError(busy, false) {
		t.Fatal("busy fault must always be retryable")
	}
	if RetryableError(definitive, true) {
		t.Fatal("definitive fault must never be retryable")
	}
	if RetryableError(plain, false) || !RetryableError(plain, true) {
		t.Fatal("transport loss must be idempotency-gated")
	}
	if RetryableError(context.DeadlineExceeded, true) {
		t.Fatal("caller's own expiry must not be retryable")
	}
}
