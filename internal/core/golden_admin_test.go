package core

import (
	"testing"

	"repro/internal/admin"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// adminGoldenEnvelopes pins the control-plane wire format: the Admin
// service's GetStats/SetState request and response envelopes plus its
// Client fault, in both SOAP versions. The membership manager and
// cmd/spiexporter parse exactly these shapes, so a byte change here is a
// cross-process compatibility break and must be reviewed deliberately.
func adminGoldenEnvelopes(t *testing.T) map[string]*soap.Envelope {
	t.Helper()
	stats := admin.Stats{
		Role:       "server",
		Weight:     4,
		Draining:   false,
		Workers:    32,
		Busy:       7,
		Idle:       25,
		QueueDepth: 3,
		QueueCap:   1024,
		Inflight:   10,
		Envelopes:  12345,
		Requests:   23456,
		Packed:     11111,
		Faults:     17,
		ItemFaults: 42,
		Ops: []admin.OpStat{
			{Op: "Echo.echo", Count: 9000, MeanUs: 850, P50Us: 800, P90Us: 1200, P99Us: 2500},
		},
	}
	out := make(map[string]*soap.Envelope)
	for _, v := range []struct {
		tag string
		ver soap.Version
	}{{"11", soap.V11}, {"12", soap.V12}} {
		getReq, err := admin.NewGetStatsRequest(v.ver)
		if err != nil {
			t.Fatal(err)
		}
		out["admin_getstats_req"+v.tag+".xml"] = getReq

		respEl, err := encodeResponseElement(admin.Namespace, admin.OpGetStats, admin.StatsFields(stats))
		if err != nil {
			t.Fatal(err)
		}
		getResp := soap.New()
		getResp.Version = v.ver
		getResp.AddBody(respEl)
		out["admin_getstats_resp"+v.tag+".xml"] = getResp

		drain := true
		setReq, err := admin.NewSetStateRequest(v.ver, 4, &drain)
		if err != nil {
			t.Fatal(err)
		}
		out["admin_setstate_req"+v.tag+".xml"] = setReq

		setEl, err := encodeResponseElement(admin.Namespace, admin.OpSetState,
			[]soapenc.Field{soapenc.F("weight", int64(4)), soapenc.F("draining", true)})
		if err != nil {
			t.Fatal(err)
		}
		setResp := soap.New()
		setResp.Version = v.ver
		setResp.AddBody(setEl)
		out["admin_setstate_resp"+v.tag+".xml"] = setResp

		f := soap.ClientFault("SetState: weight must be a positive integer, got 0")
		out["admin_fault"+v.tag+".xml"] = f.EnvelopeFor(v.ver)
	}
	return out
}

// TestGoldenAdminParse goes one step beyond the byte pin: the pinned
// GetStats response must parse back into the exact snapshot through the
// production parser the membership manager and exporter use.
func TestGoldenAdminParse(t *testing.T) {
	for name, env := range adminGoldenEnvelopes(t) {
		if name != "admin_getstats_resp11.xml" && name != "admin_getstats_resp12.xml" {
			continue
		}
		var buf []byte
		w := &sliceWriter{&buf}
		if err := env.Encode(w); err != nil {
			t.Fatal(err)
		}
		s, err := admin.ParseStatsResponse(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Role != "server" || s.Weight != 4 || s.Workers != 32 || s.Busy != 7 ||
			s.QueueDepth != 3 || len(s.Ops) != 1 || s.Ops[0].Op != "Echo.echo" {
			t.Errorf("%s: parsed snapshot %+v", name, s)
		}
	}
}

// sliceWriter adapts a byte-slice pointer to io.Writer.
type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
