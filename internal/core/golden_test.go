package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenEnvelopes builds the deterministic envelopes whose serializations
// are pinned under testdata/. Any codec change that alters the bytes on the
// wire must show up as a diff here and be reviewed (and -update'd)
// deliberately.
func goldenEnvelopes(t *testing.T) map[string]*soap.Envelope {
	t.Helper()
	build := func(v soap.Version, packed bool) *soap.Envelope {
		env := soap.New()
		env.Version = v
		if !packed {
			el, err := encodeRequestElement("urn:spi:Echo", "echo",
				[]soapenc.Field{soapenc.F("message", "hello"), soapenc.F("count", int32(3))})
			if err != nil {
				t.Fatal(err)
			}
			env.AddBody(el)
			return env
		}
		a, err := encodeRequestElement("urn:spi:Echo", "echo", []soapenc.Field{soapenc.F("message", "first")})
		if err != nil {
			t.Fatal(err)
		}
		b, err := encodeRequestElement("urn:spi:WeatherService", "GetWeather",
			[]soapenc.Field{soapenc.F("CityName", "Beijing")})
		if err != nil {
			t.Fatal(err)
		}
		env.AddBody(buildPackedRequest([]*packedEntry{
			{service: "Echo", element: a},
			{service: "WeatherService", element: b},
		}))
		return env
	}
	fault := func(v soap.Version) *soap.Envelope {
		f := &soap.Fault{Code: soap.FaultServer, String: "deliberate failure", Actor: "/services/Echo"}
		return f.EnvelopeFor(v)
	}
	out := map[string]*soap.Envelope{
		"single11.xml": build(soap.V11, false),
		"single12.xml": build(soap.V12, false),
		"packed11.xml": build(soap.V11, true),
		"packed12.xml": build(soap.V12, true),
		"fault11.xml":  fault(soap.V11),
		"fault12.xml":  fault(soap.V12),
	}
	// The control-plane envelopes (Admin.GetStats/SetState) are pinned by
	// the same suite — see golden_admin_test.go.
	for name, env := range adminGoldenEnvelopes(t) {
		out[name] = env
	}
	return out
}

func TestGoldenEnvelopes(t *testing.T) {
	for name, env := range goldenEnvelopes(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := env.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("envelope bytes diverged from golden %s\n got: %s\nwant: %s", name, buf.Bytes(), want)
			}
		})
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	// Decoding a golden document and re-encoding it must reproduce the same
	// bytes: the codec is byte-stable across a parse/serialize cycle.
	files, err := filepath.Glob(filepath.Join("testdata", "*.xml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden files found (run with -update first): %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			env, err := soap.Decode(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("decoding golden: %v", err)
			}
			var buf bytes.Buffer
			if err := env.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("re-encode diverged\n got: %s\nwant: %s", buf.Bytes(), want)
			}
		})
	}
}
