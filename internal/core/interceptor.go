package core

import (
	"repro/internal/soap"
)

// The interceptor chain mirrors the architecture the paper built on:
// "Due to the handler chains model, which is the Axis's architecture, we
// implemented our technique as server handlers. So, services code need
// not be modified." (§3.6). In this implementation the pack/plan
// dispatcher plays the role of the terminal handler, and user-supplied
// interceptors wrap it the way Axis handlers wrapped the pivot — for
// logging, metering, validation, or request rewriting — again with no
// change to service code.

// RequestInfo describes the message an interceptor is seeing.
type RequestInfo struct {
	// Target is the HTTP request target, e.g. "/services/Echo".
	Target string
	// DefaultService is the service addressed by the URL ("" on the pack
	// endpoint).
	DefaultService string
	// Version is the request's SOAP version.
	Version soap.Version
}

// Dispatcher continues processing an envelope and produces the response
// envelope or a fault.
type Dispatcher func(env *soap.Envelope) (*soap.Envelope, *soap.Fault)

// Interceptor wraps envelope dispatch. It may inspect or replace the
// request envelope, short-circuit with its own response or fault, and
// inspect or replace the response on the way out.
type Interceptor func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault)

// buildChain composes the configured interceptors (first configured is
// outermost) around the terminal dispatcher.
func buildChain(interceptors []Interceptor, info *RequestInfo, terminal Dispatcher) Dispatcher {
	next := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		ic := interceptors[i]
		inner := next
		next = func(env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
			return ic(env, info, inner)
		}
	}
	return next
}
