package core

import (
	"repro/internal/soap"
	"repro/internal/xmldom"
)

// The interceptor chain mirrors the architecture the paper built on:
// "Due to the handler chains model, which is the Axis's architecture, we
// implemented our technique as server handlers. So, services code need
// not be modified." (§3.6). In this implementation the pack/plan
// dispatcher plays the role of the terminal handler, and user-supplied
// interceptors wrap it the way Axis handlers wrapped the pivot — for
// logging, metering, validation, or request rewriting — again with no
// change to service code.

// RequestInfo describes the message an interceptor is seeing.
type RequestInfo struct {
	// Target is the HTTP request target, e.g. "/services/Echo".
	Target string
	// DefaultService is the service addressed by the URL ("" on the pack
	// endpoint).
	DefaultService string
	// Version is the request's SOAP version.
	Version soap.Version
}

// Dispatcher continues processing an envelope and produces the response
// envelope or a fault.
type Dispatcher func(env *soap.Envelope) (*soap.Envelope, *soap.Fault)

// Interceptor wraps envelope dispatch. It may inspect or replace the
// request envelope, short-circuit with its own response or fault, and
// inspect or replace the response on the way out.
type Interceptor func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault)

// buildChain composes the configured interceptors (first configured is
// outermost) around the terminal dispatcher.
func buildChain(interceptors []Interceptor, info *RequestInfo, terminal Dispatcher) Dispatcher {
	next := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		ic := interceptors[i]
		inner := next
		next = func(env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
			return ic(env, info, inner)
		}
	}
	return next
}

// EntryInfo describes one body entry as an EntryInterceptor sees it.
type EntryInfo struct {
	// Target is the HTTP request target, e.g. "/services/Echo".
	Target string
	// DefaultService is the service addressed by the URL ("" on the pack
	// endpoint).
	DefaultService string
	// Version is the request's SOAP version.
	Version soap.Version
	// Index is the entry's position: the i-th child of a Parallel_Method,
	// or 0 for a single call.
	Index int
	// Packed reports whether the entry arrived inside a Parallel_Method.
	Packed bool
}

// EntryInterceptor is the entry-granular interceptor hook: it runs once
// per packed entry (and once for a single call) on both dispatch paths,
// which is what lets it ride the streaming fast path — each entry is
// intercepted as its subtree closes, before the rest of the envelope has
// even been parsed. It may inspect the entry, replace it (return a
// non-nil element), or reject it with a fault: for a packed entry the
// fault becomes that entry's per-item fault, for a single call the
// message fault. Unlike Interceptor it never sees the whole envelope and
// has no response-side hook; interceptors that need either keep the
// legacy type and the buffered path.
type EntryInterceptor func(entry *xmldom.Element, info *EntryInfo) (*xmldom.Element, *soap.Fault)

// EntrySafe adapts a legacy whole-envelope Interceptor onto the
// entry-granular hook, for interceptors that declare themselves
// entry-safe: they act only on the request side (inspect, rewrite,
// meter, reject) and treat each body entry independently. The adapter
// presents each entry as a synthetic single-entry envelope; whatever the
// interceptor passes to next becomes the (possibly rewritten) entry, and
// next echoes the request envelope back so request-side post-processing
// still runs. Response rewriting and short-circuit responses are outside
// the entry-safe contract: a short-circuit response is discarded (the
// original entry proceeds), and only a fault short-circuits dispatch.
func EntrySafe(ic Interceptor) EntryInterceptor {
	return func(entry *xmldom.Element, info *EntryInfo) (*xmldom.Element, *soap.Fault) {
		env := &soap.Envelope{Version: info.Version, Body: []*xmldom.Element{entry}}
		rinfo := &RequestInfo{Target: info.Target, DefaultService: info.DefaultService, Version: info.Version}
		var repl *xmldom.Element
		next := func(env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
			if len(env.Body) > 0 {
				repl = env.Body[0]
			}
			return env, nil
		}
		if _, fault := ic(env, rinfo, next); fault != nil {
			return nil, fault
		}
		if repl == entry {
			return nil, nil
		}
		return repl, nil
	}
}

// runEntryInterceptors applies the configured entry interceptors in
// order, threading replacements through. On fault the entry is returned
// unchanged alongside it.
func runEntryInterceptors(ics []EntryInterceptor, entry *xmldom.Element, info *EntryInfo) (*xmldom.Element, *soap.Fault) {
	for _, ic := range ics {
		repl, fault := ic(entry, info)
		if fault != nil {
			return entry, fault
		}
		if repl != nil {
			entry = repl
		}
	}
	return entry, nil
}
