package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
)

// Interoperability corpus: envelopes as other SOAP 1.1 toolkits of the
// paper's era spelled them. The server must accept all of these shapes —
// the paper's whole premise is that heterogeneous clients (Axis, gSOAP,
// .NET, Perl) talk to one container. Each entry POSTs raw bytes at the
// server and checks the response.
func TestInteropEnvelopeShapes(t *testing.T) {
	sys := newSystem(t, nil)

	cases := []struct {
		name   string
		target string
		body   string
		// wantResult is a substring expected in a 200 response body.
		wantResult string
		// wantFault is the expected fault code for rejected messages.
		wantFault string
	}{
		{
			name:   "axis style, prefixed everything",
			target: "/services/Echo",
			body: `<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
                  xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                  xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
  <soapenv:Body>
    <ns1:echo xmlns:ns1="urn:spi:Echo">
      <data xsi:type="xsd:string">axis flavoured</data>
    </ns1:echo>
  </soapenv:Body>
</soapenv:Envelope>`,
			wantResult: "axis flavoured",
		},
		{
			name:   "gsoap style, default namespace body entry",
			target: "/services/Echo",
			body: `<?xml version="1.0" encoding="UTF-8"?>
<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">
<SOAP-ENV:Body><echo xmlns="urn:spi:Echo"><data>gsoap flavoured</data></echo></SOAP-ENV:Body>
</SOAP-ENV:Envelope>`,
			wantResult: "gsoap flavoured",
		},
		{
			name:   "dotnet style, untyped parameters, no xml declaration",
			target: "/services/Echo",
			body: `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <echo xmlns="urn:spi:Echo"><data>dotnet flavoured</data></echo>
  </soap:Body>
</soap:Envelope>`,
			wantResult: "dotnet flavoured",
		},
		{
			name:   "header present but ignorable",
			target: "/services/Echo",
			body: `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Header><Session xmlns="urn:vendor">abc</Session></e:Header>
  <e:Body><echo xmlns="urn:spi:Echo"><data>with header</data></echo></e:Body>
</e:Envelope>`,
			wantResult: "with header",
		},
		{
			name:   "cdata payload",
			target: "/services/Echo",
			body: `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Body><echo xmlns="urn:spi:Echo"><data><![CDATA[<raw & unescaped>]]></data></echo></e:Body>
</e:Envelope>`,
			wantResult: "&lt;raw &amp; unescaped&gt;",
		},
		{
			name:   "packed message with explicit per-entry namespaces",
			target: "/services",
			body: `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Body>
    <p:Parallel_Method xmlns:p="http://spi.ict.ac.cn/pack">
      <a:echo xmlns:a="urn:spi:Echo" xmlns:spi="http://spi.ict.ac.cn/pack" spi:id="0" spi:service="Echo"><data>first</data></a:echo>
      <b:GetWeather xmlns:b="urn:spi:WeatherService" xmlns:spi="http://spi.ict.ac.cn/pack" spi:id="1" spi:service="WeatherService"><CityName>Beijing</CityName></b:GetWeather>
    </p:Parallel_Method>
  </e:Body>
</e:Envelope>`,
			wantResult: "Sunny in Beijing",
		},
		{
			name:   "soap 1.2 envelope accepted",
			target: "/services/Echo",
			body: `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
  <env:Body><echo xmlns="urn:spi:Echo"><data>one point two</data></echo></env:Body>
</env:Envelope>`,
			wantResult: "one point two",
		},
		{
			name:      "html error page instead of xml",
			target:    "/services/Echo",
			body:      `<html><body>503 Service Unavailable</body></html>`,
			wantFault: soap.FaultClient,
		},
		{
			name:   "empty body",
			target: "/services/Echo",
			body: `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Body/>
</e:Envelope>`,
			wantFault: soap.FaultClient,
		},
		{
			name:   "two body entries rejected",
			target: "/services/Echo",
			body: `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Body><echo xmlns="urn:spi:Echo"/><echo xmlns="urn:spi:Echo"/></e:Body>
</e:Envelope>`,
			wantFault: soap.FaultClient,
		},
		{
			name:   "doctype smuggling rejected",
			target: "/services/Echo",
			body: `<!DOCTYPE lolz [<!ENTITY lol "lol">]>
<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
  <e:Body><echo xmlns="urn:spi:Echo"/></e:Body>
</e:Envelope>`,
			wantFault: soap.FaultClient,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := sys.client.http.Post(tc.target, "text/xml; charset=utf-8", []byte(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantFault != "" {
				if resp.StatusCode != 500 {
					t.Fatalf("status = %d, want 500 fault (body %s)", resp.StatusCode, truncate(resp.Body, 200))
				}
				env, err := soap.Decode(bytes.NewReader(resp.Body))
				if err != nil {
					t.Fatalf("fault response not SOAP: %v", err)
				}
				f := env.Fault()
				if f == nil || f.Code != tc.wantFault {
					t.Fatalf("fault = %v, want code %s", f, tc.wantFault)
				}
				return
			}
			if resp.StatusCode != 200 {
				t.Fatalf("status = %d: %s", resp.StatusCode, truncate(resp.Body, 300))
			}
			if !strings.Contains(string(resp.Body), tc.wantResult) {
				t.Errorf("response missing %q:\n%s", tc.wantResult, resp.Body)
			}
		})
	}
}

func TestSOAP12EndToEnd(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) {
		c.SOAP12 = true
	})
	res, err := sys.client.Call("Echo", "echo", soapenc.F("data", "v12"))
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, "v12") {
		t.Errorf("result = %v", res)
	}
	// The response must come back as SOAP 1.2, with the 1.2 media type.
	resp, err := sys.client.http.Post("/services/Echo", soap.V12.ContentType(),
		[]byte(`<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
		  <env:Body><echo xmlns="urn:spi:Echo"><data>x</data></echo></env:Body></env:Envelope>`))
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/soap+xml") {
		t.Errorf("content type = %q, want application/soap+xml", ct)
	}
	if !strings.Contains(string(resp.Body), soap.NSEnvelope12) {
		t.Errorf("response not in SOAP 1.2 namespace:\n%s", resp.Body)
	}

	// Faults come back in 1.2 format with mapped codes.
	_, err = sys.client.Call("Echo", "fail")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultServer {
		t.Errorf("1.2 fault = %v", err)
	}
	_, err = sys.client.Call("NoSuchService", "op")
	if !errors.As(err, &f) || f.Code != soap.FaultClient {
		t.Errorf("1.2 client fault = %v", err)
	}

	// Packed messages work over 1.2 too.
	b := sys.client.NewBatch()
	c1 := b.Add("Echo", "echo", soapenc.F("data", "p1"))
	c2 := b.Add("Echo", "echo", soapenc.F("data", "p2"))
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if r, err := c1.Wait(); err != nil || !soapenc.Equal(r[0].Value, "p1") {
		t.Errorf("packed 1.2 call 1 = %v, %v", r, err)
	}
	if r, err := c2.Wait(); err != nil || !soapenc.Equal(r[0].Value, "p2") {
		t.Errorf("packed 1.2 call 2 = %v, %v", r, err)
	}
}

func TestUnknownEnvelopeVersionGetsVersionMismatch(t *testing.T) {
	sys := newSystem(t, nil)
	resp, err := sys.client.http.Post("/services/Echo", "text/xml",
		[]byte(`<e:Envelope xmlns:e="urn:soap:99"><e:Body><op/></e:Body></e:Envelope>`))
	if err != nil {
		t.Fatal(err)
	}
	env, err := soap.Decode(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	f := env.Fault()
	if f == nil || f.Code != soap.FaultVersionMismatch {
		t.Errorf("fault = %v, want VersionMismatch", f)
	}
}

// The response to a foreign-shaped request must itself be a valid SOAP
// envelope that round-trips through our decoder.
func TestInteropResponsesAreWellFormed(t *testing.T) {
	sys := newSystem(t, nil)
	body := `<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
	  <soapenv:Body><echo xmlns="urn:spi:Echo"><data>x</data></echo></soapenv:Body>
	</soapenv:Envelope>`
	resp, err := sys.client.http.Post("/services/Echo", "text/xml", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	env, err := soap.Decode(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatalf("response does not decode: %v\n%s", err, resp.Body)
	}
	if len(env.Body) != 1 || env.Body[0].Name.Local != "echoResponse" {
		t.Errorf("response body = %v", env.Body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/xml") {
		t.Errorf("content type = %q", ct)
	}
}

// Large batch stress: 500 packed requests in one message (beyond the
// paper's M=128) must execute and correlate correctly.
func TestLargePackedMessage(t *testing.T) {
	sys := newSystem(t, nil)
	const m = 500
	b := sys.client.NewBatch()
	calls := make([]*Call, m)
	for i := 0; i < m; i++ {
		calls[i] = b.Add("Echo", "echo", soapenc.F("i", int64(i)))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		res, err := c.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got, _ := res[0].Value.(int64); got != int64(i) {
			t.Fatalf("call %d correlated to %d", i, got)
		}
	}
}
