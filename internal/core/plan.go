package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/stage"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Execution plans — the SPI "remote execution" interface.
//
// The paper's §1/§3 introduce SPI as "a group of application programming
// interfaces ... such as packing, remote execution, et al." and publish
// only the pack interface, leaving the rest as future work ("we will
// implement and evaluate the suite of interfaces in SPI"). This file
// implements the natural next interface in that suite: an execution plan.
//
// A plan generalizes a pack: it is a set of service invocations shipped in
// one SOAP message in which a parameter of a later step may *reference a
// result of an earlier step*. The server schedules steps on the
// application stage as their dependencies resolve — independent steps run
// concurrently, dependent steps run as soon as their inputs exist — and
// returns all results in one packed response. Call chains that would cost
// one round trip per step (reserve-then-confirm, query-then-book) collapse
// into a single exchange.
//
// Wire format (all in the spi namespace of the pack interface):
//
//	<spi:Execution_Plan>
//	  <m:QueryFlights spi:id="0" spi:service="Airline1">...</m:QueryFlights>
//	  <m:Reserve spi:id="1" spi:service="Airline1">
//	    <flight><spi:ref spi:step="0" spi:result="flight"/></flight>
//	  </m:Reserve>
//	</spi:Execution_Plan>
//
// The response reuses Parallel_Response, one entry per step.

// ElemExecutionPlan is the plan's body element local name.
const ElemExecutionPlan = "Execution_Plan"

// elemRef is the parameter-reference element local name.
const elemRef = "ref"

var (
	attrStep   = xmltext.Name{Prefix: PrefixPack, Local: "step"}
	attrResult = xmltext.Name{Prefix: PrefixPack, Local: "result"}
)

// planRef is the client-side marker value produced by StepHandle.Ref.
type planRef struct {
	step   int
	result string
}

// isPlanBody reports whether a body entry is an Execution_Plan element.
func isPlanBody(el *xmldom.Element) bool {
	return el.Is(NSPack, ElemExecutionPlan)
}

// Plan builds a multi-step remote execution shipped as one SOAP message.
// Like Batch it is single-goroutine for construction; futures may be
// awaited anywhere.
type Plan struct {
	client   *Client
	steps    []*planStep
	sent     bool
	buildErr error
}

type planStep struct {
	service string
	op      string
	params  []soapenc.Field
	call    *Call
}

// StepHandle names one step of a plan: a future for its results plus a
// factory for references to them.
type StepHandle struct {
	*Call
	plan  *Plan
	index int
}

// Ref returns a parameter value that the server resolves to the named
// result field of this step, after the step has executed.
func (h *StepHandle) Ref(result string) soapenc.Value {
	return &planRef{step: h.index, result: result}
}

// NewPlan starts an empty execution plan.
func (c *Client) NewPlan() *Plan {
	return &Plan{client: c}
}

// Add appends a step. Parameters may include values returned by the Ref
// method of earlier steps' handles.
func (p *Plan) Add(service, op string, params ...soapenc.Field) *StepHandle {
	h := &StepHandle{Call: newCall(service, op), plan: p, index: len(p.steps)}
	if p.sent {
		h.Call.resolve(nil, fmt.Errorf("core: Add after Send"))
		return h
	}
	for _, param := range params {
		if ref, ok := param.Value.(*planRef); ok && ref.step >= len(p.steps) {
			if p.buildErr == nil {
				p.buildErr = fmt.Errorf("core: step %d references step %d, which is not earlier", len(p.steps), ref.step)
			}
		}
	}
	p.steps = append(p.steps, &planStep{service: service, op: op, params: params, call: h.Call})
	p.client.calls.Add(1)
	return h
}

// Len returns the number of steps added so far.
func (p *Plan) Len() int { return len(p.steps) }

// Send ships the plan in one SOAP message, waits for the packed response
// and resolves every step future.
func (p *Plan) Send() error {
	return p.SendCtx(context.Background())
}

// SendCtx is Send under a context, with the semantics of Batch.SendCtx:
// the deadline travels to the server, steps the server finishes in time
// return real results, and unfinished steps degrade to per-item
// Server.Timeout faults.
func (p *Plan) SendCtx(ctx context.Context) error {
	if p.sent {
		return fmt.Errorf("core: plan already sent")
	}
	p.sent = true
	if len(p.steps) == 0 {
		return fmt.Errorf("core: empty plan")
	}
	resolveAll := func(err error) {
		for _, s := range p.steps {
			s.call.resolve(nil, err)
		}
	}
	if p.buildErr != nil {
		resolveAll(p.buildErr)
		return p.buildErr
	}
	ctx = p.client.traceCtx(ctx)
	if _, has := ctx.Deadline(); !has && p.client.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.client.cfg.BatchTimeout)
		defer cancel()
	}

	body, err := p.encode()
	if err != nil {
		resolveAll(err)
		return err
	}
	p.client.batches.Add(1)
	respEnv, release, err := p.client.exchange(ctx, p.client.packTarget(), []*xmldom.Element{body})
	p.client.noteOutcome(err)
	if err != nil {
		resolveAll(err)
		return err
	}
	defer release()
	if f := respEnv.Fault(); f != nil {
		p.client.faults.Add(1)
		cf := fault.Classify(detachFault(f))
		resolveAll(cf)
		return cf
	}
	if len(respEnv.Body) != 1 || !isPackedResponse(respEnv.Body[0]) {
		err := fmt.Errorf("core: plan response is not a %s", ElemParallelResponse)
		resolveAll(err)
		return err
	}
	results, err := decodePackedResponse(respEnv.Body[0])
	if err != nil {
		resolveAll(err)
		return err
	}
	for id, s := range p.steps {
		res, ok := results[id]
		switch {
		case !ok:
			s.call.resolve(nil, fmt.Errorf("core: no response for plan step %d (%s.%s)", id, s.service, s.op))
		case res.fault != nil:
			p.client.faults.Add(1)
			s.call.resolve(nil, fault.Classify(detachFault(res.fault)))
		default:
			s.call.resolve(res.results, nil)
		}
	}
	return nil
}

// encode builds the Execution_Plan body element.
func (p *Plan) encode() (*xmldom.Element, error) {
	root := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemExecutionPlan})
	root.DeclareNamespace(PrefixPack, NSPack)
	for i, s := range p.steps {
		el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: s.op})
		el.DeclareNamespace("m", p.client.NamespaceOf(s.service))
		el.SetAttr(attrID, strconv.Itoa(i))
		el.SetAttr(attrService, s.service)
		for _, param := range s.params {
			if param.Name == "" {
				return nil, fmt.Errorf("core: plan step %d has a parameter with no name", i)
			}
			if ref, ok := param.Value.(*planRef); ok {
				wrap := el.AddElement(xmltext.Name{Local: param.Name})
				refEl := wrap.AddElement(xmltext.Name{Prefix: PrefixPack, Local: elemRef})
				refEl.SetAttr(attrStep, strconv.Itoa(ref.step))
				refEl.SetAttr(attrResult, ref.result)
				continue
			}
			if _, err := soapenc.Encode(el, param.Name, param.Value); err != nil {
				return nil, fmt.Errorf("core: plan step %d param %q: %w", i, param.Name, err)
			}
		}
		root.AddChild(el)
	}
	return root, nil
}

// ---- server side ----

// planNode is one decoded plan step with its dependencies.
type planNode struct {
	req       *rpcRequest
	deps      []planDep // parameter index -> (step, result)
	waitsOn   map[int]bool
	children  []int // nodes that depend on this one (deduplicated)
	scheduled bool  // guarded by the plan mutex; prevents double dispatch
	fault     *soap.Fault
}

type planDep struct {
	paramIndex int
	step       int
	result     string
}

// dispatchPlan executes an Execution_Plan body entry: steps scheduled on
// the application stage as their dependencies resolve. When ctx's deadline
// fires before the plan drains, the assembled response degrades: finished
// steps keep their results and unfinished ones become per-item
// Server.Timeout faults, like a packed message.
func (s *Server) dispatchPlan(ctx context.Context, plan *xmldom.Element, rctx *registry.Context, defaultService string) (*soap.Envelope, *soap.Fault) {
	entries := plan.ChildElements()
	if len(entries) == 0 {
		return nil, soap.ClientFault("%s has no steps", ElemExecutionPlan)
	}
	s.packed.Add(1)

	nodes := make([]*planNode, len(entries))
	for i, el := range entries {
		node, fault := decodePlanStep(el, defaultService, i, len(entries))
		if fault != nil {
			return nil, fault
		}
		nodes[i] = node
	}
	// Index children for wakeups, deduplicating multiple references to
	// the same parent (e.g. two parameters both reading step 0).
	for i, n := range nodes {
		seen := map[int]bool{}
		for _, d := range n.deps {
			if !seen[d.step] {
				seen[d.step] = true
				nodes[d.step].children = append(nodes[d.step].children, i)
			}
		}
	}

	results := make([]*rpcResult, len(nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(nodes))

	coupled := s.cfg.Coupled || s.appPool == nil

	var schedule func(idx int)
	runNode := func(idx int) {
		defer wg.Done()
		node := nodes[idx]

		mu.Lock()
		// Substitute resolved references into the parameters.
		for _, d := range node.deps {
			src := results[d.step]
			if src == nil {
				// Cannot happen: scheduling guarantees dependency order.
				node.fault = soap.ServerFault("internal: step %d ran before its dependency %d", idx, d.step)
				break
			}
			if src.fault != nil {
				node.fault = soap.ClientFault("step %d depends on step %d, which faulted: %s", idx, d.step, src.fault.String)
				break
			}
			v, ok := findResult(src.results, d.result)
			if !ok {
				node.fault = soap.ClientFault("step %d references result %q of step %d, which has no such result", idx, d.result, d.step)
				break
			}
			node.req.params[d.paramIndex].Value = v
		}
		fault := node.fault
		mu.Unlock()

		var res *rpcResult
		if fault != nil {
			res = &rpcResult{id: node.req.id, service: node.req.service, op: node.req.op, fault: fault}
		} else if ctx.Err() != nil {
			res = s.abandonResult(ctx, node.req)
		} else {
			res = s.execute(ctx, node.req, rctx)
		}

		mu.Lock()
		results[idx] = res
		// Wake children whose last dependency this was.
		var ready []int
		for _, child := range node.children {
			delete(nodes[child].waitsOn, idx)
			if len(nodes[child].waitsOn) == 0 && !nodes[child].scheduled {
				nodes[child].scheduled = true
				ready = append(ready, child)
			}
		}
		mu.Unlock()
		for _, child := range ready {
			schedule(child)
		}
	}
	schedule = func(idx int) {
		if coupled {
			runNode(idx)
			return
		}
		// TrySubmit rather than Submit: a worker scheduling its children
		// must never block on a full queue, or all workers could block on
		// each other. On overload the step runs inline on the current
		// goroutine instead (bounded by the plan's chain depth).
		switch err := s.appPool.TrySubmit(func() { runNode(idx) }); err {
		case nil:
		case stage.ErrQueueFull:
			runNode(idx)
		default:
			mu.Lock()
			results[idx] = &rpcResult{id: nodes[idx].req.id, service: nodes[idx].req.service,
				op: nodes[idx].req.op, fault: soap.ServerFault("application stage unavailable: %v", err)}
			mu.Unlock()
			wg.Done()
		}
	}

	// Launch the roots; everything else is woken by its dependencies.
	var roots []int
	for i, n := range nodes {
		if len(n.waitsOn) == 0 {
			n.scheduled = true
			roots = append(roots, i)
		}
	}
	if len(roots) == 0 {
		return nil, soap.ClientFault("%s has a dependency cycle", ElemExecutionPlan)
	}
	for _, idx := range roots {
		schedule(idx)
	}
	if ctx.Done() == nil {
		wg.Wait()
	} else {
		waited := make(chan struct{})
		go func() { wg.Wait(); close(waited) }()
		select {
		case <-waited:
		case <-ctx.Done():
		}
	}

	// Snapshot under the lock: abandoned workers may still be writing the
	// original slice; the response is assembled from this copy, with
	// unfinished slots degraded to per-item faults.
	mu.Lock()
	final := make([]*rpcResult, len(results))
	copy(final, results)
	mu.Unlock()
	for i, r := range final {
		if r == nil {
			final[i] = s.abandonResult(ctx, nodes[i].req)
		}
	}

	for _, r := range final {
		if r.fault != nil {
			s.itemFaults.Add(1)
			s.faultCodes.NoteSOAP(r.fault)
		}
	}
	respEl, err := buildPackedResponse(final, s.namespaceOf)
	if err != nil {
		return nil, soap.ServerFault("assembling plan response: %v", err)
	}
	out := soap.New()
	out.Header = rctx.ResponseHeaders()
	out.AddBody(respEl)
	return out, nil
}

// decodePlanStep interprets one step element, extracting reference
// parameters.
func decodePlanStep(el *xmldom.Element, defaultService string, idx, total int) (*planNode, *soap.Fault) {
	// References must be recognized before generic parameter decoding, so
	// walk children manually.
	node := &planNode{waitsOn: make(map[int]bool)}
	req := &rpcRequest{id: idx, service: defaultService, op: el.Name.Local}
	if v, ok := el.Attr(attrService); ok {
		req.service = v
	}
	if v, ok := el.Attr(attrID); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, soap.ClientFault("step %q: bad spi:id %q", el.Name.Local, v)
		}
		req.id = n
	}
	if req.service == "" {
		return nil, soap.ClientFault("step %q names no service", el.Name.Local)
	}
	for _, child := range el.ChildElements() {
		if ref := child.Child(NSPack, elemRef); ref != nil {
			stepStr := ref.AttrValue(attrStep)
			step, err := strconv.Atoi(stepStr)
			if err != nil || step < 0 || step >= total {
				return nil, soap.ClientFault("step %d: bad reference step %q", idx, stepStr)
			}
			if step >= idx {
				return nil, soap.ClientFault("step %d references step %d; references must point to earlier steps", idx, step)
			}
			result := ref.AttrValue(attrResult)
			if result == "" {
				return nil, soap.ClientFault("step %d: reference without a result name", idx)
			}
			node.deps = append(node.deps, planDep{
				paramIndex: len(req.params),
				step:       step,
				result:     result,
			})
			node.waitsOn[step] = true
			req.params = append(req.params, soapenc.Field{Name: child.Name.Local})
			continue
		}
		v, err := soapenc.Decode(child)
		if err != nil {
			return nil, soap.ClientFault("step %d param %q: %v", idx, child.Name.Local, err)
		}
		req.params = append(req.params, soapenc.Field{Name: child.Name.Local, Value: v})
	}
	node.req = req
	return node, nil
}

// findResult locates a named field in a result list; a dotted name
// ("offer.price") digs into struct results.
func findResult(results []soapenc.Field, name string) (soapenc.Value, bool) {
	head, rest, nested := strings.Cut(name, ".")
	for _, f := range results {
		if f.Name != head {
			continue
		}
		if !nested {
			return f.Value, true
		}
		st, ok := f.Value.(*soapenc.Struct)
		if !ok {
			return nil, false
		}
		return findResult(st.Fields, rest)
	}
	return nil, false
}
