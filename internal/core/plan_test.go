package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// newPlanSystem deploys services exercising dependency chains: a counter
// service whose ops compose.
func newPlanSystem(t *testing.T, mutate func(*ServerConfig, *ClientConfig)) *system {
	t.Helper()
	container := registry.NewContainer()
	math := container.MustAddService("Math", "urn:spi:Math", "arithmetic for plan tests")
	math.MustRegister("Const", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		v, _ := p[0].Value.(int64)
		return []soapenc.Field{soapenc.F("value", v)}, nil
	}, "returns its input")
	math.MustRegister("Add", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		var sum int64
		for _, f := range p {
			n, ok := f.Value.(int64)
			if !ok {
				return nil, soapFault("Add needs integer params, got %T for %q", f.Value, f.Name)
			}
			sum += n
		}
		return []soapenc.Field{soapenc.F("sum", sum)}, nil
	}, "adds its params")
	math.MustRegister("Slow", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		time.Sleep(20 * time.Millisecond)
		return []soapenc.Field{soapenc.F("value", int64(1))}, nil
	}, "sleeps 20ms")
	math.MustRegister("Fail", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return nil, soapFault("deliberate")
	}, "always faults")
	math.MustRegister("Id", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return p, nil
	}, "returns its params unchanged")
	math.MustRegister("Nested", func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return []soapenc.Field{soapenc.F("offer", soapenc.NewStruct(
			soapenc.F("price", 42.5),
			soapenc.F("name", "deal"),
		))}, nil
	}, "returns a struct result")

	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	scfg := ServerConfig{Container: container, AppWorkers: 8}
	ccfg := ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second}
	if mutate != nil {
		mutate(&scfg, &ccfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close(); link.Close() })
	return &system{client: cli, server: srv, link: link}
}

func soapFault(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestPlanChain(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	a := p.Add("Math", "Const", soapenc.F("v", int64(5)))
	b := p.Add("Math", "Add", soapenc.F("x", a.Ref("value")), soapenc.F("y", int64(3)))
	c := p.Add("Math", "Add", soapenc.F("x", b.Ref("sum")), soapenc.F("y", b.Ref("sum")))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, int64(16)) { // (5+3)*2
		t.Errorf("chain result = %v, want 16", res[0].Value)
	}
	// The whole three-step chain used exactly one SOAP message.
	if st := sys.client.Stats(); st.Envelopes != 1 {
		t.Errorf("envelopes = %d, want 1", st.Envelopes)
	}
	if sys.link.Stats().Dials != 1 {
		t.Errorf("dials = %d, want 1", sys.link.Stats().Dials)
	}
}

func TestPlanDiamond(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	root := p.Add("Math", "Const", soapenc.F("v", int64(10)))
	left := p.Add("Math", "Add", soapenc.F("x", root.Ref("value")), soapenc.F("y", int64(1)))
	right := p.Add("Math", "Add", soapenc.F("x", root.Ref("value")), soapenc.F("y", int64(2)))
	join := p.Add("Math", "Add", soapenc.F("x", left.Ref("sum")), soapenc.F("y", right.Ref("sum")))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := join.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, int64(23)) { // (10+1)+(10+2)
		t.Errorf("diamond result = %v, want 23", res[0].Value)
	}
}

func TestPlanIndependentStepsRunConcurrently(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	handles := make([]*StepHandle, 8)
	for i := range handles {
		handles[i] = p.Add("Math", "Slow")
	}
	start := time.Now()
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Errorf("8 independent 20ms steps took %v, want concurrent execution", elapsed)
	}
}

func TestPlanDependentStepsSerialize(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	prev := p.Add("Math", "Slow")
	for i := 0; i < 3; i++ {
		// Chain through a fake dependency on "value" to force ordering.
		next := p.Add("Math", "Add", soapenc.F("x", prev.Ref("value")), soapenc.F("y", int64(0)))
		_ = next
		prev = p.Add("Math", "Slow")
	}
	start := time.Now()
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	_ = start
	// No strict timing assertion here (the Slows are independent); the
	// chain correctness is covered by TestPlanChain. This test ensures a
	// mixed dependency graph completes without deadlock.
}

func TestPlanFaultPropagatesToDependents(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	bad := p.Add("Math", "Fail")
	dep := p.Add("Math", "Add", soapenc.F("x", bad.Ref("value")), soapenc.F("y", int64(1)))
	indep := p.Add("Math", "Const", soapenc.F("v", int64(9)))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Error("failing step succeeded")
	}
	_, err := dep.Wait()
	if err == nil || !strings.Contains(err.Error(), "depends on step") {
		t.Errorf("dependent step err = %v", err)
	}
	res, err := indep.Wait()
	if err != nil || !soapenc.Equal(res[0].Value, int64(9)) {
		t.Errorf("independent step = %v, %v", res, err)
	}
}

func TestPlanMissingResultReference(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	a := p.Add("Math", "Const", soapenc.F("v", int64(1)))
	b := p.Add("Math", "Add", soapenc.F("x", a.Ref("noSuchResult")))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	_, err := b.Wait()
	if err == nil || !strings.Contains(err.Error(), "no such result") {
		t.Errorf("err = %v", err)
	}
}

func TestPlanNestedStructReference(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	a := p.Add("Math", "Nested")
	b := p.Add("Math", "Id", soapenc.F("v", a.Ref("offer.price")))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, 42.5) {
		t.Errorf("nested ref = %v, want 42.5", res[0].Value)
	}
}

func TestPlanForwardReferenceRejected(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	// Build a forward reference by hand.
	fake := &StepHandle{Call: newCall("Math", "Const"), plan: p, index: 5}
	p.Add("Math", "Add", soapenc.F("x", fake.Ref("value")))
	err := p.Send()
	if err == nil || !strings.Contains(err.Error(), "not earlier") {
		t.Errorf("err = %v", err)
	}
}

func TestPlanEmptyAndDoubleSend(t *testing.T) {
	sys := newPlanSystem(t, nil)
	p := sys.client.NewPlan()
	if err := p.Send(); err == nil {
		t.Error("empty plan sent")
	}
	p2 := sys.client.NewPlan()
	p2.Add("Math", "Const", soapenc.F("v", int64(1)))
	if err := p2.Send(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Send(); err == nil {
		t.Error("double send accepted")
	}
	late := p2.Add("Math", "Const", soapenc.F("v", int64(2)))
	if _, err := late.Wait(); err == nil {
		t.Error("Add after Send resolved successfully")
	}
	// The late Add is rejected, not appended.
	if p2.Len() != 1 {
		t.Errorf("len = %d, want 1", p2.Len())
	}
}

func TestPlanInCoupledMode(t *testing.T) {
	sys := newPlanSystem(t, func(s *ServerConfig, c *ClientConfig) { s.Coupled = true })
	p := sys.client.NewPlan()
	a := p.Add("Math", "Const", soapenc.F("v", int64(2)))
	b := p.Add("Math", "Add", soapenc.F("x", a.Ref("value")), soapenc.F("y", a.Ref("value")))
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := b.Wait()
	if err != nil || !soapenc.Equal(res[0].Value, int64(4)) {
		t.Errorf("coupled plan = %v, %v", res, err)
	}
}

func TestPlanDeepChainNoDeadlock(t *testing.T) {
	// A 100-deep dependency chain with a tiny pool: the inline-run
	// fallback must keep it moving.
	sys := newPlanSystem(t, func(s *ServerConfig, c *ClientConfig) {
		s.AppWorkers = 1
		s.AppQueue = 1
	})
	p := sys.client.NewPlan()
	prev := p.Add("Math", "Const", soapenc.F("v", int64(0)))
	var last *StepHandle
	for i := 0; i < 100; i++ {
		last = p.Add("Math", "Add", soapenc.F("x", prevRef(prev, i)), soapenc.F("y", int64(1)))
		prev = last
	}
	if err := p.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := last.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, int64(100)) {
		t.Errorf("deep chain = %v, want 100", res[0].Value)
	}
}

// prevRef picks the right result name: the first step returns "value",
// subsequent Adds return "sum".
func prevRef(h *StepHandle, i int) soapenc.Value {
	if i == 0 {
		return h.Ref("value")
	}
	return h.Ref("sum")
}
