// Package core implements SPI, the SOAP Passing Interface of the paper:
// the pack wire format (Figure 4), the client-side assembler/dispatcher
// (pack many calls into one envelope, route the packed response back to the
// callers), and the server-side dispatcher/assembler running on a staged
// thread-pool architecture (unpack a message into concurrent operation
// executions, pack their responses into one reply).
package core

import (
	"fmt"
	"strconv"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Wire-format constants of the SPI pack extension.
const (
	// NSPack is the namespace of the packing elements. The paper's group
	// was at ICT, CAS; the namespace follows their convention.
	NSPack = "http://spi.ict.ac.cn/pack"
	// PrefixPack is the conventional prefix for NSPack.
	PrefixPack = "spi"
	// ElemParallelMethod is the packed-request body element of Figure 4:
	// its children are the individual RPC request elements.
	ElemParallelMethod = "Parallel_Method"
	// ElemParallelResponse is the packed-response body element.
	ElemParallelResponse = "Parallel_Response"
)

var (
	attrID      = xmltext.Name{Prefix: PrefixPack, Local: "id"}
	attrService = xmltext.Name{Prefix: PrefixPack, Local: "service"}
)

// rpcRequest is one service invocation in decoded form.
type rpcRequest struct {
	id      int // correlation id within a packed message (0-based)
	service string
	op      string
	params  []soapenc.Field
}

// rpcResult is the outcome of one invocation: results or a fault.
type rpcResult struct {
	id      int
	op      string
	service string
	results []soapenc.Field
	fault   *soap.Fault
	headers []*xmldom.Element // response header blocks contributed
}

// encodeRequestElement builds the RPC request element
// <m:op xmlns:m="serviceNS">params...</m:op>.
func encodeRequestElement(serviceNS, op string, params []soapenc.Field) (*xmldom.Element, error) {
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", serviceNS)
	if err := soapenc.EncodeParams(el, params); err != nil {
		return nil, err
	}
	return el, nil
}

// encodeResponseElement builds <m:opResponse xmlns:m="serviceNS">.
func encodeResponseElement(serviceNS, op string, results []soapenc.Field) (*xmldom.Element, error) {
	return encodeRequestElement(serviceNS, op+"Response", results)
}

// buildPackedRequest assembles the Parallel_Method body element from a list
// of request elements. Each child is annotated with its correlation id and
// target service — this is the client-side assembler of §3.4.
func buildPackedRequest(reqs []*packedEntry) *xmldom.Element {
	pm := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelMethod})
	pm.DeclareNamespace(PrefixPack, NSPack)
	for i, r := range reqs {
		r.element.SetAttr(attrID, strconv.Itoa(i))
		r.element.SetAttr(attrService, r.service)
		pm.AddChild(r.element)
	}
	return pm
}

// packedEntry pairs a request element with its target service.
type packedEntry struct {
	service string
	element *xmldom.Element
}

// isPackedRequest reports whether a body entry is a Parallel_Method element.
func isPackedRequest(el *xmldom.Element) bool {
	return el.Is(NSPack, ElemParallelMethod)
}

// isPackedResponse reports whether a body entry is a Parallel_Response
// element.
func isPackedResponse(el *xmldom.Element) bool {
	return el.Is(NSPack, ElemParallelResponse)
}

// decodeRequestElement interprets one RPC request element. defaultService
// is used when the element carries no spi:service attribute (plain,
// unpacked requests addressed by URL); id is the positional fallback when
// no spi:id attribute is present.
func decodeRequestElement(el *xmldom.Element, defaultService string, id int) (*rpcRequest, *soap.Fault) {
	req := &rpcRequest{id: id, service: defaultService, op: el.Name.Local}
	if v, ok := el.Attr(attrService); ok {
		if uri, resolved := el.ResolvePrefix(attrService.Prefix); !resolved || uri != NSPack {
			return nil, soap.ClientFault("request %q: spi:service attribute in wrong namespace", el.Name.Local)
		}
		req.service = v
	}
	if v, ok := el.Attr(attrID); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, soap.ClientFault("request %q: bad spi:id %q", el.Name.Local, v)
		}
		req.id = n
	}
	if req.service == "" {
		return nil, soap.ClientFault("request %q names no service", el.Name.Local)
	}
	params, err := soapenc.DecodeParams(el)
	if err != nil {
		return nil, soap.ClientFault("request %s.%s: %v", req.service, req.op, err)
	}
	req.params = params
	return req, nil
}

// buildPackedResponse assembles the Parallel_Response body element from the
// per-request outcomes — the server-side assembler of §3.4. Results keep
// the order of results[]; each child carries its spi:id. Faulted entries
// become per-item SOAP-ENV:Fault children, so one failed operation does not
// poison its batch.
func buildPackedResponse(results []*rpcResult, serviceNS func(service string) string) (*xmldom.Element, error) {
	pr := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelResponse})
	pr.DeclareNamespace(PrefixPack, NSPack)
	for _, r := range results {
		var child *xmldom.Element
		if r.fault != nil {
			child = r.fault.Element()
		} else {
			ns := serviceNS(r.service)
			var err error
			child, err = encodeResponseElement(ns, r.op, r.results)
			if err != nil {
				return nil, err
			}
		}
		child.SetAttr(attrID, strconv.Itoa(r.id))
		pr.AddChild(child)
	}
	return pr, nil
}

// decodePackedResponse splits a Parallel_Response into per-id outcomes for
// the client-side dispatcher of §3.5. The map is keyed by correlation id.
func decodePackedResponse(el *xmldom.Element) (map[int]*rpcResult, error) {
	n := 0
	for _, c := range el.Children {
		if _, ok := c.(*xmldom.Element); ok {
			n++
		}
	}
	out := make(map[int]*rpcResult, n)
	// One slab for all entries: the count is known, so the results can't
	// move after allocation and the map can hold pointers into it.
	slab := make([]rpcResult, n)
	i := -1
	for _, c := range el.Children {
		child, ok := c.(*xmldom.Element)
		if !ok {
			continue
		}
		i++
		id := i
		if v, ok := child.Attr(attrID); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("core: bad spi:id %q in packed response", v)
			}
			id = n
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("core: duplicate spi:id %d in packed response", id)
		}
		res := &slab[i]
		res.id = id
		if child.Is(soap.NSEnvelope, "Fault") {
			res.fault = faultFromElement(child)
		} else {
			fields, err := soapenc.DecodeParams(child)
			if err != nil {
				return nil, fmt.Errorf("core: packed response entry %d: %v", id, err)
			}
			res.results = fields
		}
		out[id] = res
	}
	return out, nil
}

// faultFromElement decodes a Fault element outside of envelope context
// (per-item faults inside a packed response).
func faultFromElement(el *xmldom.Element) *soap.Fault {
	f := &soap.Fault{}
	if c := el.Child("", "faultcode"); c != nil {
		f.Code = xmltext.ParseName(c.Text()).Local
	}
	if c := el.Child("", "faultstring"); c != nil {
		f.String = c.Text()
	}
	if c := el.Child("", "faultactor"); c != nil {
		f.Actor = c.Text()
	}
	if c := el.Child("", "detail"); c != nil {
		f.Detail = c
	}
	return f
}
