package core

import (
	"strings"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

func mustRequestElement(t *testing.T, ns, op string, params ...soapenc.Field) *xmldom.Element {
	t.Helper()
	el, err := encodeRequestElement(ns, op, params)
	if err != nil {
		t.Fatal(err)
	}
	return el
}

// reparse round-trips an element through serialization inside an envelope,
// as the wire does.
func reparse(t *testing.T, body *xmldom.Element) *xmldom.Element {
	t.Helper()
	env := soap.New()
	env.AddBody(body)
	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := soap.Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return parsed.Body[0]
}

func TestDecodeRequestElementDefaults(t *testing.T) {
	el := reparse(t, mustRequestElement(t, "urn:s", "op", soapenc.F("x", "1")))
	req, fault := decodeRequestElement(el, "FromURL", 7)
	if fault != nil {
		t.Fatal(fault)
	}
	if req.service != "FromURL" || req.op != "op" || req.id != 7 {
		t.Errorf("req = %+v", req)
	}
	if len(req.params) != 1 || req.params[0].Name != "x" {
		t.Errorf("params = %v", req.params)
	}
}

func TestDecodeRequestElementNoService(t *testing.T) {
	el := reparse(t, mustRequestElement(t, "urn:s", "op"))
	_, fault := decodeRequestElement(el, "", 0)
	if fault == nil || fault.Code != soap.FaultClient {
		t.Errorf("fault = %v", fault)
	}
}

func TestDecodeRequestElementBadID(t *testing.T) {
	el := mustRequestElement(t, "urn:s", "op")
	pm := buildPackedRequest([]*packedEntry{{service: "S", element: el}})
	el.SetAttr(attrID, "not-a-number")
	wire := reparse(t, pm).ChildElements()[0]
	_, fault := decodeRequestElement(wire, "", 0)
	if fault == nil || !strings.Contains(fault.String, "bad spi:id") {
		t.Errorf("fault = %v", fault)
	}
}

func TestDecodeRequestNegativeID(t *testing.T) {
	el := mustRequestElement(t, "urn:s", "op")
	pm := buildPackedRequest([]*packedEntry{{service: "S", element: el}})
	el.SetAttr(attrID, "-3")
	wire := reparse(t, pm).ChildElements()[0]
	if _, fault := decodeRequestElement(wire, "", 0); fault == nil {
		t.Error("negative id accepted")
	}
}

func TestSpiAttributesRequireNamespace(t *testing.T) {
	// An element with spi:service whose "spi" prefix resolves to the wrong
	// namespace is rejected, preventing attribute spoofing.
	doc := `<m:op xmlns:m="urn:s" xmlns:spi="urn:evil" spi:service="Victim"/>`
	el, err := xmldom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, fault := decodeRequestElement(el, "", 0)
	if fault == nil || !strings.Contains(fault.String, "wrong namespace") {
		t.Errorf("fault = %v", fault)
	}
}

func TestPackedResponseOrderAndIDs(t *testing.T) {
	results := []*rpcResult{
		{id: 2, service: "S", op: "op", results: []soapenc.Field{soapenc.F("v", "two")}},
		{id: 0, service: "S", op: "op", results: []soapenc.Field{soapenc.F("v", "zero")}},
		{id: 1, service: "S", op: "op", fault: soap.ClientFault("broken")},
	}
	pr, err := buildPackedResponse(results, func(string) string { return "urn:s" })
	if err != nil {
		t.Fatal(err)
	}
	wire := reparse(t, pr)
	if !isPackedResponse(wire) {
		t.Fatal("not recognized as packed response")
	}
	decoded, err := decodePackedResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d entries", len(decoded))
	}
	if !soapenc.Equal(decoded[2].results[0].Value, "two") {
		t.Errorf("id 2 = %v", decoded[2].results)
	}
	if !soapenc.Equal(decoded[0].results[0].Value, "zero") {
		t.Errorf("id 0 = %v", decoded[0].results)
	}
	if decoded[1].fault == nil || decoded[1].fault.String != "broken" {
		t.Errorf("id 1 fault = %v", decoded[1].fault)
	}
}

func TestDecodePackedResponseDuplicateID(t *testing.T) {
	pr := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelResponse})
	pr.DeclareNamespace(PrefixPack, NSPack)
	for i := 0; i < 2; i++ {
		c := pr.AddElement(xmltext.Name{Local: "opResponse"})
		c.SetAttr(attrID, "0")
	}
	if _, err := decodePackedResponse(reparse(t, pr)); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestDecodePackedResponsePositionalFallback(t *testing.T) {
	// Entries without spi:id fall back to document order.
	pr := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelResponse})
	pr.DeclareNamespace(PrefixPack, NSPack)
	a := pr.AddElement(xmltext.Name{Local: "opResponse"})
	a.AddElement(xmltext.Name{Local: "v"}).SetText("first")
	b := pr.AddElement(xmltext.Name{Local: "opResponse"})
	b.AddElement(xmltext.Name{Local: "v"}).SetText("second")
	decoded, err := decodePackedResponse(reparse(t, pr))
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(decoded[0].results[0].Value, "first") || !soapenc.Equal(decoded[1].results[0].Value, "second") {
		t.Errorf("decoded = %v", decoded)
	}
}

func TestFaultFromElementComplete(t *testing.T) {
	f := &soap.Fault{Code: soap.FaultClient, String: "why", Actor: "urn:who"}
	det := xmldom.NewElement(xmltext.Name{Local: "detail"})
	det.AddElement(xmltext.Name{Local: "code"}).SetText("9")
	f.Detail = det
	got := faultFromElement(reparse(t, f.Element()))
	if got.Code != soap.FaultClient || got.String != "why" || got.Actor != "urn:who" {
		t.Errorf("fault = %+v", got)
	}
	if got.Detail == nil || got.Detail.Child("", "code").Text() != "9" {
		t.Errorf("detail = %v", got.Detail)
	}
}

func TestIsPackedPredicates(t *testing.T) {
	plain := mustRequestElement(t, "urn:s", "op")
	if isPackedRequest(plain) || isPackedResponse(plain) {
		t.Error("plain request misclassified")
	}
	// Same local name, wrong namespace.
	fake, err := xmldom.ParseString(`<Parallel_Method xmlns="urn:not-spi"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if isPackedRequest(fake) {
		t.Error("wrong-namespace Parallel_Method accepted")
	}
}

func TestEncodeResponseElementName(t *testing.T) {
	el, err := encodeResponseElement("urn:s", "GetWeather", nil)
	if err != nil {
		t.Fatal(err)
	}
	if el.Name.Local != "GetWeatherResponse" {
		t.Errorf("response element = %s", el.Name)
	}
}
