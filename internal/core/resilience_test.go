package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// newResilienceSystem wires a client/server pair whose container has, next
// to the usual echo, a "park" operation that blocks until its handler
// context is cancelled (or a long fallback sleep) and a "gate" operation
// that blocks until the returned release function is called.
func newResilienceSystem(t *testing.T, mutate func(*ServerConfig, *ClientConfig)) (*system, func()) {
	t.Helper()
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	c := newEchoContainer(t)
	svc, _ := c.Service("Echo")
	svc.MustRegister("park", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		select {
		case <-ctx.Context().Done():
			return nil, ctx.Context().Err()
		case <-time.After(10 * time.Second):
			return params, nil
		}
	}, "blocks until cancelled")
	svc.MustRegister("gate", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		select {
		case <-release:
		case <-ctx.Context().Done():
		case <-time.After(10 * time.Second):
		}
		return params, nil
	}, "blocks until released")
	scfg := ServerConfig{Container: c, AppWorkers: 8, AppQueue: 64}
	ccfg := ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second}
	if mutate != nil {
		mutate(&scfg, &ccfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cli, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	releaseFn := func() {
		if releaseOnce.CompareAndSwap(false, true) {
			close(release)
		}
	}
	t.Cleanup(func() {
		releaseFn()
		cli.Close()
		srv.Close()
		link.Close()
	})
	return &system{client: cli, server: srv, link: link}, releaseFn
}

// instantSleep makes retry backoffs record themselves instead of sleeping,
// so retry tests run at full speed under a fake clock.
func instantSleep(slept *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
}

func TestBackoffSchedule(t *testing.T) {
	// Deterministic (jitterless) exponential growth with a cap.
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		60 * time.Millisecond, 60 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With the Rand seam pinned, jitter is exact: u=1 stretches by
	// (1+Jitter), u=0 shrinks by (1-Jitter).
	for _, tc := range []struct {
		u    float64
		want time.Duration
	}{
		{1, 120 * time.Millisecond},
		{0, 80 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
	} {
		p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.2, Rand: func() float64 { return tc.u }}
		if got := p.Backoff(1); got != tc.want {
			t.Errorf("u=%v: Backoff(1) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	dialErr := fmt.Errorf("wrapped: %w", &netsimDialError{})
	_ = dialErr
	for _, tc := range []struct {
		name       string
		err        error
		idempotent bool
		want       bool
	}{
		{"nil", nil, true, false},
		{"ctx cancelled", context.Canceled, true, false},
		{"ctx deadline", context.DeadlineExceeded, true, false},
		{"busy fault", &soap.Fault{Code: FaultCodeBusy}, false, true},
		{"timeout fault not idempotent", &soap.Fault{Code: FaultCodeTimeout}, false, false},
		{"app fault", soap.ServerFault("boom"), true, false},
		{"transport not idempotent", errors.New("connection reset"), false, false},
		{"transport idempotent", errors.New("connection reset"), true, true},
	} {
		if got := retryable(tc.err, tc.idempotent); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// netsimDialError keeps the classification test self-contained (a real
// DialError comes from httpx; see TestRetryConnectRefused for that path).
type netsimDialError struct{}

func (*netsimDialError) Error() string { return "dial refused" }

func TestRetryConnectRefusedThenSucceeds(t *testing.T) {
	// The link refuses the first two dials; the policy's third attempt
	// lands. The Sleep seam records the backoff schedule instead of
	// waiting it out.
	var slept []time.Duration
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		cc.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
			Multiplier: 2, Sleep: instantSleep(&slept)}
	})
	sys.link.FailDials(2)
	results, err := sys.client.Call("Echo", "echo", soapenc.F("m", "back"))
	if err != nil {
		t.Fatalf("call after retries: %v", err)
	}
	if len(results) != 1 || !soapenc.Equal(results[0].Value, "back") {
		t.Errorf("results = %v", results)
	}
	if got := sys.client.Stats().Resilience.Retries; got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}; len(slept) != 2 ||
		slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoffs = %v, want %v", slept, want)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		cc.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: instantSleep(&slept)}
	})
	sys.link.FailDials(100)
	_, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x"))
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if got := sys.client.Stats().Resilience.Retries; got != 2 {
		t.Errorf("Retries = %d, want 2 (3 attempts)", got)
	}
}

func TestRetryTransportGatedOnIdempotency(t *testing.T) {
	// A response-side transport failure only retries for operations the
	// application marked idempotent — exactly the paper's application-aware
	// stance: the interface can only be this aggressive when the
	// application says it is safe.
	var slept []time.Duration
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		cc.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: instantSleep(&slept)}
		cc.Timeout = 80 * time.Millisecond // bound each attempt's exchange
	})
	// park never returns, so each attempt dies of the per-exchange timeout
	// — a post-send transport error, not a connect failure.
	_, err := sys.client.Call("Echo", "park")
	if err == nil {
		t.Fatal("want transport error")
	}
	if got := sys.client.Stats().Resilience.Retries; got != 0 {
		t.Errorf("non-idempotent op retried %d times", got)
	}

	sys.client.MarkIdempotent("Echo", "park")
	_, err = sys.client.Call("Echo", "park")
	if err == nil {
		t.Fatal("want transport error")
	}
	if got := sys.client.Stats().Resilience.Retries; got != 2 {
		t.Errorf("idempotent op Retries = %d, want 2", got)
	}
}

func TestPackedDeadlineDegradesPerItem(t *testing.T) {
	// The acceptance scenario: a packed batch whose deadline expires
	// mid-flight returns per-item Server.Timeout faults for the entries
	// still running, while finished entries carry their real results.
	sys, _ := newResilienceSystem(t, nil)
	b := sys.client.NewBatch()
	fast := b.Add("Echo", "echo", soapenc.F("m", "quick"))
	stuck := b.Add("Echo", "park")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := b.SendCtx(ctx); err != nil {
		t.Fatalf("SendCtx: %v (want a degraded packed response, not a transport error)", err)
	}
	if results, err := fast.Wait(); err != nil {
		t.Errorf("fast entry: %v", err)
	} else if len(results) != 1 || !soapenc.Equal(results[0].Value, "quick") {
		t.Errorf("fast results = %v", results)
	}
	_, err := stuck.Wait()
	if !IsTimeoutFault(err) {
		t.Fatalf("stuck entry err = %v, want Server.Timeout fault", err)
	}
	if got := sys.server.Stats().Resilience.Timeouts; got < 1 {
		t.Errorf("server Timeouts = %d, want >= 1", got)
	}
	if got := sys.client.Stats().Resilience.Timeouts; got < 1 {
		t.Errorf("client Timeouts = %d, want >= 1", got)
	}
}

func TestCancelMidBatch(t *testing.T) {
	// Cancelling the context mid-exchange aborts the in-flight connection
	// and resolves every future with the context's error; the server-side
	// handler observes the cancellation through its HandlerContext.
	sys, _ := newResilienceSystem(t, nil)
	b := sys.client.NewBatch()
	a := b.Add("Echo", "echo", soapenc.F("m", "x"))
	p := b.Add("Echo", "park")
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	err := b.SendCtx(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SendCtx err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancel took %v to unblock the exchange", elapsed)
	}
	if _, err := a.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("future a err = %v", err)
	}
	if _, err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("future p err = %v", err)
	}
	if got := sys.client.Stats().Resilience.Cancellations; got < 1 {
		t.Errorf("client Cancellations = %d, want >= 1", got)
	}
}

func TestSingleCallDeadlineFault(t *testing.T) {
	// A single (unpacked) call against a stuck operation degrades to a
	// whole-message Server.Timeout fault, shipped inside the grace window
	// so the client sees the fault rather than its own deadline.
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		cc.CallTimeout = 400 * time.Millisecond
	})
	_, err := sys.client.Call("Echo", "park")
	if !IsTimeoutFault(err) {
		t.Fatalf("err = %v, want Server.Timeout fault", err)
	}
}

func TestQueueAdmissionShedding(t *testing.T) {
	// One worker, one queue slot, 10ms admission patience: the third
	// concurrent gated call cannot be admitted and is shed with a
	// retryable Server.Busy fault.
	sys, release := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.AppWorkers = 1
		sc.AppQueue = 1
		sc.AdmissionTimeout = 10 * time.Millisecond
	})
	first := sys.client.Go("Echo", "gate")  // occupies the worker
	second := sys.client.Go("Echo", "gate") // occupies the queue slot
	// Give the first two time to reach the pool.
	deadline := time.Now().Add(2 * time.Second)
	for sys.server.Stats().AppStage.Submitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("gated calls never reached the application stage")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := sys.client.Call("Echo", "gate")
	if !IsBusyFault(err) {
		t.Fatalf("err = %v, want Server.Busy fault", err)
	}
	if got := sys.server.Stats().Resilience.Shed; got < 1 {
		t.Errorf("Shed = %d, want >= 1", got)
	}
	release()
	if _, err := first.Wait(); err != nil {
		t.Errorf("first gated call: %v", err)
	}
	if _, err := second.Wait(); err != nil {
		t.Errorf("second gated call: %v", err)
	}
}

func TestBusyFaultRetriesAndSucceeds(t *testing.T) {
	// Server.Busy is always retryable (the operation never started); with
	// a retry policy the shed call lands once capacity frees up.
	var slept []time.Duration
	sys, release := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.AppWorkers = 1
		sc.AppQueue = 1
		sc.AdmissionTimeout = 10 * time.Millisecond
		cc.Retry = &RetryPolicy{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond,
			Sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				time.Sleep(20 * time.Millisecond) // real wait: give release() room
				return ctx.Err()
			}}
	})
	sys.client.Go("Echo", "gate")
	sys.client.Go("Echo", "gate")
	deadline := time.Now().Add(2 * time.Second)
	for sys.server.Stats().AppStage.Submitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("gated calls never reached the application stage")
		}
		time.Sleep(time.Millisecond)
	}
	time.AfterFunc(30*time.Millisecond, release)
	results, err := sys.client.Call("Echo", "echo", soapenc.F("m", "through"))
	if err != nil {
		t.Fatalf("call after busy retries: %v", err)
	}
	if !soapenc.Equal(results[0].Value, "through") {
		t.Errorf("results = %v", results)
	}
	if sys.client.Stats().Resilience.Retries < 1 {
		t.Error("expected at least one busy retry")
	}
}

func TestOperationTimeoutWatchdog(t *testing.T) {
	// ServerConfig.OperationTimeout bounds a single runaway operation
	// independent of any client deadline.
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.OperationTimeout = 50 * time.Millisecond
	})
	start := time.Now()
	_, err := sys.client.Call("Echo", "park")
	if !IsTimeoutFault(err) {
		t.Fatalf("err = %v, want Server.Timeout fault", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("watchdog took %v", elapsed)
	}
	if got := sys.server.Stats().Resilience.Timeouts; got < 1 {
		t.Errorf("server Timeouts = %d, want >= 1", got)
	}
}

func TestHandlerErrorUnderOperationTimeout(t *testing.T) {
	// A genuine application error from a handler that finished well inside
	// its OperationTimeout must surface as a plain Server fault — not be
	// reclassified as Server.Cancelled just because the watchdog's own
	// cancel() fired while the outcome was being folded.
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.OperationTimeout = 5 * time.Second
	})
	svc, _ := sys.server.cfg.Container.Service("Echo")
	svc.MustRegister("boom", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return nil, errors.New("real application error")
	}, "fails")
	_, err := sys.client.Call("Echo", "boom")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if f.Code != soap.FaultServer {
		t.Errorf("handler error misreported: code=%q string=%q", f.Code, f.String)
	}
	if got := sys.server.Stats().Resilience.Cancellations; got != 0 {
		t.Errorf("Cancellations = %d, want 0 (no caller cancelled anything)", got)
	}
}

func TestDeadlineHeaderPropagates(t *testing.T) {
	// The wire carries the remaining budget in SPI-Deadline; the handler's
	// context on the server observes a deadline derived from it.
	var sawDeadline atomic.Bool
	sys, _ := newResilienceSystem(t, nil)
	svc, _ := sys.server.cfg.Container.Service("Echo")
	svc.MustRegister("checkDeadline", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		if _, ok := ctx.Context().Deadline(); ok {
			sawDeadline.Store(true)
		}
		return params, nil
	}, "asserts a deadline is present")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := sys.client.CallCtx(ctx, "Echo", "checkDeadline"); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Error("handler context carried no deadline despite client budget")
	}
}

func TestPlanDeadlineDegradesPerStep(t *testing.T) {
	// Execution plans degrade like packs: a step stuck past the deadline
	// becomes a per-item Server.Timeout fault; independent finished steps
	// keep their results.
	sys, _ := newResilienceSystem(t, nil)
	plan := sys.client.NewPlan()
	fast := plan.Add("Echo", "echo", soapenc.F("m", "done"))
	stuck := plan.Add("Echo", "park")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := plan.SendCtx(ctx); err != nil {
		t.Fatalf("SendCtx: %v", err)
	}
	if results, err := fast.Wait(); err != nil {
		t.Errorf("fast step: %v", err)
	} else if !soapenc.Equal(results[0].Value, "done") {
		t.Errorf("fast results = %v", results)
	}
	if _, err := stuck.Wait(); !IsTimeoutFault(err) {
		t.Errorf("stuck step err = %v, want Server.Timeout fault", err)
	}
}
