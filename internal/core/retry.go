package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/httpx"
)

// Resilience fault codes, re-exported from the error core. SOAP 1.1
// faultcode values are QNames whose local part may be dotted for
// refinement (spec §4.4.1: "more specific information ... using the '.'
// character"); these refine Server the way Axis-era stacks did. The
// literals themselves live in internal/fault's envelope edge — the only
// place allowed to spell them (`make vet-faults`).
const (
	// FaultCodeTimeout marks work abandoned because a deadline expired:
	// an unfinished entry of a packed message whose envelope deadline
	// ran out, or an operation that overran the server's per-operation
	// deadline. Delivered per item inside Parallel_Response entries so
	// finished companions still return real results (§4.3's per-item
	// fault requirement applied to deadlines).
	FaultCodeTimeout = fault.WireTimeout
	// FaultCodeBusy marks a request shed at admission: the application
	// stage queue stayed full past the admission timeout, so the
	// operation never started. Always safe to retry.
	FaultCodeBusy = fault.WireBusy
	// FaultCodeCancelled marks work abandoned because the caller
	// disconnected or its propagated context was cancelled before any
	// deadline expired.
	FaultCodeCancelled = fault.WireCancelled
)

// IsTimeoutFault reports whether err classifies to the taxonomy's
// deadline-expiry value (the per-item/per-operation timeout fault).
func IsTimeoutFault(err error) bool {
	f := fault.ClassifyError(err)
	return f != nil && errors.Is(f, fault.Timeout)
}

// IsBusyFault reports whether err classifies to a retryable overload
// fault (admission shed, upstream unavailable, or a plain Server.Busy off
// the wire), meaning the operation never started and the call can be
// retried regardless of idempotency.
func IsBusyFault(err error) bool {
	f := fault.ClassifyError(err)
	return f != nil && errors.Is(f, fault.Retryable)
}

// RetryPolicy governs client-side retries of failed exchanges:
// exponential backoff with jitter between attempts, honoring the call's
// context throughout.
//
// What is retried depends on what failed and whether the operation was
// marked idempotent (Client.MarkIdempotent):
//
//   - connect failures (the request was never written) and Server.Busy
//     faults (the server shed the request before starting it) are always
//     retried — re-sending cannot double-execute anything;
//   - any other transport error or deadline expiry after the request was
//     sent is retried only for idempotent operations, because the server
//     may have executed the request even though the response was lost.
//
// The zero value retries nothing; use DefaultRetryPolicy for sensible
// defaults. Fields left zero fall back to the defaults noted below.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3). Values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 20ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the random fraction applied to each delay: the slept
	// duration is delay * (1 + Jitter*(2u-1)) for uniform u in [0,1)
	// (default 0.2). Zero Jitter gives deterministic backoff.
	Jitter float64

	// Sleep waits between attempts; it must return early with the
	// context's error when ctx is done. Nil means a timer-based wait.
	// It is a seam for fake clocks in tests.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies the jitter's uniform variate in [0,1). Nil means
	// math/rand. It is a seam for deterministic tests.
	Rand func() float64
}

// DefaultRetryPolicy returns the recommended policy: 3 attempts, 20ms
// base delay doubling to a 2s cap, 20% jitter.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond,
		MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.2}
}

// maxAttempts returns the effective attempt budget.
func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Backoff returns the delay to sleep after the attempt-th failed try
// (attempt counts from 1), jitter included.
func (p *RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	if p.Jitter > 0 {
		u := p.uniform()
		d *= 1 + p.Jitter*(2*u-1)
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

var retryRandMu sync.Mutex

// uniform draws the jitter variate through the seam or math/rand.
func (p *RetryPolicy) uniform() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	retryRandMu.Lock()
	defer retryRandMu.Unlock()
	return rand.Float64()
}

// sleep waits out one backoff, honoring ctx.
func (p *RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable classifies an attempt's error. idempotent widens the class to
// errors where the request may already have executed.
func retryable(err error, idempotent bool) bool {
	if err == nil {
		return false
	}
	// Context expiry/cancellation of the call itself is never retried:
	// the caller's budget is spent.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var dialErr *httpx.DialError
	if errors.As(err, &dialErr) {
		return true // never sent: always safe
	}
	if f := fault.ClassifyError(err); f != nil {
		// A fault is a definitive answer, not a transport loss. The only
		// faults worth re-sending are the ones whose operation is known
		// never to have started — exactly what fault.Retryable matches
		// (admission shed, upstream unavailable, plain busy).
		return errors.Is(f, fault.Retryable)
	}
	// Transport error after the request went out (connection reset, read
	// deadline on the conn, truncated response): the server may have
	// executed it, so only idempotent operations retry.
	return idempotent
}

// withRetry runs fn under the client's retry policy. fn is the whole
// exchange for one attempt; idempotent reflects the operation(s) involved.
func (c *Client) withRetry(ctx context.Context, idempotent bool, fn func() error) error {
	p := c.cfg.Retry
	if p == nil {
		return fn()
	}
	attempts := p.maxAttempts()
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= attempts || !retryable(err, idempotent) || ctx.Err() != nil {
			return err
		}
		c.resil.Retries.Inc()
		if serr := p.sleep(ctx, p.Backoff(attempt)); serr != nil {
			return err
		}
	}
}
