package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/soap"
)

// oldRetryable is the pre-taxonomy retry predicate, reproduced verbatim
// from the string-matching implementation this repo shipped before
// internal/fault existed. The differential test below pins the taxonomy
// rewrite to it decision-for-decision over every error shape a client
// exchange can surface, including the idempotency gate.
func oldRetryable(err error, idempotent bool) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var dialErr *httpx.DialError
	if errors.As(err, &dialErr) {
		return true
	}
	if oldIsBusyFault(err) {
		return true
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		return false
	}
	return idempotent
}

// oldIsTimeoutFault and oldIsBusyFault are the pre-taxonomy exact-string
// predicates.
func oldIsTimeoutFault(err error) bool {
	var f *soap.Fault
	return errors.As(err, &f) && f.Code == FaultCodeTimeout
}

func oldIsBusyFault(err error) bool {
	var f *soap.Fault
	return errors.As(err, &f) && f.Code == FaultCodeBusy
}

// retryDiffCorpus is every error shape the retry layer can see: nil,
// context expiry, dial failures, transport losses, SOAP faults for each
// wire code the stack emits — bare (historical), classified (what the
// decode edges now produce), and wrapped the way exchange layers wrap.
func retryDiffCorpus() []struct {
	name string
	err  error
} {
	wireFault := func(code string) *soap.Fault {
		return &soap.Fault{Code: code, String: "text for " + code}
	}
	var corpus []struct {
		name string
		err  error
	}
	add := func(name string, err error) {
		corpus = append(corpus, struct {
			name string
			err  error
		}{name, err})
	}

	add("nil", nil)
	add("context.Canceled", context.Canceled)
	add("context.DeadlineExceeded", context.DeadlineExceeded)
	add("wrapped cancel", fmt.Errorf("exchange: %w", context.Canceled))
	add("wrapped deadline", fmt.Errorf("exchange: %w", context.DeadlineExceeded))
	add("dial error", &httpx.DialError{Err: errors.New("connection refused")})
	add("wrapped dial error", fmt.Errorf("attempt 1: %w", &httpx.DialError{Err: errors.New("refused")}))
	add("transport loss", errors.New("connection reset by peer"))
	add("wrapped transport loss", fmt.Errorf("read response: %w", errors.New("unexpected EOF")))

	for _, code := range []string{
		FaultCodeTimeout, FaultCodeBusy, FaultCodeCancelled,
		soap.FaultClient, soap.FaultServer,
		soap.FaultVersionMismatch, soap.FaultMustUnderstand,
		"urn:custom-code",
	} {
		// Bare wire fault: what detachFault returned before the taxonomy.
		add("bare "+code, wireFault(code))
		// Classified fault: what the client decode edges return now.
		add("classified "+code, fault.Classify(wireFault(code)))
		// Wrapped classified fault, as a retry or batch layer would pass it.
		add("wrapped classified "+code, fmt.Errorf("call Echo.echo: %w", fault.Classify(wireFault(code))))
	}
	return corpus
}

// TestRetryPredicateDifferential proves the taxonomy rewrite of
// retryable/IsTimeoutFault/IsBusyFault makes exactly the decisions the
// string-matching originals made, for every corpus error and both
// idempotency settings.
func TestRetryPredicateDifferential(t *testing.T) {
	for _, tc := range retryDiffCorpus() {
		for _, idem := range []bool{false, true} {
			want := oldRetryable(tc.err, idem)
			if got := retryable(tc.err, idem); got != want {
				t.Errorf("retryable(%s, idempotent=%v) = %v, old predicate said %v",
					tc.name, idem, got, want)
			}
			// RetryableError is the gateway's exported view of the same
			// predicate; it must not diverge either.
			if got := RetryableError(tc.err, idem); got != want {
				t.Errorf("RetryableError(%s, idempotent=%v) = %v, old predicate said %v",
					tc.name, idem, got, want)
			}
		}
		if got, want := IsTimeoutFault(tc.err), oldIsTimeoutFault(tc.err); got != want {
			t.Errorf("IsTimeoutFault(%s) = %v, old predicate said %v", tc.name, got, want)
		}
		if got, want := IsBusyFault(tc.err), oldIsBusyFault(tc.err); got != want {
			t.Errorf("IsBusyFault(%s) = %v, old predicate said %v", tc.name, got, want)
		}
	}
}

// TestRetryPredicateTaxonomyNative documents the one place the new
// predicate is deliberately wider than the old one: taxonomy values that
// never reach the wire (admission shed and upstream-unavailable carry
// Server.Busy there, but gateway-internal paths hand them to
// core.RetryableError pre-encode). The old predicate never saw these
// shapes, so there is nothing to differ against — this pins the intended
// semantics instead.
func TestRetryPredicateTaxonomyNative(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool // regardless of idempotency
	}{
		{fault.Shedf("queue full"), true},
		{fault.Upstreamf("no backend"), true},
		{fault.Busyf("busy"), true},
		{fault.Timeoutf("deadline"), false},
		{fault.Cancelledf("cancelled"), false},
		{fault.Protocolf(soap.FaultClient, "bad envelope"), false},
		{fault.Appf(soap.FaultServer, "handler error"), false},
	} {
		for _, idem := range []bool{false, true} {
			if got := retryable(tc.err, idem); got != tc.want {
				t.Errorf("retryable(%v, idempotent=%v) = %v, want %v", tc.err, idem, got, tc.want)
			}
		}
	}
}
