package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

func TestReviewHandlerErrorUnderOperationTimeout(t *testing.T) {
	link := netsim.NewLink(netsim.LAN100())
	container := registry.NewContainer()
	svc, err := container.AddService("Echo", "urn:echo", "test")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("boom", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return nil, errors.New("real application error")
	}, "fails")
	srv, err := NewServer(ServerConfig{Container: container, AppWorkers: 4, AppQueue: 16, OperationTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	client, err := NewClient(ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Call("Echo", "boom")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	t.Logf("fault code=%q string=%q", f.Code, f.String)
	if f.Code != soap.FaultServer {
		t.Errorf("handler error misreported: code=%q string=%q", f.Code, f.String)
	}
}
