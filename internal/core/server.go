package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admin"
	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/stage"
	"repro/internal/trace"
	"repro/internal/wsdl"
	"repro/internal/xmldom"
)

// HeaderProcessor handles one kind of SOAP header block on the server —
// the extension point WS-Security (package wsse) plugs into. A processor
// that returns an error faults the whole message.
type HeaderProcessor interface {
	// HeaderName returns the namespace URI and local name of the blocks
	// this processor understands.
	HeaderName() (ns, local string)
	// ProcessHeader validates/consumes one matching header block. body is
	// the canonical serialization of the envelope's body entries, for
	// signature verification.
	ProcessHeader(block *xmldom.Element, body []byte) error
}

// ServerConfig configures an SPI server.
type ServerConfig struct {
	// Container holds the deployed services. Required.
	Container *registry.Container

	// AppWorkers is the application-stage pool width (default 32). This is
	// the second, independent thread pool of §3.3 that executes service
	// operations. With AdaptiveAppStage it becomes the ceiling.
	AppWorkers int
	// AppQueue is the application-stage queue depth (default 1024).
	AppQueue int
	// AdaptiveAppStage replaces the fixed pool with a SEDA-style
	// controller-managed pool that grows under queue pressure and shrinks
	// when idle, between AppWorkersMin and AppWorkers (SEDA §4.2, the
	// paper's reference [5]).
	AdaptiveAppStage bool
	// AppWorkersMin is the adaptive pool's floor (default 2).
	AppWorkersMin int

	// ProtocolWorkers, when > 0, bounds the number of requests in protocol
	// processing simultaneously, modelling the first-stage thread pool.
	// Zero means unbounded (one goroutine per connection).
	ProtocolWorkers int

	// Coupled disables the staged architecture: operations execute inline
	// on the protocol goroutine, exactly the traditional coupled
	// architecture of the paper's Figure 1. Packed messages then execute
	// their requests serially. For ablation benchmarks.
	Coupled bool

	// PathPrefix is the URL prefix services are mounted under
	// (default "/services/").
	PathPrefix string

	// HeaderProcessors handle recognised header blocks (e.g. WS-Security).
	HeaderProcessors []HeaderProcessor

	// Interceptors wrap envelope dispatch, first entry outermost — the
	// Axis handler-chain architecture the paper's implementation plugged
	// into (§3.6). They run after header processing, around the
	// pack/plan/single dispatcher. Because they see (and may rewrite) the
	// whole envelope, configuring any forces the buffered dispatch path;
	// entry-safe interceptors should use EntryInterceptors (or the
	// EntrySafe adapter) to keep the streaming fast path.
	Interceptors []Interceptor

	// EntryInterceptors run once per body entry — each Parallel_Method
	// child, or the single call — on both dispatch paths, first entry
	// outermost. Unlike Interceptors they do not gate the streaming fast
	// path: each entry is intercepted as its subtree closes. A fault from
	// one becomes the entry's per-item fault inside a packed response (the
	// message fault for a single call).
	EntryInterceptors []EntryInterceptor

	// BufferedDispatch forces the buffered (parse-whole-envelope) dispatch
	// path even when the streaming path could serve the request — the
	// explicit opt-out for deployments that need whole-tree envelope
	// inspection without configuring an Interceptor.
	BufferedDispatch bool

	// MaxBodyBytes caps request bodies; zero means the httpx default.
	MaxBodyBytes int64

	// PipelineWindow, when > 1, enables HTTP/1.1 pipelining on the
	// transport: a connection whose client sends back-to-back requests
	// decodes request N+1 while N executes, with up to PipelineWindow
	// exchanges in flight per connection and responses written strictly
	// in request order. 0 or 1 keeps the serial per-connection loop.
	PipelineWindow int
	// ReadTimeout bounds reading one full request off a connection;
	// WriteTimeout bounds writing one full response. Both are enforced as
	// watchdogs on the shared httpx deadline wheel (coarse 5ms ticks, no
	// per-request runtime timers); expiry closes the connection. Zero
	// disables the respective watchdog.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// DifferentialDeserialization enables the §2.2 related-work
	// server-side optimization ([4]/[11]): repeated byte-identical
	// request bodies reuse a cached parse instead of re-tokenizing.
	DifferentialDeserialization bool
	// DiffCacheSize bounds the differential cache (default 256 messages).
	DiffCacheSize int

	// AdmissionTimeout bounds how long a request waits for space in the
	// application-stage queue before being shed with a Server.Busy fault
	// (per item for packed messages). Zero preserves the unbounded
	// blocking submit.
	AdmissionTimeout time.Duration
	// OperationTimeout bounds each operation execution. An operation
	// that overruns returns a Server.Timeout fault (per item in packed
	// responses); its handler keeps running detached until it observes
	// HandlerContext.Ctx and should abort then.
	OperationTimeout time.Duration
	// DeadlineGrace is subtracted from the client-propagated deadline
	// budget (SPI-Deadline header) so a degraded response is assembled
	// and shipped before the client itself gives up. Zero means
	// one fifth of the budget, capped at 100ms.
	DeadlineGrace time.Duration

	// Tracer, when non-nil, records server-side spans for every envelope:
	// server.protocol (parse), server.dispatch, one server.app span per
	// operation execution (queue wait vs. service time), server.assemble
	// (response encoding) — plus app-queue-depth gauges. The trace id
	// arrives in the client's SPI-Trace header, so sharing a Tracer
	// between client and server correlates both sides. Nil disables
	// tracing; the disabled path costs one branch per hop.
	Tracer *trace.Tracer

	// DebugEndpoints exposes GET /spi/stats (a JSON snapshot of
	// ServerStats plus per-stage trace summaries) and GET
	// /spi/pprof/<profile> (runtime profiles: goroutine, heap, allocs,
	// block, mutex, threadcreate) on this server. Off by default: these
	// endpoints are for operators, not for the SOAP surface.
	DebugEndpoints bool

	// AdminService deploys the cluster control-plane "Admin" service
	// (GetStats/SetState) into the container, making this server pollable
	// by gateway membership managers and cmd/spiexporter. Off by default:
	// the management surface is opt-in. See docs/CONTROL_PLANE.md.
	AdminService bool
	// AdminWeight is the initial advertised routing weight (default 1).
	// Operators change it at runtime through Admin.SetState.
	AdminWeight int
}

// ServerStats counts server-side work, for experiments.
type ServerStats struct {
	Envelopes      int64 // SOAP envelopes processed
	Requests       int64 // service invocations executed
	PackedMessages int64 // envelopes that used Parallel_Method
	Faults         int64 // whole-message faults returned
	ItemFaults     int64 // per-item faults inside packed responses
	DiffHits       int64 // differential-deserialization cache hits
	DiffMisses     int64 // differential-deserialization cache misses
	AppStage       stage.Stats

	// FaultCodes tallies emitted faults (whole-message and per-item) by
	// wire fault code, classified at the envelope edge by internal/fault.
	FaultCodes []fault.CodeCount

	// Resilience counts timeouts, cancellations and shed admissions
	// observed by the server's guards.
	Resilience metrics.ResilienceSummary

	// Protocol-thread phase timings per envelope.
	ParsePhase    metrics.Summary
	DispatchPhase metrics.Summary
	EncodePhase   metrics.Summary

	// EncodeIO is the byte and time volume of the response-encode stage
	// (encode.bytes / encode.ns), across both the buffered and the
	// streamed assemblers.
	EncodeIO metrics.StageIOSummary

	// Operations holds per-operation execution timings, keyed
	// "Service.operation".
	Operations map[string]metrics.Summary
}

// Server is the SPI service host: an HTTP server whose protocol goroutines
// parse SOAP, dispatch operation executions to the application stage, and
// assemble responses.
type Server struct {
	cfg        ServerConfig
	httpSrv    *httpx.Server
	appPool    stage.Executor
	controller *stage.Controller // nil unless AdaptiveAppStage
	protSem    chan struct{}     // nil when ProtocolWorkers == 0
	diff       *diffCache        // nil unless DifferentialDeserialization
	adminState *admin.State      // nil unless AdminService

	envelopes  atomic.Int64
	requests   atomic.Int64
	packed     atomic.Int64
	faults     atomic.Int64
	itemFaults atomic.Int64
	faultCodes fault.Counters
	resil      metrics.Resilience

	// Per-phase protocol-thread timings, for the overhead-breakdown
	// experiment: SOAP parse, dispatch+execute, response encode.
	phaseParse    metrics.Recorder
	phaseDispatch metrics.Recorder
	phaseEncode   metrics.Recorder
	encodeIO      metrics.StageIO

	// Per-operation execution timings. Keyed by a struct so the hot-path
	// lookup never builds a "Service.operation" string; Stats renders the
	// dotted form only when a snapshot is taken.
	opMu    sync.Mutex
	opStats map[opKey]*metrics.Recorder
}

// opKey identifies one operation of one service.
type opKey struct{ service, op string }

// NewServer builds a server from the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Container == nil {
		return nil, fmt.Errorf("core: ServerConfig.Container is required")
	}
	if cfg.AppWorkers <= 0 {
		cfg.AppWorkers = 32
	}
	if cfg.AppQueue <= 0 {
		cfg.AppQueue = 1024
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/services/"
	}
	if !strings.HasSuffix(cfg.PathPrefix, "/") {
		cfg.PathPrefix += "/"
	}
	s := &Server{cfg: cfg}
	if !cfg.Coupled {
		if cfg.AdaptiveAppStage {
			min := cfg.AppWorkersMin
			if min <= 0 {
				min = 2
			}
			pool, err := stage.NewAdaptivePool("app", min, cfg.AppWorkers, cfg.AppQueue)
			if err != nil {
				return nil, err
			}
			s.appPool = pool
			s.controller = stage.NewController(pool)
		} else {
			pool, err := stage.NewPool("app", cfg.AppWorkers, cfg.AppQueue)
			if err != nil {
				return nil, err
			}
			s.appPool = pool
		}
	}
	if cfg.ProtocolWorkers > 0 {
		s.protSem = make(chan struct{}, cfg.ProtocolWorkers)
	}
	if cfg.DifferentialDeserialization {
		s.diff = newDiffCache(cfg.DiffCacheSize)
	}
	s.httpSrv = &httpx.Server{
		Handler:      s.handle,
		MaxBodyBytes: cfg.MaxBodyBytes,
		MaxPipeline:  cfg.PipelineWindow,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
	}
	if cfg.AdminService {
		s.adminState = admin.NewState(int64(cfg.AdminWeight))
		if err := admin.Deploy(cfg.Container, s, s.adminState); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AdminState exposes the control-plane routing state (weight/drain), or nil
// when AdminService is off.
func (s *Server) AdminState() *admin.State { return s.adminState }

// AdminStats builds the control-plane snapshot the Admin service advertises.
// Usable (with weight 1, not draining) even when AdminService is off, so
// embedders can feed their own management surface.
func (s *Server) AdminStats() admin.Stats {
	st := s.Stats()
	out := admin.Stats{
		Role:       "server",
		Weight:     1,
		Workers:    int64(st.AppStage.Workers),
		Busy:       st.AppStage.Busy,
		QueueDepth: int64(st.AppStage.Queued),
		QueueCap:   int64(st.AppStage.QueueCap),
		Inflight:   st.AppStage.Busy + int64(st.AppStage.Queued),
		Envelopes:  st.Envelopes,
		Requests:   st.Requests,
		Packed:     st.PackedMessages,
		Faults:     st.Faults,
		ItemFaults: st.ItemFaults,
		DiffHits:   st.DiffHits,
		DiffMisses: st.DiffMisses,
		FaultCodes: admin.FaultCodes(st.FaultCodes),
	}
	if out.Idle = out.Workers - out.Busy; out.Idle < 0 {
		out.Idle = 0
	}
	if s.adminState != nil {
		out.Weight, out.Draining = s.adminState.Snapshot()
	}
	if len(st.Operations) > 0 {
		names := make([]string, 0, len(st.Operations))
		for name := range st.Operations {
			names = append(names, name)
		}
		sort.Strings(names)
		out.Ops = make([]admin.OpStat, 0, len(names))
		for _, name := range names {
			e := st.Operations[name].Export()
			out.Ops = append(out.Ops, admin.OpStat{
				Op: name, Count: e.Count, MeanUs: e.MeanUs,
				P50Us: e.P50Us, P90Us: e.P90Us, P99Us: e.P99Us,
			})
		}
	}
	return out
}

// HandleHTTP serves one already-parsed HTTP request through the full
// protocol path (tracing, deadline budget, dispatch, assembly) — the
// embedding hook the gateway uses to self-host its own Admin endpoint
// without a second listener.
func (s *Server) HandleHTTP(ctx context.Context, req *httpx.Request) *httpx.Response {
	return s.handle(ctx, req)
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Close shuts down the HTTP server and drains the application stage.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	s.closePools()
	return err
}

// Shutdown drains gracefully: in-flight exchanges finish (up to the
// timeout), then connections close and the stages drain.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.httpSrv.Shutdown(timeout)
	s.closePools()
	return err
}

func (s *Server) closePools() {
	if s.controller != nil {
		s.controller.Stop()
	}
	if s.appPool != nil {
		s.appPool.Close()
	}
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Envelopes:      s.envelopes.Load(),
		Requests:       s.requests.Load(),
		PackedMessages: s.packed.Load(),
		Faults:         s.faults.Load(),
		ItemFaults:     s.itemFaults.Load(),
	}
	if s.appPool != nil {
		st.AppStage = s.appPool.PoolStats()
	}
	if s.diff != nil {
		st.DiffHits, st.DiffMisses = s.diff.stats()
	}
	st.FaultCodes = s.faultCodes.Snapshot()
	st.Resilience = s.resil.Snapshot()
	st.ParsePhase = s.phaseParse.Snapshot()
	st.DispatchPhase = s.phaseDispatch.Snapshot()
	st.EncodePhase = s.phaseEncode.Snapshot()
	st.EncodeIO = s.encodeIO.Snapshot()
	s.opMu.Lock()
	if len(s.opStats) > 0 {
		st.Operations = make(map[string]metrics.Summary, len(s.opStats))
		for k, r := range s.opStats {
			st.Operations[k.service+"."+k.op] = r.Snapshot()
		}
	}
	s.opMu.Unlock()
	return st
}

// recordOp accumulates one operation execution time.
func (s *Server) recordOp(service, op string, d time.Duration) {
	key := opKey{service, op}
	s.opMu.Lock()
	if s.opStats == nil {
		s.opStats = make(map[opKey]*metrics.Recorder)
	}
	r := s.opStats[key]
	if r == nil {
		r = &metrics.Recorder{}
		s.opStats[key] = r
	}
	s.opMu.Unlock()
	r.Record(d)
}

// handle is the protocol-stage entry point: it runs on the connection's
// goroutine (the paper's protocol-processing thread). ctx is the
// transport's request context: cancelled when the client disconnects or
// the server shuts down, further bounded here by any SPI-Deadline budget
// the client propagated.
func (s *Server) handle(ctx context.Context, req *httpx.Request) *httpx.Response {
	if s.protSem != nil {
		s.protSem <- struct{}{}
		defer func() { <-s.protSem }()
	}

	if req.Method == "GET" {
		if s.cfg.DebugEndpoints && strings.HasPrefix(req.Target, debugPathPrefix) {
			return s.handleDebug(req)
		}
		return s.handleGet(req)
	}
	if req.Method != "POST" {
		resp := httpx.NewResponse(405, []byte("SOAP endpoint: POST only\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	defaultService, ok := s.serviceFromPath(req.Target)
	if !ok {
		resp := httpx.NewResponse(404, []byte("no such endpoint\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}

	// Adopt the client's trace id (SPI-Trace) or start a server-local
	// trace, so every span below correlates.
	tr := s.cfg.Tracer
	if tr.Enabled() {
		tid := traceID(req)
		if tid == 0 {
			tid = tr.Begin()
		}
		ctx = trace.NewContext(ctx, tid)
	}

	// Zero-allocation fast path: arena-backed decode with streaming packed
	// dispatch. Requires buffered-envelope features to be off (see
	// canStream); responses are byte-identical with the path below.
	if s.canStream() {
		return s.handleStream(ctx, req, defaultService)
	}

	parseStart := time.Now()
	var env *soap.Envelope
	var err error
	if s.diff != nil {
		env, err = s.diff.decode(req.Body)
	} else {
		env, err = soap.Decode(bytes.NewReader(req.Body))
	}
	parseDur := time.Since(parseStart)
	s.phaseParse.Record(parseDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageProtocol,
			ID: -1, Op: req.Target, Start: parseStart, Service: parseDur})
	}
	if err != nil {
		var vm *soap.VersionMismatchError
		if errors.As(err, &vm) {
			// SOAP 1.1 §4.4: unrecognized envelope version.
			return s.faultResponse(&soap.Fault{Code: soap.FaultVersionMismatch, String: vm.Error()}, soap.V11)
		}
		return s.faultResponse(soap.ClientFault("malformed envelope: %v", err), soap.V11)
	}
	s.envelopes.Add(1)

	if fault := s.processHeaders(env, req.Body); fault != nil {
		return s.faultResponse(fault, env.Version)
	}

	// Apply the client's propagated deadline budget, shortened by the
	// grace period so a degraded (partial) response still reaches the
	// client before its own deadline fires.
	if budget := deadlineBudget(req); budget > 0 {
		grace := s.cfg.DeadlineGrace
		if grace <= 0 {
			grace = budget / 5
			if grace > 100*time.Millisecond {
				grace = 100 * time.Millisecond
			}
		}
		if budget > grace {
			budget -= grace
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	dispatchStart := time.Now()
	dispatcher := func(env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
		return s.dispatch(ctx, env, defaultService, req.Target)
	}
	if len(s.cfg.Interceptors) > 0 {
		info := &RequestInfo{Target: req.Target, DefaultService: defaultService, Version: env.Version}
		dispatcher = buildChain(s.cfg.Interceptors, info, dispatcher)
	}
	respEnv, fault := dispatcher(env)
	dispatchDur := time.Since(dispatchStart)
	s.phaseDispatch.Record(dispatchDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageDispatch,
			ID: -1, Op: req.Target, Start: dispatchStart, Service: dispatchDur})
	}
	if fault != nil {
		return s.faultResponse(fault, env.Version)
	}
	if respEnv == nil {
		return s.faultResponse(soap.ServerFault("interceptor returned no response"), env.Version)
	}
	// Reply in the version the request used.
	respEnv.Version = env.Version
	encodeStart := time.Now()
	resp := s.envelopeResponse(200, respEnv)
	encodeDur := time.Since(encodeStart)
	s.phaseEncode.Record(encodeDur)
	s.encodeIO.Observe(len(resp.Body), encodeDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageAssemble,
			ID: -1, Op: req.Target, Start: encodeStart, Service: encodeDur})
	}
	return resp
}

// traceID parses the SPI-Trace header; zero means absent or malformed.
func traceID(req *httpx.Request) uint64 {
	v := req.Header.Get(HeaderTrace)
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// appTask wraps one application-stage task with a server.app span that
// splits queue wait (submit to worker pickup) from service time (the
// execution itself). With tracing disabled the task is returned untouched,
// so the hot path pays one branch and no timestamps.
func (s *Server) appTask(ctx context.Context, req *rpcRequest, run func()) stage.Task {
	tr := s.cfg.Tracer
	if !tr.Enabled() {
		return run
	}
	tid := trace.FromContext(ctx)
	submitted := time.Now()
	return func() {
		start := time.Now()
		run()
		tr.Record(trace.Span{Trace: tid, Stage: trace.StageApp, ID: req.id,
			Op: req.service + "." + req.op, Start: start,
			Queue: start.Sub(submitted), Service: time.Since(start)})
	}
}

// handleGet serves service descriptions: "GET <prefix><Service>?wsdl"
// returns the service's WSDL document, and a GET of the bare prefix lists
// the deployed services, mirroring what Axis offered on its endpoints.
func (s *Server) handleGet(req *httpx.Request) *httpx.Response {
	target := req.Target
	wantWSDL := false
	if i := strings.IndexByte(target, '?'); i >= 0 {
		wantWSDL = strings.EqualFold(target[i+1:], "wsdl")
		target = target[:i]
	}
	service, ok := s.serviceFromPath(target)
	if !ok {
		resp := httpx.NewResponse(404, []byte("no such endpoint\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	if service == "" {
		var b bytes.Buffer
		b.WriteString("Deployed services:\n")
		for _, svc := range s.cfg.Container.Services() {
			fmt.Fprintf(&b, "  %s%s?wsdl — %s\n", s.cfg.PathPrefix, svc.Name, svc.Doc)
		}
		resp := httpx.NewResponse(200, b.Bytes())
		resp.Header.Set("Content-Type", "text/plain; charset=utf-8")
		return resp
	}
	svc, found := s.cfg.Container.Service(service)
	if !found {
		resp := httpx.NewResponse(404, []byte("no such service\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	if !wantWSDL {
		resp := httpx.NewResponse(200, []byte(fmt.Sprintf("%s — %s\nAppend ?wsdl for the service description.\n", svc.Name, svc.Doc)))
		resp.Header.Set("Content-Type", "text/plain; charset=utf-8")
		return resp
	}
	var b bytes.Buffer
	if err := wsdl.Describe(svc, s.cfg.PathPrefix+svc.Name).WriteDocument(&b); err != nil {
		resp := httpx.NewResponse(500, []byte("wsdl generation failed\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	resp := httpx.NewResponse(200, b.Bytes())
	resp.Header.Set("Content-Type", "text/xml; charset=utf-8")
	return resp
}

// serviceFromPath extracts the service name from the request target.
// "/services/Echo" -> "Echo"; the bare prefix ("/services" or "/services/")
// is the multi-service pack endpoint and yields an empty default service.
func (s *Server) serviceFromPath(target string) (string, bool) {
	trimmed := strings.TrimSuffix(s.cfg.PathPrefix, "/")
	if target == trimmed || target == s.cfg.PathPrefix {
		return "", true
	}
	if !strings.HasPrefix(target, s.cfg.PathPrefix) {
		return "", false
	}
	name := strings.TrimPrefix(target, s.cfg.PathPrefix)
	if name == "" || strings.Contains(name, "/") {
		return "", false
	}
	return name, true
}

// processHeaders runs header processors and enforces mustUnderstand on the
// buffered path. raw is the request document; the canonical body handed to
// processors is the verbatim spans of its body entries, scanned from raw —
// the same bytes the streaming path tees out of its decoder, so signature
// verification covers identical input no matter which path served the
// request.
func (s *Server) processHeaders(env *soap.Envelope, raw []byte) *soap.Fault {
	var bodyBytes []byte
	if len(s.cfg.HeaderProcessors) > 0 {
		var err error
		bodyBytes, err = soap.AppendRawBodyEntries(nil, raw)
		if err != nil {
			// Unreachable in practice: the envelope already parsed once.
			return soap.ClientFault("malformed envelope: %v", err)
		}
	}
	return s.verifyHeaders(env, bodyBytes)
}

// verifyHeaders runs header processors over the already-computed canonical
// body, then enforces mustUnderstand: a mustUnderstand block nobody
// recognises is a MustUnderstand fault, per SOAP 1.1 §4.2.3. Processors
// run first in both dispatch paths, so their faults take precedence.
func (s *Server) verifyHeaders(env *soap.Envelope, bodyBytes []byte) *soap.Fault {
	understood := make(map[*xmldom.Element]bool)
	for _, h := range env.Header {
		for _, p := range s.cfg.HeaderProcessors {
			ns, local := p.HeaderName()
			if h.Is(ns, local) {
				if err := p.ProcessHeader(h, bodyBytes); err != nil {
					return soap.ClientFault("header %s: %v", h.Name.Local, err)
				}
				understood[h] = true
			}
		}
	}
	for _, h := range env.MustUnderstandHeaders() {
		if !understood[h] {
			return &soap.Fault{
				Code:   soap.FaultMustUnderstand,
				String: fmt.Sprintf("header {%s}%s not understood", h.Namespace(), h.Name.Local),
			}
		}
	}
	return nil
}

// canonicalBody serializes the body entries compactly and in place — the
// byte string header signatures cover. A signer (our client) serializes
// entries exactly as it transmits them, and the server verifies against
// the verbatim wire spans of the received body entries, so the canonical
// form IS the wire form: no re-homing, no cloning, no second namespace
// context. Entries whose prefixes resolve through the standard envelope
// declarations serialize identically on both sides (ours always do).
func canonicalBody(env *soap.Envelope) []byte {
	var buf bytes.Buffer
	for _, e := range env.Body {
		_ = e.Serialize(&buf)
	}
	return buf.Bytes()
}

// deadlineBudget parses the SPI-Deadline header: the client's remaining
// deadline budget in integer milliseconds. Zero means no budget was
// propagated (or it was malformed, which is treated as absent).
func deadlineBudget(req *httpx.Request) time.Duration {
	v := req.Header.Get(HeaderDeadline)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// dispatch interprets the body and executes the request(s). This is the
// server-side dispatcher of §3.5 plus the assembler of §3.4. target is the
// HTTP request target, threaded through for EntryInterceptor info.
func (s *Server) dispatch(ctx context.Context, env *soap.Envelope, defaultService, target string) (*soap.Envelope, *soap.Fault) {
	if len(env.Body) != 1 {
		return nil, soap.ClientFault("expected exactly one body entry, got %d", len(env.Body))
	}
	entry := env.Body[0]

	rctx := &registry.Context{Ctx: ctx, RequestHeaders: env.Header}

	var einfo *EntryInfo
	if len(s.cfg.EntryInterceptors) > 0 {
		einfo = &EntryInfo{Target: target, DefaultService: defaultService, Version: env.Version}
	}

	if isPackedRequest(entry) {
		s.packed.Add(1)
		return s.dispatchPacked(ctx, entry, rctx, defaultService, einfo)
	}
	if einfo != nil {
		// Single call (plain or plan): the entry hook runs exactly once,
		// mirroring the streaming path.
		repl, fault := runEntryInterceptors(s.cfg.EntryInterceptors, entry, einfo)
		if fault != nil {
			return nil, fault
		}
		entry = repl
	}
	if isPlanBody(entry) {
		return s.dispatchPlan(ctx, entry, rctx, defaultService)
	}
	return s.dispatchSingle(ctx, entry, rctx, defaultService)
}

// submitApp enqueues one application-stage task, applying the admission
// timeout when configured. With no timeout the submit blocks until queue
// space frees (the seed behaviour).
func (s *Server) submitApp(task stage.Task) error {
	if tr := s.cfg.Tracer; tr.Enabled() {
		tr.Gauge("app.queue").Set(int64(s.appPool.QueueLen()))
	}
	if s.cfg.AdmissionTimeout > 0 {
		return s.appPool.SubmitTimeout(task, s.cfg.AdmissionTimeout)
	}
	return s.appPool.Submit(task)
}

// admissionFault maps a failed submit to a fault: a full queue past the
// admission timeout is shed with Server.Busy (retryable — the operation
// never started); anything else is a plain server fault.
func (s *Server) admissionFault(err error) *soap.Fault {
	if errors.Is(err, stage.ErrQueueFull) {
		s.resil.Shed.Inc()
		return fault.ToSOAP(fault.Shedf(
			"application stage queue full after %v admission wait", s.cfg.AdmissionTimeout))
	}
	return soap.ServerFault("application stage unavailable: %v", err)
}

// abandonResult fabricates the per-item fault for work the protocol thread
// stopped waiting on: Server.Timeout when the envelope deadline expired,
// Server.Cancelled when the caller went away. The worker (if it started)
// keeps running detached; its handler sees the cancelled Context and
// should abort.
func (s *Server) abandonResult(ctx context.Context, req *rpcRequest) *rpcResult {
	res := &rpcResult{id: req.id, service: req.service, op: req.op}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.resil.Timeouts.Inc()
		res.fault = fault.ToSOAP(fault.Timeoutf(
			"deadline expired before %s.%s finished", req.service, req.op).
			With(fault.KeyOp, req.service+"."+req.op))
	} else {
		s.resil.Cancellations.Inc()
		res.fault = fault.ToSOAP(fault.Cancelledf(
			"caller cancelled before %s.%s finished", req.service, req.op).
			With(fault.KeyOp, req.service+"."+req.op))
	}
	return res
}

// dispatchSingle executes a traditional one-request envelope.
func (s *Server) dispatchSingle(ctx context.Context, entry *xmldom.Element, rctx *registry.Context, defaultService string) (*soap.Envelope, *soap.Fault) {
	service := defaultService
	if service == "" {
		// Pack endpoint used for a plain request: resolve by namespace.
		if svc, ok := s.cfg.Container.ServiceByNamespace(entry.Namespace()); ok {
			service = svc.Name
		}
	}
	req, fault := decodeRequestElement(entry, service, 0)
	if fault != nil {
		return nil, fault
	}
	var res *rpcResult
	if s.cfg.Coupled || s.appPool == nil || (s.adminState != nil && req.service == admin.ServiceName) {
		// Traditional coupled architecture: execute on the protocol thread.
		// Control-plane (Admin) operations take the same inline path even
		// when staged: they only read counters or flip atomics, and they
		// must stay answerable while the application stage is saturated —
		// a GetStats poll that queues behind the very backlog it is meant
		// to report would go stale exactly when the gateway needs it most.
		res = s.execute(ctx, req, rctx)
	} else {
		// Staged architecture: even a single request runs on the
		// application stage; the protocol thread sleeps until it is done
		// or the request's deadline fires.
		done := make(chan *rpcResult, 1)
		task := s.appTask(ctx, req, func() { done <- s.execute(ctx, req, rctx) })
		if err := s.submitApp(task); err != nil {
			return nil, s.admissionFault(err)
		}
		select {
		case res = <-done:
		case <-ctx.Done():
			res = s.abandonResult(ctx, req)
		}
	}
	if res.fault != nil {
		return nil, res.fault
	}
	ns := s.namespaceOf(req.service)
	respEl, err := encodeResponseElement(ns, req.op, res.results)
	if err != nil {
		return nil, soap.ServerFault("encoding response: %v", err)
	}
	out := soap.New()
	out.Header = rctx.ResponseHeaders()
	out.AddBody(respEl)
	return out, nil
}

// packedDone carries one finished execution back to the protocol thread
// with the slot it belongs to in the response.
type packedDone struct {
	slot int
	res  *rpcResult
}

// dispatchPacked fans a Parallel_Method message out to the application
// stage and assembles the packed response. The protocol goroutine sleeps
// until the last worker finishes — the sleep/wake handoff of §3.3 — or
// until the envelope's deadline fires, in which case it degrades: slots
// whose work has not completed become per-item Server.Timeout faults while
// completed companions keep their real results. The done channel is
// buffered to len(entries) so abandoned workers complete their sends
// harmlessly after the protocol thread has moved on.
func (s *Server) dispatchPacked(ctx context.Context, pm *xmldom.Element, rctx *registry.Context, defaultService string, einfo *EntryInfo) (*soap.Envelope, *soap.Fault) {
	entries := pm.ChildElements()
	if len(entries) == 0 {
		return nil, soap.ClientFault("%s has no requests", ElemParallelMethod)
	}

	results := make([]*rpcResult, len(entries))
	reqs := make([]*rpcRequest, len(entries))
	done := make(chan packedDone, len(entries))
	pending := 0
	for i, el := range entries {
		if einfo != nil {
			ei := *einfo
			ei.Index, ei.Packed = i, true
			repl, fault := runEntryInterceptors(s.cfg.EntryInterceptors, el, &ei)
			if fault != nil {
				results[i] = &rpcResult{id: i, fault: fault}
				continue
			}
			el = repl
		}
		req, fault := decodeRequestElement(el, defaultService, i)
		if fault != nil {
			results[i] = &rpcResult{id: i, fault: fault}
			continue
		}
		reqs[i] = req
		if s.cfg.Coupled || s.appPool == nil {
			// Traditional architecture: execute serially on this thread,
			// degrading the remainder once the deadline has passed.
			if ctx.Err() != nil {
				results[i] = s.abandonResult(ctx, req)
				continue
			}
			results[i] = s.execute(ctx, req, rctx)
			continue
		}
		slot, r := i, req
		task := s.appTask(ctx, r, func() { done <- packedDone{slot, s.execute(ctx, r, rctx)} })
		if err := s.submitApp(task); err != nil {
			sf := s.admissionFault(err)
			results[i] = &rpcResult{id: req.id, service: req.service, op: req.op, fault: sf}
			continue
		}
		pending++
	}
	for pending > 0 {
		select {
		case d := <-done:
			results[d.slot] = d.res
			pending--
		case <-ctx.Done():
			// Degrade: take whatever has already completed, then turn the
			// unfinished slots into per-item deadline faults.
			for drained := false; !drained; {
				select {
				case d := <-done:
					results[d.slot] = d.res
					pending--
				default:
					drained = true
				}
			}
			for i, r := range results {
				if r == nil {
					results[i] = s.abandonResult(ctx, reqs[i])
				}
			}
			pending = 0
		}
	}

	for _, r := range results {
		if r.fault != nil {
			s.itemFaults.Add(1)
			s.faultCodes.NoteSOAP(r.fault)
		}
	}
	respEl, err := buildPackedResponse(results, s.namespaceOf)
	if err != nil {
		return nil, soap.ServerFault("assembling packed response: %v", err)
	}
	out := soap.New()
	out.Header = rctx.ResponseHeaders()
	out.AddBody(respEl)
	return out, nil
}

// execute resolves and invokes one operation. In staged mode it is called
// on an application-stage worker; in coupled mode on the protocol thread.
// The handler receives ctx (bounded by OperationTimeout when configured)
// through registry.Context.Ctx; when the watchdog fires the result is a
// Server.Timeout fault and the handler runs detached until it observes the
// cancellation.
func (s *Server) execute(ctx context.Context, req *rpcRequest, rctx *registry.Context) *rpcResult {
	// The result and the invocation context have the same lifetime, so one
	// heap object carries both — with sixteen-entry packed envelopes the
	// saved allocation is measurable.
	frame := &struct {
		res rpcResult
		inv registry.Context
	}{res: rpcResult{id: req.id, service: req.service, op: req.op}}
	res := &frame.res
	op, lookupFault := s.cfg.Container.Lookup(req.service, req.op)
	if lookupFault != nil {
		res.fault = lookupFault
		return res
	}
	s.requests.Add(1)
	opCtx := ctx
	var cancel context.CancelFunc
	if d := s.cfg.OperationTimeout; d > 0 {
		// The watchdog deadline rides the shared timing wheel: O(1)
		// schedule/cancel with no runtime-timer churn per operation, at
		// the cost of firing up to one wheel tick late. The wheel context
		// yields the same context.DeadlineExceeded/Canceled sentinels, so
		// fault classification (and its pinned texts) is unchanged.
		opCtx, cancel = httpx.WheelTimeout(ctx, httpx.DefaultWheel(), d)
	}
	invCtx := &frame.inv
	*invCtx = registry.Context{
		Ctx:            opCtx,
		Service:        req.service,
		Operation:      req.op,
		RequestHeaders: rctx.RequestHeaders,
	}
	execStart := time.Now()
	if cancel == nil {
		// No per-operation deadline: invoke inline.
		results, fault := registry.Invoke(op, invCtx, req.params)
		s.recordOp(req.service, req.op, time.Since(execStart))
		return s.finishExecute(res, rctx, invCtx, results, fault)
	}
	// Per-operation watchdog: invoke on a helper goroutine so an
	// overrunning handler cannot hold this worker past its deadline.
	type outcome struct {
		results []soapenc.Field
		fault   *soap.Fault
	}
	ch := make(chan outcome, 1)
	go func() {
		r, f := registry.Invoke(op, invCtx, req.params)
		ch <- outcome{r, f}
	}()
	select {
	case o := <-ch:
		// Classify the outcome before cancel(): cancelling first would make
		// finishExecute read a context error we caused ourselves and rewrite
		// a genuine application fault as Server.Cancelled.
		s.recordOp(req.service, req.op, time.Since(execStart))
		out := s.finishExecute(res, rctx, invCtx, o.results, o.fault)
		cancel()
		return out
	case <-opCtx.Done():
		cancel()
		s.recordOp(req.service, req.op, time.Since(execStart))
		if errors.Is(ctx.Err(), context.Canceled) {
			s.resil.Cancellations.Inc()
			res.fault = fault.ToSOAP(fault.Cancelledf(
				"caller cancelled %s.%s", req.service, req.op).
				With(fault.KeyOp, req.service+"."+req.op))
		} else {
			s.resil.Timeouts.Inc()
			res.fault = fault.ToSOAP(fault.Timeoutf(
				"operation %s.%s exceeded its deadline", req.service, req.op).
				With(fault.KeyOp, req.service+"."+req.op))
		}
		return res
	}
}

// finishExecute folds an invocation outcome into the rpc result and
// propagates any response headers the handler contributed. A generic
// Server fault from a handler whose context had already expired is
// reclassified as the matching deadline/cancel fault — the handler aborted
// because we told it to, and the client should see that, not an opaque
// "context deadline exceeded".
func (s *Server) finishExecute(res *rpcResult, rctx, invCtx *registry.Context, results []soapenc.Field, sf *soap.Fault) *rpcResult {
	if sf != nil {
		if sf.Code == soap.FaultServer {
			switch invCtx.Context().Err() {
			case context.DeadlineExceeded:
				s.resil.Timeouts.Inc()
				sf = fault.ToSOAP(fault.Timeoutf(
					"deadline expired before %s.%s finished", res.service, res.op).
					With(fault.KeyOp, res.service+"."+res.op))
			case context.Canceled:
				s.resil.Cancellations.Inc()
				sf = fault.ToSOAP(fault.Cancelledf(
					"caller cancelled before %s.%s finished", res.service, res.op).
					With(fault.KeyOp, res.service+"."+res.op))
			}
		}
		res.fault = sf
		return res
	}
	res.results = results
	for _, h := range invCtx.ResponseHeaders() {
		rctx.AddResponseHeader(h)
	}
	return res
}

// namespaceOf returns the namespace of a deployed service, or the pack
// namespace for unknown services (only reachable for faulted entries,
// which do not use it).
func (s *Server) namespaceOf(service string) string {
	if svc, ok := s.cfg.Container.Service(service); ok {
		return svc.Namespace
	}
	return NSPack
}

// faultResponse wraps a fault in an envelope with HTTP 500, per the SOAP
// HTTP binding, in the requested envelope version.
func (s *Server) faultResponse(f *soap.Fault, v soap.Version) *httpx.Response {
	s.faults.Add(1)
	s.faultCodes.NoteSOAP(f)
	return s.envelopeResponse(500, f.EnvelopeFor(v))
}

// envelopeResponse serializes an envelope into a pooled buffer. The
// response body aliases that buffer; the transport releases it (via
// Response.Release) once the bytes have been written to the connection.
func (s *Server) envelopeResponse(status int, env *soap.Envelope) *httpx.Response {
	enc := soap.NewStreamEncoder()
	body, err := enc.EncodeEnvelope(env)
	if err != nil {
		enc.Release()
		return encodeFailureResponse()
	}
	resp := httpx.NewResponse(status, body)
	resp.Header.Set("Content-Type", env.Version.ContentType())
	resp.SetRelease(enc.Release)
	return resp
}

// encodeFailureResponse is the plain-text 500 returned when response
// serialization itself fails.
func encodeFailureResponse() *httpx.Response {
	resp := httpx.NewResponse(500, []byte("response encoding failed\n"))
	resp.Header.Set("Content-Type", "text/plain")
	return resp
}
