package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/xmldom"
)

// The streaming fast path decodes the request envelope from a pooled arena
// and, for packed messages, dispatches each Parallel_Method entry to the
// application stage as soon as its subtree closes — parse and execution
// overlap instead of running back to back on the protocol thread.
//
// It preserves the buffered path's responses byte for byte. The one
// observable difference is side-effect timing: a request whose envelope
// turns out to be malformed — or whose security header fails verification —
// *after* well-formed packed entries gets the same whole-message fault the
// buffered path returns, but those early entries have already executed
// (idempotency is the application's concern, as with any at-least-once
// delivery). The features that used to force the buffered path now operate
// at entry/token granularity instead:
//
//   - differential deserialization hashes each entry's raw subtree span as
//     the decoder consumes it, cloning cached parses into the arena on hits
//     (see diffCache);
//   - EntryInterceptors hook each entry as its subtree closes;
//   - header processors (WSSE) verify over the verbatim body spans teed out
//     of the decoder, concurrently with entry dispatch, and fail the batch
//     before any response bytes are emitted.
//
// Only whole-envelope Interceptors — and the explicit BufferedDispatch
// opt-out — still fall back to the buffered path.

// canStream reports whether the streaming fast path applies to this server.
func (s *Server) canStream() bool {
	return !s.cfg.BufferedDispatch && len(s.cfg.Interceptors) == 0
}

// handleStream is the streaming counterpart of the parse/dispatch/encode
// section of handle. The request arena is released when the response bytes
// have been assembled; everything that outlives the exchange (decoded
// params, header clones, response elements) is copied out by then.
func (s *Server) handleStream(ctx context.Context, req *httpx.Request, defaultService string) *httpx.Response {
	arena := xmldom.AcquireArena()
	defer xmldom.ReleaseArena(arena)
	tr := s.cfg.Tracer

	parseStart := time.Now()
	d := soap.AcquireStreamDecoder(req.Body, arena)
	defer d.Release()
	err := d.ReadPreamble()
	parseDur := time.Since(parseStart)
	s.phaseParse.Record(parseDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageProtocol,
			ID: -1, Op: req.Target, Start: parseStart, Service: parseDur})
	}
	if err != nil {
		return s.decodeErrorResponse(err)
	}
	env := d.Envelope()
	s.envelopes.Add(1)

	// Header verification is deferred until the body has been consumed: the
	// processors' canonical input is the verbatim body spans the decoder tees
	// out, and the buffered path's fault precedence (malformed envelope
	// before any header fault) requires the whole document validated first.
	// Streamed entries cross into application-stage workers that can outlive
	// the request (degrade path); the arena-backed header elements must not.
	headers := cloneHeaders(env.Header)

	if budget := deadlineBudget(req); budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.shortenBudget(budget))
		defer cancel()
	}

	dispatchStart := time.Now()
	resp, respEnv, encInDispatch, fault := s.dispatchStream(ctx, d, arena, headers, defaultService, req.Target, env.Version)
	// Encoding interleaved with the dispatch (the streamed assembler) is
	// attributed to the encode phase, not the dispatch phase.
	dispatchDur := time.Since(dispatchStart) - encInDispatch
	s.phaseDispatch.Record(dispatchDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageDispatch,
			ID: -1, Op: req.Target, Start: dispatchStart, Service: dispatchDur})
	}
	if fault != nil {
		return s.faultResponse(fault, env.Version)
	}
	if resp != nil {
		// Streamed assembly already produced the response bytes.
		s.phaseEncode.Record(encInDispatch)
		s.encodeIO.Observe(len(resp.Body), encInDispatch)
		if tr.Enabled() {
			tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageAssemble,
				ID: -1, Op: req.Target, Start: dispatchStart, Service: encInDispatch})
		}
		return resp
	}

	respEnv.Version = env.Version
	encodeStart := time.Now()
	resp = s.envelopeResponse(200, respEnv)
	encodeDur := time.Since(encodeStart)
	s.phaseEncode.Record(encodeDur)
	s.encodeIO.Observe(len(resp.Body), encodeDur)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageAssemble,
			ID: -1, Op: req.Target, Start: encodeStart, Service: encodeDur})
	}
	return resp
}

// decodeErrorResponse maps a decode error to the fault the buffered path
// produces: VersionMismatch for foreign envelope namespaces, Client
// malformed-envelope otherwise, both in a SOAP 1.1 response.
func (s *Server) decodeErrorResponse(err error) *httpx.Response {
	if vm, ok := err.(*soap.VersionMismatchError); ok {
		return s.faultResponse(&soap.Fault{Code: soap.FaultVersionMismatch, String: vm.Error()}, soap.V11)
	}
	return s.faultResponse(soap.ClientFault("malformed envelope: %v", err), soap.V11)
}

// shortenBudget applies the DeadlineGrace policy to a propagated budget.
func (s *Server) shortenBudget(budget time.Duration) time.Duration {
	grace := s.cfg.DeadlineGrace
	if grace <= 0 {
		grace = budget / 5
		if grace > 100*time.Millisecond {
			grace = 100 * time.Millisecond
		}
	}
	if budget > grace {
		budget -= grace
	}
	return budget
}

// cloneHeaders deep-copies header blocks off the request arena. Clone also
// pulls inherited namespace declarations onto the copies, so they resolve
// identically without their (arena-owned) ancestors.
func cloneHeaders(hs []*xmldom.Element) []*xmldom.Element {
	if len(hs) == 0 {
		return nil
	}
	out := make([]*xmldom.Element, len(hs))
	for i, h := range hs {
		out[i] = h.Clone()
	}
	return out
}

// dispatchStream routes the body. A packed body streams entry by entry
// and returns a ready HTTP response assembled incrementally; anything else
// completes the envelope — consulting the per-entry differential cache —
// verifies headers, and falls back to the buffered dispatcher (which keeps
// single-request and plan semantics and their error messages in one place),
// returning the envelope for the caller to encode. encDur is the time the
// packed path spent encoding, for phase attribution.
func (s *Server) dispatchStream(ctx context.Context, d *soap.StreamDecoder, arena *xmldom.Arena, headers []*xmldom.Element, defaultService, target string, v soap.Version) (*httpx.Response, *soap.Envelope, time.Duration, *soap.Fault) {
	entry, err := d.NextEntryStart()
	if err != nil {
		return nil, nil, 0, soap.ClientFault("malformed envelope: %v", err)
	}
	rctx := &registry.Context{Ctx: ctx, RequestHeaders: headers}
	if entry != nil && isPackedRequest(entry) {
		s.packed.Add(1)
		resp, encDur, fault := s.dispatchPackedStream(ctx, d, entry, rctx, defaultService, target, v)
		return resp, nil, encDur, fault
	}
	// Not packed: nothing to overlap, so finish decoding and fall back.
	if entry != nil {
		if s.diff != nil {
			raw, err := d.CompleteEntrySpan(entry)
			if err != nil {
				return nil, nil, 0, soap.ClientFault("malformed envelope: %v", err)
			}
			rootTag, bodyTag := d.RawContext()
			key := subtreeKey(contextSum(rootTag, bodyTag), raw)
			if cached := s.diff.lookup(key); cached != nil {
				d.ReplaceEntry(entry, cached.CloneInArena(arena))
			} else {
				parsed, perr := xmldom.ParseBytesInArena(raw, arena)
				if perr != nil {
					return nil, nil, 0, soap.ClientFault("malformed envelope: %v", perr)
				}
				d.ReplaceEntry(entry, parsed)
				// Clone after attaching: that pulls inherited namespace
				// declarations onto the stored copy, so a future hit resolves
				// identically without its ancestors.
				s.diff.insert(key, parsed.Clone())
			}
		} else if err := d.CompleteEntry(entry); err != nil {
			return nil, nil, 0, soap.ClientFault("malformed envelope: %v", err)
		}
	}
	env, err := d.Finish()
	if err != nil {
		return nil, nil, 0, soap.ClientFault("malformed envelope: %v", err)
	}
	// Verify headers now that the document is known well-formed, over the
	// verbatim received spans — the same bytes the buffered path extracts.
	var canonical []byte
	if len(s.cfg.HeaderProcessors) > 0 {
		canonical = canonicalFromSpans(d.BodySpans())
	}
	if fault := s.verifyHeaders(env, canonical); fault != nil {
		return nil, nil, 0, fault
	}
	env.Header = headers
	respEnv, fault := s.dispatch(ctx, env, defaultService, target)
	return nil, respEnv, 0, fault
}

// canonicalFromSpans concatenates the decoder's body spans into the
// canonical body the header processors verify. The overwhelmingly common
// single-span case is zero-copy.
func canonicalFromSpans(spans [][]byte) []byte {
	if len(spans) == 1 {
		return spans[0]
	}
	n := 0
	for _, sp := range spans {
		n += len(sp)
	}
	out := make([]byte, 0, n)
	for _, sp := range spans {
		out = append(out, sp...)
	}
	return out
}

// streamCollector gathers results from application-stage workers when the
// total entry count is unknown at submit time (entries are still being
// parsed). deliver is safe from detached workers that finish after the
// protocol thread degraded their slot: a slot only accepts its first write.
type streamCollector struct {
	mu        sync.Mutex
	results   []*rpcResult
	completed int
	wake      chan struct{}
}

func newStreamCollector() *streamCollector {
	return &streamCollector{
		results: make([]*rpcResult, 0, 8),
		wake:    make(chan struct{}, 1),
	}
}

// addSlot reserves the next response slot.
func (c *streamCollector) addSlot() int {
	c.mu.Lock()
	slot := len(c.results)
	c.results = append(c.results, nil)
	c.mu.Unlock()
	return slot
}

// fill stores a result produced on the protocol thread (decode faults,
// admission faults, coupled-mode executions).
func (c *streamCollector) fill(slot int, res *rpcResult) {
	c.mu.Lock()
	c.results[slot] = res
	c.mu.Unlock()
}

// deliver stores a worker's result and nudges the protocol thread.
func (c *streamCollector) deliver(slot int, res *rpcResult) {
	c.mu.Lock()
	if c.results[slot] == nil {
		c.results[slot] = res
		c.completed++
	}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// wait blocks until want worker deliveries have landed or ctx is done,
// reporting whether it was the deadline that ended the wait.
func (c *streamCollector) wait(ctx context.Context, want int) (degraded bool) {
	for {
		c.mu.Lock()
		done := c.completed
		c.mu.Unlock()
		if done >= want {
			return false
		}
		select {
		case <-c.wake:
		case <-ctx.Done():
			return true
		}
	}
}

// waitSlot blocks until the given slot holds a result or ctx is done,
// reporting whether it was the deadline that ended the wait. This is the
// reorder window's park: the assembler only ever waits on the slot at the
// window head.
func (c *streamCollector) waitSlot(ctx context.Context, slot int) (degraded bool) {
	for {
		c.mu.Lock()
		filled := c.results[slot] != nil
		c.mu.Unlock()
		if filled {
			return false
		}
		select {
		case <-c.wake:
		case <-ctx.Done():
			return true
		}
	}
}

// dispatchPackedStream is dispatchPacked fused with decoding on the way in
// and assembly on the way out: each Parallel_Method entry is enqueued the
// moment its subtree closes, so the first operations run while later
// entries are still being tokenized, and each entry's response bytes are
// written to the pooled response buffer the moment the reorder window's
// head slot completes — the protocol thread never holds a response DOM.
// When the envelope deadline fires it degrades unfinished slots to
// per-item faults exactly as the buffered path does; differential tests
// pin the bytes identical under randomized completion orders.
func (s *Server) dispatchPackedStream(ctx context.Context, d *soap.StreamDecoder, pm *xmldom.Element, rctx *registry.Context, defaultService, target string, v soap.Version) (*httpx.Response, time.Duration, *soap.Fault) {
	col := newStreamCollector()
	asm := newPackedAssembler()
	asm.faultCodes = &s.faultCodes
	defer asm.release()
	reqs := make([]*rpcRequest, 0, 8)
	arena := d.Arena()

	var ctxSum [32]byte
	if s.diff != nil {
		rootTag, bodyTag := d.RawContext()
		ctxSum = contextSum(rootTag, bodyTag, d.EntryStartTag())
	}
	var einfo *EntryInfo
	if len(s.cfg.EntryInterceptors) > 0 {
		einfo = &EntryInfo{Target: target, DefaultService: defaultService, Version: v, Packed: true}
	}

	for {
		var el *xmldom.Element
		var err error
		if s.diff != nil {
			// Per-entry differential deserialization: hash the raw subtree
			// span as the tokenizer consumes it; a hit clones the cached
			// parse into the arena without building the DOM again.
			var raw []byte
			raw, err = d.NextChildSpan(pm)
			if err == nil && raw != nil {
				key := subtreeKey(ctxSum, raw)
				if cached := s.diff.lookup(key); cached != nil {
					el = cached.CloneInArena(arena)
					pm.AddChild(el)
				} else {
					el, err = xmldom.ParseBytesInArena(raw, arena)
					if err == nil {
						pm.AddChild(el)
						// Clone after attaching, so inherited namespace
						// declarations bake onto the stored copy.
						s.diff.insert(key, el.Clone())
					}
				}
			}
		} else {
			el, err = d.NextChild(pm)
		}
		if err != nil {
			return nil, asm.encDur, soap.ClientFault("malformed envelope: %v", err)
		}
		if el == nil {
			break
		}
		i := col.addSlot()
		if einfo != nil {
			ei := *einfo
			ei.Index = i
			repl, fault := runEntryInterceptors(s.cfg.EntryInterceptors, el, &ei)
			if fault != nil {
				reqs = append(reqs, nil)
				col.fill(i, &rpcResult{id: i, fault: fault})
				continue
			}
			el = repl
		}
		req, fault := decodeRequestElement(el, defaultService, i)
		reqs = append(reqs, req)
		if fault != nil {
			col.fill(i, &rpcResult{id: i, fault: fault})
			continue
		}
		if s.cfg.Coupled || s.appPool == nil {
			// Traditional architecture: serial execution as entries arrive,
			// degrading the remainder once the deadline has passed.
			if ctx.Err() != nil {
				col.fill(i, s.abandonResult(ctx, req))
				continue
			}
			col.fill(i, s.execute(ctx, req, rctx))
			continue
		}
		slot, r := i, req
		task := s.appTask(ctx, r, func() { col.deliver(slot, s.execute(ctx, r, rctx)) })
		if err := s.submitApp(task); err != nil {
			col.fill(i, &rpcResult{id: req.id, service: req.service, op: req.op, fault: s.admissionFault(err)})
		}
	}
	// Validate the rest of the document before encoding anything: a
	// malformed tail must produce the buffered path's whole-message fault,
	// which takes precedence over everything else. Late workers deliver
	// into the collector harmlessly — they hold copies, never arena nodes.
	extra := 0
	for {
		el, err := d.NextEntryStart()
		if err != nil {
			return nil, asm.encDur, soap.ClientFault("malformed envelope: %v", err)
		}
		if el == nil {
			break
		}
		extra++
		if err := d.CompleteEntry(el); err != nil {
			return nil, asm.encDur, soap.ClientFault("malformed envelope: %v", err)
		}
	}
	env, err := d.Finish()
	if err != nil {
		return nil, asm.encDur, soap.ClientFault("malformed envelope: %v", err)
	}

	// Header verification, now that the document is known well-formed.
	// The buffered path verifies headers before dispatch, so its fault
	// precedence is header fault > extra-entry fault > dispatch faults.
	// With processors configured the (crypto-heavy) verification runs on
	// its own goroutine, overlapped with the assembly drain below, and is
	// joined before any return — the batch fails before response bytes
	// leave, entries that already executed notwithstanding. The
	// mustUnderstand-only case is cheap enough to check inline.
	var hdrCh chan *soap.Fault
	if len(s.cfg.HeaderProcessors) > 0 {
		canonical := canonicalFromSpans(d.BodySpans())
		hdrCh = make(chan *soap.Fault, 1)
		go func() { hdrCh <- s.verifyHeaders(env, canonical) }()
	} else if fault := s.verifyHeaders(env, nil); fault != nil {
		return nil, asm.encDur, fault
	}
	// Exactly one return path runs, so joinHeaders receives at most once.
	joinHeaders := func() *soap.Fault {
		if hdrCh == nil {
			return nil
		}
		return <-hdrCh
	}
	if extra > 0 {
		if fault := joinHeaders(); fault != nil {
			return nil, asm.encDur, fault
		}
		return nil, asm.encDur, soap.ClientFault("expected exactly one body entry, got %d", 1+extra)
	}
	if len(reqs) == 0 {
		if fault := joinHeaders(); fault != nil {
			return nil, asm.encDur, fault
		}
		return nil, asm.encDur, soap.ClientFault("%s has no requests", ElemParallelMethod)
	}

	// In-order incremental assembly: encode each contiguous completed
	// prefix of slots while later workers are still running, parking on
	// the reorder window's head when it is empty. On deadline expiry,
	// degrade every unfilled slot to a per-item fault and finish the
	// final drain over the now-complete window.
	for asm.next < len(reqs) {
		asm.drain(col, s.namespaceOf)
		if asm.failed != nil || asm.next >= len(reqs) {
			break
		}
		if col.waitSlot(ctx, asm.next) {
			col.mu.Lock()
			for i, r := range col.results {
				if r == nil {
					col.results[i] = s.abandonResult(ctx, reqs[i])
				}
			}
			col.mu.Unlock()
		}
	}
	// Join verification before letting any bytes leave; a header fault
	// outranks even an assembly failure, matching the buffered order.
	if fault := joinHeaders(); fault != nil {
		return nil, asm.encDur, fault
	}
	if asm.failed != nil {
		return nil, asm.encDur, soap.ServerFault("assembling packed response: %v", asm.failed)
	}
	s.itemFaults.Add(int64(asm.itemFaults))

	resp, err := asm.finish(v, rctx.ResponseHeaders())
	if err != nil {
		return encodeFailureResponse(), asm.encDur, nil
	}
	return resp, asm.encDur, nil
}
