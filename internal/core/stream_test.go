package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
)

const testEnv11 = `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">`

// postRaw sends raw bytes to the pack endpoint and decodes the response
// envelope.
func postRaw(t *testing.T, sys *system, doc string) (int, *soap.Envelope) {
	t.Helper()
	resp, err := sys.client.http.Post("/services/", "text/xml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	env, err := soap.Decode(strings.NewReader(string(resp.Body)))
	if err != nil {
		t.Fatalf("response not an envelope: %v\n%s", err, resp.Body)
	}
	return resp.StatusCode, env
}

// TestStreamPathActive pins the gate: everything streams except
// whole-envelope interceptors and the explicit opt-out. Differential
// deserialization, header processors and entry interceptors all run at
// entry/token granularity on the streaming path.
func TestStreamPathActive(t *testing.T) {
	mk := func(mutate func(*ServerConfig)) *Server {
		cfg := ServerConfig{Container: newEchoContainer(t)}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	if !mk(nil).canStream() {
		t.Error("default config does not stream")
	}
	if !mk(func(c *ServerConfig) { c.DifferentialDeserialization = true }).canStream() {
		t.Error("differential deserialization fell off the streaming path")
	}
	if !mk(func(c *ServerConfig) { c.HeaderProcessors = []HeaderProcessor{nopHeaderProcessor{}} }).canStream() {
		t.Error("header processors fell off the streaming path")
	}
	if !mk(func(c *ServerConfig) {
		c.EntryInterceptors = []EntryInterceptor{func(e *xmldom.Element, _ *EntryInfo) (*xmldom.Element, *soap.Fault) {
			return nil, nil
		}}
	}).canStream() {
		t.Error("entry interceptors fell off the streaming path")
	}
	passthrough := func(env *soap.Envelope, info *RequestInfo, next Dispatcher) (*soap.Envelope, *soap.Fault) {
		return next(env)
	}
	if mk(func(c *ServerConfig) { c.Interceptors = []Interceptor{passthrough} }).canStream() {
		t.Error("whole-envelope interceptors did not disable streaming")
	}
	if mk(func(c *ServerConfig) { c.BufferedDispatch = true }).canStream() {
		t.Error("BufferedDispatch did not disable streaming")
	}
}

type nopHeaderProcessor struct{}

func (nopHeaderProcessor) HeaderName() (string, string) { return "urn:nop", "nop" }
func (nopHeaderProcessor) ProcessHeader(_ *xmldom.Element, _ []byte) error {
	return nil
}

// TestStreamArenaIsolationE2E is the end-to-end leak check: many sequential
// and concurrent packed requests with distinct payloads over one server,
// every response carrying exactly its own request's values. Arena recycling
// between (and during) requests must never bleed one request's strings into
// another's response. Run with -race to catch pool misuse.
func TestStreamArenaIsolationE2E(t *testing.T) {
	sys := newSystem(t, nil)
	if !sys.server.canStream() {
		t.Fatal("test system not on the streaming path")
	}
	const rounds, width = 20, 8
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := sys.client.NewBatch()
				var calls []*Call
				for i := 0; i < width; i++ {
					payload := fmt.Sprintf("worker%d-round%d-item%d", g, r, i)
					calls = append(calls, batch.Add("Echo", "echo", soapenc.F("v", payload)))
				}
				if err := batch.Send(); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				for i, c := range calls {
					res, err := c.Wait()
					if err != nil {
						t.Errorf("call: %v", err)
						return
					}
					want := fmt.Sprintf("worker%d-round%d-item%d", g, r, i)
					if len(res) != 1 || !soapenc.Equal(res[0].Value, want) {
						t.Errorf("echo returned %v, want %q", res, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := sys.server.Stats(); st.PackedMessages == 0 {
		t.Error("no packed messages recorded — fast path untested")
	}
}

// TestStreamMalformedTailFault checks response parity on documents whose
// envelope breaks after well-formed packed entries: the client still sees
// the buffered path's whole-message malformed-envelope fault.
func TestStreamMalformedTailFault(t *testing.T) {
	sys := newSystem(t, nil)
	pack := `<spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:id="0" spi:service="Echo"><v xsi:type="xsd:string">x</v></m:echo>` +
		`</spi:Parallel_Method>`
	for _, doc := range []string{
		// Header after Body.
		testEnv11 + `<SOAP-ENV:Body>` + pack + `</SOAP-ENV:Body><SOAP-ENV:Header/></SOAP-ENV:Envelope>`,
		// Mismatched end tag after the pack.
		testEnv11 + `<SOAP-ENV:Body>` + pack + `</SOAP-ENV:Wrong></SOAP-ENV:Envelope>`,
		// Truncated document.
		testEnv11 + `<SOAP-ENV:Body>` + pack,
	} {
		status, env := postRaw(t, sys, doc)
		if status != 500 {
			t.Errorf("status = %d, want 500 for %s", status, doc)
		}
		f := env.Fault()
		if f == nil || f.Code != soap.FaultClient || !strings.Contains(f.String, "malformed envelope") {
			t.Errorf("fault = %+v for %s", f, doc)
		}
	}
}

// TestStreamExtraBodyEntryFault checks the count-parity error: a packed
// entry followed by a second body entry yields the buffered path's
// "expected exactly one body entry" fault.
func TestStreamExtraBodyEntryFault(t *testing.T) {
	sys := newSystem(t, nil)
	doc := testEnv11 + `<SOAP-ENV:Body>` +
		`<spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
		`<m:echo xmlns:m="urn:spi:Echo" spi:id="0" spi:service="Echo"/>` +
		`</spi:Parallel_Method>` +
		`<m:extra xmlns:m="urn:spi:Echo"/>` +
		`</SOAP-ENV:Body></SOAP-ENV:Envelope>`
	status, env := postRaw(t, sys, doc)
	if status != 500 {
		t.Errorf("status = %d, want 500", status)
	}
	f := env.Fault()
	if f == nil || f.Code != soap.FaultClient || !strings.Contains(f.String, "expected exactly one body entry, got 2") {
		t.Errorf("fault = %+v", f)
	}
}

// TestStreamCoupledPacked runs the streaming path in coupled mode, where
// entries execute serially on the protocol thread as they are decoded.
func TestStreamCoupledPacked(t *testing.T) {
	sys := newSystem(t, func(s *ServerConfig, c *ClientConfig) { s.Coupled = true })
	if !sys.server.canStream() {
		t.Fatal("coupled system should still stream")
	}
	batch := sys.client.NewBatch()
	c1 := batch.Add("Echo", "echo", soapenc.F("a", "1"))
	c2 := batch.Add("Echo", "fail")
	c3 := batch.Add("Echo", "echo", soapenc.F("b", "2"))
	if err := batch.Send(); err != nil {
		t.Fatal(err)
	}
	if res, err := c1.Wait(); err != nil || !soapenc.Equal(res[0].Value, "1") {
		t.Errorf("c1 = %v %v", res, err)
	}
	if _, err := c2.Wait(); err == nil {
		t.Error("c2 should fault")
	}
	if res, err := c3.Wait(); err != nil || !soapenc.Equal(res[0].Value, "2") {
		t.Errorf("c3 = %v %v", res, err)
	}
}
