package core

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/wsse"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// This file is the differential suite for the unified fast path: every
// feature combination that used to force buffered dispatch now streams, and
// the only acceptable difference from an explicit BufferedDispatch server is
// none at all — responses must match byte for byte, across WSSE, the
// per-entry differential cache, entry interceptors, both SOAP versions, and
// single, packed and fault-producing bodies.

// parityFeatures is one cell of the server-feature matrix.
type parityFeatures struct {
	name  string
	wsse  bool
	diff  bool
	entry bool
}

var parityMatrix = []parityFeatures{
	{name: "bare"},
	{name: "diff", diff: true},
	{name: "wsse", wsse: true},
	{name: "entry-ic", entry: true},
	{name: "wsse-diff", wsse: true, diff: true},
	{name: "wsse-diff-entry", wsse: true, diff: true, entry: true},
}

var paritySecret = []byte("parity-shared-secret")

// parityEntryInterceptors: one rejecting hook and one rewriting hook, both
// deterministic so streamed and buffered dispatch see identical behaviour.
func parityEntryInterceptors() []EntryInterceptor {
	deny := func(entry *xmldom.Element, info *EntryInfo) (*xmldom.Element, *soap.Fault) {
		if entry.Name.Local == "deny" {
			return nil, soap.ClientFault("denied by interceptor")
		}
		return nil, nil
	}
	rewrite := func(entry *xmldom.Element, info *EntryInfo) (*xmldom.Element, *soap.Fault) {
		for _, c := range entry.ChildElements() {
			if c.Name.Local == "data" && c.Text() == "rewrite-me" {
				repl := entry.Clone()
				for _, rc := range repl.ChildElements() {
					if rc.Name.Local == "data" {
						rc.SetText("rewritten")
					}
				}
				return repl, nil
			}
		}
		return nil, nil
	}
	return []EntryInterceptor{deny, rewrite}
}

func parityConfig(f parityFeatures, buffered bool) func(*ServerConfig, *ClientConfig) {
	return func(s *ServerConfig, c *ClientConfig) {
		s.BufferedDispatch = buffered
		s.DifferentialDeserialization = f.diff
		if f.wsse {
			s.HeaderProcessors = []HeaderProcessor{&wsse.Verifier{
				Secrets: map[string][]byte{"alice": paritySecret},
			}}
		}
		if f.entry {
			s.EntryInterceptors = parityEntryInterceptors()
		}
	}
}

// parityEcho builds <m:op xmlns:m="urn:spi:Echo"><data ...>text</data></m:op>.
func parityEcho(t *testing.T, op, text string) *xmldom.Element {
	t.Helper()
	el, err := encodeRequestElement("urn:spi:Echo", op, []soapenc.Field{soapenc.F("data", text)})
	if err != nil {
		t.Fatal(err)
	}
	return el
}

// parityPacked wraps entries into a Parallel_Method with spi:id/spi:service.
func parityPacked(entries ...*xmldom.Element) *xmldom.Element {
	pm := xmldom.NewElement(xmltext.Name{Prefix: PrefixPack, Local: ElemParallelMethod})
	pm.DeclareNamespace(PrefixPack, NSPack)
	for i, e := range entries {
		e.SetAttr(attrID, strconv.Itoa(i))
		e.SetAttr(attrService, "Echo")
		pm.AddChild(e)
	}
	return pm
}

// parityDoc serializes a request document, signing it when sign is set. The
// signature covers canonicalBody — the same bytes the wire carries, which
// is exactly what the streaming server verifies from its raw spans.
func parityDoc(t *testing.T, v soap.Version, sign bool, body ...*xmldom.Element) []byte {
	t.Helper()
	env := soap.New()
	env.Version = v
	env.Body = body
	if sign {
		signer := &wsse.Signer{Username: "alice", Secret: paritySecret}
		blocks, err := signer.MakeHeaders(canonicalBody(env))
		if err != nil {
			t.Fatal(err)
		}
		env.Header = blocks
	}
	enc := soap.NewStreamEncoder()
	doc, err := enc.EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), doc...)
	enc.Release()
	return out
}

func TestUnifiedFastPathParity(t *testing.T) {
	for _, f := range parityMatrix {
		f := f
		t.Run(f.name, func(t *testing.T) {
			streamed := newSystem(t, parityConfig(f, false))
			buffered := newSystem(t, parityConfig(f, true))
			if !streamed.server.canStream() {
				t.Fatalf("%s: server fell off the streaming path", f.name)
			}
			if buffered.server.canStream() {
				t.Fatal("BufferedDispatch server still streams")
			}

			for _, v := range []soap.Version{soap.V11, soap.V12} {
				// Each case builds the body fresh per round so signatures
				// (nonces) regenerate, while the entries themselves repeat —
				// round two exercises the differential cache's hit path.
				cases := []struct {
					name   string
					target string
					body   func(t *testing.T) []*xmldom.Element
				}{
					{"single", "/services/Echo", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityEcho(t, "echo", "hello & <world>")}
					}},
					{"single-fault", "/services/Echo", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityEcho(t, "fail", "x")}
					}},
					{"single-unknown-op", "/services/Echo", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityEcho(t, "noSuchOp", "x")}
					}},
					{"packed", "/services/", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityPacked(
							parityEcho(t, "echo", "one"),
							parityEcho(t, "echo", "two"),
							parityEcho(t, "slow", "three"),
						)}
					}},
					{"packed-item-faults", "/services/", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityPacked(
							parityEcho(t, "echo", "ok"),
							parityEcho(t, "fail", "boom"),
							parityEcho(t, "noSuchOp", "x"),
						)}
					}},
					{"packed-empty", "/services/", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityPacked()}
					}},
					{"extra-body-entries", "/services/Echo", func(t *testing.T) []*xmldom.Element {
						return []*xmldom.Element{parityEcho(t, "echo", "a"), parityEcho(t, "echo", "b")}
					}},
				}
				if f.entry {
					cases = append(cases,
						struct {
							name   string
							target string
							body   func(t *testing.T) []*xmldom.Element
						}{"packed-denied-entry", "/services/", func(t *testing.T) []*xmldom.Element {
							return []*xmldom.Element{parityPacked(
								parityEcho(t, "echo", "fine"),
								parityEcho(t, "deny", "nope"),
							)}
						}},
						struct {
							name   string
							target string
							body   func(t *testing.T) []*xmldom.Element
						}{"packed-rewritten-entry", "/services/", func(t *testing.T) []*xmldom.Element {
							return []*xmldom.Element{parityPacked(
								parityEcho(t, "echo", "rewrite-me"),
							)}
						}},
					)
				}
				for _, tc := range cases {
					name := fmt.Sprintf("%v/%s", v, tc.name)
					for round := 0; round < 2; round++ {
						doc := parityDoc(t, v, f.wsse, tc.body(t)...)
						sCode, sBody := postDoc(t, streamed, tc.target, v, doc)
						bCode, bBody := postDoc(t, buffered, tc.target, v, doc)
						if sCode != bCode {
							t.Errorf("%s round %d: status streamed %d buffered %d", name, round, sCode, bCode)
						}
						if !bytes.Equal(sBody, bBody) {
							t.Errorf("%s round %d: responses diverge\nstreamed: %s\nbuffered: %s",
								name, round, sBody, bBody)
						}
					}
				}
			}
		})
	}
}

// TestStreamedWSSERejectsTamper pins the security property of concurrent
// verification: a signed batch whose body was altered in flight must fail
// with the same fault on both paths, even though the streaming server may
// already have executed entries by the time the signature check lands.
func TestStreamedWSSERejectsTamper(t *testing.T) {
	for _, f := range []parityFeatures{
		{name: "wsse", wsse: true},
		{name: "wsse-diff", wsse: true, diff: true},
	} {
		f := f
		t.Run(f.name, func(t *testing.T) {
			streamed := newSystem(t, parityConfig(f, false))
			buffered := newSystem(t, parityConfig(f, true))
			for _, build := range []func(t *testing.T) []*xmldom.Element{
				func(t *testing.T) []*xmldom.Element {
					return []*xmldom.Element{parityPacked(
						parityEcho(t, "echo", "tamper-target"),
						parityEcho(t, "echo", "bystander"),
					)}
				},
				func(t *testing.T) []*xmldom.Element {
					return []*xmldom.Element{parityEcho(t, "echo", "tamper-target")}
				},
			} {
				doc := parityDoc(t, soap.V11, true, build(t)...)
				tampered := bytes.Replace(doc, []byte("tamper-target"), []byte("tamper-forgery"), 1)
				if bytes.Equal(doc, tampered) {
					t.Fatal("tamper marker not found in document")
				}
				target := "/services/Echo"
				if bytes.Contains(doc, []byte(ElemParallelMethod)) {
					target = "/services/"
				}
				sCode, sBody := postDoc(t, streamed, target, soap.V11, tampered)
				bCode, bBody := postDoc(t, buffered, target, soap.V11, tampered)
				if sCode != bCode || !bytes.Equal(sBody, bBody) {
					t.Errorf("tampered responses diverge: streamed %d %s\nbuffered %d %s",
						sCode, sBody, bCode, bBody)
				}
				if !bytes.Contains(sBody, []byte("signature mismatch")) {
					t.Errorf("tampered request not rejected: %d %s", sCode, sBody)
				}
			}
		})
	}
}

// postDoc posts raw document bytes and returns the raw response.
func postDoc(t *testing.T, sys *system, target string, v soap.Version, doc []byte) (int, []byte) {
	t.Helper()
	resp, err := sys.client.http.Post(target, v.ContentType(), doc)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Body
}
