package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/soapenc"
	"repro/internal/trace"
)

// spansByStage indexes a snapshot for assertion convenience.
func spansByStage(spans []trace.Span) map[string][]trace.Span {
	out := make(map[string][]trace.Span)
	for _, s := range spans {
		out[s.Stage] = append(out[s.Stage], s)
	}
	return out
}

func TestTraceSingleCallFullPath(t *testing.T) {
	// One tracer shared by client and server: a single call must leave one
	// span at every hop of the request path, all under the same trace id.
	tr := trace.New(256)
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.Tracer = tr
		cc.Tracer = tr
	})
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "hi")); err != nil {
		t.Fatal(err)
	}
	byStage := spansByStage(tr.Snapshot())
	for _, stage := range []string{trace.StageClientPack, trace.StageClientSend,
		trace.StageProtocol, trace.StageDispatch, trace.StageApp,
		trace.StageAssemble, trace.StageClientUnpack} {
		if len(byStage[stage]) != 1 {
			t.Errorf("stage %s: %d spans, want 1", stage, len(byStage[stage]))
		}
	}
	var id uint64
	for _, spans := range byStage {
		for _, s := range spans {
			if s.Trace == 0 {
				t.Errorf("stage %s span has zero trace id", s.Stage)
			}
			if id == 0 {
				id = s.Trace
			} else if s.Trace != id {
				t.Errorf("stage %s span trace id %d, want %d (all hops share one id)", s.Stage, s.Trace, id)
			}
		}
	}
}

func TestTracePackedBatchSpans(t *testing.T) {
	// A packed batch of N calls: one span per hop for the envelope plus one
	// server.app span per packed request, each tagged with its spi:id and
	// carrying the queue-wait/service split.
	tr := trace.New(256)
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.Tracer = tr
		cc.Tracer = tr
	})
	b := sys.client.NewBatch()
	const n = 4
	for i := 0; i < n; i++ {
		b.Add("Echo", "slow")
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	byStage := spansByStage(tr.Snapshot())
	app := byStage[trace.StageApp]
	if len(app) != n {
		t.Fatalf("server.app spans = %d, want %d (one per packed request)", len(app), n)
	}
	seen := make(map[int]bool)
	for _, s := range app {
		if s.ID < 0 || s.ID >= n {
			t.Errorf("app span spi:id = %d, out of range [0,%d)", s.ID, n)
		}
		seen[s.ID] = true
		if s.Op != "Echo.slow" {
			t.Errorf("app span Op = %q, want Echo.slow", s.Op)
		}
		if s.Service < 15*time.Millisecond {
			t.Errorf("app span Service = %v, want >= ~20ms (the op sleeps)", s.Service)
		}
		if s.Queue < 0 {
			t.Errorf("app span Queue = %v, want >= 0", s.Queue)
		}
	}
	if len(seen) != n {
		t.Errorf("distinct spi:ids = %d, want %d", len(seen), n)
	}
	if got := len(byStage[trace.StageClientUnpack]); got != 1 {
		t.Errorf("client.unpack spans = %d, want 1 (whole batch)", got)
	}
	if got := len(byStage[trace.StageDispatch]); got != 1 {
		t.Errorf("server.dispatch spans = %d, want 1", got)
	}
	// The queue gauge was sampled during fan-out.
	found := false
	for _, g := range tr.Gauges() {
		if g.Name == "app.queue" {
			found = true
		}
	}
	if !found {
		t.Error("no app.queue gauge was recorded during packed dispatch")
	}
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	// The default configuration (no tracer) must work exactly as before and
	// emit no SPI-Trace header.
	sys := newSystem(t, nil)
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	var tr *trace.Tracer
	if tr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
}

func TestTraceServerOnlyBeginsOwnTrace(t *testing.T) {
	// Tracing only the server side: no SPI-Trace header arrives, so the
	// server starts a local trace and the server-side spans still correlate.
	tr := trace.New(256)
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.Tracer = tr
	})
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	byStage := spansByStage(tr.Snapshot())
	if len(byStage[trace.StageClientPack]) != 0 || len(byStage[trace.StageClientSend]) != 0 {
		t.Error("client spans recorded despite untraced client")
	}
	var id uint64
	for _, stage := range []string{trace.StageProtocol, trace.StageDispatch, trace.StageApp, trace.StageAssemble} {
		spans := byStage[stage]
		if len(spans) != 1 {
			t.Fatalf("stage %s: %d spans, want 1", stage, len(spans))
		}
		if spans[0].Trace == 0 {
			t.Errorf("stage %s: zero trace id, want server-local id", stage)
		}
		if id == 0 {
			id = spans[0].Trace
		} else if spans[0].Trace != id {
			t.Errorf("stage %s: trace id %d, want %d", stage, spans[0].Trace, id)
		}
	}
}

func TestDebugStatsEndpoint(t *testing.T) {
	tr := trace.New(256)
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.Tracer = tr
		cc.Tracer = tr
		sc.DebugEndpoints = true
	})
	if _, err := sys.client.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	hc := &httpx.Client{Dial: sys.link.Dial}
	defer hc.Close()
	resp, err := hc.Do(httpx.NewRequest("GET", "/spi/stats", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET /spi/stats: HTTP %d: %s", resp.StatusCode, resp.Body)
	}
	var snap struct {
		Server struct {
			Envelopes int64
		} `json:"server"`
		Stages []struct {
			Stage string
			Spans int64
		} `json:"stages"`
	}
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, resp.Body)
	}
	if snap.Server.Envelopes < 1 {
		t.Errorf("Envelopes = %d, want >= 1", snap.Server.Envelopes)
	}
	hasApp := false
	for _, s := range snap.Stages {
		if s.Stage == trace.StageApp && s.Spans >= 1 {
			hasApp = true
		}
	}
	if !hasApp {
		t.Errorf("stats carried no server.app stage summary: %s", resp.Body)
	}
}

func TestDebugPprofEndpoint(t *testing.T) {
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.DebugEndpoints = true
	})
	hc := &httpx.Client{Dial: sys.link.Dial}
	defer hc.Close()
	resp, err := hc.Do(httpx.NewRequest("GET", "/spi/pprof/goroutine", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET /spi/pprof/goroutine: HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(string(resp.Body), "goroutine") {
		t.Errorf("profile body does not mention goroutines: %.120s", resp.Body)
	}
	if resp, err = hc.Do(httpx.NewRequest("GET", "/spi/pprof/nonsense", nil)); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != 404 {
		t.Errorf("unknown profile: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestDebugEndpointsOffByDefault(t *testing.T) {
	sys := newSystem(t, nil)
	hc := &httpx.Client{Dial: sys.link.Dial}
	defer hc.Close()
	resp, err := hc.Do(httpx.NewRequest("GET", "/spi/stats", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("debug endpoint reachable without DebugEndpoints: HTTP %d", resp.StatusCode)
	}
}
