package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// Transport-tier tests: HTTP/1.1 pipelining through the full SOAP stack.
//
// The differential pin below is the transport analogue of the golden
// suite: a pipelined burst of SOAP exchanges — successes and faults, both
// SOAP versions — must produce byte-for-byte the responses a serial
// keep-alive connection sees, in request order.

// soapRequestBody encodes a single-call request envelope for op on Echo.
func soapRequestBody(t *testing.T, v soap.Version, op string, params ...soapenc.Field) []byte {
	t.Helper()
	env := soap.New()
	env.Version = v
	el, err := encodeRequestElement("urn:spi:Echo", op, params)
	if err != nil {
		t.Fatal(err)
	}
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rawSOAPRequest frames one POST /services/Echo request for the wire.
func rawSOAPRequest(v soap.Version, body []byte) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "POST /services/Echo HTTP/1.1\r\nContent-Type: %s\r\nSOAPAction: \"\"\r\nContent-Length: %d\r\n\r\n",
		v.ContentType(), len(body))
	buf.Write(body)
	return buf.Bytes()
}

// copyRawResponse copies one Content-Length-framed response verbatim.
func copyRawResponse(br *bufio.Reader, w *bytes.Buffer) error {
	contentLen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		w.WriteString(line)
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(trimmed, "Content-Length: "); ok {
			fmt.Sscanf(v, "%d", &contentLen)
		}
	}
	if contentLen < 0 {
		return fmt.Errorf("response without Content-Length")
	}
	body := make([]byte, contentLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return err
	}
	w.Write(body)
	return nil
}

func newTransportServer(t *testing.T, window int) *netsim.Link {
	t.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Container: newEchoContainer(t), AppWorkers: 8, AppQueue: 64,
		PipelineWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); link.Close() })
	return link
}

func TestPipelinedSOAPMatchesSerial(t *testing.T) {
	// The exchange mix: successes interleaved with faults (an always-faulting
	// op and an unknown one), in both SOAP versions, so fault ordering under
	// pipelining is pinned too.
	type call struct {
		v  soap.Version
		op string
		ps []soapenc.Field
	}
	calls := []call{
		{soap.V11, "echo", []soapenc.Field{soapenc.F("msg", "one")}},
		{soap.V11, "fail", nil},
		{soap.V12, "echo", []soapenc.Field{soapenc.F("msg", "two")}},
		{soap.V12, "fail", nil},
		{soap.V11, "nosuchop", nil},
		{soap.V12, "echo", []soapenc.Field{soapenc.F("msg", strings.Repeat("x", 1024))}},
		{soap.V12, "nosuchop", nil},
		{soap.V11, "echo", []soapenc.Field{soapenc.F("msg", "last")}},
	}
	var reqs [][]byte
	for _, c := range calls {
		reqs = append(reqs, rawSOAPRequest(c.v, soapRequestBody(t, c.v, c.op, c.ps...)))
	}

	// Serial keep-alive: one exchange at a time.
	serialLink := newTransportServer(t, 0)
	sconn, err := serialLink.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer sconn.Close()
	sbr := bufio.NewReader(sconn)
	var serial bytes.Buffer
	for i, raw := range reqs {
		if _, err := sconn.Write(raw); err != nil {
			t.Fatalf("serial write %d: %v", i, err)
		}
		if err := copyRawResponse(sbr, &serial); err != nil {
			t.Fatalf("serial read %d: %v", i, err)
		}
	}

	// Pipelined: the entire burst up front.
	pipeLink := newTransportServer(t, 4)
	pconn, err := pipeLink.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	var burst bytes.Buffer
	for _, raw := range reqs {
		burst.Write(raw)
	}
	if _, err := pconn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	pbr := bufio.NewReader(pconn)
	var pipelined bytes.Buffer
	for i := range reqs {
		if err := copyRawResponse(pbr, &pipelined); err != nil {
			t.Fatalf("pipelined read %d: %v", i, err)
		}
	}

	if !bytes.Equal(serial.Bytes(), pipelined.Bytes()) {
		t.Fatalf("pipelined SOAP responses diverged from serial keep-alive\nserial:\n%s\npipelined:\n%s",
			serial.Bytes(), pipelined.Bytes())
	}
}

// TestPipelinedClientSOAP: the core client with Pipeline on completes
// concurrent calls against a pipelining server, each reply matched to its
// caller.
func TestPipelinedClientSOAP(t *testing.T) {
	sys := newSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.PipelineWindow = 8
		cc.Pipeline = true
		cc.PipelineWindow = 8
	})
	const n = 32
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			msg := fmt.Sprintf("pipelined-%d", i)
			results, err := sys.client.Call("Echo", "echo", soapenc.F("msg", msg))
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if len(results) != 1 || !soapenc.Equal(results[0].Value, msg) {
				errs <- fmt.Errorf("call %d: results = %v, want %q", i, results, msg)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWheelWatchdogFaultText pins the Server.Timeout fault text produced
// when the wheel-backed operation watchdog expires: byte-identical to the
// old per-request context.WithTimeout path.
func TestWheelWatchdogFaultText(t *testing.T) {
	sys, _ := newResilienceSystem(t, func(sc *ServerConfig, cc *ClientConfig) {
		sc.OperationTimeout = 30 * time.Millisecond
	})
	_, err := sys.client.Call("Echo", "park")
	var f *soap.Fault
	if !IsTimeoutFault(err) || !soapFaultAs(err, &f) {
		t.Fatalf("err = %v, want Server.Timeout fault", err)
	}
	if want := "operation Echo.park exceeded its deadline"; f.String != want {
		t.Fatalf("fault text = %q, want %q (wheel watchdog changed the pinned text)", f.String, want)
	}
}

func soapFaultAs(err error, f **soap.Fault) bool {
	for err != nil {
		if sf, ok := err.(*soap.Fault); ok {
			*f = sf
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
