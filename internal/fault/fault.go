// Package fault is the error core of the SPI stack: a small
// Failure/Defect/Interrupt taxonomy with errors.Is/As interop, append-only
// context fields and opt-in stack capture. Producers construct taxonomy
// values; the mapping to SOAP faultcode/faultstring pairs lives in exactly
// two places — ToSOAP (encode) and Classify (decode) in wire.go — so no
// other package ever owns a fault-code string. Policy predicates
// (retry, failover, breaker ejection) become errors.Is checks:
//
//	if errors.Is(err, fault.Retryable) { ... }
//
// instead of substring or code-literal matches, which is the refactor the
// ROADMAP's error-core item calls for.
package fault

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
)

// Code enumerates the taxonomy. The zero value is the application-fault
// carrier: a fault that belongs to the application protocol, carried
// verbatim with whatever wire code the application chose.
type Code uint8

const (
	// CodeApp carries an application-level fault verbatim (the handler's
	// own error, or an unrecognized code classified off the wire).
	CodeApp Code = iota
	// CodeTimeout marks work abandoned because a deadline expired — an
	// unfinished packed entry, or an operation that overran the server's
	// per-operation watchdog.
	CodeTimeout
	// CodeCancelled marks work abandoned because the caller disconnected
	// or its propagated context was cancelled before any deadline expired.
	CodeCancelled
	// CodeBusy marks overload observed at the server without further
	// refinement (and is what Server.Busy classifies back to).
	CodeBusy
	// CodeAdmissionShed marks a request shed at admission: the application
	// stage queue stayed full past the admission timeout, so the operation
	// never started.
	CodeAdmissionShed
	// CodeUpstreamUnavailable marks a gateway that could not place work on
	// any backend: dials refused, breakers open, failover exhausted.
	CodeUpstreamUnavailable
	// CodeProtocol marks a message the receiver rejected before dispatch:
	// malformed envelope, version mismatch, mustUnderstand miss, header
	// verification failure.
	CodeProtocol
	numCodes
)

// String returns the canonical taxonomy name (not the wire code).
func (c Code) String() string {
	switch c {
	case CodeTimeout:
		return "timeout"
	case CodeCancelled:
		return "cancelled"
	case CodeBusy:
		return "busy"
	case CodeAdmissionShed:
		return "admission-shed"
	case CodeUpstreamUnavailable:
		return "upstream-unavailable"
	case CodeProtocol:
		return "protocol"
	default:
		return "app"
	}
}

// Class partitions the taxonomy the Failure/Defect/Interrupt way: Failures
// are expected operational outcomes a caller plans around, Defects are
// bugs or bad messages, Interrupts are work stopped by the clock or the
// caller rather than by its own outcome.
type Class uint8

const (
	// ClassFailure: expected operational failure (overload, upstream
	// unavailable, the application's own declared faults).
	ClassFailure Class = iota
	// ClassDefect: the message or the program is wrong (protocol
	// rejects).
	ClassDefect
	// ClassInterrupt: the clock or the caller stopped the work (timeout,
	// cancellation).
	ClassInterrupt
)

// ClassOf maps a taxonomy code to its class.
func ClassOf(c Code) Class {
	switch c {
	case CodeTimeout, CodeCancelled:
		return ClassInterrupt
	case CodeProtocol:
		return ClassDefect
	default:
		return ClassFailure
	}
}

// sentinel is the target type behind the package's errors.Is markers.
type sentinel struct{ name string }

func (s *sentinel) Error() string { return "fault: " + s.name }

// Sentinels for errors.Is. Code sentinels match one taxonomy value each;
// Retryable matches every code whose operation is known not to have
// started (safe to re-send regardless of idempotency); the class
// sentinels match whole Failure/Defect/Interrupt partitions.
var (
	Timeout             = &sentinel{"timeout"}
	Cancelled           = &sentinel{"cancelled"}
	Busy                = &sentinel{"busy"}
	AdmissionShed       = &sentinel{"admission-shed"}
	UpstreamUnavailable = &sentinel{"upstream-unavailable"}
	Protocol            = &sentinel{"protocol"}
	App                 = &sentinel{"app"}
	Retryable           = &sentinel{"retryable"}
	Failure             = &sentinel{"failure"}
	Defect              = &sentinel{"defect"}
	Interrupt           = &sentinel{"interrupt"}
)

// Field is one appended key/value context pair (op, spi:id, backend,
// tenant, ...). Fields never serialize on the production wire — ToSOAP
// drops them; ToSOAPDetail carries them in a detail element for channels
// that opt in.
type Field struct {
	Key   string
	Value string
}

// Canonical context field keys.
const (
	KeyOp      = "op"
	KeyID      = "spi:id"
	KeyBackend = "backend"
	KeyTenant  = "tenant"
)

// F is a taxonomy-typed fault. Construct with New/Newf or the per-code
// helpers, append context with With, and convert at the envelope edge
// with ToSOAP/Classify.
type F struct {
	code Code
	text string
	// wire is the verbatim SOAP fault code for CodeApp and CodeProtocol
	// carriers; empty means the code's canonical mapping applies.
	wire   string
	actor  string
	fields []Field
	stack  []uintptr
	cause  error
}

// New returns a fault of the given taxonomy code with a literal text.
func New(code Code, text string) *F {
	f := &F{code: code, text: text}
	f.capture()
	return f
}

// Newf returns a fault of the given taxonomy code with a formatted text.
func Newf(code Code, format string, args ...any) *F {
	return New(code, fmt.Sprintf(format, args...))
}

// Timeoutf builds a CodeTimeout fault.
func Timeoutf(format string, args ...any) *F { return Newf(CodeTimeout, format, args...) }

// Cancelledf builds a CodeCancelled fault.
func Cancelledf(format string, args ...any) *F { return Newf(CodeCancelled, format, args...) }

// Busyf builds a CodeBusy fault.
func Busyf(format string, args ...any) *F { return Newf(CodeBusy, format, args...) }

// Shedf builds a CodeAdmissionShed fault.
func Shedf(format string, args ...any) *F { return Newf(CodeAdmissionShed, format, args...) }

// Upstreamf builds a CodeUpstreamUnavailable fault.
func Upstreamf(format string, args ...any) *F { return Newf(CodeUpstreamUnavailable, format, args...) }

// Protocolf builds a CodeProtocol fault carried with the given verbatim
// wire code ("Client", "VersionMismatch", "MustUnderstand").
func Protocolf(wireCode, format string, args ...any) *F {
	f := Newf(CodeProtocol, format, args...)
	f.wire = wireCode
	return f
}

// Appf builds a CodeApp carrier with the given verbatim wire code.
func Appf(wireCode, format string, args ...any) *F {
	f := Newf(CodeApp, format, args...)
	f.wire = wireCode
	return f
}

// Code returns the taxonomy code.
func (f *F) Code() Code { return f.code }

// Text returns the human-readable fault text — exactly the faultstring
// the wire carries.
func (f *F) Text() string { return f.text }

// Actor returns the faulting node, when set.
func (f *F) Actor() string { return f.actor }

// WithActor sets the faulting node and returns f.
func (f *F) WithActor(actor string) *F {
	f.actor = actor
	return f
}

// With appends one context field and returns f. Fields are append-only:
// nothing ever rewrites or removes an earlier pair, so a fault annotated
// at several layers keeps the full trail in order.
func (f *F) With(key, value string) *F {
	f.fields = append(f.fields, Field{Key: key, Value: value})
	return f
}

// Fields returns the appended context fields in append order. The slice
// is shared; callers must not mutate it.
func (f *F) Fields() []Field { return f.fields }

// Field returns the value of the last field appended under key.
func (f *F) Field(key string) (string, bool) {
	for i := len(f.fields) - 1; i >= 0; i-- {
		if f.fields[i].Key == key {
			return f.fields[i].Value, true
		}
	}
	return "", false
}

// Error implements the error interface. A fault classified off the wire
// reports its underlying SOAP fault's text verbatim, so wrapping changes
// nothing a caller can observe; a locally constructed fault reports the
// same "soap fault <code>: <text>" shape it will have once encoded.
func (f *F) Error() string {
	if f.cause != nil {
		return f.cause.Error()
	}
	return "soap fault " + WireCode(f) + ": " + f.text
}

// Unwrap exposes the cause (the *soap.Fault a wire classification
// wrapped, if any) to errors.Is/As.
func (f *F) Unwrap() error { return f.cause }

// Is implements the errors.Is protocol against the package sentinels.
func (f *F) Is(target error) bool {
	s, ok := target.(*sentinel)
	if !ok {
		return false
	}
	switch s {
	case Timeout:
		return f.code == CodeTimeout
	case Cancelled:
		return f.code == CodeCancelled
	case Busy:
		return f.code == CodeBusy
	case AdmissionShed:
		return f.code == CodeAdmissionShed
	case UpstreamUnavailable:
		return f.code == CodeUpstreamUnavailable
	case Protocol:
		return f.code == CodeProtocol
	case App:
		return f.code == CodeApp
	case Retryable:
		// The operation never started: admission shed, no backend placed
		// the work, or the server said "busy" without refinement.
		return f.code == CodeBusy || f.code == CodeAdmissionShed || f.code == CodeUpstreamUnavailable
	case Failure:
		return ClassOf(f.code) == ClassFailure
	case Defect:
		return ClassOf(f.code) == ClassDefect
	case Interrupt:
		return ClassOf(f.code) == ClassInterrupt
	}
	return false
}

// captureStacks gates stack collection in constructors. Off by default:
// fault construction sits on the degradation hot path (a 64-entry packed
// message can mint 64 timeout faults at one deadline).
var captureStacks atomic.Bool

// SetStackCapture toggles stack capture for subsequently constructed
// faults and returns the previous setting.
func SetStackCapture(on bool) bool { return captureStacks.Swap(on) }

func (f *F) capture() {
	if !captureStacks.Load() {
		return
	}
	var pcs [32]uintptr
	// Skip runtime.Callers, capture, and the constructor frame.
	n := runtime.Callers(3, pcs[:])
	f.stack = append([]uintptr(nil), pcs[:n]...)
}

// Stack formats the captured construction stack, or "" when capture was
// off.
func (f *F) Stack() string {
	if len(f.stack) == 0 {
		return ""
	}
	var b strings.Builder
	frames := runtime.CallersFrames(f.stack)
	for {
		fr, more := frames.Next()
		fmt.Fprintf(&b, "%s\n\t%s:%d\n", fr.Function, fr.File, fr.Line)
		if !more {
			break
		}
	}
	return b.String()
}
