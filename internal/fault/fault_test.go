package fault

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/soap"
)

func TestSentinelIdentity(t *testing.T) {
	for _, tc := range []struct {
		f    *F
		yes  []error
		no   []error
		wire string
	}{
		{Timeoutf("t"), []error{Timeout, Interrupt}, []error{Retryable, Busy, Failure}, WireTimeout},
		{Cancelledf("c"), []error{Cancelled, Interrupt}, []error{Retryable, Timeout}, WireCancelled},
		{Busyf("b"), []error{Busy, Retryable, Failure}, []error{Timeout, AdmissionShed}, WireBusy},
		{Shedf("s"), []error{AdmissionShed, Retryable, Failure}, []error{Busy, Interrupt}, WireBusy},
		{Upstreamf("u"), []error{UpstreamUnavailable, Retryable, Failure}, []error{Busy, Defect}, WireBusy},
		{Protocolf(soap.FaultClient, "p"), []error{Protocol, Defect}, []error{Retryable, App}, soap.FaultClient},
		{Appf(soap.FaultServer, "a"), []error{App, Failure}, []error{Retryable, Protocol}, soap.FaultServer},
	} {
		for _, target := range tc.yes {
			if !errors.Is(tc.f, target) {
				t.Errorf("%s: errors.Is(%v) = false, want true", tc.f.Code(), target)
			}
		}
		for _, target := range tc.no {
			if errors.Is(tc.f, target) {
				t.Errorf("%s: errors.Is(%v) = true, want false", tc.f.Code(), target)
			}
		}
		if got := WireCode(tc.f); got != tc.wire {
			t.Errorf("%s: WireCode = %q, want %q", tc.f.Code(), got, tc.wire)
		}
	}
}

func TestFieldsAppendOnly(t *testing.T) {
	f := Timeoutf("deadline expired").With(KeyOp, "Echo.park").With(KeyID, "3")
	f.With(KeyOp, "Echo.repark") // later layers append, never rewrite
	fields := f.Fields()
	if len(fields) != 3 {
		t.Fatalf("fields = %v, want 3 entries", fields)
	}
	if fields[0] != (Field{KeyOp, "Echo.park"}) || fields[2] != (Field{KeyOp, "Echo.repark"}) {
		t.Errorf("append order violated: %v", fields)
	}
	// Field reads the most recent value for a key.
	if v, ok := f.Field(KeyOp); !ok || v != "Echo.repark" {
		t.Errorf("Field(op) = %q, %v", v, ok)
	}
	if _, ok := f.Field(KeyBackend); ok {
		t.Error("Field(backend) found a value that was never appended")
	}
}

func TestClassifyWire(t *testing.T) {
	for _, tc := range []struct {
		code string
		want Code
	}{
		{WireTimeout, CodeTimeout},
		{WireBusy, CodeBusy},
		{WireCancelled, CodeCancelled},
		{soap.FaultClient, CodeProtocol},
		{soap.FaultVersionMismatch, CodeProtocol},
		{soap.FaultMustUnderstand, CodeProtocol},
		{soap.FaultServer, CodeApp},
		{"urn:custom", CodeApp},
	} {
		sf := &soap.Fault{Code: tc.code, String: "text"}
		f := Classify(sf)
		if f.Code() != tc.want {
			t.Errorf("Classify(%q).Code = %v, want %v", tc.code, f.Code(), tc.want)
		}
		// The wrapper is transparent: same error text, *soap.Fault still
		// reachable, and re-encoding reproduces the same wire code.
		if f.Error() != sf.Error() {
			t.Errorf("Classify(%q).Error changed: %q != %q", tc.code, f.Error(), sf.Error())
		}
		var out *soap.Fault
		if !errors.As(f, &out) || out != sf {
			t.Errorf("Classify(%q) hides the soap fault from errors.As", tc.code)
		}
		if got := WireCode(f); got != tc.code {
			t.Errorf("WireCode(Classify(%q)) = %q (classification must not rewrite the wire)", tc.code, got)
		}
	}
}

func TestClassifyError(t *testing.T) {
	sf := &soap.Fault{Code: WireBusy, String: "queue full"}
	wrapped := fmt.Errorf("exchange: %w", sf)
	f := ClassifyError(wrapped)
	if f == nil || f.Code() != CodeBusy {
		t.Fatalf("ClassifyError(wrapped soap fault) = %v", f)
	}
	if !errors.Is(f, Retryable) {
		t.Error("busy fault not retryable")
	}
	direct := Shedf("shed")
	if got := ClassifyError(fmt.Errorf("outer: %w", direct)); got != direct {
		t.Errorf("ClassifyError did not return the chain's own *F")
	}
	if ClassifyError(errors.New("connection reset")) != nil {
		t.Error("transport error classified as a fault")
	}
	if ClassifyError(nil) != nil {
		t.Error("nil error classified as a fault")
	}
}

func TestToSOAPDropsFields(t *testing.T) {
	// Production encoding must not leak context fields onto the wire: the
	// corpus goldens pin the bare faultcode/faultstring layout.
	f := Timeoutf("deadline expired before Echo.park finished").With(KeyOp, "Echo.park")
	sf := ToSOAP(f)
	if sf.Detail != nil {
		t.Fatal("ToSOAP carried fields into the detail element")
	}
	var buf bytes.Buffer
	if err := sf.EnvelopeFor(soap.V11).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "spi-fault-field") {
		t.Errorf("wire bytes leak context fields: %s", buf.Bytes())
	}
}

func TestStackCaptureOptIn(t *testing.T) {
	if f := Timeoutf("no stacks by default"); f.Stack() != "" {
		t.Error("stack captured with capture off")
	}
	prev := SetStackCapture(true)
	defer SetStackCapture(prev)
	f := Busyf("with stacks")
	if !strings.Contains(f.Stack(), "TestStackCaptureOptIn") {
		t.Errorf("stack misses the construction frame:\n%s", f.Stack())
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Note(Timeoutf("t"))
	c.Note(Shedf("s"))      // collapses onto Server.Busy
	c.Note(Upstreamf("u"))  // likewise
	c.NoteSOAP(&soap.Fault{Code: WireBusy})
	c.NoteSOAP(&soap.Fault{Code: soap.FaultClient})
	c.NoteSOAP(&soap.Fault{Code: "Weird.Code"})
	c.NoteSOAP(nil)
	got := c.Snapshot()
	want := []CodeCount{
		{WireTimeout, 1}, {WireBusy, 3}, {soap.FaultClient, 1}, {"other", 1},
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
