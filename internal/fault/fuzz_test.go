package fault

import (
	"bytes"
	"errors"
	"testing"
	"unicode/utf8"

	"repro/internal/soap"
)

// FuzzFaultRoundTrip drives random taxonomy values with random context
// fields through the full envelope edge — ToSOAPDetail encode, a complete
// envelope serialization, soap.Decode, Classify — and asserts the
// properties the taxonomy promises: errors.Is identity survives the wire,
// the wire code is stable across a re-encode, and appended fields are
// preserved in order.
func FuzzFaultRoundTrip(f *testing.F) {
	f.Add(uint8(CodeTimeout), "deadline expired before Echo.park finished", "Echo.park", "3", false)
	f.Add(uint8(CodeAdmissionShed), "application stage queue full after 5ms admission wait", "", "", false)
	f.Add(uint8(CodeUpstreamUnavailable), "no backend available", "Echo.echo", "b2", true)
	f.Add(uint8(CodeProtocol), "malformed envelope", "k<&>\"'", "v]]>", true)
	f.Add(uint8(CodeApp), "deliberate failure", "tenant", "acme", false)
	f.Fuzz(func(t *testing.T, codeByte uint8, text, key, value string, v12 bool) {
		code := Code(codeByte % uint8(numCodes))
		if !utf8.ValidString(text) || !utf8.ValidString(key) || !utf8.ValidString(value) {
			t.Skip("codec contract covers UTF-8 documents")
		}
		// The XML text layer carries char data and attribute values, not
		// raw control bytes; stay inside what the tokenizer round-trips.
		for _, s := range []string{text, key, value} {
			for _, r := range s {
				if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
					t.Skip("control characters are not valid XML chars")
				}
			}
		}
		if key == "" {
			key = "k"
		}
		in := New(code, text).With(key, value).With(KeyOp, "Echo.op")
		version := soap.V11
		if v12 {
			version = soap.V12
		}

		var buf bytes.Buffer
		if err := ToSOAPDetail(in).EnvelopeFor(version).Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		env, err := soap.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of our own bytes: %v\n%s", err, buf.Bytes())
		}
		sf := env.Fault()
		if sf == nil {
			t.Fatalf("round-tripped envelope is not a fault:\n%s", buf.Bytes())
		}
		out := Classify(sf)

		// Wire-code identity: whatever we emitted classifies back to a
		// value that would emit the same code again.
		if WireCode(out) != WireCode(in) {
			t.Fatalf("wire code drifted: %q -> %q", WireCode(in), WireCode(out))
		}
		// errors.Is identity for every property the policy layer keys on.
		for _, s := range []*sentinel{Timeout, Cancelled, Busy, AdmissionShed,
			UpstreamUnavailable, Protocol, App, Retryable, Failure, Defect, Interrupt} {
			// Codes that collapse on the wire (shed/upstream -> Server.Busy)
			// classify back to the wire's taxonomy value; compare against
			// the classification of the emitted code, not the input.
			want := errors.Is(Classify(ToSOAP(in)), s)
			if got := errors.Is(out, s); got != want {
				t.Fatalf("errors.Is(%v) flipped across the wire: got %v want %v (code %v)", s, got, want, code)
			}
		}
		if out.Text() != text {
			t.Fatalf("fault text drifted: %q -> %q", text, out.Text())
		}
		// Field preservation, in append order.
		fields := out.Fields()
		if len(fields) != 2 {
			t.Fatalf("fields did not survive: %v", fields)
		}
		if fields[0] != (Field{key, value}) || fields[1] != (Field{KeyOp, "Echo.op"}) {
			t.Fatalf("fields drifted: %v", fields)
		}
	})
}
