package fault

import (
	"errors"
	"sync/atomic"

	"repro/internal/soap"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// The canonical dotted refinement codes. SOAP 1.1 faultcode values are
// QNames whose local part may be dotted for refinement (spec §4.4.1);
// these refine Server the way Axis-era stacks did. They are the only
// fault-code string literals in the tree — `make vet-faults` enforces
// that nothing outside this package (tests aside) spells them again.
const (
	WireTimeout   = "Server.Timeout"
	WireBusy      = "Server.Busy"
	WireCancelled = "Server.Cancelled"
)

// WireCode maps a taxonomy value to the SOAP fault code it serializes as.
// This switch and Classify's inverse are the entire taxonomy↔wire
// mapping; byte parity of every emitted fault is pinned by the
// fault-corpus goldens in internal/core and internal/gateway.
//
// The admission-shed and upstream-unavailable refinements deliberately
// collapse onto Server.Busy: both mean "the operation never started,
// re-send freely", and the wire contract predates the finer taxonomy.
func WireCode(f *F) string {
	switch f.code {
	case CodeTimeout:
		return WireTimeout
	case CodeCancelled:
		return WireCancelled
	case CodeBusy, CodeAdmissionShed, CodeUpstreamUnavailable:
		return WireBusy
	case CodeProtocol:
		if f.wire != "" {
			return f.wire
		}
		return soap.FaultClient
	default:
		if f.wire != "" {
			return f.wire
		}
		return soap.FaultServer
	}
}

// ToSOAP is the single encode site: taxonomy value → SOAP fault. Context
// fields are dropped — the production wire format carries only
// faultcode/faultstring(/faultactor), byte-identical to what the stack
// emitted before the taxonomy existed.
func ToSOAP(f *F) *soap.Fault {
	return &soap.Fault{Code: WireCode(f), String: f.text, Actor: f.actor}
}

// Detail markup for the opt-in context channel (ToSOAPDetail).
const (
	detailField = "spi-fault-field"
	detailKey   = "key"
)

// ToSOAPDetail is ToSOAP plus the context fields, carried as
// <spi-fault-field key="..">value</> children of the fault detail. No
// production emission site uses it — it exists for diagnostic channels
// and for FuzzFaultRoundTrip, which proves taxonomy identity and fields
// survive a full encode/parse/classify cycle.
func ToSOAPDetail(f *F) *soap.Fault {
	sf := ToSOAP(f)
	if len(f.fields) == 0 {
		return sf
	}
	// SOAP 1.1 parses the detail entry by the literal name "detail"; 1.2
	// re-wraps the children under env:Detail. Either way the children
	// round-trip.
	d := xmldom.NewElement(xmltext.Name{Local: "detail"})
	for _, fl := range f.fields {
		el := d.AddElement(xmltext.Name{Local: detailField})
		el.SetAttr(xmltext.Name{Local: detailKey}, fl.Key)
		el.SetText(fl.Value)
	}
	sf.Detail = d
	return sf
}

// Classify is the single decode site: SOAP fault → taxonomy value. The
// returned fault wraps sf (Unwrap exposes it), so errors.As against
// *soap.Fault and the error text both stay exactly what they were before
// classification.
func Classify(sf *soap.Fault) *F {
	f := &F{text: sf.String, actor: sf.Actor, cause: sf}
	switch sf.Code {
	case WireTimeout:
		f.code = CodeTimeout
	case WireBusy:
		f.code = CodeBusy
	case WireCancelled:
		f.code = CodeCancelled
	case soap.FaultClient, soap.FaultVersionMismatch, soap.FaultMustUnderstand:
		f.code = CodeProtocol
		f.wire = sf.Code
	default:
		f.code = CodeApp
		f.wire = sf.Code
	}
	if sf.Detail != nil {
		for _, el := range sf.Detail.ChildElements() {
			if el.Name.Local != detailField {
				continue
			}
			if key, ok := el.Attr(xmltext.Name{Local: detailKey}); ok {
				f.fields = append(f.fields, Field{Key: key, Value: el.Text()})
			}
		}
	}
	return f
}

// ClassifyError walks an error chain to a taxonomy value: a *F anywhere
// in the chain is returned as-is; otherwise a *soap.Fault in the chain is
// classified; otherwise nil (not a fault — a transport or context error).
func ClassifyError(err error) *F {
	var f *F
	if errors.As(err, &f) {
		return f
	}
	var sf *soap.Fault
	if errors.As(err, &sf) {
		return Classify(sf)
	}
	return nil
}

// wireSlot indexes Counters by emitted fault code.
type wireSlot uint8

const (
	slotTimeout wireSlot = iota
	slotBusy
	slotCancelled
	slotClient
	slotServer
	slotVersionMismatch
	slotMustUnderstand
	slotOther
	numSlots
)

// slotNames are the counter keys as they appear in /spi/stats, admin
// GetStats and the exporter: the wire fault codes themselves.
var slotNames = [numSlots]string{
	WireTimeout, WireBusy, WireCancelled,
	soap.FaultClient, soap.FaultServer,
	soap.FaultVersionMismatch, soap.FaultMustUnderstand,
	"other",
}

func slotOf(code string) wireSlot {
	switch code {
	case WireTimeout:
		return slotTimeout
	case WireBusy:
		return slotBusy
	case WireCancelled:
		return slotCancelled
	case soap.FaultClient:
		return slotClient
	case soap.FaultServer, "":
		return slotServer
	case soap.FaultVersionMismatch:
		return slotVersionMismatch
	case soap.FaultMustUnderstand:
		return slotMustUnderstand
	default:
		return slotOther
	}
}

// Counters tallies emitted faults per wire code. The zero value is ready
// to use and safe for concurrent access.
type Counters struct {
	slots [numSlots]atomic.Int64
}

// NoteSOAP records one emitted SOAP fault (whole-message or per-item).
func (c *Counters) NoteSOAP(sf *soap.Fault) {
	if sf == nil {
		return
	}
	c.slots[slotOf(sf.Code)].Add(1)
}

// Note records one taxonomy fault by its wire mapping.
func (c *Counters) Note(f *F) {
	if f == nil {
		return
	}
	c.slots[slotOf(WireCode(f))].Add(1)
}

// CodeCount is one per-fault-code tally.
type CodeCount struct {
	Code  string
	Count int64
}

// Snapshot returns the non-zero tallies in fixed wire-code order.
func (c *Counters) Snapshot() []CodeCount {
	var out []CodeCount
	for i := wireSlot(0); i < numSlots; i++ {
		if n := c.slots[i].Load(); n > 0 {
			out = append(out, CodeCount{Code: slotNames[i], Count: n})
		}
	}
	return out
}
