// Package gateway implements an SPI-aware scatter–gather front tier: it
// accepts packed envelopes, shards their Parallel_Method entries across a
// pool of backend SPI servers, and reassembles the replies into one packed
// response that is byte-identical to what a single direct server would
// have produced. This is the paper's dispatcher/assembler pair lifted one
// tier up — from threads on one machine to servers on a farm — with the
// application-aware twist that makes the intermediary useful: because the
// gateway understands the pack format, it splits work entry by entry
// instead of forwarding opaque blobs.
//
// The same awareness also runs in the opposite direction: with
// Config.Coalesce enabled, concurrent single-call envelopes from clients
// that never adopted the pack interface are merged into synthetic packed
// batches (see CoalesceConfig), dispatched through the identical
// scatter/failover machinery, and split back into per-client responses
// that are byte-identical to the uncoalesced path. Packing then becomes an
// infrastructure optimization instead of a client-side API choice.
//
// Construction is one call — New(Config{...}) — followed by Serve on a
// listener; see the package examples. docs/GATEWAY.md covers deployment,
// routing policies, failover semantics, and coalescer tuning.
package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admin"
	"repro/internal/httpx"
	"repro/internal/metrics"
)

// BackendConfig names and connects one backend SPI server.
type BackendConfig struct {
	// Name identifies the backend in stats and spans (default "backend<i>").
	Name string
	// Dial opens a connection to the backend. Required unless DialCtx is
	// set.
	Dial httpx.Dialer
	// DialCtx is the context-aware dialer; preferred over Dial so
	// deadline propagation covers connection establishment.
	DialCtx httpx.DialerCtx
	// Weight is the backend's routing weight under the Weighted policy
	// (default 1): a backend with weight 4 receives roughly four times the
	// entries of a weight-1 peer at equal load. It is also the fallback
	// effective weight while admin stats are missing or stale; once the
	// membership manager polls the backend, the weight the backend itself
	// advertises (Admin.SetState) takes precedence.
	Weight int
}

// effWeightScale is the fixed-point scale of backend.effWeight: effective
// weights carry three decimal places so the load-factor modulation keeps
// resolution without floating point on the assignment hot path.
const effWeightScale = 1000

// backend is one pool member: a keep-alive connection pool plus the
// passive-ejection circuit, the control-plane routing state, and counters.
type backend struct {
	index  int // unique for the gateway's lifetime, never reused
	name   string
	client *httpx.Client
	weight int64 // configured baseline (>= 1), immutable

	// effWeight is the live effective weight in effWeightScale fixed-point,
	// maintained by the membership manager (configured weight × load
	// factor). Zero means "never set": fall back to the configured weight.
	effWeight atomic.Int64
	// draining stops new shard assignment while in-flight work finishes.
	draining atomic.Bool

	inflight metrics.Gauge // sub-batches currently in flight
	// entriesInflight counts packed ENTRIES in flight, not sub-batches: a
	// 1-entry shard on a slow node and a 5-entry shard on a fast one are
	// very different amounts of outstanding work, and load-aware policies
	// that cannot tell them apart dog-pile whichever backend's single
	// sub-batch happens to finish first.
	entriesInflight metrics.Gauge
	exchanges       metrics.Counter // sub-batch exchanges attempted
	failures  metrics.Counter // exchanges that errored
	ejections metrics.Counter // circuit openings
	failovers metrics.Counter // sub-batches moved away after failing here

	mu           sync.Mutex
	consecFails  int
	ejectedUntil time.Time

	// Last admin poll, guarded separately from the circuit lock.
	statsMu     sync.Mutex
	lastStats   admin.Stats
	statsAt     time.Time
	ewmaFactor  float64 // smoothed load factor
	advertDrain bool    // drain state the backend last advertised
}

// effectiveWeight returns the current fixed-point effective weight, falling
// back to the configured weight when the membership manager has not set one.
func (b *backend) effectiveWeight() int64 {
	if w := b.effWeight.Load(); w > 0 {
		return w
	}
	return b.weight * effWeightScale
}

// available reports whether the backend may be handed work: the circuit is
// closed, or its re-probe timer has elapsed (half-open — one sub-batch or
// health probe is allowed through; a failure re-ejects, a success closes
// the circuit).
func (b *backend) available(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ejectedUntil.IsZero() || !now.Before(b.ejectedUntil)
}

// ejected reports whether the circuit is currently open, re-probe window
// included — the /spi/stats health view.
func (b *backend) ejectedNow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.ejectedUntil.IsZero() && now.Before(b.ejectedUntil)
}

// noteSuccess closes the circuit.
func (b *backend) noteSuccess() {
	b.mu.Lock()
	b.consecFails = 0
	b.ejectedUntil = time.Time{}
	b.mu.Unlock()
}

// noteFailure counts one failed exchange and opens (or re-opens) the
// circuit once threshold consecutive failures accumulate. Returns whether
// this failure newly ejected the backend.
func (b *backend) noteFailure(threshold int, reprobe time.Duration) bool {
	b.failures.Inc()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.consecFails < threshold {
		return false
	}
	newly := b.ejectedUntil.IsZero()
	b.ejectedUntil = time.Now().Add(reprobe)
	if newly {
		b.ejections.Inc()
	}
	return newly
}

// probe issues one active health check: a GET of the services listing. Any
// 200 closes the circuit; anything else counts as a failure.
func (b *backend) probe(ctx context.Context, target string, threshold int, reprobe time.Duration) {
	req := httpx.NewRequest("GET", target, nil)
	resp, err := b.client.DoCtx(ctx, req)
	if err == nil && resp.StatusCode == 200 {
		resp.Release()
		b.noteSuccess()
		return
	}
	if resp != nil {
		resp.Release()
	}
	b.noteFailure(threshold, reprobe)
}

// BackendStats is the per-backend slice of Gateway.Stats.
type BackendStats struct {
	Name     string
	Ejected  bool
	Draining bool
	InFlight int64 // sub-batches in flight
	Entries  int64 // packed entries in flight (the load-aware policies' signal)
	Idle     int   // pooled keep-alive connections
	HTTPBusy int   // exchanges inside the HTTP client right now

	// Weight is the configured baseline; EffWeight the live effective
	// weight the Weighted policy routes by (equal to Weight until the
	// membership manager modulates it). StatsAgeMs is the age of the last
	// successful admin poll in milliseconds, -1 when never polled.
	Weight     int64
	EffWeight  float64
	StatsAgeMs int64

	Exchanges int64
	Failures  int64
	Ejections int64
	Failovers int64
}

func (b *backend) stats(now time.Time) BackendStats {
	ps := b.client.PoolStats()
	b.statsMu.Lock()
	statsAge := int64(-1)
	if !b.statsAt.IsZero() {
		statsAge = now.Sub(b.statsAt).Milliseconds()
	}
	b.statsMu.Unlock()
	return BackendStats{
		Name:       b.name,
		Ejected:    b.ejectedNow(now),
		Draining:   b.draining.Load(),
		InFlight:   b.inflight.Load(),
		Entries:    b.entriesInflight.Load(),
		Idle:       ps.Idle,
		HTTPBusy:   ps.InFlight,
		Weight:     b.weight,
		EffWeight:  float64(b.effectiveWeight()) / effWeightScale,
		StatsAgeMs: statsAge,
		Exchanges:  b.exchanges.Load(),
		Failures:   b.failures.Load(),
		Ejections:  b.ejections.Load(),
		Failovers:  b.failovers.Load(),
	}
}
