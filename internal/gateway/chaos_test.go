package gateway

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// The chaos suite soaks the scatter–gather path while the links misbehave:
// injected latency, failed dials, and connections killed mid-stream. The
// invariants are the protocol's, not the network's — every call resolves
// exactly once (no lost or duplicated spi:id), failures surface only as
// the documented fault codes, the pools stay usable, and once the chaos
// stops a clean batch succeeds. Run it under -race: the point is as much
// the locking as the fault mapping.

// chaosDialer wraps a link dialer with kill-switchable connections: while
// armed, a fraction of new connections dies after a bounded number of
// bytes, mid-request or mid-response.
type chaosDialer struct {
	dial  func() (net.Conn, error)
	armed atomic.Bool
	rng   *rand.Rand
	mu    sync.Mutex
}

func (d *chaosDialer) Dial() (net.Conn, error) {
	c, err := d.dial()
	if err != nil || !d.armed.Load() {
		return c, err
	}
	d.mu.Lock()
	kill := d.rng.Intn(3) == 0
	budget := int64(d.rng.Intn(2000) + 50)
	d.mu.Unlock()
	if !kill {
		return c, nil
	}
	return &dyingConn{Conn: c, budget: budget}, nil
}

// dyingConn closes itself once budget bytes have moved in either
// direction, simulating a backend crash mid-exchange.
type dyingConn struct {
	net.Conn
	budget int64
	dead   atomic.Bool
}

func (c *dyingConn) spend(n int) error {
	if atomic.AddInt64(&c.budget, -int64(n)) <= 0 && !c.dead.Swap(true) {
		c.Conn.Close()
	}
	if c.dead.Load() {
		return errors.New("chaos: connection killed")
	}
	return nil
}

func (c *dyingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err == nil {
		err = c.spend(n)
	}
	return n, err
}

func (c *dyingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if err == nil {
		err = c.spend(n)
	}
	return n, err
}

// allowedChaosFault reports whether a failed call failed the documented
// way. Anything else — a decode error, a transport error leaking through,
// an unexpected fault code — is a bug the soak must surface.
func allowedChaosFault(err error) bool {
	var f *soap.Fault
	if !errors.As(err, &f) {
		return false
	}
	switch f.Code {
	case core.FaultCodeBusy, core.FaultCodeTimeout, core.FaultCodeCancelled:
		return true
	}
	return false
}

func TestChaosSoak(t *testing.T) {
	rounds, batches := 12, 6
	if testing.Short() {
		rounds, batches = 4, 3
	}

	f := newFarm(t, 3, func(cfg *Config) {
		cfg.FailureThreshold = 2
		cfg.ReprobeAfter = 25 * time.Millisecond
		cfg.ExchangeTimeout = 2 * time.Second
	})
	// Interpose the chaos dialers after construction so the same backends
	// can be healed later.
	chaos := make([]*chaosDialer, len(f.links))
	for i, link := range f.links {
		cd := &chaosDialer{dial: link.Dial, rng: rand.New(rand.NewSource(int64(100 + i)))}
		chaos[i] = cd
		f.gw.backends[i].client.Dial = cd.Dial
	}

	cli := f.client(t, func(cfg *core.ClientConfig) {
		cfg.Timeout = 5 * time.Second
	})

	var calls, failures int64
	runBatch := func(r, b int, rng *rand.Rand) error {
		batch := cli.NewBatch()
		n := rng.Intn(10) + 2
		want := make([]int64, n)
		var cs []*core.Call
		for i := 0; i < n; i++ {
			want[i] = int64(r*1000 + b*100 + i)
			cs = append(cs, batch.Add("Echo", "echo", soapenc.F("v", want[i])))
		}
		if err := batch.Send(); err != nil {
			return fmt.Errorf("send: %w", err)
		}
		for i, c := range cs {
			atomic.AddInt64(&calls, 1)
			results, err := c.Wait()
			if err != nil {
				if !allowedChaosFault(err) {
					return fmt.Errorf("call %d failed outside the contract: %w", i, err)
				}
				atomic.AddInt64(&failures, 1)
				continue
			}
			// A success must be *this* call's answer: a misrouted or
			// duplicated spi:id would pair the wrong result with the call.
			if len(results) != 1 || !soapenc.Equal(results[0].Value, want[i]) {
				return fmt.Errorf("call %d answered with %v, want %d", i, results, want[i])
			}
		}
		return nil
	}

	for r := 0; r < rounds; r++ {
		// Each round arms a different misbehavior mix.
		switch r % 3 {
		case 0:
			chaos[r%len(chaos)].armed.Store(true)
			f.links[(r+1)%len(f.links)].SetExtraLatency(3 * time.Millisecond)
		case 1:
			f.links[r%len(f.links)].FailDials(int64(rand.Intn(4) + 2))
		case 2:
			for _, cd := range chaos {
				cd.armed.Store(true)
			}
		}

		var wg sync.WaitGroup
		errs := make(chan error, batches)
		for b := 0; b < batches; b++ {
			wg.Add(1)
			go func(r, b int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r*100 + b)))
				if err := runBatch(r, b, rng); err != nil {
					errs <- err
				}
			}(r, b)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Disarm between rounds.
		for _, cd := range chaos {
			cd.armed.Store(false)
		}
		for _, link := range f.links {
			link.SetExtraLatency(0)
			link.FailDials(0)
		}
	}

	// After the storm: the pools must still be coherent. Give the circuits
	// one re-probe window, then require a fully clean batch.
	time.Sleep(30 * time.Millisecond)
	batch := cli.NewBatch()
	var cs []*core.Call
	for i := 0; i < 12; i++ {
		cs = append(cs, batch.Add("Echo", "echo", soapenc.F("v", int64(i))))
	}
	if err := batch.Send(); err != nil {
		t.Fatalf("clean batch send: %v", err)
	}
	for i, c := range cs {
		results, err := c.Wait()
		if err != nil {
			t.Fatalf("clean call %d: %v", i, err)
		}
		if len(results) != 1 || !soapenc.Equal(results[0].Value, int64(i)) {
			t.Fatalf("clean call %d results = %v", i, results)
		}
	}

	st := f.gw.Stats()
	var inflight int64
	for _, bs := range st.Backends {
		inflight += bs.InFlight
	}
	if inflight != 0 {
		t.Errorf("in-flight gauge leaked: %d", inflight)
	}
	t.Logf("chaos soak: %d calls, %d degraded to faults; stats %+v",
		atomic.LoadInt64(&calls), atomic.LoadInt64(&failures), st)
}

// TestChaosDeadlineDegrade pins the Server.Timeout mapping: a propagated
// deadline shorter than the slowest entry degrades exactly that entry with
// the server's own timeout fault text, and never wedges the collector.
func TestChaosDeadlineDegrade(t *testing.T) {
	f := newFarm(t, 2, nil)
	cli := f.client(t, func(cfg *core.ClientConfig) {
		cfg.BatchTimeout = 400 * time.Millisecond
	})
	batch := cli.NewBatch()
	fast := batch.Add("Echo", "echo", soapenc.F("v", int64(1)))
	slow := batch.Add("Echo", "nap", soapenc.F("ms", int64(5000)))
	if err := batch.Send(); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := fast.Wait(); err != nil {
		t.Errorf("fast call: %v", err)
	}
	_, err := slow.Wait()
	var fl *soap.Fault
	if !errors.As(err, &fl) {
		t.Fatalf("slow call err = %v, want fault", err)
	}
	if fl.Code != core.FaultCodeTimeout && fl.Code != core.FaultCodeBusy {
		t.Errorf("slow call fault = %+v, want %s", fl, core.FaultCodeTimeout)
	}
}
