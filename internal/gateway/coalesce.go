package gateway

import (
	"context"
	"math/bits"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/trace"
)

// Cross-client coalescing: the client-side autobatcher (core.AutoBatcher)
// lifted into the gateway. Concurrent single-call envelopes targeting the
// same operation are merged into one synthetic Parallel_Method batch,
// dispatched through the same shard/failover machinery as explicitly
// packed requests, and split back into individual responses that are
// byte-identical to the uncoalesced path — packing becomes an
// infrastructure optimization no client has to adopt.
//
// Parking is safe because of the transport's threading model: each
// in-flight exchange owns its connection's protocol goroutine (see
// httpx.Handler), so a handler blocked in coalesce waits only on its own
// client while the batch forms on other connections' goroutines.

// CoalesceConfig tunes cross-client coalescing of single calls.
type CoalesceConfig struct {
	// Enabled turns coalescing on. Off, every single call is proxied
	// whole, the PR 5 behaviour.
	Enabled bool

	// FlushWindow is how long the first call in a batch waits for
	// companions before the batch flushes (default 1ms). Calls carrying
	// an SPI-Deadline budget tighten their batch's window to budget/8
	// when that is shorter, so a batch never eats a meaningful share of
	// a member's deadline.
	FlushWindow time.Duration

	// MaxBatch flushes a batch as soon as it holds this many calls
	// (default 64), bounding both added latency and sub-batch size.
	MaxBatch int

	// MaxBytes flushes a batch early once the original request bodies it
	// absorbs exceed this many bytes (default 256 KiB, negative
	// disables the cap). Packing large payloads is a net loss — the
	// paper's Figure 5 crossover — so big requests should not pool.
	MaxBytes int

	// MinDeadlineBudget is the smallest SPI-Deadline budget worth
	// parking: calls with less remaining budget bypass the coalescer and
	// are proxied immediately (default 10× FlushWindow).
	MinDeadlineBudget time.Duration
}

// withDefaults fills the zero values.
func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.FlushWindow <= 0 {
		c.FlushWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 256 << 10
	}
	if c.MinDeadlineBudget <= 0 {
		c.MinDeadlineBudget = 10 * c.FlushWindow
	}
	return c
}

// callOutcome is one coalesced call's result, delivered to its parked
// handler goroutine. Exactly one of segment/fault is meaningful.
type callOutcome struct {
	segment []byte // raw packed-response entry (copied, caller-owned)
	header  []byte // raw response-header bytes from the answering backend
	fault   *soap.Fault
}

// pendingCall is one parked single call awaiting its batch.
type pendingCall struct {
	entry  *core.ScatterEntry
	bytes  int           // original request body size, for MaxBytes
	budget time.Duration // raw SPI-Deadline budget (0: none)
	done   chan callOutcome
}

// deliver hands the outcome to the parked handler. Buffered and
// first-write-wins: a handler that already gave up (deadline, disconnect)
// simply never reads it.
func (c *pendingCall) deliver(out callOutcome) {
	select {
	case c.done <- out:
	default:
	}
}

// batchKey identifies one coalescing bucket: per-operation affinity means
// a batch targets exactly one (service, op) pair, and version purity keeps
// the synthetic envelope in every member's own SOAP version.
type batchKey struct {
	service string
	op      string
	version soap.Version
}

// pendingBatch is one forming batch.
type pendingBatch struct {
	key     batchKey
	calls   []*pendingCall
	bytes   int
	timer   *time.Timer
	flushAt time.Time
}

// coalescer owns the forming batches. One per gateway when enabled.
type coalescer struct {
	g   *Gateway
	cfg CoalesceConfig

	// baseCtx parents every flush: batches outlive the member requests
	// that formed them, so they cannot run under any one member's ctx.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu      sync.Mutex
	batches map[batchKey]*pendingBatch
	closed  bool
	wg      sync.WaitGroup
}

func newCoalescer(g *Gateway, cfg CoalesceConfig) *coalescer {
	ctx, cancel := context.WithCancel(context.Background())
	return &coalescer{
		g:       g,
		cfg:     cfg.withDefaults(),
		baseCtx: ctx,
		cancel:  cancel,
		batches: make(map[batchKey]*pendingBatch),
	}
}

// enqueue adds a call to its batch, flushing early at the size/byte caps
// and otherwise arming (or tightening) the flush timer. Returns false when
// the coalescer is shutting down — the caller must proxy instead.
func (co *coalescer) enqueue(key batchKey, call *pendingCall) bool {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return false
	}
	b := co.batches[key]
	if b == nil {
		b = &pendingBatch{key: key}
		co.batches[key] = b
	}
	b.calls = append(b.calls, call)
	b.bytes += call.bytes
	if len(b.calls) >= co.cfg.MaxBatch || (co.cfg.MaxBytes > 0 && b.bytes >= co.cfg.MaxBytes) {
		delete(co.batches, key)
		if b.timer != nil {
			b.timer.Stop()
		}
		co.mu.Unlock()
		co.flush(b)
		return true
	}
	// Deadline-aware window: a member with a tight budget pulls the whole
	// batch's flush forward so waiting never consumes a meaningful share
	// of its deadline.
	wait := co.cfg.FlushWindow
	if call.budget > 0 {
		if w := call.budget / 8; w < wait {
			wait = w
		}
	}
	flushAt := time.Now().Add(wait)
	if b.timer == nil {
		b.flushAt = flushAt
		b.timer = time.AfterFunc(wait, func() { co.flushExpired(key, b) })
	} else if flushAt.Before(b.flushAt) {
		b.flushAt = flushAt
		b.timer.Reset(wait)
	}
	co.mu.Unlock()
	return true
}

// flushExpired is the timer callback: flush the batch if it is still the
// one forming under this key (a size-cap flush may have raced us).
func (co *coalescer) flushExpired(key batchKey, b *pendingBatch) {
	co.mu.Lock()
	if co.batches[key] != b {
		co.mu.Unlock()
		return
	}
	delete(co.batches, key)
	co.mu.Unlock()
	co.flush(b)
}

// flush dispatches a sealed batch on its own goroutine. Must be called
// without co.mu held.
func (co *coalescer) flush(b *pendingBatch) {
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		co.g.flushBatch(co.baseCtx, b)
	}()
}

// close stops accepting calls, cancels in-flight batch exchanges, flushes
// whatever is still forming (so no parked handler waits forever), and
// drains the flush goroutines.
func (co *coalescer) close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	pending := make([]*pendingBatch, 0, len(co.batches))
	for key, b := range co.batches {
		delete(co.batches, key)
		if b.timer != nil {
			b.timer.Stop()
		}
		pending = append(pending, b)
	}
	co.mu.Unlock()
	co.cancel()
	for _, b := range pending {
		co.flush(b)
	}
	co.wg.Wait()
}

// coalesceSink adapts sendShard's slot deliveries to parked single calls.
// One sink serves one shard goroutine, so the header recorded by AddHeader
// belongs to the backend that answered this sink's slots.
type coalesceSink struct {
	calls  []*pendingCall // indexed by batch slot
	header []byte
}

func (s *coalesceSink) AddHeader(_ int, raw []byte) {
	if len(raw) > 0 {
		s.header = raw
	}
}

func (s *coalesceSink) Deliver(slot int, segment []byte) {
	s.calls[slot].deliver(callOutcome{segment: segment, header: s.header})
}

func (s *coalesceSink) Fail(slot int, f *soap.Fault) {
	s.calls[slot].deliver(callOutcome{fault: f})
}

// coalesce merges one single-call envelope into a pending batch and parks
// until its outcome arrives. A nil return means the call must be proxied
// instead: coalescing is off, the request is not coalescible (headers,
// undecodable, plan/packed body), its deadline budget is too tight to
// park, or the gateway is shutting down.
func (g *Gateway) coalesce(ctx context.Context, req *httpx.Request, defaultService string) *httpx.Response {
	co := g.coalescer
	if co == nil {
		return nil
	}
	budget := deadlineBudget(req)
	if budget > 0 && budget < co.cfg.MinDeadlineBudget {
		g.coalescePassthrough.Inc()
		return nil
	}
	sc := core.ParseSingleCall(req.Body, defaultService, g.cfg.Registry)
	if sc == nil {
		g.coalescePassthrough.Inc()
		return nil
	}
	call := &pendingCall{
		entry:  sc.Entry,
		bytes:  len(req.Body),
		budget: budget,
		done:   make(chan callOutcome, 1),
	}
	key := batchKey{service: sc.Entry.Service, op: sc.Entry.Op, version: sc.Version}
	enqueued := time.Now()
	if !co.enqueue(key, call) {
		g.coalescePassthrough.Inc()
		return nil
	}
	g.coalesced.Inc()

	// The member's own deadline watchdog: the batch runs under the widest
	// member budget, so a short-budget member degrades itself here with
	// the exact fault a direct server's abandoned worker produces. Its
	// slot outcome, arriving later, is simply dropped (buffered channel).
	memberCtx := ctx
	if budget > 0 {
		var cancel context.CancelFunc
		memberCtx, cancel = context.WithTimeout(ctx, g.shortenBudget(budget))
		defer cancel()
	}
	var out callOutcome
	select {
	case out = <-call.done:
	case <-memberCtx.Done():
		g.degraded.Inc()
		df := degradeFault(memberCtx, sc.Entry)
		g.faultCodes.NoteSOAP(df)
		out = callOutcome{fault: df}
	}
	if tr := g.cfg.Tracer; tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayCoalesceWait,
			ID: -1, Op: key.service + "." + key.op, Start: enqueued, Service: time.Since(enqueued)})
	}
	if out.fault != nil {
		g.faults.Inc()
		return core.GatewayFaultResponse(out.fault, sc.Version)
	}
	resp, isFault := core.SpliceSingleResponse(sc.Version, out.segment, out.header)
	if isFault {
		g.faults.Inc()
	}
	return resp
}

// flushBatch dispatches one sealed batch through the scatter machinery:
// slot ids are sealed, entries are sharded by the configured policy, and
// each shard goes through sendShard — the same failover, circuit and
// retry path explicitly packed requests take — delivering straight into
// the parked calls.
func (g *Gateway) flushBatch(baseCtx context.Context, b *pendingBatch) {
	g.coalesceBatches.Inc()
	g.recordBatchSize(len(b.calls))

	entries := make([]*core.ScatterEntry, len(b.calls))
	var maxBudget time.Duration
	allBudgeted := true
	for i, c := range b.calls {
		c.entry.SealID(i)
		entries[i] = c.entry
		if c.budget > 0 {
			if c.budget > maxBudget {
				maxBudget = c.budget
			}
		} else {
			allBudgeted = false
		}
	}
	// The batch deadline is the widest member budget: tighter members
	// watchdog themselves, and a member without a budget leaves the batch
	// bounded only by ExchangeTimeout, exactly like its proxied exchange
	// would have been.
	var ctx context.Context
	var cancel context.CancelFunc
	if allBudgeted && maxBudget > 0 {
		ctx, cancel = context.WithTimeout(baseCtx, g.shortenBudget(maxBudget))
	} else {
		ctx, cancel = context.WithCancel(baseCtx)
	}
	defer cancel()

	tr := g.cfg.Tracer
	flushStart := time.Now()
	if tr.Enabled() {
		ctx = trace.NewContext(ctx, tr.Begin())
	}

	sr := &core.ScatterRequest{Version: b.key.version, Packed: true, Entries: entries}
	var wg sync.WaitGroup
	for _, sh := range g.assign(entries) {
		g.scattered.Inc()
		sink := &coalesceSink{calls: b.calls}
		wg.Add(1)
		go func(be *backend, shard []*core.ScatterEntry, sink *coalesceSink) {
			defer wg.Done()
			g.sendShard(ctx, be, sr, shard, sink)
		}(sh.b, sh.entries, sink)
	}
	wg.Wait()
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayCoalesceFlush,
			ID: -1, Op: b.key.service + "." + b.key.op, Start: flushStart, Service: time.Since(flushStart)})
	}
}

// batchSizeBuckets label the coalesced-batch-size distribution: 1, 2,
// 3-4, 5-8, ... — power-of-two buckets, the last one open-ended.
var batchSizeBuckets = [...]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", ">64"}

// recordBatchSize files one flushed batch into the size distribution.
func (g *Gateway) recordBatchSize(n int) {
	if n <= 0 {
		return
	}
	idx := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if idx >= len(batchSizeBuckets) {
		idx = len(batchSizeBuckets) - 1
	}
	g.coalesceSizes[idx].Inc()
}
