package gateway

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
)

// singleCallDoc builds one plain single-call envelope.
func singleCallDoc(v soap.Version, entry string) []byte {
	return []byte(`<?xml version="1.0" encoding="UTF-8"?>` +
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + v.Namespace() + `">` +
		`<SOAP-ENV:Body>` + entry + `</SOAP-ENV:Body></SOAP-ENV:Envelope>`)
}

// coalesceFarm is a farm with coalescing on, tuned per test.
func coalesceFarm(tb testing.TB, k int, cc CoalesceConfig, mutate func(*Config)) *farm {
	tb.Helper()
	cc.Enabled = true
	return newFarm(tb, k, func(cfg *Config) {
		cfg.Coalesce = cc
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// postHdr is post with extra request headers (header name, value pairs).
func postHdr(tb testing.TB, c *httpx.Client, target, ct string, doc []byte, hdr ...string) reply {
	tb.Helper()
	req := httpx.NewRequest("POST", target, doc)
	req.Header.Set("Content-Type", ct)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := c.Do(req)
	if err != nil {
		tb.Fatalf("POST %s: %v", target, err)
	}
	defer resp.Release()
	return reply{
		status: resp.StatusCode,
		ct:     resp.Header.Get("Content-Type"),
		body:   append([]byte(nil), resp.Body...),
	}
}

// TestDifferentialCoalescedSingles is the coalescer's headline guarantee:
// N independent single-call clients answered through a coalescing gateway
// get byte-identical replies to the same calls answered by a direct
// server — across SOAP versions, routing policies, and op outcomes
// (success, empty result, application fault). The concurrent burst makes
// real multi-member batches form; each client checks its own reply, so a
// cross-wired spi:id (lost or duplicated slot) shows up as a body diff.
func TestDifferentialCoalescedSingles(t *testing.T) {
	clients := 24
	if testing.Short() {
		clients = 8
	}
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		for _, p := range []Policy{RoundRobin, LeastLoaded, OpAffinity} {
			t.Run(fmt.Sprintf("%s/%s", v, p), func(t *testing.T) {
				t.Parallel()
				d := newDirect(t)
				f := coalesceFarm(t, 3, CoalesceConfig{FlushWindow: 3 * time.Millisecond},
					func(cfg *Config) { cfg.Policy = p })

				// One doc per client: mostly echo (same op key, so they pool
				// into shared batches), plus ops with empty results and an
				// application fault (per-item fault → whole-message parity).
				rng := rand.New(rand.NewSource(int64(41*int(v) + int(p))))
				docs := make([][]byte, clients)
				for i := range docs {
					entry := fmt.Sprintf(`<m:echo xmlns:m="urn:spi:Echo"><msg>c%d %s</msg></m:echo>`,
						i, escapeText.Replace(randomPayload(rng)))
					switch i % 8 {
					case 5:
						entry = `<m:empty xmlns:m="urn:spi:Echo"></m:empty>`
					case 6:
						entry = `<m:none xmlns:m="urn:spi:Echo"></m:none>`
					case 7:
						entry = `<m:fail xmlns:m="urn:spi:Echo"></m:fail>`
					}
					docs[i] = singleCallDoc(v, entry)
				}

				// Direct replies first (serially — the reference bytes).
				dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 10 * time.Second}
				defer dc.Close()
				want := make([]reply, clients)
				for i, doc := range docs {
					want[i] = post(t, dc, "/services/Echo", v.ContentType(), doc)
				}

				// Then the same docs as a concurrent burst through the
				// coalescing gateway, one connection per client.
				got := make([]reply, clients)
				var wg sync.WaitGroup
				for i := range docs {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						gc := &httpx.Client{Dial: f.gwLink.Dial, KeepAlive: true, Timeout: 10 * time.Second}
						defer gc.Close()
						got[i] = post(t, gc, "/services/Echo", v.ContentType(), docs[i])
					}(i)
				}
				wg.Wait()

				for i := range docs {
					diffReplies(t, fmt.Sprintf("client=%d", i), docs[i], want[i], got[i])
				}

				st := f.gw.Stats()
				if st.Coalesced != int64(clients) {
					t.Errorf("Coalesced = %d, want %d (passthrough %d, proxied %d)",
						st.Coalesced, clients, st.CoalescePassthrough, st.Proxied)
				}
				if st.CoalesceBatches < 1 || st.CoalesceBatches > int64(clients) {
					t.Errorf("CoalesceBatches = %d", st.CoalesceBatches)
				}
			})
		}
	}
}

// TestDifferentialCoalescedTimeout pins the per-item Server.Timeout
// degradation path: a coalesced call whose SPI-Deadline expires mid-flight
// answers with the exact fault bytes a direct server produces when it
// abandons the same call.
func TestDifferentialCoalescedTimeout(t *testing.T) {
	d := newDirect(t)
	f := coalesceFarm(t, 2, CoalesceConfig{
		FlushWindow:       time.Millisecond,
		MinDeadlineBudget: 10 * time.Millisecond,
	}, nil)
	dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 5 * time.Second}
	gc := f.raw()
	defer dc.Close()
	defer gc.Close()

	// nap(200ms) under an 80ms budget: both sides must abandon with the
	// same Server.Timeout fault text.
	doc := singleCallDoc(soap.V11,
		`<m:nap xmlns:m="urn:spi:Echo"><ms xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:int">200</ms></m:nap>`)
	want := postHdr(t, dc, "/services/Echo", soap.V11.ContentType(), doc, core.HeaderDeadline, "80")
	got := postHdr(t, gc, "/services/Echo", soap.V11.ContentType(), doc, core.HeaderDeadline, "80")
	if want.status != 500 {
		t.Fatalf("direct status = %d, want 500", want.status)
	}
	diffReplies(t, "deadline-timeout", doc, want, got)
	if !bytes.Contains(got.body, []byte("deadline expired before Echo.nap finished")) {
		t.Errorf("fault text missing: %s", got.body)
	}
	if st := f.gw.Stats(); st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1 (passthrough %d)", st.Coalesced, st.CoalescePassthrough)
	}
}

// TestCoalesceMaxBatchFlush: the size cap flushes a full batch immediately,
// long before a (deliberately huge) flush window.
func TestCoalesceMaxBatchFlush(t *testing.T) {
	const n = 4
	f := coalesceFarm(t, 2, CoalesceConfig{
		FlushWindow: 30 * time.Second, // must never be waited out
		MaxBatch:    n,
	}, nil)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gc := &httpx.Client{Dial: f.gwLink.Dial, KeepAlive: true, Timeout: 20 * time.Second}
			defer gc.Close()
			doc := singleCallDoc(soap.V11,
				`<m:echo xmlns:m="urn:spi:Echo"><i>`+strconv.Itoa(i)+`</i></m:echo>`)
			r := post(t, gc, "/services/Echo", soap.V11.ContentType(), doc)
			if r.status != 200 || !bytes.Contains(r.body, []byte(`>`+strconv.Itoa(i)+`</i>`)) {
				errs[i] = fmt.Errorf("client %d: status %d body %s", i, r.status, r.body)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("batch took %v: size cap did not flush early", elapsed)
	}
	st := f.gw.Stats()
	if st.CoalesceBatches != 1 || st.Coalesced != n {
		t.Errorf("batches=%d coalesced=%d, want 1 batch of %d", st.CoalesceBatches, st.Coalesced, n)
	}
	if st.CoalesceSizes["3-4"] != 1 {
		t.Errorf("size histogram = %v, want one batch in bucket 3-4", st.CoalesceSizes)
	}
}

// TestCoalesceStragglerFlush: a lone call with no companions still flushes
// after the window as a batch of one.
func TestCoalesceStragglerFlush(t *testing.T) {
	f := coalesceFarm(t, 2, CoalesceConfig{FlushWindow: 5 * time.Millisecond}, nil)
	gc := f.raw()
	defer gc.Close()
	doc := singleCallDoc(soap.V12, `<m:echo xmlns:m="urn:spi:Echo"><msg>alone</msg></m:echo>`)
	r := post(t, gc, "/services/Echo", soap.V12.ContentType(), doc)
	if r.status != 200 || !bytes.Contains(r.body, []byte(">alone</msg>")) {
		t.Fatalf("straggler reply: %d %s", r.status, r.body)
	}
	st := f.gw.Stats()
	if st.Coalesced != 1 || st.CoalesceBatches != 1 || st.CoalesceSizes["1"] != 1 {
		t.Errorf("stats = coalesced %d batches %d sizes %v", st.Coalesced, st.CoalesceBatches, st.CoalesceSizes)
	}
}

// TestCoalesceTightDeadlinePassthrough: a call whose SPI-Deadline budget is
// below MinDeadlineBudget must not park — it is proxied whole instead.
func TestCoalesceTightDeadlinePassthrough(t *testing.T) {
	f := coalesceFarm(t, 2, CoalesceConfig{FlushWindow: 20 * time.Millisecond}, nil)
	gc := f.raw()
	defer gc.Close()
	// Default MinDeadlineBudget is 10× the window = 200ms; 50ms is under it.
	doc := singleCallDoc(soap.V11, `<m:echo xmlns:m="urn:spi:Echo"><msg>rush</msg></m:echo>`)
	r := postHdr(t, gc, "/services/Echo", soap.V11.ContentType(), doc, core.HeaderDeadline, "50")
	if r.status != 200 || !bytes.Contains(r.body, []byte(">rush</msg>")) {
		t.Fatalf("tight-deadline reply: %d %s", r.status, r.body)
	}
	st := f.gw.Stats()
	if st.Coalesced != 0 || st.CoalescePassthrough != 1 || st.Proxied != 1 {
		t.Errorf("stats = coalesced %d passthrough %d proxied %d, want 0/1/1",
			st.Coalesced, st.CoalescePassthrough, st.Proxied)
	}
}

// TestCoalesceDeadlineTightensWindow: a budget above the parking floor but
// whose eighth is shorter than the flush window must pull the flush
// forward — the call completes well inside its deadline instead of
// waiting out the full window.
func TestCoalesceDeadlineTightensWindow(t *testing.T) {
	f := coalesceFarm(t, 2, CoalesceConfig{
		FlushWindow:       500 * time.Millisecond,
		MinDeadlineBudget: 50 * time.Millisecond,
	}, nil)
	gc := f.raw()
	defer gc.Close()
	doc := singleCallDoc(soap.V11, `<m:echo xmlns:m="urn:spi:Echo"><msg>soon</msg></m:echo>`)
	start := time.Now()
	r := postHdr(t, gc, "/services/Echo", soap.V11.ContentType(), doc, core.HeaderDeadline, "200")
	elapsed := time.Since(start)
	if r.status != 200 || !bytes.Contains(r.body, []byte(">soon</msg>")) {
		t.Fatalf("reply: %d %s", r.status, r.body)
	}
	// budget/8 = 25ms, so the flush must beat both the 200ms deadline and
	// the 500ms configured window by a wide margin.
	if elapsed > 150*time.Millisecond {
		t.Errorf("call took %v; the 200ms budget should have tightened the 500ms window", elapsed)
	}
	if st := f.gw.Stats(); st.Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1 (passthrough %d)", st.Coalesced, st.CoalescePassthrough)
	}
}

// TestCoalesceNonCoalescibleBypass: envelopes the coalescer must not touch
// (header blocks, packed bodies already handled upstream) fall through to
// the proxy and still answer correctly.
func TestCoalesceNonCoalescibleBypass(t *testing.T) {
	f := coalesceFarm(t, 2, CoalesceConfig{FlushWindow: 2 * time.Millisecond}, nil)
	gc := f.raw()
	defer gc.Close()
	withHeader := []byte(`<?xml version="1.0" encoding="UTF-8"?>` +
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `">` +
		`<SOAP-ENV:Header><h xmlns="urn:h">x</h></SOAP-ENV:Header>` +
		`<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><msg>hdr</msg></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	r := post(t, gc, "/services/Echo", soap.V11.ContentType(), withHeader)
	if r.status != 200 || !bytes.Contains(r.body, []byte(">hdr</msg>")) {
		t.Fatalf("header envelope reply: %d %s", r.status, r.body)
	}
	st := f.gw.Stats()
	if st.Coalesced != 0 || st.CoalescePassthrough != 1 || st.Proxied != 1 {
		t.Errorf("stats = coalesced %d passthrough %d proxied %d, want 0/1/1",
			st.Coalesced, st.CoalescePassthrough, st.Proxied)
	}
}

// TestChaosCoalesceBackendKill soaks the coalescer while a backend's link
// flaps mid-flight: every client must get either its own echo back or a
// well-formed fault — never a hang, never another client's payload. echo
// is idempotent, so batch failover applies and most calls should survive
// the flap. Run under -race by the race-gateway make target.
func TestChaosCoalesceBackendKill(t *testing.T) {
	rounds, clients := 12, 16
	if testing.Short() {
		rounds, clients = 4, 8
	}
	f := coalesceFarm(t, 3, CoalesceConfig{FlushWindow: 2 * time.Millisecond}, func(cfg *Config) {
		cfg.FailureThreshold = 2
		cfg.ReprobeAfter = 20 * time.Millisecond
	})

	stop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		killed := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				f.links[0].FailDials(0)
				return
			case <-time.After(15 * time.Millisecond):
			}
			if killed {
				f.links[0].FailDials(0)
			} else {
				f.links[0].FailDials(1 << 30)
			}
			killed = !killed
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	ok := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gc := &httpx.Client{Dial: f.gwLink.Dial, KeepAlive: true, Timeout: 10 * time.Second}
			defer gc.Close()
			for r := 0; r < rounds; r++ {
				tag := fmt.Sprintf("c%d-r%d", c, r)
				doc := singleCallDoc(soap.V11,
					`<m:echo xmlns:m="urn:spi:Echo"><msg>`+tag+`</msg></m:echo>`)
				resp, err := gc.Post("/services/Echo", soap.V11.ContentType(), doc)
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: transport: %v", tag, err))
					mu.Unlock()
					continue
				}
				body := append([]byte(nil), resp.Body...)
				status := resp.StatusCode
				resp.Release()
				switch {
				case status == 200 && bytes.Contains(body, []byte(">"+tag+"</msg>")):
					mu.Lock()
					ok++
					mu.Unlock()
				case status == 200:
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: foreign payload: %s", tag, body))
					mu.Unlock()
				case status == 500 && bytes.Contains(body, []byte(":Fault")):
					// A well-formed fault is an acceptable outcome mid-flap.
				case status == 502 || status == 503:
					// Proxy-path refusal while every backend is ejected.
				default:
					mu.Lock()
					failures = append(failures, fmt.Sprintf("%s: status %d body %s", tag, status, body))
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	flapWG.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if ok == 0 {
		t.Error("no call survived the flap; failover appears broken")
	}
	st := f.gw.Stats()
	if st.Coalesced == 0 {
		t.Error("nothing was coalesced during the soak")
	}
	t.Logf("chaos soak: %d ok / %d calls, stats %+v", ok, clients*rounds, st)
}

// TestCoalesceShutdownReleasesParked: closing the gateway while calls are
// parked in a forming batch must resolve every one of them (fault or
// response), not strand their connection goroutines.
func TestCoalesceShutdownReleasesParked(t *testing.T) {
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.ServerConfig{Container: testContainer(t), AppWorkers: 4, AppQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer func() { srv.Close(); link.Close() }()

	gw, err := New(Config{
		Backends: []BackendConfig{{Name: "b0", Dial: link.Dial}},
		Registry: testContainer(t),
		Coalesce: CoalesceConfig{Enabled: true, FlushWindow: 30 * time.Second, MaxBatch: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLink := netsim.NewLink(netsim.Fast())
	glis, err := gwLink.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(glis)
	defer gwLink.Close()

	// Park two calls: the huge window and batch cap mean only shutdown can
	// flush them.
	const parked = 2
	done := make(chan reply, parked)
	for i := 0; i < parked; i++ {
		go func(i int) {
			gc := &httpx.Client{Dial: gwLink.Dial, Timeout: 20 * time.Second}
			defer gc.Close()
			doc := singleCallDoc(soap.V11,
				`<m:echo xmlns:m="urn:spi:Echo"><i>`+strconv.Itoa(i)+`</i></m:echo>`)
			resp, err := gc.Post("/services/Echo", soap.V11.ContentType(), doc)
			if err != nil {
				done <- reply{status: -1}
				return
			}
			r := reply{status: resp.StatusCode, body: append([]byte(nil), resp.Body...)}
			resp.Release()
			done <- r
		}(i)
	}
	// Wait until both calls are parked in the bucket.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Stats().Coalesced < parked {
		if time.Now().After(deadline) {
			t.Fatalf("calls never parked: %+v", gw.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := gw.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < parked; i++ {
		select {
		case r := <-done:
			// Either outcome is fine — a successful flush-on-close or a
			// cancellation fault — as long as the handler returned.
			if r.status != 200 && r.status != 500 && r.status != -1 {
				t.Errorf("parked call resolved with status %d body %s", r.status, r.body)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked call never resolved after shutdown")
		}
	}
}
