package gateway

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// The control-plane tier pins the cluster-level guarantees: the gateway's
// self-hosted Admin service, the membership poller driving the Weighted
// policy, graceful drain under live load (zero lost or duplicated
// entries), and dynamic add/remove. Backends here run with
// AdminService enabled so the poller has something real to scrape.

// adminFarm is a farm whose backends self-host the Admin service and count
// every echo they serve, with an optional per-backend service time so
// fleets can be skewed.
type adminFarm struct {
	*farm
	served []*atomic.Int64 // echo invocations per backend, by config order
}

func newAdminFarm(tb testing.TB, k int, work []time.Duration, mutate func(*Config)) *adminFarm {
	tb.Helper()
	af := &adminFarm{farm: &farm{}, served: make([]*atomic.Int64, k)}
	var backends []BackendConfig
	for i := 0; i < k; i++ {
		link := netsim.NewLink(netsim.Fast())
		lis, err := link.Listen()
		if err != nil {
			tb.Fatal(err)
		}
		count := &atomic.Int64{}
		af.served[i] = count
		var delay time.Duration
		if work != nil {
			delay = work[i]
		}
		c := registry.NewContainer()
		echo := c.MustAddService("Echo", "urn:spi:Echo", "counting echo")
		echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			count.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			return params, nil
		}, "identity with per-backend service time")
		echo.MarkIdempotent("echo")
		srv, err := core.NewServer(core.ServerConfig{
			Container: c, AppWorkers: 8, AppQueue: 64, AdminService: true,
		})
		if err != nil {
			tb.Fatal(err)
		}
		go srv.Serve(lis)
		tb.Cleanup(func() { srv.Close(); link.Close() })
		af.links = append(af.links, link)
		backends = append(backends, BackendConfig{Name: fmt.Sprintf("b%d", i), Dial: link.Dial})
	}
	cfg := Config{
		Backends:       backends,
		Registry:       testContainer(tb),
		DebugEndpoints: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	af.gw = gw
	af.gwLink = netsim.NewLink(netsim.Fast())
	glis, err := af.gwLink.Listen()
	if err != nil {
		tb.Fatal(err)
	}
	go gw.Serve(glis)
	tb.Cleanup(func() { gw.Close(); af.gwLink.Close() })
	return af
}

// waitFor polls cond until it holds or the timeout fires.
func waitFor(tb testing.TB, timeout time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// postEnvelope sends one single-call envelope to the Admin endpoint and
// returns a copy of the response body.
func postEnvelope(tb testing.TB, c *httpx.Client, target string, env *soap.Envelope, err error) []byte {
	tb.Helper()
	if err != nil {
		tb.Fatal(err)
	}
	var buf sliceBuffer
	if err := env.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	resp, err := c.Post(target, soap.V11.ContentType(), buf.b, "SOAPAction", `""`)
	if err != nil {
		tb.Fatalf("POST %s: %v", target, err)
	}
	defer resp.Release()
	return append([]byte(nil), resp.Body...)
}

// adminGetStats runs one GetStats exchange against the given endpoint.
func adminGetStats(tb testing.TB, c *httpx.Client, target string) admin.Stats {
	tb.Helper()
	env, err := admin.NewGetStatsRequest(soap.V11)
	body := postEnvelope(tb, c, target, env, err)
	st, err := admin.ParseStatsResponse(body)
	if err != nil {
		tb.Fatalf("GetStats: %v", err)
	}
	return st
}

// adminSetState runs one SetState exchange and fails the test on a fault.
func adminSetState(tb testing.TB, c *httpx.Client, target string, weight int64, drain *bool) {
	tb.Helper()
	env, err := admin.NewSetStateRequest(soap.V11, weight, drain)
	body := postEnvelope(tb, c, target, env, err)
	if _, err := admin.ParseStatsResponse(body); err != nil {
		// SetState responds with SetStateResponse, not GetStatsResponse, so
		// the parser always errors — but a *soap.Fault means the node said no.
		if f, ok := err.(*soap.Fault); ok {
			tb.Fatalf("SetState faulted: %v", f)
		}
	}
}

func boolPtr(b bool) *bool { return &b }

func TestGatewayAdminService(t *testing.T) {
	f := newFarm(t, 2, func(cfg *Config) {
		cfg.AdminService = true
		cfg.AdminWeight = 2
	})
	c := f.raw()
	defer c.Close()

	st := adminGetStats(t, c, "/services/Admin")
	if st.Role != "gateway" {
		t.Errorf("Role = %q, want gateway", st.Role)
	}
	if st.Weight != 2 || st.Draining {
		t.Errorf("Weight/Draining = %d/%v, want 2/false", st.Weight, st.Draining)
	}

	// SetState changes the advertised weight and drain flag.
	adminSetState(t, c, "/services/Admin", 5, boolPtr(true))
	st = adminGetStats(t, c, "/services/Admin")
	if st.Weight != 5 || !st.Draining {
		t.Errorf("after SetState: Weight/Draining = %d/%v, want 5/true", st.Weight, st.Draining)
	}

	// The Admin intercept must not shadow ordinary services: a regular call
	// still proxies through to a backend.
	cli := f.client(t, nil)
	results, err := cli.Call("Echo", "echo", soapenc.F("msg", "still works"))
	if err != nil {
		t.Fatalf("Echo through admin-enabled gateway: %v", err)
	}
	if len(results) != 1 || !soapenc.Equal(results[0].Value, "still works") {
		t.Errorf("results = %v", results)
	}

	// Requests counted by the data plane show up in the admin snapshot.
	st = adminGetStats(t, c, "/services/Admin")
	if st.Envelopes < 1 {
		t.Errorf("Envelopes = %d, want >= 1", st.Envelopes)
	}
}

func TestGatewayWithoutAdminServiceProxiesAdminTarget(t *testing.T) {
	// With AdminService off, POSTs to <prefix>Admin are not intercepted;
	// the admin-enabled backends answer instead (Role "server").
	f := newAdminFarm(t, 1, nil, nil)
	c := f.raw()
	defer c.Close()
	st := adminGetStats(t, c, "/services/Admin")
	if st.Role != "server" {
		t.Errorf("Role = %q, want server (proxied to backend)", st.Role)
	}
}

func TestMembershipPollUpdatesRouting(t *testing.T) {
	f := newAdminFarm(t, 2, nil, func(cfg *Config) {
		cfg.Policy = Weighted
		cfg.Membership = MembershipConfig{
			Enabled:      true,
			PollInterval: 20 * time.Millisecond,
			StaleAfter:   10 * time.Second, // no staleness in this test
		}
	})

	// The poller reaches both backends.
	waitFor(t, 5*time.Second, "first admin poll of every backend", func() bool {
		for _, bs := range f.gw.Stats().Backends {
			if bs.StatsAgeMs < 0 {
				return false
			}
		}
		return true
	})
	for _, bs := range f.gw.Stats().Backends {
		if bs.EffWeight < 0.5 || bs.EffWeight > 1.0 {
			t.Errorf("%s: idle EffWeight = %v, want ~1.0", bs.Name, bs.EffWeight)
		}
	}

	// Raising b0's advertised weight via its own Admin service propagates
	// into the gateway's effective weight within a few polls.
	b0 := &httpx.Client{Dial: f.links[0].Dial, KeepAlive: true, Timeout: 5 * time.Second}
	defer b0.Close()
	adminSetState(t, b0, "/services/Admin", 5, nil)
	waitFor(t, 5*time.Second, "b0 effective weight to follow advertised weight 5", func() bool {
		return f.gw.Stats().Backends[0].EffWeight >= 4.0
	})

	// An advertised drain is applied edge-triggered: b0 leaves assignment...
	adminSetState(t, b0, "/services/Admin", 0, boolPtr(true))
	waitFor(t, 5*time.Second, "b0 to be marked draining", func() bool {
		return f.gw.Stats().Backends[0].Draining
	})
	before := f.served[0].Load()
	cli := f.client(t, nil)
	b := cli.NewBatch()
	var calls []*core.Call
	for i := 0; i < 12; i++ {
		calls = append(calls, b.Add("Echo", "echo", soapenc.F("i", int64(i))))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		if _, err := call.Wait(); err != nil {
			t.Fatalf("call %d during drain: %v", i, err)
		}
	}
	if got := f.served[0].Load(); got != before {
		t.Errorf("draining backend served %d new entries, want 0", got-before)
	}

	// ...and an advertised resume brings it back.
	adminSetState(t, b0, "/services/Admin", 0, boolPtr(false))
	waitFor(t, 5*time.Second, "b0 to resume", func() bool {
		return !f.gw.Stats().Backends[0].Draining
	})
}

func TestWeightedConvergenceSkewedFleet(t *testing.T) {
	// A 4-backend fleet with one backend at a much higher service time: the
	// membership poller must observe the slow backend's occupancy and shrink
	// its effective weight, so it receives well under its fair share.
	duration := 1200 * time.Millisecond
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	slow := 3
	f := newAdminFarm(t, 4, []time.Duration{0, 0, 0, 4 * time.Millisecond}, func(cfg *Config) {
		cfg.Policy = Weighted
		cfg.Membership = MembershipConfig{
			Enabled:      true,
			PollInterval: 15 * time.Millisecond,
			StaleAfter:   10 * time.Second,
		}
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := f.client(t, nil)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := cli.NewBatch()
				var calls []*core.Call
				for i := 0; i < 8; i++ {
					calls = append(calls, b.Add("Echo", "echo", soapenc.F("v", int64(w*1_000_000+iter*100+i))))
				}
				if err := b.Send(); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				for _, call := range calls {
					if _, err := call.Wait(); err != nil {
						select {
						case errs <- err:
						default:
						}
					}
				}
			}
		}(w)
	}
	time.Sleep(duration)
	during := f.gw.Stats() // snapshot while the fleet is loaded
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("load error: %v", err)
	}

	var total int64
	counts := make([]int64, 4)
	for i, c := range f.served {
		counts[i] = c.Load()
		total += counts[i]
	}
	t.Logf("entries served per backend: %v (total %d); effective weights under load: %v %v %v %v",
		counts, total,
		during.Backends[0].EffWeight, during.Backends[1].EffWeight,
		during.Backends[2].EffWeight, during.Backends[3].EffWeight)
	if total == 0 {
		t.Fatal("no entries served")
	}
	// The slow backend's effective weight must have dropped below its
	// configured weight 1 while loaded.
	if ew := during.Backends[slow].EffWeight; ew >= 0.95 {
		t.Errorf("slow backend EffWeight = %v under load, want < 0.95", ew)
	}
	// And it must receive materially less than its fair 1/4 share.
	fair := total / 4
	if counts[slow] >= fair*3/4 {
		t.Errorf("slow backend served %d entries, want < 3/4 of fair share %d", counts[slow], fair)
	}
	for i := 0; i < 4; i++ {
		if i != slow && counts[i] <= counts[slow] {
			t.Errorf("fast backend %d served %d entries, slow served %d — want strictly more", i, counts[i], counts[slow])
		}
	}
}

func TestDrainReleasesPoolAndResumeRedials(t *testing.T) {
	f := newAdminFarm(t, 2, nil, nil) // default round-robin shards across both
	cli := f.client(t, nil)

	send := func(n int) {
		t.Helper()
		b := cli.NewBatch()
		var calls []*core.Call
		for i := 0; i < n; i++ {
			calls = append(calls, b.Add("Echo", "echo", soapenc.F("i", int64(i))))
		}
		if err := b.Send(); err != nil {
			t.Fatal(err)
		}
		for i, call := range calls {
			if _, err := call.Wait(); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
	}

	send(8)
	waitFor(t, 2*time.Second, "b0 to pool a keep-alive connection", func() bool {
		return f.gw.Stats().Backends[0].Idle > 0
	})

	if err := f.gw.DrainBackend("b0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "b0 drain to complete and release its pool", func() bool {
		st := f.gw.Stats()
		return st.Backends[0].Draining && st.Backends[0].InFlight == 0 &&
			st.Backends[0].Idle == 0 && st.Drained == 1
	})

	// While drained, new work goes exclusively to b1.
	ex0 := f.gw.Stats().Backends[0].Exchanges
	before := f.served[0].Load()
	send(8)
	st := f.gw.Stats()
	if st.Backends[0].Exchanges != ex0 {
		t.Errorf("drained backend exchanges grew %d -> %d", ex0, st.Backends[0].Exchanges)
	}
	if got := f.served[0].Load(); got != before {
		t.Errorf("drained backend served %d new entries, want 0", got-before)
	}

	// Resume re-admits it; connections re-dial on demand.
	if err := f.gw.ResumeBackend("b0"); err != nil {
		t.Fatal(err)
	}
	send(8)
	st = f.gw.Stats()
	if st.Backends[0].Draining {
		t.Error("b0 still marked draining after resume")
	}
	if st.Backends[0].Exchanges == ex0 {
		t.Error("resumed backend received no exchanges")
	}
	if f.served[0].Load() == before {
		t.Error("resumed backend served no entries")
	}

	// Unknown names are errors.
	if err := f.gw.DrainBackend("nope"); err == nil {
		t.Error("DrainBackend(nope) = nil error")
	}
	if err := f.gw.ResumeBackend("nope"); err == nil {
		t.Error("ResumeBackend(nope) = nil error")
	}
}

func TestDrainUnderLoadNoLossNoDup(t *testing.T) {
	// The headline chaos guarantee: cycling graceful drains through a loaded
	// fleet loses nothing and duplicates nothing. Every call is validated
	// against its own unique payload — a lost entry surfaces as a missing
	// response slot (transport error), a duplicated or misrouted one as a
	// wrong value. Drains are graceful, so unlike the crash-chaos suite the
	// bar is zero errors of any kind.
	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	f := newAdminFarm(t, 3, nil, func(cfg *Config) { cfg.Policy = Weighted })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	var delivered atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := f.client(t, nil)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := cli.NewBatch()
				calls := make([]*core.Call, 10)
				for i := range calls {
					calls[i] = b.Add("Echo", "echo", soapenc.F("v", int64(w*1_000_000+iter*1_000+i)))
				}
				if err := b.Send(); err != nil {
					select {
					case errCh <- fmt.Errorf("worker %d send: %w", w, err):
					default:
					}
					return
				}
				for i, call := range calls {
					want := int64(w*1_000_000 + iter*1_000 + i)
					results, err := call.Wait()
					if err != nil {
						select {
						case errCh <- fmt.Errorf("worker %d call %d: %w", w, i, err):
						default:
						}
						continue
					}
					if len(results) != 1 || !soapenc.Equal(results[0].Value, want) {
						select {
						case errCh <- fmt.Errorf("worker %d call %d: got %v, want %d", w, i, results, want):
						default:
						}
						continue
					}
					delivered.Add(1)
				}
			}
		}(w)
	}

	// Cycle a graceful drain through every backend while the load runs,
	// never taking more than one out at a time.
	names := []string{"b0", "b1", "b2"}
	for c := 0; c < cycles; c++ {
		for bi, name := range names {
			drainedBefore := f.gw.Stats().Drained
			if err := f.gw.DrainBackend(name); err != nil {
				t.Fatal(err)
			}
			// Wait for the drain to COMPLETE — the Drained counter ticks when
			// the waiter has seen in-flight hit zero and released the pool —
			// not merely for in-flight to read zero, which the waiter (on its
			// own ticker) may not have observed yet.
			waitFor(t, 5*time.Second, name+" drain to complete under load", func() bool {
				st := f.gw.Stats()
				bs := st.Backends[bi]
				return bs.Draining && bs.InFlight == 0 && st.Drained > drainedBefore
			})
			time.Sleep(20 * time.Millisecond) // hold it out while traffic flows
			if err := f.gw.ResumeBackend(name); err != nil {
				t.Fatal(err)
			}
			ex := f.gw.Stats().Backends[bi].Exchanges
			waitFor(t, 5*time.Second, name+" to take traffic after resume", func() bool {
				return f.gw.Stats().Backends[bi].Exchanges > ex
			})
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if delivered.Load() == 0 {
		t.Fatal("no calls delivered")
	}
	st := f.gw.Stats()
	if st.Drained < int64(cycles*len(names)) {
		t.Errorf("Drained = %d, want >= %d", st.Drained, cycles*len(names))
	}
	t.Logf("delivered %d calls across %d drain cycles (drained=%d, failovers=%d)",
		delivered.Load(), cycles*len(names), st.Drained, st.Failovers)
}

func TestMembershipAddRemoveUnderLoad(t *testing.T) {
	f := newAdminFarm(t, 2, nil, func(cfg *Config) { cfg.Policy = Weighted })

	// A third admin-enabled backend stood up out of band.
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	count := &atomic.Int64{}
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "counting echo")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		count.Add(1)
		return params, nil
	}, "identity")
	echo.MarkIdempotent("echo")
	srv, err := core.NewServer(core.ServerConfig{Container: c, AppWorkers: 8, AppQueue: 64, AdminService: true})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); link.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli := f.client(t, nil)
		for iter := 0; ; iter++ {
			select {
			case <-stop:
				return
			default:
			}
			b := cli.NewBatch()
			calls := make([]*core.Call, 8)
			for i := range calls {
				calls[i] = b.Add("Echo", "echo", soapenc.F("v", int64(iter*100+i)))
			}
			if err := b.Send(); err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			for i, call := range calls {
				results, err := call.Wait()
				if err != nil {
					select {
					case errCh <- fmt.Errorf("iter %d call %d: %w", iter, i, err):
					default:
					}
					continue
				}
				want := int64(iter*100 + i)
				if len(results) != 1 || !soapenc.Equal(results[0].Value, want) {
					select {
					case errCh <- fmt.Errorf("iter %d call %d: got %v, want %d", iter, i, results, want):
					default:
					}
				}
			}
		}
	}()

	// Join the new backend: it starts taking entries.
	if err := f.gw.AddBackend(BackendConfig{Name: "b2", Dial: link.Dial}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "added backend to appear in stats", func() bool {
		return len(f.gw.Stats().Backends) == 3
	})
	waitFor(t, 5*time.Second, "added backend to serve entries", func() bool {
		return count.Load() > 0
	})

	// Duplicate names and missing dialers are rejected without disturbing
	// the live set.
	if err := f.gw.AddBackend(BackendConfig{Name: "b1", Dial: link.Dial}); err == nil {
		t.Error("AddBackend with duplicate name = nil error")
	}
	if err := f.gw.AddBackend(BackendConfig{Name: "b9"}); err == nil {
		t.Error("AddBackend without dialer = nil error")
	}

	// Remove one of the originals mid-load: it vanishes from stats, the
	// load keeps flowing over the survivors.
	if err := f.gw.RemoveBackend("b0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "removed backend to leave stats", func() bool {
		st := f.gw.Stats()
		if len(st.Backends) != 2 {
			return false
		}
		for _, bs := range st.Backends {
			if bs.Name == "b0" {
				return false
			}
		}
		return true
	})
	if err := f.gw.RemoveBackend("b0"); err == nil {
		t.Error("second RemoveBackend(b0) = nil error")
	}
	served1 := f.served[1].Load()
	waitFor(t, 5*time.Second, "survivors to serve entries after removal", func() bool {
		return f.served[1].Load() > served1
	})

	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
