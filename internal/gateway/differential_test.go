package gateway

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
)

// The differential suite pins the gateway's headline guarantee: a packed
// envelope answered through the gateway over K backends is byte-identical
// to the same envelope answered by one direct server — across SOAP
// versions, randomized entry mixes, randomized per-backend completion
// orders (nap entries), and injected per-entry faults. The generator is
// seeded, so failures replay.

// direct is a standalone SPI server reachable over its own link.
type direct struct {
	link *netsim.Link
}

func newDirect(tb testing.TB) *direct {
	tb.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := core.NewServer(core.ServerConfig{
		Container: testContainer(tb), AppWorkers: 8, AppQueue: 64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(lis)
	tb.Cleanup(func() { srv.Close(); link.Close() })
	return &direct{link: link}
}

// exchange POSTs one document and snapshots the reply: status, content
// type, and a copy of the body (the original may alias a pooled buffer).
type reply struct {
	status int
	ct     string
	body   []byte
}

func post(tb testing.TB, c *httpx.Client, target, ct string, doc []byte) reply {
	tb.Helper()
	resp, err := c.Post(target, ct, doc)
	if err != nil {
		tb.Fatalf("POST %s: %v", target, err)
	}
	defer resp.Release()
	return reply{
		status: resp.StatusCode,
		ct:     resp.Header.Get("Content-Type"),
		body:   append([]byte(nil), resp.Body...),
	}
}

func diffReplies(t *testing.T, label string, doc []byte, want, got reply) {
	t.Helper()
	if want.status != got.status {
		t.Errorf("%s: status direct=%d gateway=%d", label, want.status, got.status)
	}
	if want.ct != got.ct {
		t.Errorf("%s: content type direct=%q gateway=%q", label, want.ct, got.ct)
	}
	if !bytes.Equal(want.body, got.body) {
		t.Errorf("%s: body diverged\nrequest: %s\ndirect:  %s\ngateway: %s",
			label, doc, want.body, got.body)
	}
}

// escapeText makes an arbitrary payload safe as XML character data.
var escapeText = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

// randomPayload mixes plain characters with ones the emitter must escape
// and the tokenizer must decode, including the empty string.
func randomPayload(rng *rand.Rand) string {
	if rng.Intn(6) == 0 {
		return ""
	}
	const chars = "abc XYZ09&<>'\"éλ"
	n := rng.Intn(12) + 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		r := []rune(chars)
		b.WriteRune(r[rng.Intn(len(r))])
	}
	return b.String()
}

// randomEntry emits one Parallel_Method child. withService controls the
// spi:service attribute (the bare pack endpoint has no default service, so
// an entry without one faults — also covered deliberately below).
func randomEntry(rng *rand.Rand, withService bool) string {
	var attrs strings.Builder
	attrs.WriteString(` xmlns:m="urn:spi:Echo"`)
	service := "Echo"
	if r := rng.Intn(10); r == 0 {
		service = "Ghost" // unknown service: per-item Client fault
	}
	if withService && rng.Intn(10) != 0 {
		fmt.Fprintf(&attrs, ` spi:service=%q`, service)
	}
	switch rng.Intn(8) {
	case 0:
		attrs.WriteString(` spi:id="x"`) // unparseable id: positional per-item fault
	case 1, 2:
		fmt.Fprintf(&attrs, ` spi:id="%d"`, rng.Intn(40)) // explicit, duplicates allowed
	}

	op := "echo"
	switch rng.Intn(12) {
	case 0:
		op = "fail"
	case 1:
		op = "empty"
	case 2:
		op = "none"
	case 3:
		op = "ghostOp" // unknown operation: per-item Client fault
	case 4, 5:
		// nap randomizes the completion order across backends and app
		// workers; the response must come back in slot order regardless.
		return fmt.Sprintf(`<m:nap%s><ms xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:int">%d</ms></m:nap>`,
			attrs.String(), rng.Intn(8))
	}
	var params strings.Builder
	for i, n := 0, rng.Intn(3); i < n; i++ {
		fmt.Fprintf(&params, "<p%d>%s</p%d>", i, escapeText.Replace(randomPayload(rng)), i)
	}
	return fmt.Sprintf("<m:%s%s>%s</m:%s>", op, attrs.String(), params.String(), op)
}

// packedDoc wraps entries in a packed envelope of the given version.
func packedDoc(v soap.Version, entries []string) []byte {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>`)
	b.WriteString(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + v.Namespace() + `">`)
	b.WriteString(`<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">`)
	for _, e := range entries {
		b.WriteString(e)
	}
	b.WriteString(`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	return []byte(b.String())
}

func TestDifferentialPackedRandomized(t *testing.T) {
	docsPerCase := 30
	if testing.Short() {
		docsPerCase = 8
	}
	for _, k := range []int{1, 2, 3, 4} {
		for _, v := range []soap.Version{soap.V11, soap.V12} {
			t.Run(fmt.Sprintf("backends=%d/%s", k, v), func(t *testing.T) {
				t.Parallel()
				seed := int64(1000*k + int(v))
				rng := rand.New(rand.NewSource(seed))
				d := newDirect(t)
				f := newFarm(t, k, nil)
				dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 10 * time.Second}
				gc := f.raw()
				defer dc.Close()
				defer gc.Close()

				for i := 0; i < docsPerCase; i++ {
					// Alternate between the bare pack endpoint (entries must
					// name their service; unannotated ones fault) and a
					// service path that supplies the default.
					target, withService := "/services", true
					if rng.Intn(3) == 0 {
						target = "/services/Echo"
						withService = rng.Intn(2) == 0
					}
					n := rng.Intn(9) // 0 entries: "has no requests" fault parity
					entries := make([]string, n)
					for j := range entries {
						entries[j] = randomEntry(rng, withService)
					}
					doc := packedDoc(v, entries)
					label := fmt.Sprintf("seed=%d doc=%d target=%s", seed, i, target)
					diffReplies(t, label, doc,
						post(t, dc, target, v.ContentType(), doc),
						post(t, gc, target, v.ContentType(), doc))
				}
			})
		}
	}
}

func TestDifferentialPolicies(t *testing.T) {
	// The response bytes must not depend on how entries were sharded.
	for _, p := range []Policy{RoundRobin, LeastLoaded, OpAffinity} {
		t.Run(p.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			d := newDirect(t)
			f := newFarm(t, 3, func(cfg *Config) { cfg.Policy = p })
			dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 10 * time.Second}
			gc := f.raw()
			defer dc.Close()
			defer gc.Close()
			for i := 0; i < 10; i++ {
				n := rng.Intn(8) + 1
				entries := make([]string, n)
				for j := range entries {
					entries[j] = randomEntry(rng, true)
				}
				doc := packedDoc(soap.V11, entries)
				label := fmt.Sprintf("policy=%s doc=%d", p, i)
				diffReplies(t, label, doc,
					post(t, dc, "/services", soap.V11.ContentType(), doc),
					post(t, gc, "/services", soap.V11.ContentType(), doc))
			}
		})
	}
}

func TestDifferentialWeighted(t *testing.T) {
	// With all weights equal, Weighted's load-per-weight score degenerates
	// to LeastLoaded's plain load comparison, and both scan first-min — so
	// on an identical seeded workload the two policies must make the exact
	// same picks (per-backend exchange counts match) and return byte-equal
	// responses. This pins the comparison in assign(): any drift in the
	// scoring or scan order shows up as a count mismatch here.
	for _, k := range []int{1, 2, 3, 4} {
		for _, v := range []soap.Version{soap.V11, soap.V12} {
			t.Run(fmt.Sprintf("backends=%d/%s", k, v), func(t *testing.T) {
				t.Parallel()
				seed := int64(4000*k + int(v))
				rng := rand.New(rand.NewSource(seed))
				fw := newFarm(t, k, func(cfg *Config) { cfg.Policy = Weighted })
				fl := newFarm(t, k, func(cfg *Config) { cfg.Policy = LeastLoaded })
				wc, lc := fw.raw(), fl.raw()
				defer wc.Close()
				defer lc.Close()

				docs := make([][]byte, 12)
				for i := range docs {
					n := rng.Intn(8) + 1
					entries := make([]string, n)
					for j := range entries {
						entries[j] = randomEntry(rng, true)
					}
					docs[i] = packedDoc(v, entries)
				}
				for i, doc := range docs {
					label := fmt.Sprintf("seed=%d doc=%d", seed, i)
					rw := post(t, wc, "/services", v.ContentType(), doc)
					rl := post(t, lc, "/services", v.ContentType(), doc)
					diffReplies(t, label, doc, rl, rw)
				}
				sw, sl := fw.gw.Stats(), fl.gw.Stats()
				for i := range sw.Backends {
					if sw.Backends[i].Exchanges != sl.Backends[i].Exchanges {
						t.Errorf("backend %d: weighted exchanges = %d, least-loaded = %d — picks diverged",
							i, sw.Backends[i].Exchanges, sl.Backends[i].Exchanges)
					}
				}
			})
		}
	}
}

func TestDifferentialWholeMessageFaults(t *testing.T) {
	d := newDirect(t)
	f := newFarm(t, 2, nil)
	dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 5 * time.Second}
	gc := f.raw()
	defer dc.Close()
	defer gc.Close()

	single := `<m:echo xmlns:m="urn:spi:Echo"><msg>hello</msg></m:echo>`
	cases := []struct {
		name string
		doc  []byte
	}{
		{"garbage", []byte("this is not xml at all")},
		{"truncated", []byte(`<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `"><SOAP-ENV:Body>`)},
		{"version-mismatch", []byte(`<?xml version="1.0"?><E:Envelope xmlns:E="urn:not-soap"><E:Body></E:Body></E:Envelope>`)},
		{"empty-pack", packedDoc(soap.V11, nil)},
		{"empty-pack-12", packedDoc(soap.V12, nil)},
		{"two-body-entries", []byte(`<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `"><SOAP-ENV:Body>` + single + single + `</SOAP-ENV:Body></SOAP-ENV:Envelope>`)},
		{"no-body", []byte(`<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `"></SOAP-ENV:Envelope>`)},
	}
	for _, c := range cases {
		diffReplies(t, c.name, c.doc,
			post(t, dc, "/services", soap.V11.ContentType(), c.doc),
			post(t, gc, "/services", soap.V11.ContentType(), c.doc))
	}
}

func TestDifferentialProxyPaths(t *testing.T) {
	// Non-packed POSTs and GETs ride the proxy path; with identical
	// containers on backend and direct server the bytes must match too.
	d := newDirect(t)
	f := newFarm(t, 2, nil)
	dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 5 * time.Second}
	gc := f.raw()
	defer dc.Close()
	defer gc.Close()

	single := []byte(`<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `"><SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><msg>via proxy &amp; back</msg></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	diffReplies(t, "single-request", single,
		post(t, dc, "/services/Echo", soap.V11.ContentType(), single),
		post(t, gc, "/services/Echo", soap.V11.ContentType(), single))

	for _, target := range []string{"/services/", "/services/Echo"} {
		dresp, err := dc.Do(httpx.NewRequest("GET", target, nil))
		if err != nil {
			t.Fatal(err)
		}
		want := reply{dresp.StatusCode, dresp.Header.Get("Content-Type"), append([]byte(nil), dresp.Body...)}
		dresp.Release()
		gresp, err := gc.Do(httpx.NewRequest("GET", target, nil))
		if err != nil {
			t.Fatal(err)
		}
		got := reply{gresp.StatusCode, gresp.Header.Get("Content-Type"), append([]byte(nil), gresp.Body...)}
		gresp.Release()
		diffReplies(t, "GET "+target, nil, want, got)
	}
}
