package gateway_test

import (
	"log"
	"net"
	"time"

	"repro/internal/gateway"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// sharedContainer is the service catalogue both the backends and the
// gateway load: backends execute the handlers, while the gateway only
// reads operation metadata (idempotency flags that gate failover).
func sharedContainer() *registry.Container {
	c := registry.NewContainer()
	svc := c.MustAddService("Echo", "urn:example:Echo", "example service")
	svc.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "returns its parameters")
	svc.MarkIdempotent("echo")
	return c
}

// Constructing a gateway over a pool of backend SPI servers: packed
// envelopes are sharded across the pool, everything else is proxied whole,
// so clients point at the gateway exactly as they would at one server.
func ExampleNew() {
	dial := func(addr string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	gw, err := gateway.New(gateway.Config{
		Backends: []gateway.BackendConfig{
			{Name: "b0", Dial: dial("10.0.0.1:8080")},
			{Name: "b1", Dial: dial("10.0.0.2:8080")},
		},
		Policy:          gateway.LeastLoaded,
		Registry:        sharedContainer(),
		ExchangeTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", ":8080")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	log.Fatal(gw.Serve(lis))
}

// Cross-client coalescing: single-call envelopes from clients that never
// adopted the pack interface are merged into synthetic packed batches.
// Calls targeting the same operation pool for up to FlushWindow (sooner
// when a member's SPI-Deadline is tight, or when the size/byte caps
// fill), then ride the normal scatter path; each client's reply stays
// byte-identical to the uncoalesced path.
func ExampleNew_coalescing() {
	gw, err := gateway.New(gateway.Config{
		Backends: []gateway.BackendConfig{
			{Name: "b0", Dial: func() (net.Conn, error) { return net.Dial("tcp", "10.0.0.1:8080") }},
		},
		Registry: sharedContainer(),
		Coalesce: gateway.CoalesceConfig{
			Enabled:     true,
			FlushWindow: time.Millisecond, // batch formation window
			MaxBatch:    64,               // flush immediately at 64 members
			MaxBytes:    256 << 10,        // ... or at 256 KiB of request bodies
			// Calls with less SPI-Deadline budget than this never park:
			MinDeadlineBudget: 10 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
}
