package gateway

import (
	"bytes"
	"flag"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
)

var updateCorpus = flag.Bool("update", false, "rewrite golden files under testdata/faultcorpus/")

// The gateway half of the fault corpus: scenarios where the gateway itself
// is the fault emitter — no backend reachable (per-item busy fault after
// failover exhaustion), propagated deadline expiring against a silent
// backend (per-item degradation), and the single-call proxy's 502 path.
// Together with internal/core's faultcorpus_test.go these pin every fault
// emission site byte-for-byte across the internal/fault refactor.

func gwCorpusGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "faultcorpus", name)
	if *updateCorpus {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response bytes diverged from golden %s\n got: %s\nwant: %s", name, got, want)
	}
}

func gwCorpusEntry(id int, op string) string {
	return `<m:` + op + ` xmlns:m="urn:spi:Echo" spi:id="` + string(rune('0'+id)) + `" spi:service="Echo"></m:` + op + `>`
}

func TestFaultCorpusNoBackend(t *testing.T) {
	// Every dial to the only backend is refused; with a single-attempt
	// retry policy the shard degrades straight to the per-item busy fault
	// carrying the dial error. Fresh farm per version so breaker state from
	// the first probe cannot leak into the second.
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		f := newFarm(t, 1, func(cfg *Config) {
			cfg.Retry = &core.RetryPolicy{MaxAttempts: 1}
		})
		f.links[0].FailDials(1 << 20)
		doc := packedDoc(v, []string{gwCorpusEntry(0, "echo")})
		resp, err := f.raw().Post("/services/", v.ContentType(), doc)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status = %d, want 200 (degraded, not failed)", v, resp.StatusCode)
		}
		gwCorpusGolden(t, "gw_no_backend_"+gwCorpusSuffix(v), resp.Body)
	}
}

// silentBackend accepts connections and reads forever without ever
// answering — the shape of a backend that wedged after accept.
func silentBackend(t *testing.T) *netsim.Link {
	t.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	t.Cleanup(func() { link.Close() })
	return link
}

func TestFaultCorpusDeadlineDegrade(t *testing.T) {
	// The backend accepts but never answers; the propagated SPI-Deadline
	// expires at the gateway, which degrades every slot with the server's
	// own per-item timeout fault text.
	for _, v := range []soap.Version{soap.V11, soap.V12} {
		link := silentBackend(t)
		gw, err := New(Config{
			Backends:        []BackendConfig{{Name: "b0", Dial: link.Dial}},
			Registry:        testContainer(t),
			Retry:           &core.RetryPolicy{MaxAttempts: 1},
			ExchangeTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		gwLink := netsim.NewLink(netsim.Fast())
		glis, err := gwLink.Listen()
		if err != nil {
			t.Fatal(err)
		}
		go gw.Serve(glis)
		t.Cleanup(func() { gw.Close(); gwLink.Close() })

		doc := packedDoc(v, []string{gwCorpusEntry(0, "echo"), gwCorpusEntry(1, "nap")})
		raw := &httpx.Client{Dial: gwLink.Dial, KeepAlive: true, Timeout: 5 * time.Second}
		resp, err := raw.Post("/services/", v.ContentType(), doc, core.HeaderDeadline, "400")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: status = %d, want 200 (degraded, not failed)", v, resp.StatusCode)
		}
		gwCorpusGolden(t, "gw_deadline_degrade_"+gwCorpusSuffix(v), resp.Body)
	}
}

func TestFaultCorpusProxy502(t *testing.T) {
	// A single (unpacked) call proxied to an unreachable backend surfaces
	// as a plain 502 with the exchange error — the one fault surface that
	// is deliberately not a SOAP envelope.
	f := newFarm(t, 1, func(cfg *Config) {
		cfg.Retry = &core.RetryPolicy{MaxAttempts: 1}
	})
	f.links[0].FailDials(1 << 20)
	doc := `<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + soap.V11.Namespace() + `">` +
		`<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`
	resp, err := f.raw().Post("/services/Echo", soap.V11.ContentType(), []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	gwCorpusGolden(t, "gw_proxy_502.txt", resp.Body)
}

func gwCorpusSuffix(v soap.Version) string {
	if v == soap.V12 {
		return "12.xml"
	}
	return "11.xml"
}
