package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/trace"
)

// Config wires a Gateway.
type Config struct {
	// Backends lists the pool members. At least one is required.
	Backends []BackendConfig
	// Policy selects the sharding strategy (default RoundRobin).
	Policy Policy

	// PathPrefix must match the backends' service mount point
	// (default "/services/"). Packed envelopes POST to the bare prefix.
	PathPrefix string

	// Registry, when set, supplies operation metadata: idempotency flags
	// that widen sub-batch failover (registry.Operation.Idempotent). The
	// gateway never executes operations itself, so the container's
	// handlers are ignored — deployments typically share the service
	// definitions with their backends.
	Registry *registry.Container

	// Coalesce, when enabled, merges concurrent single-call envelopes
	// into synthetic packed batches before scattering them — packing as
	// an infrastructure optimization for clients that never opt in. See
	// CoalesceConfig.
	Coalesce CoalesceConfig

	// Passthrough enables the zero-copy fast path for single-call
	// envelopes: the request body is spliced to one healthy backend and
	// the reply spliced back without the gateway parsing the envelope —
	// header rewrite only, and the backend's response buffer is aliased
	// straight into the relay (its release is chained to the transport
	// write). Engages only when Coalesce is off — coalescing needs the
	// parsed form — and never for packed envelopes (detected by a
	// conservative byte sniff; false positives just take the parsed
	// path). Fault replies remain byte-identical either way because the
	// backend produces exactly the bytes a direct server would.
	Passthrough bool

	// Retry governs sub-batch failover between backends: a failed
	// sub-batch is re-sent to another available backend when the failure
	// class allows it (connect failures and Server.Busy always; other
	// transport losses only when every operation in the sub-batch is
	// idempotent per Registry). Nil uses core.DefaultRetryPolicy;
	// MaxAttempts < 2 disables failover.
	Retry *core.RetryPolicy

	// FailureThreshold is the consecutive-failure count that ejects a
	// backend (default 3).
	FailureThreshold int
	// ReprobeAfter is how long an ejected backend sits out before the
	// circuit half-opens (default 500ms).
	ReprobeAfter time.Duration
	// ProbeInterval enables active health checks (a GET of the services
	// listing) at the given period; zero leaves health passive.
	ProbeInterval time.Duration

	// ExchangeTimeout bounds one sub-batch exchange with a backend; zero
	// means only the client's propagated deadline applies.
	ExchangeTimeout time.Duration
	// PipelineBackends, when > 0, drives backend connections pipelined:
	// up to this many exchanges share one keep-alive connection, FIFO.
	// Backend servers answer pipelined bursts in order (httpx
	// Server.MaxPipeline), so pools shrink and sub-batch fan-out stops
	// queueing on free connections. Zero keeps one exchange per
	// connection.
	PipelineBackends int
	// MaxIdlePerBackend caps each backend's keep-alive pool (default 16).
	MaxIdlePerBackend int
	// MaxActivePerBackend bounds concurrent exchanges per backend; zero
	// means unbounded.
	MaxActivePerBackend int

	// DeadlineGrace is subtracted from a propagated SPI-Deadline budget so
	// a degraded (partial) response still reaches the client in time.
	// Zero applies the server's default policy (budget/5, capped 100ms).
	DeadlineGrace time.Duration

	// MaxBodyBytes caps request and backend-response bodies; zero means
	// the httpx default.
	MaxBodyBytes int64

	// Tracer, when non-nil, records gateway.scatter / gateway.backend /
	// gateway.gather spans and per-backend in-flight gauges.
	Tracer *trace.Tracer
	// DebugEndpoints serves GET /spi/stats with gateway and per-backend
	// counters.
	DebugEndpoints bool

	// Membership enables the control-plane poller: backend Admin services
	// are polled on a jittered interval and the results feed the Weighted
	// policy's effective weights and the backends' advertised drain state.
	// See MembershipConfig and docs/CONTROL_PLANE.md.
	Membership MembershipConfig

	// AdminService self-hosts the gateway's own Admin SOAP service
	// (GetStats/SetState) at PathPrefix+"Admin", served by the gateway
	// itself rather than proxied to a backend — so fleets of gateways are
	// pollable by exporters and upstream gateways exactly like servers.
	AdminService bool
	// AdminWeight is the gateway's initial advertised weight (default 1).
	AdminWeight int
}

// Gateway is the scatter–gather front tier. Create with New.
type Gateway struct {
	cfg     Config
	httpSrv *httpx.Server
	rr      uint64 // round-robin cursor

	// bmu guards the live membership set. Backends carry monotonically
	// increasing indices (nextIndex) that are never reused, so response
	// gathering keyed by backend index stays unambiguous across
	// add/remove churn. Request paths work on snapshot() copies.
	bmu       sync.RWMutex
	backends  []*backend
	nextIndex int

	adminSrv   *core.Server // self-hosted Admin endpoint; nil unless AdminService
	adminState *admin.State // nil unless AdminService

	envelopes    metrics.Counter // POSTed envelopes accepted
	packed       metrics.Counter // of which packed (scattered)
	proxied      metrics.Counter // of which proxied whole
	passthroughs metrics.Counter // of the proxied, spliced zero-copy (no envelope parse)
	faults       metrics.Counter // whole-message fault responses
	itemFaults   metrics.Counter // per-item faults in packed responses
	faultCodes   fault.Counters  // faults the gateway itself originated, per wire code
	scattered    metrics.Counter // sub-batches sent
	failovers    metrics.Counter // sub-batches re-sent to another backend
	degraded     metrics.Counter // slots degraded at the deadline

	coalescer           *coalescer
	coalesced           metrics.Counter // single calls merged into batches
	coalesceBatches     metrics.Counter // synthetic batches flushed
	coalescePassthrough metrics.Counter // single calls that bypassed coalescing
	coalesceSizes       [len(batchSizeBuckets)]metrics.Counter

	probeStop chan struct{}
	probeWG   sync.WaitGroup

	memberStop chan struct{} // closed by stop(); nil until membership starts
	memberWG   sync.WaitGroup
	stopCh     chan struct{} // closed by stop(); bounds drain waiters
	stopOnce   sync.Once
	drainWG    sync.WaitGroup
	drained    metrics.Counter // backends fully drained (in-flight hit zero)
}

// New validates the configuration and builds the gateway with one
// keep-alive connection pool per backend.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.PathPrefix == "" {
		cfg.PathPrefix = "/services/"
	}
	if !strings.HasSuffix(cfg.PathPrefix, "/") {
		cfg.PathPrefix += "/"
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ReprobeAfter <= 0 {
		cfg.ReprobeAfter = 500 * time.Millisecond
	}
	if cfg.Retry == nil {
		cfg.Retry = core.DefaultRetryPolicy()
	}
	cfg.Membership = cfg.Membership.withDefaults()
	g := &Gateway{cfg: cfg, stopCh: make(chan struct{})}
	for i, bc := range cfg.Backends {
		if _, err := g.newBackend(bc); err != nil {
			return nil, fmt.Errorf("gateway: backend %d: %w", i, err)
		}
	}
	g.httpSrv = &httpx.Server{
		Handler:      g.Handle,
		MaxBodyBytes: cfg.MaxBodyBytes,
	}
	if cfg.AdminService {
		adminC := registry.NewContainer()
		g.adminState = admin.NewState(int64(cfg.AdminWeight))
		if err := admin.Deploy(adminC, g, g.adminState); err != nil {
			return nil, err
		}
		// A coupled embedded server: the Admin operations are cheap reads
		// and writes, so they execute inline on the protocol goroutine.
		srv, err := core.NewServer(core.ServerConfig{
			Container:  adminC,
			Coupled:    true,
			PathPrefix: cfg.PathPrefix,
			Tracer:     cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		g.adminSrv = srv
	}
	if cfg.Coalesce.Enabled {
		g.coalescer = newCoalescer(g, cfg.Coalesce)
	}
	if cfg.ProbeInterval > 0 {
		g.probeStop = make(chan struct{})
		g.probeWG.Add(1)
		go g.probeLoop()
	}
	if cfg.Membership.Enabled {
		g.memberStop = make(chan struct{})
		g.memberWG.Add(1)
		go g.membershipLoop()
	}
	return g, nil
}

// newBackend validates one BackendConfig, builds its pool member and
// appends it to the live set under a fresh monotonic index.
func (g *Gateway) newBackend(bc BackendConfig) (*backend, error) {
	if bc.Dial == nil && bc.DialCtx == nil {
		return nil, fmt.Errorf("no dialer")
	}
	weight := int64(bc.Weight)
	if weight < 1 {
		weight = 1
	}
	g.bmu.Lock()
	defer g.bmu.Unlock()
	index := g.nextIndex
	g.nextIndex++
	name := bc.Name
	if name == "" {
		name = fmt.Sprintf("backend%d", index)
	}
	for _, other := range g.backends {
		if other.name == name {
			return nil, fmt.Errorf("backend name %q already in use", name)
		}
	}
	b := &backend{
		index:  index,
		name:   name,
		weight: weight,
		client: &httpx.Client{
			Dial:         bc.Dial,
			DialCtx:      bc.DialCtx,
			KeepAlive:    true,
			MaxIdle:      g.cfg.MaxIdlePerBackend,
			MaxActive:    g.cfg.MaxActivePerBackend,
			Timeout:      g.cfg.ExchangeTimeout,
			MaxBodyBytes: g.cfg.MaxBodyBytes,
			Pipeline:     g.cfg.PipelineBackends > 0,
			MaxPerConn:   g.cfg.PipelineBackends,
		},
	}
	g.backends = append(g.backends, b)
	return b, nil
}

// snapshot returns the live membership set. The slice is a copy; the
// backends are shared. Request paths hold a snapshot for their whole
// lifetime, so a concurrent remove never yanks a backend out from under an
// in-flight scatter — the removed backend just stops appearing in new
// snapshots.
func (g *Gateway) snapshot() []*backend {
	g.bmu.RLock()
	defer g.bmu.RUnlock()
	return append([]*backend(nil), g.backends...)
}

// backendByName finds a live backend.
func (g *Gateway) backendByName(name string) (*backend, error) {
	g.bmu.RLock()
	defer g.bmu.RUnlock()
	for _, b := range g.backends {
		if b.name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("gateway: no backend named %q", name)
}

// Serve accepts connections on l until Close.
func (g *Gateway) Serve(l net.Listener) error {
	return g.httpSrv.Serve(l)
}

// Close shuts the gateway down: the listener stops, backend pools drain.
func (g *Gateway) Close() error {
	err := g.httpSrv.Close()
	g.stop()
	return err
}

// Shutdown drains gracefully: in-flight exchanges finish (up to the
// timeout) before backend pools close.
func (g *Gateway) Shutdown(timeout time.Duration) error {
	err := g.httpSrv.Shutdown(timeout)
	g.stop()
	return err
}

func (g *Gateway) stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	if g.memberStop != nil {
		close(g.memberStop)
		g.memberWG.Wait()
		g.memberStop = nil
	}
	if g.probeStop != nil {
		close(g.probeStop)
		g.probeWG.Wait()
		g.probeStop = nil
	}
	// The coalescer closes before the backend pools so forming batches
	// still have clients to flush through (their exchanges fail fast under
	// the coalescer's cancelled base context).
	if g.coalescer != nil {
		g.coalescer.close()
	}
	g.drainWG.Wait()
	for _, b := range g.snapshot() {
		b.client.Close()
	}
}

// probeLoop actively re-checks backend health at the configured period.
// Only ejected backends are probed — healthy ones prove themselves with
// real traffic.
func (g *Gateway) probeLoop() {
	defer g.probeWG.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-t.C:
			now := time.Now()
			for _, b := range g.snapshot() {
				if b.ejectedNow(now) {
					continue // circuit open: wait out the re-probe timer
				}
				if b.available(now) && b.consecutiveFails() == 0 {
					continue // demonstrably healthy
				}
				ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeInterval)
				b.probe(ctx, g.cfg.PathPrefix, g.cfg.FailureThreshold, g.cfg.ReprobeAfter)
				cancel()
			}
		}
	}
}

// consecutiveFails reads the circuit's failure count.
func (b *backend) consecutiveFails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecFails
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	Policy string

	Envelopes  int64
	Packed     int64
	Proxied    int64
	// Passthrough counts the subset of Proxied that took the zero-copy
	// splice path (no envelope parse at the gateway).
	Passthrough int64
	Faults      int64
	ItemFaults  int64
	// FaultCodes tallies faults the gateway itself originated (parse
	// faults, degrades, shard failures), per wire fault code. Backend
	// faults relayed as raw bytes are not parsed and not counted here.
	FaultCodes []fault.CodeCount `json:",omitempty"`

	Scattered int64
	Failovers int64
	Degraded  int64
	// Drained counts backends whose drain completed: in-flight work hit
	// zero and the keep-alive pool was released.
	Drained int64

	// Coalesced counts single calls merged into synthetic batches;
	// CoalescePassthrough counts single calls that bypassed coalescing
	// (tight deadline, non-coalescible envelope, shutdown) and were
	// proxied whole instead. CoalesceBatches counts flushed batches and
	// CoalesceSizes is their size distribution in power-of-two buckets
	// ("1", "2", "3-4", ..., ">64"); zero buckets are omitted.
	Coalesced           int64
	CoalesceBatches     int64
	CoalescePassthrough int64
	CoalesceSizes       map[string]int64 `json:",omitempty"`

	Backends []BackendStats
}

// Stats snapshots the gateway and every backend.
func (g *Gateway) Stats() Stats {
	now := time.Now()
	st := Stats{
		Policy:      g.cfg.Policy.String(),
		Envelopes:   g.envelopes.Load(),
		Packed:      g.packed.Load(),
		Proxied:     g.proxied.Load(),
		Passthrough: g.passthroughs.Load(),
		Faults:      g.faults.Load(),
		ItemFaults:  g.itemFaults.Load(),
		FaultCodes:  g.faultCodes.Snapshot(),
		Scattered:   g.scattered.Load(),
		Failovers:   g.failovers.Load(),
		Degraded:    g.degraded.Load(),
		Drained:     g.drained.Load(),

		Coalesced:           g.coalesced.Load(),
		CoalesceBatches:     g.coalesceBatches.Load(),
		CoalescePassthrough: g.coalescePassthrough.Load(),
	}
	for i := range g.coalesceSizes {
		if n := g.coalesceSizes[i].Load(); n > 0 {
			if st.CoalesceSizes == nil {
				st.CoalesceSizes = make(map[string]int64)
			}
			st.CoalesceSizes[batchSizeBuckets[i]] = n
		}
	}
	for _, b := range g.snapshot() {
		st.Backends = append(st.Backends, b.stats(now))
	}
	return st
}

// AdminStats builds the control-plane snapshot the gateway's self-hosted
// Admin service advertises: the gateway has no application stage, so the
// worker/queue fields stay zero and Inflight counts outstanding backend
// sub-batches. Requests counts units of backend work dispatched (proxied
// envelopes plus scattered sub-batches).
func (g *Gateway) AdminStats() admin.Stats {
	out := admin.Stats{
		Role:       "gateway",
		Weight:     1,
		Envelopes:  g.envelopes.Load(),
		Requests:   g.proxied.Load() + g.scattered.Load(),
		Packed:     g.packed.Load(),
		Faults:     g.faults.Load(),
		ItemFaults: g.itemFaults.Load(),
		FaultCodes: admin.FaultCodes(g.faultCodes.Snapshot()),
	}
	if g.adminState != nil {
		out.Weight, out.Draining = g.adminState.Snapshot()
	}
	for _, b := range g.snapshot() {
		out.Inflight += b.inflight.Load()
	}
	return out
}

// debugPathPrefix mirrors the server's debug mount point.
const debugPathPrefix = "/spi/"

// statsSnapshot is the /spi/stats JSON shape: the gateway snapshot plus
// the tracer's stage and gauge views when tracing is on.
type statsSnapshot struct {
	Gateway Stats                `json:"gateway"`
	Stages  []trace.StageSummary `json:"stages,omitempty"`
	Gauges  []trace.GaugeValue   `json:"gauges,omitempty"`
}

// handleDebug serves GET /spi/stats.
func (g *Gateway) handleDebug(req *httpx.Request) *httpx.Response {
	target := req.Target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	if target != debugPathPrefix+"stats" {
		resp := httpx.NewResponse(404, []byte("no such debug endpoint\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	snap := statsSnapshot{Gateway: g.Stats()}
	if tr := g.cfg.Tracer; tr.Enabled() {
		snap.Stages = tr.Stages()
		snap.Gauges = tr.Gauges()
	}
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		resp := httpx.NewResponse(500, []byte("stats marshal failed\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	body = append(body, '\n')
	resp := httpx.NewResponse(200, body)
	resp.Header.Set("Content-Type", "application/json")
	return resp
}
