package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// testContainer deploys the ops the gateway suites exercise. Identical
// containers back every server in a farm and the direct server of the
// differential tests, so any byte divergence comes from the gateway.
func testContainer(tb testing.TB) *registry.Container {
	tb.Helper()
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "test echo")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	echo.MustRegister("empty", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return []soapenc.Field{soapenc.F("s", "")}, nil
	}, "empty string result")
	echo.MustRegister("none", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return nil, nil
	}, "no results at all")
	echo.MustRegister("fail", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return nil, errors.New("deliberate failure")
	}, "always faults")
	echo.MustRegister("nap", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		var ms int64
		for _, p := range params {
			if p.Name == "ms" {
				if v, ok := p.Value.(int64); ok {
					ms = v
				}
			}
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return []soapenc.Field{soapenc.F("slept", ms)}, nil
	}, "sleeps ms milliseconds — randomizes completion order")
	echo.MarkIdempotent("echo", "empty", "none", "nap")
	return c
}

// farm is K backend SPI servers behind one gateway, everything linked over
// in-memory networks.
type farm struct {
	gw     *Gateway
	gwLink *netsim.Link
	links  []*netsim.Link
}

// newFarm spins the backends and the gateway. mutate tweaks the gateway
// config after the backends are wired in.
func newFarm(tb testing.TB, k int, mutate func(*Config)) *farm {
	tb.Helper()
	f := &farm{}
	var backends []BackendConfig
	for i := 0; i < k; i++ {
		link := netsim.NewLink(netsim.Fast())
		lis, err := link.Listen()
		if err != nil {
			tb.Fatal(err)
		}
		srv, err := core.NewServer(core.ServerConfig{
			Container: testContainer(tb), AppWorkers: 8, AppQueue: 64,
		})
		if err != nil {
			tb.Fatal(err)
		}
		go srv.Serve(lis)
		tb.Cleanup(func() { srv.Close(); link.Close() })
		f.links = append(f.links, link)
		backends = append(backends, BackendConfig{Name: fmt.Sprintf("b%d", i), Dial: link.Dial})
	}
	cfg := Config{
		Backends:       backends,
		Registry:       testContainer(tb),
		DebugEndpoints: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	f.gw = gw
	f.gwLink = netsim.NewLink(netsim.Fast())
	glis, err := f.gwLink.Listen()
	if err != nil {
		tb.Fatal(err)
	}
	go gw.Serve(glis)
	tb.Cleanup(func() { gw.Close(); f.gwLink.Close() })
	return f
}

// client connects a core SPI client to the gateway endpoint.
func (f *farm) client(tb testing.TB, mutate func(*core.ClientConfig)) *core.Client {
	tb.Helper()
	cfg := core.ClientConfig{Dial: f.gwLink.Dial, Timeout: 5 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	cli, err := core.NewClient(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cli.Close() })
	return cli
}

// raw returns a plain HTTP client pointed at the gateway.
func (f *farm) raw() *httpx.Client {
	return &httpx.Client{Dial: f.gwLink.Dial, KeepAlive: true, Timeout: 5 * time.Second}
}

func TestPackedScatterRoundTrip(t *testing.T) {
	for k := 1; k <= 4; k++ {
		t.Run(fmt.Sprintf("backends=%d", k), func(t *testing.T) {
			f := newFarm(t, k, nil)
			cli := f.client(t, nil)
			b := cli.NewBatch()
			var calls []*core.Call
			for i := 0; i < 12; i++ {
				calls = append(calls, b.Add("Echo", "echo", soapenc.F("i", int64(i))))
			}
			if err := b.Send(); err != nil {
				t.Fatal(err)
			}
			for i, call := range calls {
				results, err := call.Wait()
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if len(results) != 1 || !soapenc.Equal(results[0].Value, int64(i)) {
					t.Errorf("call %d results = %v", i, results)
				}
			}
			st := f.gw.Stats()
			if st.Packed != 1 {
				t.Errorf("Packed = %d, want 1", st.Packed)
			}
			if st.Scattered < 1 || st.Scattered > int64(k) {
				t.Errorf("Scattered = %d, want 1..%d", st.Scattered, k)
			}
			var exch int64
			for _, bs := range st.Backends {
				exch += bs.Exchanges
			}
			if exch != st.Scattered {
				t.Errorf("backend exchanges = %d, scattered = %d", exch, st.Scattered)
			}
		})
	}
}

func TestPerItemFaultsThroughGateway(t *testing.T) {
	f := newFarm(t, 3, nil)
	cli := f.client(t, nil)
	b := cli.NewBatch()
	ok := b.Add("Echo", "echo", soapenc.F("msg", "fine"))
	bad := b.Add("Echo", "fail")
	unknown := b.Add("NoSuchService", "echo")
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Wait(); err != nil {
		t.Errorf("echo entry: %v", err)
	}
	var fault *soap.Fault
	if _, err := bad.Wait(); !errors.As(err, &fault) || fault.Code != soap.FaultServer {
		t.Errorf("fail entry err = %v", err)
	}
	if _, err := unknown.Wait(); !errors.As(err, &fault) || fault.Code != soap.FaultClient {
		t.Errorf("unknown service err = %v", err)
	}
}

func TestProxySingleCall(t *testing.T) {
	f := newFarm(t, 2, nil)
	cli := f.client(t, nil)
	results, err := cli.Call("Echo", "echo", soapenc.F("msg", "direct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !soapenc.Equal(results[0].Value, "direct") {
		t.Errorf("results = %v", results)
	}
	if st := f.gw.Stats(); st.Proxied != 1 {
		t.Errorf("Proxied = %d, want 1", st.Proxied)
	}
}

func TestGatewayEndpointErrors(t *testing.T) {
	f := newFarm(t, 1, nil)
	raw := f.raw()
	defer raw.Close()

	resp, err := raw.Post("/elsewhere", "text/xml", []byte("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("bad path status = %d, want 404", resp.StatusCode)
	}
	resp.Release()

	req := httpx.NewRequest("PUT", "/services/", []byte("<x/>"))
	resp, err = raw.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 405 {
		t.Errorf("PUT status = %d, want 405", resp.StatusCode)
	}
	resp.Release()

	resp, err = raw.Post("/services", "text/xml", []byte("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 || !strings.Contains(string(resp.Body), "malformed envelope") {
		t.Errorf("garbage POST = %d %q", resp.StatusCode, resp.Body)
	}
	resp.Release()
}

func TestStatsEndpoint(t *testing.T) {
	f := newFarm(t, 2, nil)
	cli := f.client(t, nil)
	b := cli.NewBatch()
	for i := 0; i < 4; i++ {
		b.Add("Echo", "echo", soapenc.F("i", int64(i)))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}

	raw := f.raw()
	defer raw.Close()
	resp, err := raw.Do(httpx.NewRequest("GET", "/spi/stats", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Release()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %q", resp.StatusCode, resp.Body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap struct {
		Gateway Stats `json:"gateway"`
	}
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if snap.Gateway.Packed != 1 || len(snap.Gateway.Backends) != 2 {
		t.Errorf("snapshot = %+v", snap.Gateway)
	}
	if snap.Gateway.Policy != "round-robin" {
		t.Errorf("policy = %q", snap.Gateway.Policy)
	}
}

func TestFailoverToHealthyBackend(t *testing.T) {
	f := newFarm(t, 2, nil)
	// Kill every dial to backend 0: sub-batches assigned there must fail
	// over to backend 1 and still succeed.
	f.links[0].FailDials(1 << 30)

	cli := f.client(t, nil)
	b := cli.NewBatch()
	var calls []*core.Call
	for i := 0; i < 8; i++ {
		calls = append(calls, b.Add("Echo", "echo", soapenc.F("i", int64(i))))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		if _, err := call.Wait(); err != nil {
			t.Fatalf("call %d after failover: %v", i, err)
		}
	}
	st := f.gw.Stats()
	if st.Failovers < 1 {
		t.Errorf("Failovers = %d, want >= 1", st.Failovers)
	}
}

func TestEjectionAndRecovery(t *testing.T) {
	f := newFarm(t, 2, func(cfg *Config) {
		cfg.FailureThreshold = 2
		cfg.ReprobeAfter = 30 * time.Millisecond
	})
	f.links[0].FailDials(1 << 30)

	cli := f.client(t, nil)
	for round := 0; round < 3; round++ {
		b := cli.NewBatch()
		for i := 0; i < 6; i++ {
			b.Add("Echo", "echo", soapenc.F("i", int64(i)))
		}
		if err := b.Send(); err != nil {
			t.Fatal(err)
		}

	}
	st := f.gw.Stats()
	if st.Backends[0].Ejections < 1 {
		t.Fatalf("backend 0 ejections = %d, want >= 1", st.Backends[0].Ejections)
	}

	// Heal the link, wait out the re-probe window, and check that traffic
	// closes the circuit again.
	f.links[0].FailDials(0)
	time.Sleep(50 * time.Millisecond)
	for round := 0; round < 4; round++ {
		b := cli.NewBatch()
		for i := 0; i < 6; i++ {
			b.Add("Echo", "echo", soapenc.F("i", int64(i)))
		}
		if err := b.Send(); err != nil {
			t.Fatal(err)
		}

	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = f.gw.Stats()
		if !st.Backends[0].Ejected && f.gw.backends[0].consecutiveFails() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend 0 never recovered: %+v", st.Backends[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestActiveProbeRecovers(t *testing.T) {
	f := newFarm(t, 2, func(cfg *Config) {
		cfg.FailureThreshold = 1
		cfg.ReprobeAfter = 20 * time.Millisecond
		cfg.ProbeInterval = 15 * time.Millisecond
	})
	f.links[0].FailDials(1 << 30)

	cli := f.client(t, nil)
	b := cli.NewBatch()
	for i := 0; i < 4; i++ {
		b.Add("Echo", "echo", soapenc.F("i", int64(i)))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}

	f.links[0].FailDials(0)
	// The probe loop should close the circuit without any client traffic.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if f.gw.backends[0].consecutiveFails() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never recovered backend 0")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPolicyAssignment(t *testing.T) {
	entries := func(ops ...string) []*core.ScatterEntry {
		var es []*core.ScatterEntry
		for i, op := range ops {
			es = append(es, &core.ScatterEntry{Slot: i, ID: i, Service: "Echo", Op: op})
		}
		return es
	}

	// byIndex spreads the returned shards over the backends' indices so the
	// assertions below can address backends positionally.
	byIndex := func(shards []shard) map[int][]*core.ScatterEntry {
		out := make(map[int][]*core.ScatterEntry)
		for _, sh := range shards {
			out[sh.b.index] = sh.entries
		}
		return out
	}

	t.Run("round-robin", func(t *testing.T) {
		f := newFarm(t, 3, nil)
		atomic.StoreUint64(&f.gw.rr, 0)
		shards := byIndex(f.gw.assign(entries("a", "b", "c", "d", "e", "f")))
		for i := 0; i < 3; i++ {
			if len(shards[i]) != 2 {
				t.Errorf("shard %d has %d entries, want 2", i, len(shards[i]))
			}
		}
	})

	t.Run("op-affinity", func(t *testing.T) {
		f := newFarm(t, 3, func(cfg *Config) { cfg.Policy = OpAffinity })
		shards := byIndex(f.gw.assign(entries("x", "x", "x", "y", "y", "y")))
		// Same op must land on the same backend.
		perOp := map[string]int{}
		for bi, shard := range shards {
			for _, e := range shard {
				if prev, seen := perOp[e.Op]; seen && prev != bi {
					t.Errorf("op %s split across backends %d and %d", e.Op, prev, bi)
				}
				perOp[e.Op] = bi
			}
		}
	})

	t.Run("least-loaded", func(t *testing.T) {
		f := newFarm(t, 3, func(cfg *Config) { cfg.Policy = LeastLoaded })
		// Pretend backend 0 is busy: everything should avoid it.
		f.gw.backends[0].entriesInflight.Add(100)
		shards := byIndex(f.gw.assign(entries("a", "b", "c", "d")))
		if len(shards[0]) != 0 {
			t.Errorf("busy backend got %d entries", len(shards[0]))
		}
		if len(shards[1])+len(shards[2]) != 4 {
			t.Errorf("idle backends got %d entries, want 4", len(shards[1])+len(shards[2]))
		}
		if len(shards[1]) != 2 || len(shards[2]) != 2 {
			t.Errorf("uneven spread: %d/%d", len(shards[1]), len(shards[2]))
		}
	})

	t.Run("weighted-skew", func(t *testing.T) {
		f := newFarm(t, 2, func(cfg *Config) { cfg.Policy = Weighted })
		// Backend 0 carries 3× the effective weight of backend 1: at equal
		// load it must absorb three quarters of the entries.
		f.gw.backends[0].effWeight.Store(3 * effWeightScale)
		f.gw.backends[1].effWeight.Store(1 * effWeightScale)
		shards := byIndex(f.gw.assign(entries("a", "b", "c", "d", "e", "f", "g", "h")))
		if len(shards[0]) != 6 || len(shards[1]) != 2 {
			t.Errorf("weighted spread %d/%d, want 6/2", len(shards[0]), len(shards[1]))
		}
	})

	t.Run("draining-excluded", func(t *testing.T) {
		f := newFarm(t, 3, nil)
		f.gw.backends[1].draining.Store(true)
		shards := byIndex(f.gw.assign(entries("a", "b", "c", "d", "e", "f")))
		if len(shards[1]) != 0 {
			t.Errorf("draining backend got %d entries", len(shards[1]))
		}
		if len(shards[0])+len(shards[2]) != 6 {
			t.Errorf("routable backends got %d entries, want 6", len(shards[0])+len(shards[2]))
		}
	})

	t.Run("faulted-entries-skipped", func(t *testing.T) {
		f := newFarm(t, 2, nil)
		es := entries("a", "b")
		es[0].Fault = soap.ClientFault("broken")
		total := 0
		for _, sh := range f.gw.assign(es) {
			total += len(sh.entries)
		}
		if total != 1 {
			t.Errorf("assigned %d entries, want 1 (faulted entry skipped)", total)
		}
	})
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"round-robin": RoundRobin, "least-loaded": LeastLoaded,
		"op-affinity": OpAffinity, "weighted": Weighted,
		"bogus": RoundRobin, "": RoundRobin,
	}
	for s, want := range cases {
		if got := ParsePolicy(s); got != want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", s, got, want)
		}
	}
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" || OpAffinity.String() != "op-affinity" {
		t.Error("Policy.String mismatch")
	}
}

func TestGatewayShutdown(t *testing.T) {
	f := newFarm(t, 2, nil)
	cli := f.client(t, nil)
	if _, err := cli.Call("Echo", "echo", soapenc.F("m", "x")); err != nil {
		t.Fatal(err)
	}
	if err := f.gw.Shutdown(time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
