package gateway

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/soap"
)

// MembershipConfig tunes the control-plane poller. The zero value disables
// it; setting Enabled with everything else zero uses the defaults noted on
// each field.
type MembershipConfig struct {
	// Enabled starts the poller: every backend's Admin service is polled
	// for GetStats on a jittered interval and the snapshot drives the
	// Weighted policy's effective weights plus advertised drain state.
	// Backends without an Admin service keep their configured weight (the
	// poll fails, the stats stay stale, the fallback applies) — mixing
	// managed and unmanaged backends is fine.
	Enabled bool
	// PollInterval is the nominal poll period (default 250ms).
	PollInterval time.Duration
	// PollJitter is the uniform ± fraction applied to each wait (default
	// 0.2) so a fleet of gateways does not synchronize its polls against
	// the same backends.
	PollJitter float64
	// StaleAfter is how old a snapshot may grow before the backend's
	// effective weight falls back to its configured weight — turning the
	// Weighted policy into plain weighted-least-loaded for that backend
	// instead of routing on a stale picture (default 4×PollInterval).
	StaleAfter time.Duration
	// MinFactor floors the load-factor modulation (default 0.10): a
	// saturated backend keeps a sliver of weight so it is probed by real
	// traffic and recovers without operator action.
	MinFactor float64
	// Alpha is the EWMA smoothing applied to the load factor (default
	// 0.5); lower values smooth more.
	Alpha float64
	// Hysteresis is the minimum relative change (default 0.10 = 10%)
	// before a new effective weight is applied, so routing does not flap
	// on small load oscillations.
	Hysteresis float64
}

// withDefaults fills the zero fields.
func (mc MembershipConfig) withDefaults() MembershipConfig {
	if mc.PollInterval <= 0 {
		mc.PollInterval = 250 * time.Millisecond
	}
	if mc.PollJitter <= 0 {
		mc.PollJitter = 0.2
	}
	if mc.StaleAfter <= 0 {
		mc.StaleAfter = 4 * mc.PollInterval
	}
	if mc.MinFactor <= 0 {
		mc.MinFactor = 0.10
	}
	if mc.Alpha <= 0 {
		mc.Alpha = 0.5
	}
	if mc.Hysteresis <= 0 {
		mc.Hysteresis = 0.10
	}
	return mc
}

// membershipLoop polls every backend's Admin service on a jittered
// interval. Polls run concurrently (one slow backend must not starve the
// others' freshness) and each is bounded by the poll interval.
func (g *Gateway) membershipLoop() {
	defer g.memberWG.Done()
	mc := g.cfg.Membership
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	t := time.NewTimer(jittered(rng, mc.PollInterval, mc.PollJitter))
	defer t.Stop()
	for {
		select {
		case <-g.memberStop:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, b := range g.snapshot() {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), mc.PollInterval)
				g.pollBackend(ctx, b)
				cancel()
			}(b)
		}
		wg.Wait()
		now := time.Now()
		g.updateEffectiveWeights(now)
		for _, b := range g.snapshot() {
			g.applyStaleness(b, now)
		}
		t.Reset(jittered(rng, mc.PollInterval, mc.PollJitter))
	}
}

// jittered spreads a period uniformly over ±(frac/2) around its nominal
// value.
func jittered(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	spread := float64(d) * frac
	return time.Duration(float64(d) + spread*(rng.Float64()-0.5))
}

// pollBackend performs one GetStats exchange against a backend's Admin
// service and folds the result into routing state. Poll failures are
// deliberately silent: staleness is the signal (applyStaleness reverts the
// weight), and the data-plane circuit breaker already tracks reachability.
func (g *Gateway) pollBackend(ctx context.Context, b *backend) {
	env, err := admin.NewGetStatsRequest(soap.V11)
	if err != nil {
		return
	}
	var buf sliceBuffer
	if err := env.Encode(&buf); err != nil {
		return
	}
	resp, err := b.client.PostCtx(ctx, g.cfg.PathPrefix+admin.ServiceName,
		soap.V11.ContentType(), buf.b, "SOAPAction", `""`)
	if err != nil {
		return
	}
	body := append([]byte(nil), resp.Body...)
	resp.Release()
	stats, err := admin.ParseStatsResponse(body)
	if err != nil {
		return
	}
	g.applyStats(b, stats, time.Now())
}

// applyStats folds one fresh snapshot into a backend's polled state — the
// smoothed occupancy factor and the raw stats the fleet pass reads — and
// applies an advertised drain-state change edge-triggered (so an operator
// acting directly on the gateway is not overridden by the backend's
// steady-state adverts). Effective weights are recomputed afterwards by
// updateEffectiveWeights, which needs the whole fleet's snapshots.
func (g *Gateway) applyStats(b *backend, stats admin.Stats, now time.Time) {
	mc := g.cfg.Membership
	factor := loadFactor(stats, mc.MinFactor)

	b.statsMu.Lock()
	if b.statsAt.IsZero() {
		b.ewmaFactor = factor // first sample: adopt, don't average with 0
	} else {
		b.ewmaFactor = mc.Alpha*factor + (1-mc.Alpha)*b.ewmaFactor
	}
	drainEdge := stats.Draining != b.advertDrain
	b.advertDrain = stats.Draining
	b.lastStats = stats
	b.statsAt = now
	b.statsMu.Unlock()

	if drainEdge {
		if stats.Draining {
			g.startDrain(b)
		} else {
			b.draining.Store(false)
		}
	}
}

// aggregateMeanUs is a node's mean service latency in microseconds across
// every operation it has executed, execution-count weighted. Zero when the
// node has not executed anything (or advertises no per-op summaries).
func aggregateMeanUs(s admin.Stats) int64 {
	var n, sum int64
	for _, op := range s.Ops {
		n += op.Count
		sum += op.Count * op.MeanUs
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// updateEffectiveWeights recomputes every polled backend's effective
// weight after a poll round: advertised weight × smoothed occupancy
// factor × fleet-relative speed factor, floored at MinFactor and applied
// with hysteresis.
//
// The speed factor is what keeps a degraded backend derated while idle.
// Occupancy alone oscillates: starve a slow backend and its queue drains,
// the next poll sees it idle, its weight recovers, a burst lands, the
// queue rebuilds. Service latency is intrinsic — a node running at 4× the
// fleet's best mean keeps ~1/4 weight whether its queue happens to be
// full or empty — so the ratio of the fleet-minimum aggregate latency to
// the node's own damps that cycle.
func (g *Gateway) updateEffectiveWeights(now time.Time) {
	mc := g.cfg.Membership
	backends := g.snapshot()

	// Fleet-minimum aggregate service latency across freshly-polled nodes.
	var minMean int64
	for _, b := range backends {
		b.statsMu.Lock()
		fresh := !b.statsAt.IsZero() && now.Sub(b.statsAt) <= mc.StaleAfter
		mean := aggregateMeanUs(b.lastStats)
		b.statsMu.Unlock()
		if fresh && mean > 0 && (minMean == 0 || mean < minMean) {
			minMean = mean
		}
	}

	for _, b := range backends {
		b.statsMu.Lock()
		fresh := !b.statsAt.IsZero() && now.Sub(b.statsAt) <= mc.StaleAfter
		occupancy := b.ewmaFactor
		weight := b.lastStats.Weight
		mean := aggregateMeanUs(b.lastStats)
		b.statsMu.Unlock()
		if !fresh {
			continue // never polled (fallback applies) or stale (applyStaleness reverts)
		}
		speed := 1.0
		if minMean > 0 && mean > 0 {
			speed = float64(minMean) / float64(mean)
		}
		factor := occupancy * speed
		if factor < mc.MinFactor {
			factor = mc.MinFactor
		}
		if factor > 1 {
			factor = 1
		}
		newEff := int64(float64(weight) * factor * effWeightScale)
		if newEff < 1 {
			newEff = 1
		}
		cur := b.effectiveWeight()
		delta := newEff - cur
		if delta < 0 {
			delta = -delta
		}
		if float64(delta) > float64(cur)*mc.Hysteresis {
			b.effWeight.Store(newEff)
		}
	}
}

// loadFactor maps a snapshot to the weight modulation f(busy/workers,
// queue/workers) ∈ [min, 1]: half a weight is lost at full worker
// occupancy, and queue backlog divides the rest — a backend with a queue as
// deep as its pool is worth less than half its nominal weight. Backends
// without an app stage (coupled) report zero workers and keep factor 1;
// their in-flight counts still differentiate them under Weighted's
// load-per-weight scoring.
func loadFactor(stats admin.Stats, min float64) float64 {
	if stats.Workers <= 0 {
		return 1
	}
	u := float64(stats.Busy) / float64(stats.Workers)
	q := float64(stats.QueueDepth) / float64(stats.Workers)
	f := (1 - u/2) / (1 + q)
	if f < min {
		f = min
	}
	if f > 1 {
		f = 1
	}
	return f
}

// applyStaleness reverts a backend whose stats have gone stale to its
// configured weight: routing on an old picture is worse than routing on
// none.
func (g *Gateway) applyStaleness(b *backend, now time.Time) {
	b.statsMu.Lock()
	stale := !b.statsAt.IsZero() && now.Sub(b.statsAt) > g.cfg.Membership.StaleAfter
	if stale {
		b.ewmaFactor = 0 // next fresh sample re-seeds the EWMA
	}
	b.statsMu.Unlock()
	if stale {
		b.effWeight.Store(b.weight * effWeightScale)
	}
}

// AddBackend joins a new backend to the live membership set; it becomes
// assignable immediately.
func (g *Gateway) AddBackend(bc BackendConfig) error {
	_, err := g.newBackend(bc)
	return err
}

// DrainBackend starts a graceful drain: the named backend stops receiving
// new shards and proxies at once, in-flight sub-batches run to completion,
// and once the last one finishes its keep-alive pool is released. The
// backend stays a member — ResumeBackend undoes the drain at any point.
func (g *Gateway) DrainBackend(name string) error {
	b, err := g.backendByName(name)
	if err != nil {
		return err
	}
	g.startDrain(b)
	return nil
}

// startDrain flags the backend and parks a waiter that releases the
// keep-alive pool once in-flight work hits zero. The waiter polls: drains
// are rare, operator-scale events, and a poll loop stays trivially correct
// against concurrent resume/re-drain cycles where a condition-variable
// handoff would need careful sequencing.
func (g *Gateway) startDrain(b *backend) {
	if b.draining.Swap(true) {
		return // already draining; the existing waiter is parked
	}
	g.drainWG.Add(1)
	go func() {
		defer g.drainWG.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-g.stopCh:
				return // gateway shutdown closes every pool anyway
			case <-t.C:
			}
			if !b.draining.Load() {
				return // resumed before the drain completed
			}
			if b.inflight.Load() == 0 {
				b.client.CloseIdle()
				g.drained.Inc()
				return
			}
		}
	}()
}

// ResumeBackend reverses a drain: the backend immediately rejoins
// assignment. Connections are re-dialed on demand (CloseIdle leaves the
// client usable).
func (g *Gateway) ResumeBackend(name string) error {
	b, err := g.backendByName(name)
	if err != nil {
		return err
	}
	b.draining.Store(false)
	return nil
}

// RemoveBackend takes a backend out of the membership set permanently: it
// vanishes from new snapshots at once (no new work), in-flight sub-batches
// finish against it, and its client closes once they have. Unlike a drain
// this is terminal — the closed client cannot be resumed.
func (g *Gateway) RemoveBackend(name string) error {
	g.bmu.Lock()
	var b *backend
	for i, cand := range g.backends {
		if cand.name == name {
			b = cand
			g.backends = append(g.backends[:i], g.backends[i+1:]...)
			break
		}
	}
	g.bmu.Unlock()
	if b == nil {
		return fmt.Errorf("gateway: no backend named %q", name)
	}
	b.draining.Store(true) // keeps failover from re-picking it via held snapshots
	g.drainWG.Add(1)
	go func() {
		defer g.drainWG.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-g.stopCh:
				b.client.Close()
				return
			case <-t.C:
			}
			if b.inflight.Load() == 0 {
				b.client.Close()
				g.drained.Inc()
				return
			}
		}
	}()
	return nil
}

// sliceBuffer is a minimal io.Writer over an appended byte slice.
type sliceBuffer struct{ b []byte }

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
