package gateway

import (
	"bytes"
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/trace"
)

// Zero-copy passthrough: the single-call fast path.
//
// A single-call envelope that will be proxied whole to one backend does
// not need the gateway to understand it — the backend parses it anyway and
// produces exactly the bytes a direct server would. When Passthrough is
// enabled the gateway splices such requests: the request body goes to the
// backend as-is (headers rewritten only), and the backend's response body
// is aliased — not copied — into the relay, its pooled buffer's release
// chained to the relay so the transport write finishes before recycling.
// Per request this saves the envelope parse (ParseScatterRequest), the
// response-body copy, and every allocation between them.
//
// The gate is conservative: the path engages only when coalescing is off
// (the coalescer needs parsed entries) and the body does not look packed.
// "Looks packed" is a byte sniff for the Parallel_Method element name; a
// payload that merely mentions the name false-positives into the parsed
// path, which is always correct, just slower. A real packed request can
// never sniff negative — the element name must appear literally.

// packedSniff is the byte pattern whose absence proves a body is not a
// packed request.
var packedSniff = []byte(core.ElemParallelMethod)

// passthroughEligible reports whether the request may take the splice path.
func (g *Gateway) passthroughEligible(req *httpx.Request) bool {
	return g.cfg.Passthrough && g.coalescer == nil && !bytes.Contains(req.Body, packedSniff)
}

// passthrough splices one single-call exchange through a healthy backend.
// A nil return means the caller must fall back to the parsed path (no
// backend available is still handled here — that answer needs no parse
// either).
func (g *Gateway) passthrough(ctx context.Context, req *httpx.Request) *httpx.Response {
	b := g.pickBackend(nil)
	if b == nil {
		g.envelopes.Inc()
		g.proxied.Inc()
		g.passthroughs.Inc()
		resp := httpx.NewResponse(503, []byte("no backend available\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}

	tr := g.cfg.Tracer
	start := time.Now()

	out := httpx.NewRequest(req.Method, req.Target, req.Body)
	for _, h := range [...]string{"Content-Type", "SOAPAction", core.HeaderDeadline, core.HeaderTrace} {
		if v := req.Header.Get(h); v != "" {
			out.Header.Set(h, v)
		}
	}
	b.exchanges.Inc()
	b.inflight.Add(1)
	b.entriesInflight.Add(1)
	defer func() { b.inflight.Add(-1); b.entriesInflight.Add(-1) }()

	g.envelopes.Inc()
	g.proxied.Inc()
	g.passthroughs.Inc()
	resp, err := b.client.DoCtx(ctx, out)
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayPassthrough,
			ID: -1, Op: req.Target, Start: start, Service: time.Since(start)})
	}
	if err != nil {
		b.noteFailure(g.cfg.FailureThreshold, g.cfg.ReprobeAfter)
		g.faults.Inc()
		resp := httpx.NewResponse(502, []byte("backend exchange failed: "+err.Error()+"\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	b.noteSuccess()

	// The zero-copy splice: the relay aliases the backend response's body
	// and inherits its release, so the buffer is recycled only after the
	// gateway's transport finishes writing it to the client.
	relay := httpx.NewResponse(resp.StatusCode, resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		relay.Header.Set("Content-Type", ct)
	}
	relay.SetRelease(resp.Release)
	return relay
}
