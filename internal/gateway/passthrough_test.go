package gateway

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/soap"
)

// The passthrough suite pins the zero-copy splice's guarantee: replies via
// the spliced path are byte-identical to both the parsed proxy path and a
// direct server, and the splice never engages where it would change
// semantics (packed envelopes, coalescing gateways).

func singleDoc(v soap.Version, op, payload string) []byte {
	return []byte(`<?xml version="1.0"?><SOAP-ENV:Envelope xmlns:SOAP-ENV="` + v.Namespace() +
		`"><SOAP-ENV:Body><m:` + op + ` xmlns:m="urn:spi:Echo"><msg>` + payload + `</msg></m:` + op +
		`></SOAP-ENV:Body></SOAP-ENV:Envelope>`)
}

func TestPassthroughDifferential(t *testing.T) {
	d := newDirect(t)
	fOn := newFarm(t, 2, func(cfg *Config) { cfg.Passthrough = true })
	fOff := newFarm(t, 2, func(cfg *Config) { cfg.Passthrough = false })
	dc := &httpx.Client{Dial: d.link.Dial, KeepAlive: true, Timeout: 5 * time.Second}
	onC, offC := fOn.raw(), fOff.raw()
	defer dc.Close()
	defer onC.Close()
	defer offC.Close()

	for _, v := range []soap.Version{soap.V11, soap.V12} {
		cases := []struct {
			name string
			doc  []byte
		}{
			{"echo", singleDoc(v, "echo", "spliced &amp; back")},
			{"empty", singleDoc(v, "empty", "")},
			{"fault", singleDoc(v, "fail", "boom")},
			{"unknown-op", singleDoc(v, "ghostOp", "x")},
			{"big", singleDoc(v, "echo", strings.Repeat("y", 4096))},
			{"garbage", []byte("not xml — backend faults, splice relays it")},
		}
		for _, c := range cases {
			label := fmt.Sprintf("%s/%s", v, c.name)
			want := post(t, dc, "/services/Echo", v.ContentType(), c.doc)
			gotOn := post(t, onC, "/services/Echo", v.ContentType(), c.doc)
			gotOff := post(t, offC, "/services/Echo", v.ContentType(), c.doc)
			diffReplies(t, label+"/passthrough-vs-direct", c.doc, want, gotOn)
			diffReplies(t, label+"/passthrough-vs-parsed", c.doc, gotOff, gotOn)
		}
	}
	if st := fOn.gw.Stats(); st.Passthrough == 0 {
		t.Error("Stats.Passthrough = 0: splice never engaged")
	}
	if st := fOff.gw.Stats(); st.Passthrough != 0 {
		t.Errorf("Stats.Passthrough = %d with passthrough disabled", st.Passthrough)
	}
}

func TestPassthroughCountsProxied(t *testing.T) {
	f := newFarm(t, 1, func(cfg *Config) { cfg.Passthrough = true })
	c := f.raw()
	defer c.Close()
	doc := singleDoc(soap.V11, "echo", "counted")
	const n = 3
	for i := 0; i < n; i++ {
		if r := post(t, c, "/services/Echo", soap.V11.ContentType(), doc); r.status != 200 {
			t.Fatalf("status = %d", r.status)
		}
	}
	st := f.gw.Stats()
	if st.Passthrough != n {
		t.Errorf("Passthrough = %d, want %d", st.Passthrough, n)
	}
	if st.Proxied != n {
		t.Errorf("Proxied = %d, want %d (passthrough is a subset of proxied)", st.Proxied, n)
	}
	if st.Envelopes != n {
		t.Errorf("Envelopes = %d, want %d", st.Envelopes, n)
	}
}

// TestPassthroughGatedOffByCoalesce: with coalescing on, single calls must
// take the parsed path (the coalescer needs the decoded envelope).
func TestPassthroughGatedOffByCoalesce(t *testing.T) {
	f := newFarm(t, 1, func(cfg *Config) {
		cfg.Passthrough = true
		cfg.Coalesce = CoalesceConfig{Enabled: true, FlushWindow: time.Millisecond}
	})
	c := f.raw()
	defer c.Close()
	doc := singleDoc(soap.V11, "echo", "coalesced")
	if r := post(t, c, "/services/Echo", soap.V11.ContentType(), doc); r.status != 200 {
		t.Fatalf("status = %d", r.status)
	}
	if st := f.gw.Stats(); st.Passthrough != 0 {
		t.Errorf("Passthrough = %d with coalescing enabled, want 0", st.Passthrough)
	}
}

// TestPassthroughSkipsPacked: a packed envelope posted to a service path
// must still be scattered, not spliced whole to one backend.
func TestPassthroughSkipsPacked(t *testing.T) {
	f := newFarm(t, 2, func(cfg *Config) { cfg.Passthrough = true })
	c := f.raw()
	defer c.Close()
	doc := packedDoc(soap.V11, []string{
		`<m:echo xmlns:m="urn:spi:Echo" spi:service="Echo"><p>a</p></m:echo>`,
		`<m:echo xmlns:m="urn:spi:Echo" spi:service="Echo"><p>b</p></m:echo>`,
	})
	if r := post(t, c, "/services", soap.V11.ContentType(), doc); r.status != 200 {
		t.Fatalf("status = %d, body %s", r.status, r.body)
	}
	st := f.gw.Stats()
	if st.Passthrough != 0 {
		t.Errorf("Passthrough = %d for a packed envelope, want 0", st.Passthrough)
	}
	if st.Packed != 1 || st.Scattered == 0 {
		t.Errorf("Packed = %d, Scattered = %d: packed envelope was not scattered", st.Packed, st.Scattered)
	}
}

// TestPassthroughDeadBackend: a dial failure on the spliced path surfaces
// the same 502 the parsed proxy produces.
func TestPassthroughDeadBackend(t *testing.T) {
	f := newFarm(t, 1, func(cfg *Config) { cfg.Passthrough = true })
	f.links[0].Close() // kill the only backend's network
	c := f.raw()
	defer c.Close()
	doc := singleDoc(soap.V11, "echo", "nobody home")
	r := post(t, c, "/services/Echo", soap.V11.ContentType(), doc)
	if r.status != 502 {
		t.Fatalf("status = %d, want 502; body %s", r.status, r.body)
	}
	if !strings.HasPrefix(string(r.body), "backend exchange failed: ") {
		t.Errorf("body = %q, want the proxy path's 502 text", r.body)
	}
}
