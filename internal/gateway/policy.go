package gateway

import (
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Policy selects how Parallel_Method entries map onto backends.
type Policy int

const (
	// RoundRobin spreads consecutive entries across backends in turn —
	// the default; maximizes parallelism for uniform work.
	RoundRobin Policy = iota
	// LeastLoaded assigns each entry to the backend with the fewest
	// packed entries in flight (counting this request's own assignments),
	// so slow backends accumulate less work.
	LeastLoaded
	// OpAffinity hashes (service, operation) onto the backend list, so
	// the same operation always lands on the same healthy backend —
	// keeps per-operation caches warm on a heterogeneous farm.
	OpAffinity
	// Weighted assigns each entry to the backend with the lowest
	// load-per-effective-weight, where the effective weight is the
	// configured (or backend-advertised) weight modulated by the
	// membership manager's view of real load — worker occupancy and queue
	// depth from the Admin service. With all weights equal it degrades
	// exactly to LeastLoaded. See docs/CONTROL_PLANE.md.
	Weighted
)

// String names the policy for flags and stats.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case OpAffinity:
		return "op-affinity"
	case Weighted:
		return "weighted"
	default:
		return "round-robin"
	}
}

// ParsePolicy maps a flag value to a Policy; unknown values fall back to
// round-robin.
func ParsePolicy(s string) Policy {
	switch s {
	case "least-loaded":
		return LeastLoaded
	case "op-affinity":
		return OpAffinity
	case "weighted":
		return Weighted
	default:
		return RoundRobin
	}
}

// shard is one backend's share of a scattered request. assign returns
// backend-paired shards (not a backend-indexed slice) so the membership set
// can grow and shrink between requests without invalidating assignments.
type shard struct {
	b       *backend
	entries []*core.ScatterEntry
}

// routableCandidates filters a membership snapshot down to the backends
// new work may be handed: circuit closed (or half-open) and not draining.
// When nothing qualifies the policy fails open to the non-draining set, or
// the full snapshot as a last resort — failing open gives re-probes a
// chance instead of failing every entry.
func routableCandidates(backends []*backend, now time.Time) []*backend {
	candidates := make([]*backend, 0, len(backends))
	for _, b := range backends {
		if !b.draining.Load() && b.available(now) {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) > 0 {
		return candidates
	}
	for _, b := range backends {
		if !b.draining.Load() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) > 0 {
		return candidates
	}
	return backends
}

// assign shards the live (non-faulted) entries across the routable
// backends of the current membership snapshot.
func (g *Gateway) assign(entries []*core.ScatterEntry) []shard {
	backends := g.snapshot()
	candidates := routableCandidates(backends, time.Now())
	shards := make(map[*backend]*shard, len(candidates))
	place := func(e *core.ScatterEntry, b *backend) {
		sh := shards[b]
		if sh == nil {
			sh = &shard{b: b}
			shards[b] = sh
		}
		sh.entries = append(sh.entries, e)
	}
	switch g.cfg.Policy {
	case LeastLoaded:
		// Snapshot in-flight ENTRY counts once and add this batch's own
		// assignments on top, so one request doesn't dog-pile the backend
		// that merely happened to be idle at the first entry. Entries, not
		// sub-batches: a 1-entry shard and a 5-entry shard are one exchange
		// each but very different amounts of outstanding work.
		load := make([]int64, len(candidates))
		for i, b := range candidates {
			load[i] = b.entriesInflight.Load()
		}
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			min := 0
			for i := 1; i < len(candidates); i++ {
				if load[i] < load[min] {
					min = i
				}
			}
			place(e, candidates[min])
			load[min]++
		}
	case Weighted:
		// Lowest load-per-effective-weight wins: compare
		// (load+1)/effWeight by cross-multiplication, keeping the
		// assignment loop in exact integer arithmetic. The +1 counts the
		// entry being placed, so with equal effective weights the ordering
		// — and therefore every pick, scanning first-min like LeastLoaded —
		// is identical to LeastLoaded (pinned by TestDifferentialWeighted).
		load := make([]int64, len(candidates))
		eff := make([]int64, len(candidates))
		for i, b := range candidates {
			load[i] = b.entriesInflight.Load()
			eff[i] = b.effectiveWeight()
		}
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			min := 0
			for i := 1; i < len(candidates); i++ {
				if (load[i]+1)*eff[min] < (load[min]+1)*eff[i] {
					min = i
				}
			}
			place(e, candidates[min])
			load[min]++
		}
	case OpAffinity:
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			h := fnv.New32a()
			h.Write([]byte(e.Service))
			h.Write([]byte{'.'})
			h.Write([]byte(e.Op))
			place(e, candidates[int(h.Sum32())%len(candidates)])
		}
	default: // RoundRobin
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			n := atomic.AddUint64(&g.rr, 1) - 1
			place(e, candidates[int(n%uint64(len(candidates)))])
		}
	}
	// Reserve the placed entries on their backends immediately — sendShard
	// releases them when the shard resolves. Counting from assignment, not
	// dispatch, keeps concurrent assigns from all seeing a backend as idle
	// in the window before its shards reach the wire.
	for _, sh := range shards {
		sh.b.entriesInflight.Add(int64(len(sh.entries)))
	}
	// Emit shards in candidate order so fan-out order is deterministic.
	out := make([]shard, 0, len(shards))
	for _, b := range candidates {
		if sh := shards[b]; sh != nil {
			out = append(out, *sh)
		}
	}
	return out
}

// pickBackend chooses one routable backend for whole-request proxying and
// sub-batch failover. exclude skips a backend that just failed, unless it
// is the only one left.
func (g *Gateway) pickBackend(exclude *backend) *backend {
	backends := g.snapshot()
	if len(backends) == 0 {
		return nil
	}
	now := time.Now()
	var fallback *backend
	n := len(backends)
	start := int(atomic.AddUint64(&g.rr, 1) - 1)
	for i := 0; i < n; i++ {
		b := backends[(start+i)%n]
		if b == exclude {
			if fallback == nil {
				fallback = b
			}
			continue
		}
		if b.draining.Load() {
			continue
		}
		if b.available(now) {
			return b
		}
		if fallback == nil || fallback == exclude {
			fallback = b
		}
	}
	return fallback
}
