package gateway

import (
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Policy selects how Parallel_Method entries map onto backends.
type Policy int

const (
	// RoundRobin spreads consecutive entries across backends in turn —
	// the default; maximizes parallelism for uniform work.
	RoundRobin Policy = iota
	// LeastLoaded assigns each entry to the backend with the fewest
	// sub-batches in flight (counting this request's own assignments), so
	// slow backends accumulate less work.
	LeastLoaded
	// OpAffinity hashes (service, operation) onto the backend list, so
	// the same operation always lands on the same healthy backend —
	// keeps per-operation caches warm on a heterogeneous farm.
	OpAffinity
)

// String names the policy for flags and stats.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case OpAffinity:
		return "op-affinity"
	default:
		return "round-robin"
	}
}

// ParsePolicy maps a flag value to a Policy; unknown values fall back to
// round-robin.
func ParsePolicy(s string) Policy {
	switch s {
	case "least-loaded":
		return LeastLoaded
	case "op-affinity":
		return OpAffinity
	default:
		return RoundRobin
	}
}

// assign shards the live (non-faulted) entries across the currently
// available backends. The returned slice is indexed by backend; nil shards
// get no sub-batch. When every circuit is open the full pool is used —
// failing open gives re-probes a chance instead of failing every entry.
func (g *Gateway) assign(entries []*core.ScatterEntry) [][]*core.ScatterEntry {
	now := time.Now()
	candidates := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.available(now) {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		candidates = g.backends
	}
	shards := make([][]*core.ScatterEntry, len(g.backends))
	switch g.cfg.Policy {
	case LeastLoaded:
		// Snapshot in-flight counts once and add this batch's own
		// assignments on top, so one request doesn't dog-pile the backend
		// that merely happened to be idle at the first entry.
		load := make([]int64, len(candidates))
		for i, b := range candidates {
			load[i] = b.inflight.Load()
		}
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			min := 0
			for i := 1; i < len(candidates); i++ {
				if load[i] < load[min] {
					min = i
				}
			}
			shards[candidates[min].index] = append(shards[candidates[min].index], e)
			load[min]++
		}
	case OpAffinity:
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			h := fnv.New32a()
			h.Write([]byte(e.Service))
			h.Write([]byte{'.'})
			h.Write([]byte(e.Op))
			b := candidates[int(h.Sum32())%len(candidates)]
			shards[b.index] = append(shards[b.index], e)
		}
	default: // RoundRobin
		for _, e := range entries {
			if e.Fault != nil {
				continue
			}
			n := atomic.AddUint64(&g.rr, 1) - 1
			b := candidates[int(n%uint64(len(candidates)))]
			shards[b.index] = append(shards[b.index], e)
		}
	}
	return shards
}

// pickBackend chooses one available backend for whole-request proxying and
// sub-batch failover. exclude skips a backend that just failed, unless it
// is the only one left.
func (g *Gateway) pickBackend(exclude *backend) *backend {
	now := time.Now()
	var fallback *backend
	n := len(g.backends)
	start := int(atomic.AddUint64(&g.rr, 1) - 1)
	for i := 0; i < n; i++ {
		b := g.backends[(start+i)%n]
		if b == exclude {
			fallback = b
			continue
		}
		if b.available(now) {
			return b
		}
		if fallback == nil {
			fallback = b
		}
	}
	return fallback
}
