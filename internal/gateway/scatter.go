package gateway

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/httpx"
	"repro/internal/soap"
	"repro/internal/trace"
)

// Handle is the gateway's HTTP handler: packed POSTs are scattered across
// the backend pool; everything else (single requests, WSDL GETs) is
// proxied whole to one backend, so the gateway is a drop-in endpoint.
func (g *Gateway) Handle(ctx context.Context, req *httpx.Request) *httpx.Response {
	// The gateway's own management surface: single-call envelopes POSTed to
	// <prefix>Admin are answered by the self-hosted Admin service, not
	// proxied — the gateway's stats and drain state are its own. Packed
	// envelopes are still scattered even if they carry Admin entries, so a
	// monitoring client can pack GetStats across the backend fleet.
	if g.adminSrv != nil && g.isAdminTarget(req.Target) {
		return g.adminSrv.HandleHTTP(ctx, req)
	}
	if req.Method == "GET" {
		if g.cfg.DebugEndpoints && strings.HasPrefix(req.Target, debugPathPrefix) {
			return g.handleDebug(req)
		}
		return g.proxy(ctx, req)
	}
	if req.Method != "POST" {
		resp := httpx.NewResponse(405, []byte("SOAP endpoint: POST only\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	defaultService, ok := g.serviceFromPath(req.Target)
	if !ok {
		resp := httpx.NewResponse(404, []byte("no such endpoint\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}

	// Adopt the client's trace id so gateway spans correlate with the
	// client's and the backends'.
	tr := g.cfg.Tracer
	if tr.Enabled() {
		tid := gatewayTraceID(req)
		if tid == 0 {
			tid = tr.Begin()
		}
		ctx = trace.NewContext(ctx, tid)
	}

	// Zero-copy fast path: a single-call envelope headed for the proxy
	// path anyway is spliced through a backend without being parsed here.
	// Packed envelopes (byte sniff) and coalescing deployments fall
	// through to the parsed path below.
	if g.passthroughEligible(req) {
		return g.passthrough(ctx, req)
	}

	scatterStart := time.Now()
	sr, parseFault := core.ParseScatterRequest(req.Body, defaultService)
	if parseFault != nil {
		// Whole-message faults preserve the direct server's precedence and
		// bytes: decode errors answer in SOAP 1.1, body-shape faults in the
		// request's own version.
		g.faults.Inc()
		g.faultCodes.NoteSOAP(parseFault)
		v := soap.V11
		if sr != nil {
			v = sr.Version
		}
		return core.GatewayFaultResponse(parseFault, v)
	}
	g.envelopes.Inc()
	if !sr.Packed {
		// Single call: try to merge it into a forming cross-client batch.
		// A nil return means it was not coalescible (or coalescing is off)
		// and falls through to the byte-transparent proxy path.
		if resp := g.coalesce(ctx, req, defaultService); resp != nil {
			return resp
		}
		g.proxied.Inc()
		return g.proxy(ctx, req)
	}
	g.packed.Inc()
	return g.scatterGather(ctx, req, sr, scatterStart)
}

// serviceFromPath resolves the target path against the prefix: the bare
// prefix is the pack endpoint (no default service), a sub-path names the
// default service for unannotated entries — same routing as the server.
func (g *Gateway) serviceFromPath(target string) (string, bool) {
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	bare := strings.TrimSuffix(g.cfg.PathPrefix, "/")
	if target == bare || target == g.cfg.PathPrefix {
		return "", true
	}
	if !strings.HasPrefix(target, g.cfg.PathPrefix) {
		return "", false
	}
	return strings.TrimPrefix(target, g.cfg.PathPrefix), true
}

// isAdminTarget reports whether the target names the gateway's own Admin
// endpoint (query string ignored, so ?wsdl still resolves to it).
func (g *Gateway) isAdminTarget(target string) bool {
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	return target == g.cfg.PathPrefix+"Admin"
}

// packTarget is the URL sub-batches POST to on backends.
func (g *Gateway) packTarget() string {
	return strings.TrimSuffix(g.cfg.PathPrefix, "/")
}

// gatewayTraceID parses the SPI-Trace header; zero means absent.
func gatewayTraceID(req *httpx.Request) uint64 {
	v := req.Header.Get(core.HeaderTrace)
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// deadlineBudget reads the propagated SPI-Deadline budget.
func deadlineBudget(req *httpx.Request) time.Duration {
	v := req.Header.Get(core.HeaderDeadline)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// shortenBudget mirrors the server's grace policy so a degraded response
// still beats the client's own deadline.
func (g *Gateway) shortenBudget(budget time.Duration) time.Duration {
	grace := g.cfg.DeadlineGrace
	if grace <= 0 {
		grace = budget / 5
		if grace > 100*time.Millisecond {
			grace = 100 * time.Millisecond
		}
	}
	if budget > grace {
		budget -= grace
	}
	return budget
}

// scatterGather shards the parsed entries, fans the sub-batches out, and
// reassembles the packed response in slot order through the reorder-window
// collector.
func (g *Gateway) scatterGather(ctx context.Context, req *httpx.Request, sr *core.ScatterRequest, scatterStart time.Time) *httpx.Response {
	tr := g.cfg.Tracer
	if budget := deadlineBudget(req); budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.shortenBudget(budget))
		defer cancel()
	}

	ids := make([]int, len(sr.Entries))
	for i, e := range sr.Entries {
		ids[i] = e.ID
	}
	col := core.NewGatherCollector(ids)
	for _, e := range sr.Entries {
		if e.Fault != nil {
			g.faultCodes.NoteSOAP(e.Fault)
			col.Fail(e.Slot, e.Fault)
		}
	}

	for _, sh := range g.assign(sr.Entries) {
		g.scattered.Inc()
		go g.sendShard(ctx, sh.b, sr, sh.entries, col)
	}
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayScatter,
			ID: -1, Op: req.Target, Start: scatterStart, Service: time.Since(scatterStart)})
	}

	gatherStart := time.Now()
	resp, itemFaults, err := col.Assemble(ctx, sr.Version, func(slot int) *soap.Fault {
		g.degraded.Inc()
		df := degradeFault(ctx, sr.Entries[slot])
		g.faultCodes.NoteSOAP(df)
		return df
	})
	if err != nil {
		g.faults.Inc()
		af := soap.ServerFault("assembling packed response: %v", err)
		g.faultCodes.NoteSOAP(af)
		return core.GatewayFaultResponse(af, sr.Version)
	}
	g.itemFaults.Add(int64(itemFaults))
	if tr.Enabled() {
		tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayGather,
			ID: -1, Op: req.Target, Start: gatherStart, Service: time.Since(gatherStart)})
	}
	return resp
}

// degradeFault is the per-item fault for a slot the gateway stopped
// waiting on — byte-identical to the direct server abandoning the same
// entry (abandonResult).
func degradeFault(ctx context.Context, e *core.ScatterEntry) *soap.Fault {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fault.ToSOAP(fault.Timeoutf(
			"deadline expired before %s.%s finished", e.Service, e.Op).
			With(fault.KeyOp, e.Service+"."+e.Op))
	}
	return fault.ToSOAP(fault.Cancelledf(
		"caller cancelled before %s.%s finished", e.Service, e.Op).
		With(fault.KeyOp, e.Service+"."+e.Op))
}

// allIdempotent reports whether every operation in the shard is marked
// idempotent in the registry — the gate for failing over sub-batches whose
// first attempt may already have executed.
func (g *Gateway) allIdempotent(shard []*core.ScatterEntry) bool {
	if g.cfg.Registry == nil {
		return false
	}
	for _, e := range shard {
		if !g.cfg.Registry.Idempotent(e.Service, e.Op) {
			return false
		}
	}
	return true
}

// resultSink receives one shard's slot outcomes. The scatter path plugs in
// a *core.GatherCollector (reassembly into one packed response); the
// coalescer plugs in a coalesceSink (delivery straight to parked single
// calls). Sinks must tolerate late or duplicate writes to a slot
// (first write wins).
type resultSink interface {
	// AddHeader records the raw response-header section from the backend
	// that answered, keyed by backend index. Called before the shard's
	// Deliver calls.
	AddHeader(backend int, raw []byte)
	// Deliver hands a slot its raw packed-response segment.
	Deliver(slot int, segment []byte)
	// Fail resolves a slot with a per-item fault.
	Fail(slot int, f *soap.Fault)
}

// sendShard delivers one sub-batch: build once, exchange, and on an
// eligible failure fail over to another available backend under the retry
// policy. Exhausted or ineligible failures degrade the shard's slots to
// per-item faults; slots already degraded by the deadline ignore late
// deliveries (first write wins). Every slot is resolved — Deliver or
// Fail — before sendShard returns.
func (g *Gateway) sendShard(ctx context.Context, b *backend, sr *core.ScatterRequest, shard []*core.ScatterEntry, col resultSink) {
	// assign reserved these entries on b; release from whichever backend
	// holds the reservation when the shard resolves (failover moves it).
	defer func() { b.entriesInflight.Add(int64(-len(shard))) }()
	doc, err := core.BuildSubBatch(sr.Version, sr.Headers, shard)
	if err != nil {
		f := soap.ServerFault("building sub-batch: %v", err)
		for _, e := range shard {
			g.faultCodes.NoteSOAP(f)
			col.Fail(e.Slot, f)
		}
		return
	}
	idem := g.allIdempotent(shard)
	p := g.cfg.Retry
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	for attempt := 1; ; attempt++ {
		segs, rawHeader, err := g.exchange(ctx, b, sr.Version, doc, len(shard))
		if err == nil {
			b.noteSuccess()
			col.AddHeader(b.index, rawHeader)
			for k, e := range shard {
				col.Deliver(e.Slot, segs[k])
			}
			return
		}
		b.noteFailure(g.cfg.FailureThreshold, g.cfg.ReprobeAfter)
		if attempt >= attempts || ctx.Err() != nil || !core.RetryableError(err, idem) {
			for _, e := range shard {
				sf := shardFault(ctx, e, err)
				g.faultCodes.NoteSOAP(sf)
				col.Fail(e.Slot, sf)
			}
			return
		}
		if sleepCtx(ctx, p.Backoff(attempt)) != nil {
			for _, e := range shard {
				sf := shardFault(ctx, e, err)
				g.faultCodes.NoteSOAP(sf)
				col.Fail(e.Slot, sf)
			}
			return
		}
		if next := g.pickBackend(b); next != nil && next != b {
			b.failovers.Inc()
			g.failovers.Inc()
			b.entriesInflight.Add(int64(-len(shard)))
			next.entriesInflight.Add(int64(len(shard)))
			b = next
		}
	}
}

// shardFault maps a failed sub-batch to its per-item fault: the caller's
// own expiry uses the server's deadline/cancel texts (byte parity with a
// direct server degrading the same entry); anything else is
// upstream-unavailable (Server.Busy on the wire) — the work never produced
// a response, and re-sending the entry is the client's call.
func shardFault(ctx context.Context, e *core.ScatterEntry, err error) *soap.Fault {
	if ctx.Err() != nil {
		return degradeFault(ctx, e)
	}
	return fault.ToSOAP(fault.Upstreamf(
		"no backend available for %s.%s: %v", e.Service, e.Op, err).
		With(fault.KeyOp, e.Service+"."+e.Op))
}

// sleepCtx waits out one backoff, honoring ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// exchange performs one sub-batch POST against a backend and splits the
// reply into per-entry segments.
func (g *Gateway) exchange(ctx context.Context, b *backend, v soap.Version, doc []byte, want int) (segments [][]byte, rawHeader []byte, err error) {
	tr := g.cfg.Tracer
	start := time.Now()
	b.exchanges.Inc()
	n := b.inflight.Add(1)
	if tr.Enabled() {
		tr.Gauge("gateway." + b.name + ".inflight").Set(n)
	}
	defer func() {
		left := b.inflight.Add(-1)
		if tr.Enabled() {
			tr.Gauge("gateway." + b.name + ".inflight").Set(left)
			tr.Record(trace.Span{Trace: trace.FromContext(ctx), Stage: trace.StageGatewayBackend,
				ID: -1, Op: b.name, Start: start, Service: time.Since(start)})
		}
	}()

	extra := make([]string, 0, 6)
	extra = append(extra, "SOAPAction", `""`)
	if deadline, ok := ctx.Deadline(); ok {
		if budget := time.Until(deadline); budget > 0 {
			extra = append(extra, core.HeaderDeadline, strconv.FormatInt(budget.Milliseconds(), 10))
		}
	}
	if id := trace.FromContext(ctx); id != 0 {
		extra = append(extra, core.HeaderTrace, strconv.FormatUint(id, 10))
	}
	resp, err := b.client.PostCtx(ctx, g.packTarget(), v.ContentType(), doc, extra...)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Release()
	if resp.StatusCode != 200 {
		// A whole-message fault for a gateway-built sub-batch (the backend
		// rejected what we sent); surface it for retry classification.
		if f := core.DecodeBackendFault(resp.Body); f != nil {
			return nil, nil, f
		}
		return nil, nil, fmt.Errorf("gateway: backend %s answered HTTP %d", b.name, resp.StatusCode)
	}
	segments, rawHeader, err = core.SplitGatherResponse(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if len(segments) != want {
		return nil, nil, fmt.Errorf("gateway: backend %s returned %d entries for %d requests", b.name, len(segments), want)
	}
	return segments, rawHeader, nil
}

// proxy forwards a request whole to one backend and relays the reply —
// the non-packed path, byte-transparent by construction.
func (g *Gateway) proxy(ctx context.Context, req *httpx.Request) *httpx.Response {
	b := g.pickBackend(nil)
	if b == nil {
		resp := httpx.NewResponse(503, []byte("no backend available\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	out := httpx.NewRequest(req.Method, req.Target, req.Body)
	for _, h := range [...]string{"Content-Type", "SOAPAction", core.HeaderDeadline, core.HeaderTrace} {
		if v := req.Header.Get(h); v != "" {
			out.Header.Set(h, v)
		}
	}
	b.exchanges.Inc()
	n := b.inflight.Add(1)
	b.entriesInflight.Add(1)
	defer func() { b.inflight.Add(-1); b.entriesInflight.Add(-1) }()
	_ = n
	resp, err := b.client.DoCtx(ctx, out)
	if err != nil {
		b.noteFailure(g.cfg.FailureThreshold, g.cfg.ReprobeAfter)
		g.faults.Inc()
		resp := httpx.NewResponse(502, []byte("backend exchange failed: "+err.Error()+"\n"))
		resp.Header.Set("Content-Type", "text/plain")
		return resp
	}
	b.noteSuccess()
	// Relay status, content type and body. The body may alias a pooled
	// buffer owned by the backend client's response; copy so the transport
	// can write it after this handler returns without a lifetime knot.
	relay := httpx.NewResponse(resp.StatusCode, append([]byte(nil), resp.Body...))
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		relay.Header.Set("Content-Type", ct)
	}
	resp.Release()
	return relay
}
