package httpx

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Request-body buffer pooling for the server read path.
//
// Every POST used to allocate a fresh body buffer sized to Content-Length
// and leave it for the collector after the exchange. SOAP traffic is a
// steady stream of similar-sized documents, so the server instead recycles
// body buffers through a sync.Pool: serveConn acquires the buffer with the
// request and releases it once the response has been written and logged.
//
// The Handler contract this relies on: a handler must not retain
// req.Body (or sub-slices of it) past its return. Every consumer in this
// stack parses the body into independently-allocated structures before
// returning. Oversized bodies bypass the pool entirely — one huge request
// must not pin a huge buffer in the pool forever.

// maxPooledBody is the largest body served from the pool. Larger bodies
// fall back to a one-shot allocation.
const maxPooledBody = 1 << 20

// bodyPool holds recycled body buffers (as *[]byte to avoid an allocation
// per Put). Buffers keep their grown capacity across uses.
var bodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16<<10)
		return &b
	},
}

// acquireBody returns a length-n buffer backed by the pool.
func acquireBody(n int) *[]byte {
	bp := bodyPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n, max(n, 2*cap(*bp)))
	}
	*bp = (*bp)[:n]
	return bp
}

// releaseBody returns a buffer to the pool.
func releaseBody(bp *[]byte) {
	*bp = (*bp)[:0]
	bodyPool.Put(bp)
}

// connReaderPool recycles the per-connection buffered reader across
// connections: a 16 KiB bufio.Reader is the single largest allocation a
// short-lived connection makes, and under the C10k+ regime churned
// connections would otherwise hammer the allocator with them. serveConn
// acquires on accept and releases on close; Reset drops the old conn
// reference so pooled readers never pin dead connections.
var connReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 16<<10) },
}

// acquireConnReader returns a pooled 16 KiB reader bound to r.
func acquireConnReader(r io.Reader) *bufio.Reader {
	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// releaseConnReader recycles the reader. The caller must be done with
// every byte it buffered.
func releaseConnReader(br *bufio.Reader) {
	br.Reset(nil)
	connReaderPool.Put(br)
}

// ReadRequestPooled parses one request like ReadRequest, drawing the body
// buffer from the process pool when the body is Content-Length framed and
// at most maxPooledBody bytes. The returned release func recycles the
// buffer; after calling it req.Body must not be touched. release is never
// nil and is safe to call exactly once.
func ReadRequestPooled(br *bufio.Reader, maxBody int64) (*Request, func(), error) {
	noop := func() {}
	budget := MaxHeaderBytes
	line, err := readLine(br, &budget)
	if err != nil {
		return nil, noop, err // io.EOF here means a cleanly closed keep-alive conn
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, noop, protoErrf("malformed request line %q", line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	if proto != "HTTP/1.1" && proto != "HTTP/1.0" {
		return nil, noop, protoErrf("unsupported protocol %q", proto)
	}
	h, err := readHeader(br, &budget)
	if err != nil {
		return nil, noop, err
	}
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	req := &Request{Method: method, Target: target, Proto: proto, Header: h}

	// Pooled fast path: Content-Length framing within the pooling cap.
	if cl := h.Get("Content-Length"); cl != "" && !h.hasToken("Transfer-Encoding", "chunked") {
		n, err := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if err != nil || n < 0 {
			return nil, noop, protoErrf("bad Content-Length %q", cl)
		}
		if n > maxBody {
			return nil, noop, protoErrf("body of %d bytes exceeds limit %d", n, maxBody)
		}
		if n <= maxPooledBody {
			bp := acquireBody(int(n))
			if _, err := io.ReadFull(br, *bp); err != nil {
				releaseBody(bp)
				return nil, noop, protoErrf("short body: %v", err)
			}
			req.Body = *bp
			released := false
			return req, func() {
				if !released {
					released = true
					req.Body = nil
					releaseBody(bp)
				}
			}, nil
		}
	}
	// Chunked, oversized or absent body: the regular unpooled path.
	body, err := readBody(br, &h, maxBody, false)
	if err != nil {
		return nil, noop, err
	}
	req.Body = body
	return req, noop, nil
}
