package httpx

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func reqDoc(body string) string {
	return fmt.Sprintf("POST /services/Echo HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
}

func TestReadRequestPooledParsesLikeReadRequest(t *testing.T) {
	docs := []string{
		reqDoc("<soap>payload</soap>"),
		reqDoc(""),
		"GET /services/ HTTP/1.1\r\n\r\n",
		"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
	}
	for _, doc := range docs {
		want, wantErr := ReadRequest(bufio.NewReader(strings.NewReader(doc)), 0)
		got, release, gotErr := ReadRequestPooled(bufio.NewReader(strings.NewReader(doc)), 0)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: error divergence %v vs %v", doc, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Method != want.Method || got.Target != want.Target || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("%q: parsed %+v vs %+v", doc, got, want)
		}
		pooled := want.Header.Get("Content-Length") != ""
		release()
		if pooled && got.Body != nil {
			t.Errorf("%q: release did not clear a pooled Body", doc)
		}
	}
}

func TestReadRequestPooledReusesBuffer(t *testing.T) {
	// Drain cross-test pool state, then check a released buffer comes back.
	doc := reqDoc(strings.Repeat("x", 4096))
	req1, release1, err := ReadRequestPooled(bufio.NewReader(strings.NewReader(doc)), 0)
	if err != nil {
		t.Fatal(err)
	}
	first := &req1.Body[0]
	release1()
	// Pools are per-P; on the same goroutine with no preemption the very
	// next acquire overwhelmingly returns the same buffer. Retry a few
	// times to keep this robust rather than flaky-strict.
	reused := false
	for i := 0; i < 8 && !reused; i++ {
		req2, release2, err := ReadRequestPooled(bufio.NewReader(strings.NewReader(doc)), 0)
		if err != nil {
			t.Fatal(err)
		}
		reused = &req2.Body[0] == first
		release2()
	}
	if !reused {
		t.Skip("pool did not return the recycled buffer (GC or scheduling); not a correctness failure")
	}
}

func TestReadRequestPooledOversizedBypassesPool(t *testing.T) {
	body := strings.Repeat("y", maxPooledBody+1)
	req, release, err := ReadRequestPooled(bufio.NewReader(strings.NewReader(reqDoc(body))), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Body) != len(body) {
		t.Fatalf("body length %d", len(req.Body))
	}
	release() // must be a no-op for unpooled bodies
	if req.Body == nil {
		t.Error("release cleared an unpooled body")
	}
}

func TestReadRequestPooledRespectsMaxBody(t *testing.T) {
	_, _, err := ReadRequestPooled(bufio.NewReader(strings.NewReader(reqDoc("123456"))), 3)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if _, ok := err.(*ProtocolError); !ok {
		t.Fatalf("err = %T %v", err, err)
	}
}

func TestReadRequestPooledShortBodyReleases(t *testing.T) {
	// Truncated body: the pooled buffer must be returned, not leaked, and
	// the error must match ReadRequest's.
	doc := "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
	_, _, err := ReadRequestPooled(bufio.NewReader(strings.NewReader(doc)), 0)
	if err == nil {
		t.Fatal("short body accepted")
	}
	if !strings.Contains(err.Error(), "short body") {
		t.Fatalf("err = %v", err)
	}
}
