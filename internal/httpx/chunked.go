package httpx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// readChunked consumes a chunked-encoded body, including the terminating
// zero chunk and optional trailers, enforcing maxBody on the decoded size.
func readChunked(br *bufio.Reader, maxBody int64) ([]byte, error) {
	var body []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, protoErrf("chunk size line: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		// Chunk extensions (";ext=...") are permitted and ignored.
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
		if err != nil || size < 0 {
			return nil, protoErrf("bad chunk size %q", line)
		}
		if size == 0 {
			// Trailers until blank line.
			for {
				tl, err := br.ReadString('\n')
				if err != nil {
					return nil, protoErrf("chunk trailer: %v", err)
				}
				if strings.TrimRight(tl, "\r\n") == "" {
					return body, nil
				}
			}
		}
		if int64(len(body))+size > maxBody {
			return nil, protoErrf("chunked body exceeds limit %d", maxBody)
		}
		chunk := make([]byte, size)
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, protoErrf("short chunk: %v", err)
		}
		body = append(body, chunk...)
		// The CRLF after the chunk data.
		crlf := make([]byte, 2)
		if _, err := io.ReadFull(br, crlf); err != nil || crlf[0] != '\r' || crlf[1] != '\n' {
			return nil, protoErrf("missing CRLF after chunk")
		}
	}
}

// writeChunked writes body as chunked encoding with the given chunk size.
// Used by tests and by peers that want streaming-shaped traffic; the
// mainline request/response writers use Content-Length framing.
func writeChunked(w io.Writer, body []byte, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 8 << 10
	}
	for len(body) > 0 {
		n := chunkSize
		if n > len(body) {
			n = len(body)
		}
		if _, err := fmt.Fprintf(w, "%x\r\n", n); err != nil {
			return err
		}
		if _, err := w.Write(body[:n]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\r\n"); err != nil {
			return err
		}
		body = body[n:]
	}
	_, err := io.WriteString(w, "0\r\n\r\n")
	return err
}
