package httpx

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
)

// Dialer opens a new connection to the server. It abstracts over real TCP
// and the simulated link of package netsim.
type Dialer func() (net.Conn, error)

// DialerCtx is a context-aware Dialer: the context's deadline and
// cancellation bound connection establishment itself, not just the
// exchange that follows. net.Dialer.DialContext satisfies it directly;
// netsim links wrap their Dial in one line.
type DialerCtx func(ctx context.Context) (net.Conn, error)

// DialError wraps a connection-establishment failure. Because the request
// was never written when dialing failed, a DialError is always safe to
// retry regardless of the operation's idempotency — the distinction the
// client retry policy keys on.
type DialError struct {
	// Err is the underlying dial failure.
	Err error
}

// Error implements the error interface.
func (e *DialError) Error() string { return "httpx: dial: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *DialError) Unwrap() error { return e.Err }

// Client issues HTTP requests over connections produced by Dial.
//
// Connection reuse is the experimental variable in the paper's baselines, so
// it is explicit here: with KeepAlive false every request dials a fresh
// connection and sends "Connection: close" (the behaviour of the paper's
// per-message SOAP clients); with KeepAlive true idle connections are pooled
// and reused.
type Client struct {
	// Dial is required unless DialCtx is set.
	Dial Dialer
	// DialCtx, when set, is preferred over Dial: connection establishment
	// is cancelled when the request's context expires, so deadline
	// propagation covers the dial, not just the exchange.
	DialCtx DialerCtx
	// KeepAlive selects connection reuse.
	KeepAlive bool
	// MaxIdle caps the number of pooled idle connections (default 16).
	MaxIdle int
	// MaxActive bounds concurrent exchanges (a health-check-friendly
	// backpressure seam for pool consumers like the gateway). Zero means
	// unbounded. Waiting for a slot honors the request context.
	MaxActive int
	// Timeout bounds one full request-response exchange; zero means none.
	Timeout time.Duration
	// Pipeline enables HTTP/1.1 pipelining on keep-alive connections: up
	// to MaxPerConn exchanges share one connection, responses matched
	// FIFO. Ignored unless KeepAlive is set. A transport error fails every
	// exchange in flight on that connection; the usual retry-once-on-stale
	// logic applies per caller. See pipeclient.go.
	Pipeline bool
	// MaxPerConn caps in-flight exchanges per pipelined connection
	// (default 8). Only meaningful with Pipeline.
	MaxPerConn int
	// MaxBodyBytes caps response bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Tracer, when enabled, records one client.send span per exchange
	// covering dial/reuse, request write and response read. Nil disables
	// tracing at the cost of one branch per exchange.
	Tracer *trace.Tracer

	mu       sync.Mutex
	idle     []*persistConn
	pipes    []*pipeConn // live pipelined connections (Pipeline mode)
	closed   bool
	sem      chan struct{} // lazily sized to MaxActive
	inflight int
}

// PoolStats is a point-in-time view of the client's connection pool.
type PoolStats struct {
	// Idle is the number of pooled keep-alive connections.
	Idle int
	// InFlight is the number of exchanges currently running.
	InFlight int
}

// PoolStats reports the pool's current occupancy. Pipelined connections
// with no exchange in flight count as idle.
func (c *Client) PoolStats() PoolStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	idle := len(c.idle)
	for _, pc := range c.pipes {
		if pc.inflight.Load() == 0 {
			idle++
		}
	}
	return PoolStats{Idle: idle, InFlight: c.inflight}
}

// acquire claims an exchange slot (when MaxActive bounds the pool) and
// counts the exchange in flight. The returned release must be called once
// the exchange ends.
func (c *Client) acquire(ctx context.Context) (func(), error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	if c.MaxActive > 0 && c.sem == nil {
		c.sem = make(chan struct{}, c.MaxActive)
	}
	sem := c.sem
	c.mu.Unlock()
	if sem != nil {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, fmt.Errorf("httpx: waiting for exchange slot: %w", ctx.Err())
		}
	}
	c.mu.Lock()
	c.inflight++
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		if sem != nil {
			<-sem
		}
	}, nil
}

type persistConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// errClientClosed is returned by Do after Close.
var errClientClosed = errors.New("httpx: client closed")

// Do sends the request and returns the response. It retries once on a
// stale pooled connection (the server may have closed it between requests).
func (c *Client) Do(req *Request) (*Response, error) {
	return c.DoCtx(context.Background(), req)
}

// DoCtx is Do under a context: the context's deadline bounds the exchange
// (combined with Timeout, whichever is sooner) and cancelling it closes
// the in-flight connection, unblocking the exchange immediately. With
// DialCtx set the dial itself is cancellable too; the legacy Dialer runs
// uninterrupted (its signature predates contexts), which only matters for
// dials that can hang — simulated and loopback dials complete in
// microseconds.
func (c *Client) DoCtx(ctx context.Context, req *Request) (*Response, error) {
	if !c.Tracer.Enabled() {
		return c.doCtx(ctx, req)
	}
	start := time.Now()
	resp, err := c.doCtx(ctx, req)
	c.Tracer.Record(trace.Span{
		Trace:   trace.FromContext(ctx),
		Stage:   trace.StageClientSend,
		ID:      -1,
		Op:      req.Method + " " + req.Target,
		Start:   start,
		Service: time.Since(start),
	})
	return resp, err
}

// doCtx performs the exchange (see DoCtx).
func (c *Client) doCtx(ctx context.Context, req *Request) (*Response, error) {
	if c.Dial == nil && c.DialCtx == nil {
		return nil, errors.New("httpx: client has no Dial")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("httpx: %w", err)
	}
	if c.Pipeline && c.KeepAlive {
		return c.doPipelined(ctx, req)
	}
	release, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	reused := false
	pc, err := c.getConn(ctx, &reused)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, pc, req)
	if err != nil && reused && ctx.Err() == nil {
		// Stale keep-alive connection: retry once on a fresh one.
		pc.conn.Close()
		reused = false
		pc, err = c.getConn(ctx, &reused)
		if err != nil {
			return nil, err
		}
		resp, err = c.roundTrip(ctx, pc, req)
	}
	if err != nil {
		pc.conn.Close()
		// The raw conn error after a cancel/expiry is incidental; report
		// the context's own error so callers classify it correctly.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("httpx: exchange aborted: %w", cerr)
		}
		return nil, err
	}

	if c.KeepAlive && !wantsClose(resp.Proto, &resp.Header) {
		c.putConn(pc)
	} else {
		pc.conn.Close()
	}
	return resp, nil
}

func (c *Client) roundTrip(ctx context.Context, pc *persistConn, req *Request) (*Response, error) {
	deadline := time.Time{}
	if c.Timeout > 0 {
		deadline = time.Now().Add(c.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		_ = pc.conn.SetDeadline(deadline)
	}
	if ctx.Done() != nil {
		// Cancellation watcher: closing the connection is the only way to
		// unblock a Write/Read already in progress.
		stop := make(chan struct{})
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				pc.conn.Close()
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watcherDone
		}()
	}
	if err := WriteRequest(pc.conn, req, !c.KeepAlive); err != nil {
		return nil, fmt.Errorf("httpx: write request: %w", err)
	}
	resp, err := ReadResponse(pc.br, c.MaxBodyBytes)
	if err != nil {
		return nil, fmt.Errorf("httpx: read response: %w", err)
	}
	return resp, nil
}

func (c *Client) getConn(ctx context.Context, reused *bool) (*persistConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	if c.KeepAlive && len(c.idle) > 0 {
		pc := c.idle[len(c.idle)-1]
		c.idle = c.idle[:len(c.idle)-1]
		c.mu.Unlock()
		*reused = true
		return pc, nil
	}
	c.mu.Unlock()
	var conn net.Conn
	var err error
	if c.DialCtx != nil {
		conn, err = c.DialCtx(ctx)
	} else {
		conn, err = c.Dial()
	}
	if err != nil {
		return nil, &DialError{Err: err}
	}
	return &persistConn{conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}, nil
}

func (c *Client) putConn(pc *persistConn) {
	maxIdle := c.MaxIdle
	if maxIdle <= 0 {
		maxIdle = 16
	}
	_ = pc.conn.SetDeadline(time.Time{})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= maxIdle {
		pc.conn.Close()
		return
	}
	c.idle = append(c.idle, pc)
}

// CloseIdle drops the pooled idle connections without closing the client:
// in-flight exchanges are unaffected and new requests still dial. This is
// the keep-alive teardown a drained-but-resumable backend needs — Close is
// terminal (subsequent requests fail), so a gateway draining a backend it
// may later resume must use CloseIdle instead.
func (c *Client) CloseIdle() {
	c.mu.Lock()
	for _, pc := range c.idle {
		pc.conn.Close()
	}
	c.idle = nil
	var idlePipes []*pipeConn
	for _, pc := range c.pipes {
		if pc.inflight.Load() == 0 {
			idlePipes = append(idlePipes, pc)
		}
	}
	c.mu.Unlock()
	// fail re-locks c.mu (removePipeConn), so it runs outside the lock.
	for _, pc := range idlePipes {
		pc.fail(errClientClosed)
	}
}

// Close drops all pooled connections; in-flight exchanges are unaffected
// (pipelined in-flight exchanges fail — their connection is shared state
// the client owns).
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	for _, pc := range c.idle {
		pc.conn.Close()
	}
	c.idle = nil
	pipes := c.pipes
	c.pipes = nil
	c.mu.Unlock()
	for _, pc := range pipes {
		pc.fail(errClientClosed)
	}
}

// Post is a convenience for POSTing a body with a content type, the only
// verb SOAP uses.
func (c *Client) Post(target, contentType string, body []byte, extra ...string) (*Response, error) {
	return c.PostCtx(context.Background(), target, contentType, body, extra...)
}

// PostCtx is Post under a context (see DoCtx for its semantics).
func (c *Client) PostCtx(ctx context.Context, target, contentType string, body []byte, extra ...string) (*Response, error) {
	if len(extra)%2 != 0 {
		return nil, errors.New("httpx: Post extra headers must be name/value pairs")
	}
	req := NewRequest("POST", target, body)
	req.Header.Set("Content-Type", contentType)
	for i := 0; i+1 < len(extra); i += 2 {
		req.Header.Set(extra[i], extra[i+1])
	}
	return c.DoCtx(ctx, req)
}
