package httpx

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCtxRejectsDoneContext(t *testing.T) {
	addr, _ := startServer(t, echoHandler)
	c := tcpClient(addr, false)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.PostCtx(ctx, "/echo", "text/plain", []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelAbortsInFlightExchange(t *testing.T) {
	// The handler parks until its context dies; cancelling the client
	// context must abort the blocked read promptly by closing the conn.
	addr, _ := startServer(t, func(ctx context.Context, req *Request) *Response {
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Second):
		}
		return NewResponse(200, nil)
	})
	c := tcpClient(addr, false)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err := c.PostCtx(ctx, "/park", "text/plain", []byte("x"))
	if err == nil {
		t.Fatal("want error from cancelled exchange")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancel took %v to unblock", elapsed)
	}
}

func TestDeadlineBoundsExchange(t *testing.T) {
	addr, _ := startServer(t, func(ctx context.Context, req *Request) *Response {
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Second):
		}
		return NewResponse(200, nil)
	})
	c := tcpClient(addr, false)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.PostCtx(ctx, "/park", "text/plain", []byte("x"))
	if err == nil {
		t.Fatal("want error from expired exchange")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to unblock", elapsed)
	}
}

func TestHandlerCtxCancelledOnClientDisconnect(t *testing.T) {
	// On a Connection: close exchange, the server watches the socket and
	// cancels the handler's context when the peer goes away.
	sawCancel := make(chan struct{})
	addr, _ := startServer(t, func(ctx context.Context, req *Request) *Response {
		select {
		case <-ctx.Done():
			close(sawCancel)
		case <-time.After(5 * time.Second):
		}
		return NewResponse(200, nil)
	})
	c := tcpClient(addr, false)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel() // closes the client's conn mid-exchange
	}()
	c.PostCtx(ctx, "/park", "text/plain", []byte("x"))
	c.Close()
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("handler context never cancelled after client disconnect")
	}
}

func TestHandlerCtxCancelledOnServerClose(t *testing.T) {
	// Close cancels the base context, releasing parked handlers.
	started := make(chan struct{})
	var released atomic.Bool
	addr, srv := startServer(t, func(ctx context.Context, req *Request) *Response {
		close(started)
		select {
		case <-ctx.Done():
			released.Store(true)
		case <-time.After(5 * time.Second):
		}
		return NewResponse(200, nil)
	})
	c := tcpClient(addr, false)
	defer c.Close()
	go c.Post("/park", "text/plain", []byte("x"))
	<-started
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !released.Load() {
		if time.Now().After(deadline) {
			t.Fatal("handler not released by server close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKeepAliveExchangeStillWorksWithCtx(t *testing.T) {
	// Keep-alive connections skip the peer-disconnect watcher (it would
	// steal the next request's bytes); plain ctx-carrying exchanges must
	// still work and reuse the connection.
	addr, _ := startServer(t, echoHandler)
	c := tcpClient(addr, true)
	defer c.Close()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := c.PostCtx(ctx, "/echo", "text/plain", []byte("ka"))
		cancel()
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if string(resp.Body) != "ka" {
			t.Fatalf("exchange %d body = %q", i, resp.Body)
		}
	}
}
