package httpx

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestDialCtxHungDialCancelledAtDeadline pins the satellite fix: a dial
// that never completes must not outlive the request deadline.
func TestDialCtxHungDialCancelledAtDeadline(t *testing.T) {
	c := &Client{
		DialCtx: func(ctx context.Context) (net.Conn, error) {
			<-ctx.Done() // a hung dial: only the context ends it
			return nil, ctx.Err()
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.DoCtx(ctx, NewRequest("POST", "/", []byte("x")))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected error from hung dial")
	}
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("expected DialError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline expiry through DialError, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dial not interrupted at deadline: took %v", elapsed)
	}
}

// TestDialCtxPreferredOverDial checks the context-aware dialer wins when
// both are set.
func TestDialCtxPreferredOverDial(t *testing.T) {
	link := netsim.NewLink(netsim.Fast())
	defer link.Close()
	l, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	legacyUsed := false
	c := &Client{
		Dial: func() (net.Conn, error) {
			legacyUsed = true
			return link.Dial()
		},
		DialCtx: func(ctx context.Context) (net.Conn, error) { return link.Dial() },
	}
	// The server closes immediately, so the exchange fails — only the
	// dial routing matters here.
	_, _ = c.Do(NewRequest("POST", "/", nil))
	if legacyUsed {
		t.Fatal("legacy Dial used although DialCtx was set")
	}
}

// TestMaxActiveBoundsConcurrency verifies the bounded pool: with
// MaxActive=2, a third exchange waits for a slot and its wait honors the
// context.
func TestMaxActiveBoundsConcurrency(t *testing.T) {
	link := netsim.NewLink(netsim.Fast())
	defer link.Close()
	l, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}

	// A server that parks requests until released, so exchanges stay
	// in flight as long as the test wants.
	release := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				buf := make([]byte, 4096)
				if _, err := conn.Read(buf); err != nil {
					return
				}
				<-release
				_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"))
			}(conn)
		}
	}()

	c := &Client{Dial: link.Dial, MaxActive: 2}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Do(NewRequest("POST", "/", []byte("x")))
			errs <- err
		}()
	}
	// Wait until both exchanges occupy their slots.
	deadline := time.Now().Add(2 * time.Second)
	for c.PoolStats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("exchanges did not start: %+v", c.PoolStats())
		}
		time.Sleep(time.Millisecond)
	}

	// Third exchange: no slot free, must fail with the context error.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.DoCtx(ctx, NewRequest("POST", "/", []byte("x")))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected slot wait to expire, got %v", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked exchange failed: %v", err)
		}
	}
	if got := c.PoolStats().InFlight; got != 0 {
		t.Fatalf("in-flight count leaked: %d", got)
	}
	wg.Wait()
}
