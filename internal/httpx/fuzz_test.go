package httpx

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadResponse hammers the client-side response parser: status line,
// headers, content-length and chunked bodies. The invariants are that it
// never panics, never returns a response with an out-of-range status, and
// never hands back a body larger than the configured cap.
func FuzzReadResponse(f *testing.F) {
	seeds := []string{
		"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello",
		"HTTP/1.1 204 No Content\r\n\r\n",
		"HTTP/1.1 500 Internal Server Error\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\nboom",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nTrailer: x\r\n\r\n",
		"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nrest-until-eof",
		"HTTP/1.0 301 Moved\r\nLocation: /x\r\n\r\n",
		"HTTP/1.1 200\r\n\r\n",
		"HTTP/1.1 999 Weird\r\nA:\r\nB: \t v\r\n\r\n",
		"garbage",
		"HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffffff\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBody = 1 << 16
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)), maxBody)
		if err != nil {
			return
		}
		if resp.StatusCode < 100 || resp.StatusCode > 999 {
			t.Fatalf("status code out of range: %d", resp.StatusCode)
		}
		if len(resp.Body) > maxBody {
			t.Fatalf("body exceeds cap: %d > %d", len(resp.Body), maxBody)
		}
		// A parsed response must re-serialize without error.
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp, false); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		resp.Release()
	})
}
