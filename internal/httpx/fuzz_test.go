package httpx

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadResponse hammers the client-side response parser: status line,
// headers, content-length and chunked bodies. The invariants are that it
// never panics, never returns a response with an out-of-range status, and
// never hands back a body larger than the configured cap.
func FuzzReadResponse(f *testing.F) {
	seeds := []string{
		"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello",
		"HTTP/1.1 204 No Content\r\n\r\n",
		"HTTP/1.1 500 Internal Server Error\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\nboom",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nTrailer: x\r\n\r\n",
		"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nrest-until-eof",
		"HTTP/1.0 301 Moved\r\nLocation: /x\r\n\r\n",
		"HTTP/1.1 200\r\n\r\n",
		"HTTP/1.1 999 Weird\r\nA:\r\nB: \t v\r\n\r\n",
		"garbage",
		"HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffffff\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBody = 1 << 16
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)), maxBody)
		if err != nil {
			return
		}
		if resp.StatusCode < 100 || resp.StatusCode > 999 {
			t.Fatalf("status code out of range: %d", resp.StatusCode)
		}
		if len(resp.Body) > maxBody {
			t.Fatalf("body exceeds cap: %d > %d", len(resp.Body), maxBody)
		}
		// A parsed response must re-serialize without error.
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp, false); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		resp.Release()
	})
}

// FuzzReadRequestStream hammers the server-side request parser with the
// traffic shapes the pipelined read loop sees: back-to-back requests,
// CRLF/LF-split header lines, partial reads and trailing garbage. The
// invariants are that parsing never panics, every successfully parsed
// request re-serializes, and a parse error is terminal for the stream —
// exactly how servePipelined treats it.
func FuzzReadRequestStream(f *testing.F) {
	seeds := []string{
		"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
		"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcPOST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
		"GET /x HTTP/1.1\r\n\r\nGET /y HTTP/1.1\r\n\r\nGET /z HTTP/1.1\r\n\r\n",
		"POST /s HTTP/1.1\nContent-Length: 2\n\nhi", // bare-LF line endings
		"POST /s HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nxyz\r\n0\r\n\r\nPOST /t HTTP/1.1\r\nContent-Length: 1\r\n\r\nq",
		"POST /s HTTP/1.1\r\nConnection: close\r\nContent-Length: 4\r\n\r\nlast",
		"POST /s HTTP/1.0\r\nContent-Length: 2\r\n\r\nokGARBAGE AFTER THE LAST REQUEST",
		"POST /partial HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
		"POST /s HTTP/1.1\r\nContent-Length: 1\r\n\r\naPOST incomplete",
		"NOT A REQUEST LINE\r\n\r\n",
		"POST /s HTTP/2\r\n\r\n",
		"POST /s HTTP/1.1\r\n badname: v\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBody = 1 << 16
		// halfReader forces partial reads so bufio refills mid-message.
		br := bufio.NewReaderSize(&halfReader{r: bytes.NewReader(data)}, 64)
		for i := 0; i < 64; i++ {
			req, release, err := ReadRequestPooled(br, maxBody)
			if err != nil {
				return // terminal: the stream is dead from here on
			}
			if len(req.Body) > maxBody {
				t.Fatalf("body exceeds cap: %d", len(req.Body))
			}
			var buf bytes.Buffer
			if werr := WriteRequest(&buf, req, false); werr != nil {
				t.Fatalf("reserialize: %v", werr)
			}
			release()
		}
	})
}

// halfReader yields at most half of what's asked (minimum 1 byte) to
// exercise refill boundaries inside the parser.
type halfReader struct{ r *bytes.Reader }

func (h *halfReader) Read(p []byte) (int, error) {
	n := len(p) / 2
	if n < 1 {
		n = 1
	}
	return h.r.Read(p[:n])
}
