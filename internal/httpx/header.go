// Package httpx is a compact HTTP/1.1 implementation over net.Conn.
//
// It plays the role Apache Tomcat and the Axis HTTP transport play in the
// paper's testbed: POSTing SOAP envelopes and returning SOAP responses. It
// is deliberately small — requests with bounded bodies, content-length and
// chunked framing, keep-alive and per-request-connection modes — because
// those are the only features the experiments exercise, and because the
// experiments need precise control over connection reuse (the paper's
// "No Optimization" baseline opens a fresh TCP connection per message while
// the packed approach amortizes one).
package httpx

import "strings"

// Header is an ordered multimap of HTTP header fields. Field names are
// matched case-insensitively but stored in their original spelling, so
// serialized output is stable.
type Header struct {
	fields []field
}

type field struct {
	name  string
	value string
}

// Get returns the first value of the named field, or "".
func (h *Header) Get(name string) string {
	for _, f := range h.fields {
		if strings.EqualFold(f.name, name) {
			return f.value
		}
	}
	return ""
}

// Has reports whether the named field is present.
func (h *Header) Has(name string) bool {
	for _, f := range h.fields {
		if strings.EqualFold(f.name, name) {
			return true
		}
	}
	return false
}

// Values returns all values of the named field, in order.
func (h *Header) Values(name string) []string {
	var out []string
	for _, f := range h.fields {
		if strings.EqualFold(f.name, name) {
			out = append(out, f.value)
		}
	}
	return out
}

// Set replaces all values of the named field with one value.
func (h *Header) Set(name, value string) {
	out := h.fields[:0]
	for _, f := range h.fields {
		if !strings.EqualFold(f.name, name) {
			out = append(out, f)
		}
	}
	h.fields = append(out, field{name: name, value: value})
}

// Add appends a value to the named field.
func (h *Header) Add(name, value string) {
	if h.fields == nil {
		// Typical messages carry a handful of fields; skip the 1->2->4
		// growth reallocations.
		h.fields = make([]field, 0, 4)
	}
	h.fields = append(h.fields, field{name: name, value: value})
}

// Del removes all values of the named field.
func (h *Header) Del(name string) {
	out := h.fields[:0]
	for _, f := range h.fields {
		if !strings.EqualFold(f.name, name) {
			out = append(out, f)
		}
	}
	h.fields = out
}

// Len returns the number of fields.
func (h *Header) Len() int { return len(h.fields) }

// Each calls fn for every field in order.
func (h *Header) Each(fn func(name, value string)) {
	for _, f := range h.fields {
		fn(f.name, f.value)
	}
}

// Clone returns a deep copy.
func (h *Header) Clone() Header {
	return Header{fields: append([]field(nil), h.fields...)}
}

// hasToken reports whether the named field contains the given
// comma-separated token (case-insensitive), as used by Connection and
// Transfer-Encoding handling.
func (h *Header) hasToken(name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}
