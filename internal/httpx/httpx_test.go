package httpx

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHeaderBasics(t *testing.T) {
	var h Header
	h.Add("Content-Type", "text/xml")
	h.Add("X-Multi", "1")
	h.Add("X-Multi", "2")
	if h.Get("content-type") != "text/xml" {
		t.Error("case-insensitive Get failed")
	}
	if vs := h.Values("x-multi"); len(vs) != 2 || vs[0] != "1" || vs[1] != "2" {
		t.Errorf("Values = %v", vs)
	}
	h.Set("X-Multi", "3")
	if vs := h.Values("X-Multi"); len(vs) != 1 || vs[0] != "3" {
		t.Errorf("after Set, Values = %v", vs)
	}
	h.Del("x-multi")
	if h.Has("X-Multi") {
		t.Error("Del failed")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	clone := h.Clone()
	clone.Set("Content-Type", "other")
	if h.Get("Content-Type") != "text/xml" {
		t.Error("Clone shares storage")
	}
}

func TestHeaderTokens(t *testing.T) {
	var h Header
	h.Set("Connection", "keep-alive, Close")
	if !h.hasToken("Connection", "close") {
		t.Error("token close not found")
	}
	if h.hasToken("Connection", "upgrade") {
		t.Error("bogus token found")
	}
}

func TestParseRequest(t *testing.T) {
	raw := "POST /services/Echo HTTP/1.1\r\nHost: test\r\nContent-Type: text/xml\r\nContent-Length: 5\r\n\r\nhello"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Target != "/services/Echo" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line = %s %s %s", req.Method, req.Target, req.Proto)
	}
	if string(req.Body) != "hello" {
		t.Errorf("body = %q", req.Body)
	}
}

func TestParseRequestChunked(t *testing.T) {
	var b bytes.Buffer
	b.WriteString("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
	if err := writeChunked(&b, []byte("hello chunked world"), 7); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(bufio.NewReader(&b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello chunked world" {
		t.Errorf("body = %q", req.Body)
	}
}

func TestChunkedWithExtensionsAndTrailers(t *testing.T) {
	raw := "5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n"
	body, err := readChunked(bufio.NewReader(strings.NewReader(raw)), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello" {
		t.Errorf("body = %q", body)
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET / HTTP/2.0\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
		"POST / HTTP/1.1\r\nBad Header\r\n\r\n",
		"POST / HTTP/1.1\r\nName : v\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
	}
	for _, raw := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), 0); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", raw)
		}
	}
}

func TestBodyLimit(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + strings.Repeat("x", 100)
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), 10); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestParseResponse(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "ok" {
		t.Errorf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestParseResponseCloseDelimited(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\n\r\neverything until eof"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "everything until eof" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestWriteReadRequestRoundTrip(t *testing.T) {
	req := NewRequest("POST", "/x", []byte("payload"))
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", `""`)
	var b bytes.Buffer
	if err := WriteRequest(&b, req, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Get("SOAPAction") != `""` || string(got.Body) != "payload" {
		t.Errorf("round trip = %+v", got)
	}
	if got.Header.Get("Connection") != "close" {
		t.Error("Connection: close not set")
	}
}

// startServer starts a Server with the given handler on a loopback listener
// and returns its address plus a cleanup function.
func startServer(t *testing.T, h Handler) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

func tcpClient(addr string, keepAlive bool) *Client {
	return &Client{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		KeepAlive: keepAlive,
		Timeout:   5 * time.Second,
	}
}

func echoHandler(_ context.Context, req *Request) *Response {
	resp := NewResponse(200, req.Body)
	resp.Header.Set("Content-Type", req.Header.Get("Content-Type"))
	return resp
}

func TestServerClientEcho(t *testing.T) {
	addr, _ := startServer(t, echoHandler)
	c := tcpClient(addr, false)
	defer c.Close()
	resp, err := c.Post("/echo", "text/plain", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "ping" {
		t.Errorf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestServerKeepAliveReuse(t *testing.T) {
	var conns int32
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: echoHandler}
	go srv.Serve(l)
	defer srv.Close()

	c := &Client{
		Dial: func() (net.Conn, error) {
			atomic.AddInt32(&conns, 1)
			return net.Dial("tcp", l.Addr().String())
		},
		KeepAlive: true,
		Timeout:   5 * time.Second,
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Post("/", "text/plain", []byte(fmt.Sprintf("req-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != fmt.Sprintf("req-%d", i) {
			t.Errorf("resp %d = %q", i, resp.Body)
		}
	}
	if n := atomic.LoadInt32(&conns); n != 1 {
		t.Errorf("dialed %d connections with keep-alive, want 1", n)
	}
}

func TestClientNoKeepAliveDialsPerRequest(t *testing.T) {
	var conns int32
	addr, _ := startServer(t, echoHandler)
	c := &Client{
		Dial: func() (net.Conn, error) {
			atomic.AddInt32(&conns, 1)
			return net.Dial("tcp", addr)
		},
		KeepAlive: false,
		Timeout:   5 * time.Second,
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Post("/", "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(&conns); n != 3 {
		t.Errorf("dialed %d connections without keep-alive, want 3", n)
	}
}

func TestServerHandlesConcurrentConnections(t *testing.T) {
	addr, _ := startServer(t, func(_ context.Context, req *Request) *Response {
		time.Sleep(10 * time.Millisecond)
		return NewResponse(200, req.Body)
	})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := tcpClient(addr, false)
			defer c.Close()
			resp, err := c.Post("/", "text/plain", []byte(fmt.Sprintf("%d", i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if string(resp.Body) != fmt.Sprintf("%d", i) {
				t.Errorf("request %d got %q", i, resp.Body)
			}
		}(i)
	}
	wg.Wait()
	// 16 concurrent 10ms handlers should take far less than 16*10ms.
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Errorf("concurrent requests took %v, expected parallel handling", elapsed)
	}
}

func TestServerPanicBecomes500(t *testing.T) {
	addr, _ := startServer(t, func(_ context.Context, req *Request) *Response {
		panic("boom")
	})
	c := tcpClient(addr, false)
	defer c.Close()
	resp, err := c.Post("/", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

func TestServerBadRequestGets400(t *testing.T) {
	addr, _ := startServer(t, echoHandler)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "TOTAL GARBAGE\r\n\r\n")
	resp, err := ReadResponse(bufio.NewReader(conn), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestServerClose(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: echoHandler}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	// Let it start accepting.
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientRetryOnStaleConnection(t *testing.T) {
	// Server that closes every connection after one response, while the
	// client believes keep-alive is in effect.
	addr, _ := startServer(t, func(_ context.Context, req *Request) *Response {
		resp := NewResponse(200, []byte("ok"))
		resp.Header.Set("Connection", "close")
		return resp
	})
	c := tcpClient(addr, true)
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Post("/", "text/plain", nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(resp.Body) != "ok" {
			t.Errorf("request %d body = %q", i, resp.Body)
		}
	}
}

func TestHTTP10DefaultsToClose(t *testing.T) {
	var h Header
	if !wantsClose("HTTP/1.0", &h) {
		t.Error("HTTP/1.0 without keep-alive should close")
	}
	h.Set("Connection", "keep-alive")
	if wantsClose("HTTP/1.0", &h) {
		t.Error("HTTP/1.0 with keep-alive should not close")
	}
	var h11 Header
	if wantsClose("HTTP/1.1", &h11) {
		t.Error("HTTP/1.1 default should not close")
	}
}

func TestClientClosed(t *testing.T) {
	addr, _ := startServer(t, echoHandler)
	c := tcpClient(addr, true)
	c.Close()
	if _, err := c.Post("/", "text/plain", nil); err == nil {
		t.Error("Do after Close succeeded")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := &Server{Handler: func(_ context.Context, req *Request) *Response {
		started <- struct{}{}
		<-release
		return NewResponse(200, []byte("drained"))
	}}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// Start one in-flight request.
	result := make(chan string, 1)
	go func() {
		c := tcpClient(l.Addr().String(), false)
		defer c.Close()
		resp, err := c.Post("/", "text/plain", nil)
		if err != nil {
			result <- "error: " + err.Error()
			return
		}
		result <- string(resp.Body)
	}()
	<-started

	// Shutdown must wait for it.
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(5 * time.Second) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-shutDone:
		t.Fatal("Shutdown returned while a request was in flight")
	default:
	}
	close(release)
	if err := <-shutDone; err != nil {
		t.Fatal(err)
	}
	if got := <-result; got != "drained" {
		t.Errorf("in-flight request got %q", got)
	}
	if err := <-done; err != ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}
}

func TestShutdownTimeoutForcesClose(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := &Server{Handler: func(_ context.Context, req *Request) *Response {
		started <- struct{}{}
		<-hang
		return NewResponse(200, nil)
	}}
	go srv.Serve(l)
	go func() {
		c := tcpClient(l.Addr().String(), false)
		defer c.Close()
		c.Post("/", "text/plain", nil)
	}()
	<-started
	start := time.Now()
	shutErr := make(chan error, 1)
	go func() { shutErr <- srv.Shutdown(50 * time.Millisecond) }()
	close(hang) // let the handler finish so Close's wg.Wait can complete
	if err := <-shutErr; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("shutdown took %v despite 50ms timeout", elapsed)
	}
}

func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logged []int
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Handler: echoHandler,
		AccessLog: func(remote net.Addr, req *Request, status int, elapsed time.Duration) {
			mu.Lock()
			logged = append(logged, status)
			mu.Unlock()
		},
	}
	go srv.Serve(l)
	defer srv.Close()
	c := tcpClient(l.Addr().String(), false)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Post("/", "text/plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 3 || logged[0] != 200 {
		t.Errorf("access log = %v", logged)
	}
}

func TestChunkedResponseThreshold(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: echoHandler, ChunkedThreshold: 1024}
	go srv.Serve(l)
	defer srv.Close()

	// Small responses stay Content-Length framed; large ones go chunked.
	check := func(size int, wantChunked bool) {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		body := bytes.Repeat([]byte("z"), size)
		req := NewRequest("POST", "/", body)
		if err := WriteRequest(conn, req, true); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadResponse(bufio.NewReader(conn), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Body, body) {
			t.Fatalf("size %d: body corrupted (%d bytes back)", size, len(resp.Body))
		}
		gotChunked := resp.Header.hasToken("Transfer-Encoding", "chunked")
		if gotChunked != wantChunked {
			t.Errorf("size %d: chunked = %v, want %v", size, gotChunked, wantChunked)
		}
	}
	check(10, false)
	check(1024, true)
	check(100_000, true)
}

func TestWriteResponseChunkedRoundTrip(t *testing.T) {
	resp := NewResponse(200, bytes.Repeat([]byte("data!"), 5000))
	resp.Header.Set("Content-Type", "text/xml")
	var b bytes.Buffer
	if err := WriteResponseChunked(&b, resp, false, 4096); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, resp.Body) {
		t.Error("chunked round trip corrupted body")
	}
	if got.Header.Has("Content-Length") {
		t.Error("chunked response carries Content-Length")
	}
}

func TestHTTPPipelining(t *testing.T) {
	// Two requests written back-to-back before any response is read: the
	// serve loop must answer both, in order.
	addr, _ := startServer(t, echoHandler)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 2; i++ {
		req := NewRequest("POST", "/", []byte(fmt.Sprintf("pipelined-%d", i)))
		if err := WriteRequest(conn, req, false); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		resp, err := ReadResponse(br, 0)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("pipelined-%d", i); string(resp.Body) != want {
			t.Errorf("response %d = %q, want %q", i, resp.Body, want)
		}
	}
}

func TestLargeHeaderRejected(t *testing.T) {
	addr, _ := startServer(t, echoHandler)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST / HTTP/1.1\r\nX-Huge: %s\r\n\r\n", strings.Repeat("x", MaxHeaderBytes+10))
	resp, err := ReadResponse(bufio.NewReader(conn), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestProtocolErrorMessage(t *testing.T) {
	err := protoErrf("bad thing %d", 7)
	if err.Error() != "httpx: bad thing 7" {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestReasonPhrases(t *testing.T) {
	for _, code := range []int{100, 200, 202, 400, 404, 405, 408, 411, 413, 500, 503, 599} {
		if reasonPhrase(code) == "" {
			t.Errorf("no reason phrase for %d", code)
		}
	}
}
