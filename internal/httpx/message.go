package httpx

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Limits protecting the parser from hostile or broken peers.
const (
	// MaxHeaderBytes caps the total size of the request/status line plus
	// all header fields.
	MaxHeaderBytes = 64 << 10
	// DefaultMaxBodyBytes caps message bodies unless overridden. The
	// largest legitimate experiment message is 128 packed 100 KB payloads
	// (~13 MB of payload plus base64/XML expansion), so 256 MB is ample.
	DefaultMaxBodyBytes = 256 << 20
)

// Request is an HTTP request with a fully-buffered body. SOAP messages are
// bounded documents that must be parsed in full before dispatch, so there
// is nothing to gain from a streaming body at this layer.
type Request struct {
	Method string
	// Target is the request target, e.g. "/services/Echo".
	Target string
	Proto  string // "HTTP/1.1" or "HTTP/1.0"
	Header Header
	Body   []byte
}

// NewRequest returns a request with sensible defaults for this stack.
func NewRequest(method, target string, body []byte) *Request {
	r := &Request{Method: method, Target: target, Proto: "HTTP/1.1", Body: body}
	return r
}

// wantsClose reports whether the message asks for the connection to be
// closed after the exchange.
func wantsClose(proto string, h *Header) bool {
	if h.hasToken("Connection", "close") {
		return true
	}
	// HTTP/1.0 defaults to close unless keep-alive is requested.
	if proto == "HTTP/1.0" && !h.hasToken("Connection", "keep-alive") {
		return true
	}
	return false
}

// Response is an HTTP response with a fully-buffered body.
type Response struct {
	StatusCode int
	Status     string // reason phrase; derived from StatusCode if empty
	Proto      string
	Header     Header
	Body       []byte

	// release, when set, recycles pooled storage that Body aliases.
	release func()
}

// NewResponse returns a response with the given status and body.
func NewResponse(status int, body []byte) *Response {
	return &Response{StatusCode: status, Proto: "HTTP/1.1", Body: body}
}

// SetRelease registers a hook that recycles pooled storage backing the
// response (typically the encode buffer Body aliases). The server
// transport calls Release exactly once per exchange, after the response
// bytes have been written and every observer has run; Body must not be
// read after that.
func (r *Response) SetRelease(fn func()) { r.release = fn }

// Release runs the registered release hook, if any. Idempotent and safe
// on responses without one.
func (r *Response) Release() {
	if r.release != nil {
		fn := r.release
		r.release = nil
		fn()
	}
}

// reasonPhrase maps the status codes this stack produces.
func reasonPhrase(code int) string {
	switch code {
	case 100:
		return "Continue"
	case 200:
		return "OK"
	case 202:
		return "Accepted"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 408:
		return "Request Timeout"
	case 411:
		return "Length Required"
	case 413:
		return "Payload Too Large"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// ProtocolError describes a malformed HTTP message.
type ProtocolError struct {
	Msg string
}

// Error implements the error interface.
func (e *ProtocolError) Error() string { return "httpx: " + e.Msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...)}
}

// readLine reads one CRLF- (or LF-) terminated line, enforcing the header
// size budget. Lines that fit the reader's buffer (all of them, in
// practice: the buffer is larger than the header budget's typical use) cost
// one string allocation; ReadString's builder path is kept only for the
// buffer-overflow case.
func readLine(br *bufio.Reader, budget *int) (string, error) {
	slice, err := br.ReadSlice('\n')
	line := string(slice)
	if err == bufio.ErrBufferFull {
		var rest string
		rest, err = br.ReadString('\n')
		line += rest
	}
	if err != nil {
		if err == io.EOF && line == "" {
			return "", io.EOF
		}
		if err == io.EOF {
			return "", io.ErrUnexpectedEOF
		}
		return "", err
	}
	*budget -= len(line)
	if *budget < 0 {
		return "", protoErrf("header block exceeds %d bytes", MaxHeaderBytes)
	}
	line = strings.TrimRight(line, "\r\n")
	return line, nil
}

// readHeader parses header fields until the blank line.
func readHeader(br *bufio.Reader, budget *int) (Header, error) {
	var h Header
	for {
		line, err := readLine(br, budget)
		if err != nil {
			if err == io.EOF {
				return h, io.ErrUnexpectedEOF
			}
			return h, err
		}
		if line == "" {
			return h, nil
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return h, protoErrf("malformed header field %q", line)
		}
		name := line[:colon]
		if strings.TrimSpace(name) != name {
			return h, protoErrf("whitespace around field name %q", name)
		}
		h.Add(name, strings.TrimSpace(line[colon+1:]))
	}
}

// readBody reads a message body framed by Content-Length or chunked
// encoding. A message with neither has no body (requests) — responses
// close-delimit instead, handled by the caller.
func readBody(br *bufio.Reader, h *Header, maxBody int64, closeDelimited bool) ([]byte, error) {
	if h.hasToken("Transfer-Encoding", "chunked") {
		return readChunked(br, maxBody)
	}
	if cl := h.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if err != nil || n < 0 {
			return nil, protoErrf("bad Content-Length %q", cl)
		}
		if n > maxBody {
			return nil, protoErrf("body of %d bytes exceeds limit %d", n, maxBody)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, protoErrf("short body: %v", err)
		}
		return body, nil
	}
	if closeDelimited {
		body, err := io.ReadAll(io.LimitReader(br, maxBody+1))
		if err != nil {
			return nil, err
		}
		if int64(len(body)) > maxBody {
			return nil, protoErrf("close-delimited body exceeds limit %d", maxBody)
		}
		return body, nil
	}
	return nil, nil
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader, maxBody int64) (*Request, error) {
	budget := MaxHeaderBytes
	line, err := readLine(br, &budget)
	if err != nil {
		return nil, err // io.EOF here means a cleanly closed keep-alive conn
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, protoErrf("malformed request line %q", line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	if proto != "HTTP/1.1" && proto != "HTTP/1.0" {
		return nil, protoErrf("unsupported protocol %q", proto)
	}
	h, err := readHeader(br, &budget)
	if err != nil {
		return nil, err
	}
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	body, err := readBody(br, &h, maxBody, false)
	if err != nil {
		return nil, err
	}
	return &Request{Method: method, Target: target, Proto: proto, Header: h, Body: body}, nil
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader, maxBody int64) (*Response, error) {
	budget := MaxHeaderBytes
	line, err := readLine(br, &budget)
	if err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, protoErrf("malformed status line %q", line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, protoErrf("bad status code in %q", line)
	}
	status := ""
	if len(parts) == 3 {
		status = parts[2]
	}
	h, err := readHeader(br, &budget)
	if err != nil {
		return nil, err
	}
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	closeDelimited := !h.Has("Content-Length") && !h.hasToken("Transfer-Encoding", "chunked")
	body, err := readBody(br, &h, maxBody, closeDelimited)
	if err != nil {
		return nil, err
	}
	return &Response{StatusCode: code, Status: status, Proto: parts[0], Header: h, Body: body}, nil
}

// WriteRequest serializes the request to w. It frames the body with
// Content-Length and emits Connection: close when close is requested.
// Requests without framing- or connection-related fields of their own —
// every request this stack's SOAP client produces — take the same pooled
// single-write fast path as responses.
func WriteRequest(w io.Writer, r *Request, closeConn bool) error {
	if !r.Header.Has("Content-Length") && !r.Header.Has("Connection") && !r.Header.Has("Transfer-Encoding") {
		return writeRequestFast(w, r, closeConn)
	}
	return writeRequestFramed(w, r, closeConn)
}

// writeRequestFramed is the cloning reference path: it works for any
// header set, at the cost of a header clone and a buffered copy.
func writeRequestFramed(w io.Writer, r *Request, closeConn bool) error {
	bw := bufio.NewWriterSize(w, 8<<10)
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	fmt.Fprintf(bw, "%s %s %s\r\n", r.Method, r.Target, proto)
	h := r.Header.Clone()
	h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	if closeConn {
		h.Set("Connection", "close")
	}
	h.Each(func(name, value string) {
		fmt.Fprintf(bw, "%s: %s\r\n", name, value)
	})
	bw.WriteString("\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

// writeRequestFast emits exactly the bytes writeRequestFramed would for a
// request without pre-set framing fields: request line, the fields in
// order, Content-Length, then Connection: close when requested. The header
// block comes from a pooled buffer and goes to the kernel together with
// the body in one writev-shaped write.
func writeRequestFast(w io.Writer, r *Request, closeConn bool) error {
	bp := headerBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Target...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	for _, f := range r.Header.fields {
		b = append(b, f.name...)
		b = append(b, ':', ' ')
		b = append(b, f.value...)
		b = append(b, '\r', '\n')
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(r.Body)), 10)
	b = append(b, '\r', '\n')
	if closeConn {
		b = append(b, "Connection: close\r\n"...)
	}
	b = append(b, '\r', '\n')

	var err error
	if len(r.Body) > 0 {
		bufs := net.Buffers{b, r.Body}
		_, err = bufs.WriteTo(w)
	} else {
		_, err = w.Write(b)
	}
	if cap(b) <= maxPooledResponseHeader {
		*bp = b[:0]
		headerBufPool.Put(bp)
	}
	return err
}

// WriteResponse serializes the response to w with Content-Length framing.
// Responses that carry no framing- or connection-related fields of their
// own — every response this stack's SOAP layer produces — take a fast path
// that assembles the header block in a pooled buffer and hands header and
// body to the kernel in a single writev-shaped write, instead of cloning
// the header and copying the body through a bufio.Writer.
func WriteResponse(w io.Writer, r *Response, closeConn bool) error {
	if !r.Header.Has("Content-Length") && !r.Header.Has("Connection") && !r.Header.Has("Transfer-Encoding") {
		return writeResponseFast(w, r, closeConn)
	}
	return writeResponseFramed(w, r, closeConn, 0)
}

// maxPooledResponseHeader caps recycled header buffers, so one huge header
// block does not pin memory in the pool.
const maxPooledResponseHeader = 64 << 10

// headerBufPool recycles the header blocks of the fast write paths, for
// both directions of the exchange.
var headerBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// writeResponseFast emits exactly the bytes writeResponseFramed would for
// a response without pre-set Content-Length/Connection/Transfer-Encoding
// fields: status line, the fields in order, Content-Length first among the
// appended ones, then Connection: close when requested. Header bytes come
// from a pooled buffer and the body is written from its own slice, so a
// packed SOAP reply goes out without a single copy.
func writeResponseFast(w io.Writer, r *Response, closeConn bool) error {
	bp := headerBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = reasonPhrase(r.StatusCode)
	}
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.StatusCode), 10)
	b = append(b, ' ')
	b = append(b, status...)
	b = append(b, '\r', '\n')
	for _, f := range r.Header.fields {
		b = append(b, f.name...)
		b = append(b, ':', ' ')
		b = append(b, f.value...)
		b = append(b, '\r', '\n')
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(r.Body)), 10)
	b = append(b, '\r', '\n')
	if closeConn {
		b = append(b, "Connection: close\r\n"...)
	}
	b = append(b, '\r', '\n')

	var err error
	if len(r.Body) > 0 {
		bufs := net.Buffers{b, r.Body}
		_, err = bufs.WriteTo(w)
	} else {
		_, err = w.Write(b)
	}
	// WriteTo may shrink bufs but never the backing arrays; keep the
	// header buffer for reuse unless it grew past the pool cap.
	if cap(b) <= maxPooledResponseHeader {
		*bp = b[:0]
		headerBufPool.Put(bp)
	}
	return err
}

// WriteResponseChunked serializes the response with chunked
// transfer-encoding, emitting the body in chunkSize pieces. Chunking lets
// the peer start consuming a large response before it is fully on the
// wire — the "message chunking and streaming" optimization of Chiu et
// al. (the paper's reference [2]).
func WriteResponseChunked(w io.Writer, r *Response, closeConn bool, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = 8 << 10
	}
	return writeResponseFramed(w, r, closeConn, chunkSize)
}

// writeResponseFramed writes with Content-Length framing when chunkSize
// is 0, chunked framing otherwise.
func writeResponseFramed(w io.Writer, r *Response, closeConn bool, chunkSize int) error {
	bw := bufio.NewWriterSize(w, 8<<10)
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = reasonPhrase(r.StatusCode)
	}
	fmt.Fprintf(bw, "%s %d %s\r\n", proto, r.StatusCode, status)
	h := r.Header.Clone()
	if chunkSize > 0 {
		h.Del("Content-Length")
		h.Set("Transfer-Encoding", "chunked")
	} else {
		h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	if closeConn {
		h.Set("Connection", "close")
	}
	h.Each(func(name, value string) {
		fmt.Fprintf(bw, "%s: %s\r\n", name, value)
	})
	bw.WriteString("\r\n")
	if chunkSize > 0 {
		if err := writeChunked(bw, r.Body, chunkSize); err != nil {
			return err
		}
	} else {
		bw.Write(r.Body)
	}
	return bw.Flush()
}
