package httpx

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Client-side HTTP/1.1 pipelining.
//
// With Client.Pipeline set, keep-alive connections carry up to MaxPerConn
// exchanges at once: requests are written back-to-back and responses are
// matched to callers strictly FIFO by a per-connection read loop. A pool
// that needed one connection per concurrent exchange needs one per
// MaxPerConn — the gateway's backend pools shrink accordingly, and a
// request no longer waits for a free connection behind an unrelated
// exchange's round trip.
//
// Failure semantics are the classic pipelining trade: any transport error
// fails every exchange in flight on that connection (callers retry through
// the same stale-connection logic the serial path uses), and a caller that
// cancels abandons its response slot — the read loop still consumes the
// response to keep the FIFO aligned, the connection stays healthy.

// pipeConn is one pipelined connection.
type pipeConn struct {
	owner *Client
	conn  net.Conn
	br    *bufio.Reader

	// wmu serializes request writes; the FIFO append happens under it so
	// queue order always matches wire order.
	wmu sync.Mutex

	mu    sync.Mutex
	queue []*pipeCall // in-flight, wire order

	// selection hints readable without mu (getPipeConn holds Client.mu).
	inflight atomic.Int64
	broken   atomic.Bool

	failErr error // first transport error; guarded by mu
}

// pipeCall is one caller's slot in the FIFO.
type pipeCall struct {
	ch        chan pipeResult // buffered(1): delivery never blocks the read loop
	abandoned atomic.Bool     // caller gave up (ctx cancelled); drop the response
}

type pipeResult struct {
	resp *Response
	err  error
}

// doPipelined is doCtx for pipelined keep-alive clients: same slot
// accounting, same retry-once-on-stale-connection contract.
func (c *Client) doPipelined(ctx context.Context, req *Request) (*Response, error) {
	release, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	reused := false
	pc, err := c.getPipeConn(ctx, &reused)
	if err != nil {
		return nil, err
	}
	resp, err := c.pipeRoundTrip(ctx, pc, req)
	if err != nil && reused && ctx.Err() == nil {
		// Stale pipelined connection (the failer removed it from the
		// pool): retry once on another.
		pc, err = c.getPipeConn(ctx, &reused)
		if err != nil {
			return nil, err
		}
		resp, err = c.pipeRoundTrip(ctx, pc, req)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("httpx: exchange aborted: %w", cerr)
		}
		return nil, err
	}
	return resp, nil
}

// getPipeConn returns the least-loaded healthy pipelined connection, or
// dials a new one when all are at their window (up to MaxIdle connections
// — beyond that the least-loaded one absorbs the overflow).
func (c *Client) getPipeConn(ctx context.Context, reused *bool) (*pipeConn, error) {
	maxPer := int64(c.MaxPerConn)
	if maxPer <= 0 {
		maxPer = 8
	}
	maxConns := c.MaxIdle
	if maxConns <= 0 {
		maxConns = 16
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	var best *pipeConn
	bestN := int64(0)
	for _, pc := range c.pipes {
		if pc.broken.Load() {
			continue
		}
		if n := pc.inflight.Load(); best == nil || n < bestN {
			best, bestN = pc, n
		}
	}
	nconns := len(c.pipes)
	c.mu.Unlock()
	if best != nil && (bestN < maxPer || nconns >= maxConns) {
		*reused = true
		return best, nil
	}

	var conn net.Conn
	var err error
	if c.DialCtx != nil {
		conn, err = c.DialCtx(ctx)
	} else {
		conn, err = c.Dial()
	}
	if err != nil {
		return nil, &DialError{Err: err}
	}
	pc := &pipeConn{owner: c, conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, errClientClosed
	}
	c.pipes = append(c.pipes, pc)
	c.mu.Unlock()
	go pc.readLoop(c.MaxBodyBytes)
	*reused = false
	return pc, nil
}

// removePipeConn forgets a dead connection so selection never sees it again.
func (c *Client) removePipeConn(pc *pipeConn) {
	c.mu.Lock()
	for i, p := range c.pipes {
		if p == pc {
			c.pipes = append(c.pipes[:i], c.pipes[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// pipeRoundTrip writes the request, takes a FIFO slot and waits for its
// response. The overall Timeout is a wheel watchdog that kills the
// connection (per-exchange conn deadlines are impossible on a shared
// connection); a cancelled context abandons only this caller's slot.
func (c *Client) pipeRoundTrip(ctx context.Context, pc *pipeConn, req *Request) (*Response, error) {
	call := &pipeCall{ch: make(chan pipeResult, 1)}

	pc.wmu.Lock()
	pc.mu.Lock()
	if pc.failErr != nil {
		err := pc.failErr
		pc.mu.Unlock()
		pc.wmu.Unlock()
		return nil, err
	}
	pc.queue = append(pc.queue, call)
	pc.inflight.Add(1)
	pc.mu.Unlock()
	werr := WriteRequest(pc.conn, req, false)
	pc.wmu.Unlock()
	if werr != nil {
		pc.fail(fmt.Errorf("httpx: write request: %w", werr))
		// fall through: fail just delivered the error to our slot
	}

	var alarm *WheelTimer
	if c.Timeout > 0 {
		alarm = DefaultWheel().Schedule(c.Timeout, func() {
			pc.fail(fmt.Errorf("httpx: pipelined exchange timed out after %v", c.Timeout))
		})
	}
	select {
	case r := <-call.ch:
		if alarm != nil {
			alarm.Stop()
		}
		return r.resp, r.err
	case <-ctx.Done():
		if alarm != nil {
			alarm.Stop()
		}
		call.abandoned.Store(true)
		return nil, fmt.Errorf("httpx: exchange aborted: %w", ctx.Err())
	}
}

// readLoop consumes responses and delivers them FIFO. Any read error (or a
// server Connection: close) fails the connection and everything queued on
// it.
func (pc *pipeConn) readLoop(maxBody int64) {
	for {
		resp, err := ReadResponse(pc.br, maxBody)
		if err != nil {
			pc.fail(fmt.Errorf("httpx: read response: %w", err))
			return
		}
		pc.mu.Lock()
		var call *pipeCall
		if len(pc.queue) > 0 {
			call = pc.queue[0]
			pc.queue = pc.queue[1:]
			pc.inflight.Add(-1)
		}
		pc.mu.Unlock()
		if call == nil {
			pc.fail(errors.New("httpx: unsolicited response on pipelined connection"))
			return
		}
		if !call.abandoned.Load() {
			call.ch <- pipeResult{resp: resp}
		}
		if wantsClose(resp.Proto, &resp.Header) {
			pc.fail(errors.New("httpx: server closed pipelined connection"))
			return
		}
	}
}

// fail breaks the connection exactly once: marks it, removes it from the
// pool, closes the socket and delivers err to every queued caller.
func (pc *pipeConn) fail(err error) {
	pc.mu.Lock()
	if pc.failErr != nil {
		pc.mu.Unlock()
		return
	}
	pc.failErr = err
	pc.broken.Store(true)
	calls := pc.queue
	pc.queue = nil
	pc.inflight.Add(int64(-len(calls)))
	pc.mu.Unlock()
	pc.conn.Close()
	pc.owner.removePipeConn(pc)
	for _, call := range calls {
		call.ch <- pipeResult{err: err} // buffered; abandoned slots just hold it for GC
	}
}
