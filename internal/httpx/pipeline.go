package httpx

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// Server-side HTTP/1.1 pipelining.
//
// A connection enters this mode when the serial loop observes buffered
// bytes of the next request while holding a freshly-parsed one — the
// client is pipelining, so one-exchange-at-a-time would serialize its
// round trips. From then on the connection runs two goroutines:
//
//	reader  — parses request N+1 while N executes, feeding each exchange
//	          to a per-request handler goroutine; blocked whenever the
//	          in-flight window (Server.MaxPipeline) is full.
//	writer  — drains exchanges in arrival order, waits for each handler
//	          to finish, and emits the response through the same
//	          writev/chunked paths the serial loop uses. Responses are
//	          therefore emitted strictly in request order regardless of
//	          handler completion order — the connection-level analogue of
//	          the packed-response reorder window.
//
// Handler semantics match the keep-alive serial loop: the context only
// reflects server shutdown (peer disconnection is unobservable without
// stealing the next request's bytes), req.Body must not be retained past
// return, and a handler may park its goroutine (each exchange owns one).

// pipeExchange carries one in-flight exchange from reader to writer.
type pipeExchange struct {
	req     *Request
	release func()
	start   time.Time
	done    chan struct{} // closed by the handler goroutine
	resp    *Response

	closeAfter bool           // Connection: close requested: final exchange
	protoErr   *ProtocolError // malformed request: emit a 400 after the queue drains
}

// servePipelined owns the connection until it closes. first (and its
// release) is a request the serial loop already parsed but not yet
// dispatched or counted.
func (s *Server) servePipelined(conn net.Conn, br *bufio.Reader, first *Request, firstRelease func(), firstStart time.Time) {
	window := s.MaxPipeline
	queue := make(chan *pipeExchange, window)
	writerDone := make(chan struct{})
	var connBroken atomic.Bool // writer saw a write error or wrote a closing response
	go func() {
		defer close(writerDone)
		s.pipeWriter(conn, queue, &connBroken)
	}()

	submit := func(req *Request, release func(), start time.Time, closeAfter bool) {
		ex := &pipeExchange{
			req: req, release: release, start: start,
			done: make(chan struct{}), closeAfter: closeAfter,
		}
		s.mu.Lock()
		s.active++
		baseCtx := s.baseCtx
		s.mu.Unlock()
		if baseCtx == nil {
			baseCtx = context.Background()
		}
		queue <- ex // blocks while the window is full: the in-flight bound
		go func() {
			resp := s.callHandler(baseCtx, ex.req)
			if resp == nil {
				resp = NewResponse(500, []byte("nil response\n"))
			}
			ex.resp = resp
			close(ex.done)
		}()
	}

	submit(first, firstRelease, firstStart, false)
	for !connBroken.Load() {
		var readAlarm *WheelTimer
		if s.ReadTimeout > 0 {
			readAlarm = DefaultWheel().Schedule(s.ReadTimeout, func() { conn.Close() })
		}
		req, release, err := ReadRequestPooled(br, s.MaxBodyBytes)
		if readAlarm != nil {
			readAlarm.Stop()
		}
		if err != nil {
			var pe *ProtocolError
			if err != io.EOF && errors.As(err, &pe) {
				// The 400 must not jump the queue: enqueue it like an
				// exchange so every accepted request answers first.
				ex := &pipeExchange{protoErr: pe, done: make(chan struct{})}
				close(ex.done)
				queue <- ex
			}
			break
		}
		closeAfter := wantsClose(req.Proto, &req.Header)
		submit(req, release, time.Now(), closeAfter)
		if closeAfter {
			break // no request follows a Connection: close
		}
	}
	close(queue)
	<-writerDone
}

// pipeWriter emits responses in queue order. After a write error or a
// closing response it keeps draining the queue — releasing resources and
// settling the active count — without touching the connection, so a
// blocked reader (and any submit stuck on a full window) always unblocks.
func (s *Server) pipeWriter(conn net.Conn, queue chan *pipeExchange, connBroken *atomic.Bool) {
	broken := false
	markBroken := func() {
		if !broken {
			broken = true
			connBroken.Store(true)
			conn.Close() // unblock a reader mid-parse
		}
	}
	for ex := range queue {
		if ex.protoErr != nil {
			if !broken {
				resp := NewResponse(400, []byte(ex.protoErr.Msg+"\n"))
				resp.Header.Set("Content-Type", "text/plain")
				_ = WriteResponse(conn, resp, true)
				markBroken()
			}
			continue
		}
		<-ex.done
		resp := ex.resp
		if broken {
			s.settleExchange(conn, ex, resp, false)
			continue
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		closeAfter := ex.closeAfter || draining
		var writeAlarm *WheelTimer
		if s.WriteTimeout > 0 {
			writeAlarm = DefaultWheel().Schedule(s.WriteTimeout, func() { conn.Close() })
		}
		var werr error
		if s.ChunkedThreshold > 0 && len(resp.Body) >= s.ChunkedThreshold {
			werr = WriteResponseChunked(conn, resp, closeAfter, 0)
		} else {
			werr = WriteResponse(conn, resp, closeAfter)
		}
		if writeAlarm != nil {
			writeAlarm.Stop()
		}
		s.settleExchange(conn, ex, resp, werr == nil)
		if werr != nil || closeAfter {
			markBroken()
		}
	}
}

// settleExchange finishes one pipelined exchange's bookkeeping: active
// count, access log, pooled-buffer recycling.
func (s *Server) settleExchange(conn net.Conn, ex *pipeExchange, resp *Response, logged bool) {
	s.mu.Lock()
	s.active--
	if s.idleCond != nil {
		s.idleCond.Broadcast()
	}
	s.mu.Unlock()
	if logged && s.AccessLog != nil {
		s.AccessLog(conn.RemoteAddr(), ex.req, resp.StatusCode, time.Since(ex.start))
	}
	ex.release()
	resp.Release()
}
