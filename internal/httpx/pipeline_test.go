package httpx

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startPipelinedServer starts a Server with pipelining enabled.
func startPipelinedServer(t *testing.T, window int, h Handler) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h, MaxPipeline: window}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

func rawRequest(target, body string) string {
	return fmt.Sprintf("POST %s HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: %d\r\n\r\n%s",
		target, len(body), body)
}

// TestServerPipelinedInOrder: a burst of pipelined requests whose handlers
// finish out of order (earlier requests are slower) must still produce
// responses in request order.
func TestServerPipelinedInOrder(t *testing.T) {
	const n = 6
	addr, _ := startPipelinedServer(t, n, func(_ context.Context, req *Request) *Response {
		// Request i sleeps (n-i) ms: request 0 finishes last.
		var i int
		fmt.Sscanf(string(req.Body), "req-%d", &i)
		time.Sleep(time.Duration(n-i) * 5 * time.Millisecond)
		return NewResponse(200, []byte(fmt.Sprintf("resp-%d", i)))
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var burst bytes.Buffer
	for i := 0; i < n; i++ {
		burst.WriteString(rawRequest("/x", fmt.Sprintf("req-%d", i)))
	}
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		resp, err := ReadResponse(br, 0)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("resp-%d", i); string(resp.Body) != want {
			t.Fatalf("response %d body = %q, want %q (out of order)", i, resp.Body, want)
		}
	}
}

// TestServerPipelineWindowBounds: the in-flight window must bound handler
// concurrency even when the client floods far more requests than the window.
func TestServerPipelineWindowBounds(t *testing.T) {
	const window = 3
	const n = 24
	var cur, max atomic.Int32
	addr, _ := startPipelinedServer(t, window, func(_ context.Context, req *Request) *Response {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return NewResponse(200, req.Body)
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var burst bytes.Buffer
	for i := 0; i < n; i++ {
		burst.WriteString(rawRequest("/x", fmt.Sprintf("%02d", i)))
	}
	if _, err := conn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		if _, err := ReadResponse(br, 0); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	// The reader may hold one parsed request beyond the queue while submit
	// blocks, so allow window+1.
	if m := max.Load(); m > window+1 {
		t.Fatalf("handler concurrency reached %d, want <= %d", m, window+1)
	}
}

// TestServerPipelinedProtocolError: accepted requests answer first, then
// the malformed one draws a 400 and the connection closes — the 400 never
// jumps the queue.
func TestServerPipelinedProtocolError(t *testing.T) {
	addr, _ := startPipelinedServer(t, 8, func(_ context.Context, req *Request) *Response {
		time.Sleep(5 * time.Millisecond) // let the reader hit the garbage first
		return NewResponse(200, req.Body)
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	burst := rawRequest("/x", "one") + rawRequest("/x", "two") + "GARBAGE\r\n\r\n"
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i, want := range []string{"one", "two"} {
		resp, err := ReadResponse(br, 0)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.StatusCode != 200 || string(resp.Body) != want {
			t.Fatalf("response %d = %d %q, want 200 %q", i, resp.StatusCode, resp.Body, want)
		}
	}
	resp, err := ReadResponse(br, 0)
	if err != nil {
		t.Fatalf("expected a 400 response, got %v", err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after 400: %v", err)
	}
}

// TestServerPipelinedConnectionClose: a Connection: close request in a
// pipelined burst is the final exchange; its response carries the close.
func TestServerPipelinedConnectionClose(t *testing.T) {
	addr, _ := startPipelinedServer(t, 8, echoHandler)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	closing := fmt.Sprintf("POST /x HTTP/1.1\r\nConnection: close\r\nContent-Length: 4\r\n\r\nlast")
	if _, err := conn.Write([]byte(rawRequest("/x", "one") + closing)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	r1, err := ReadResponse(br, 0)
	if err != nil || string(r1.Body) != "one" {
		t.Fatalf("response 1 = %v, %v", r1, err)
	}
	r2, err := ReadResponse(br, 0)
	if err != nil || string(r2.Body) != "last" {
		t.Fatalf("response 2 = %v, %v", r2, err)
	}
	if !wantsClose(r2.Proto, &r2.Header) {
		t.Fatal("final response does not carry Connection: close")
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open: %v", err)
	}
}

// TestPipelinedMatchesSerialBytes: the differential pin — a pipelined burst
// must produce byte-for-byte the responses a serial keep-alive client sees.
func TestPipelinedMatchesSerialBytes(t *testing.T) {
	handler := func(_ context.Context, req *Request) *Response {
		if string(req.Body) == "fault" {
			resp := NewResponse(500, []byte("<fault>boom</fault>"))
			resp.Header.Set("Content-Type", "text/xml; charset=utf-8")
			return resp
		}
		resp := NewResponse(200, req.Body)
		resp.Header.Set("Content-Type", req.Header.Get("Content-Type"))
		return resp
	}
	bodies := []string{"alpha", "fault", "gamma", strings.Repeat("d", 2048), "fault", "zeta"}

	// Serial keep-alive: one request at a time on one connection.
	serialAddr, _ := startServer(t, handler)
	sconn, err := net.Dial("tcp", serialAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sconn.Close()
	sbr := bufio.NewReader(sconn)
	var serial bytes.Buffer
	for _, b := range bodies {
		if _, err := sconn.Write([]byte(rawRequest("/x", b))); err != nil {
			t.Fatal(err)
		}
		if err := readRawResponse(sbr, &serial); err != nil {
			t.Fatal(err)
		}
	}

	// Pipelined: the whole burst at once.
	pipeAddr, _ := startPipelinedServer(t, 4, handler)
	pconn, err := net.Dial("tcp", pipeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	var burst bytes.Buffer
	for _, b := range bodies {
		burst.WriteString(rawRequest("/x", b))
	}
	if _, err := pconn.Write(burst.Bytes()); err != nil {
		t.Fatal(err)
	}
	pbr := bufio.NewReader(pconn)
	var pipelined bytes.Buffer
	for range bodies {
		if err := readRawResponse(pbr, &pipelined); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(serial.Bytes(), pipelined.Bytes()) {
		t.Fatalf("pipelined response bytes differ from serial:\nserial:\n%q\npipelined:\n%q",
			serial.Bytes(), pipelined.Bytes())
	}
}

// readRawResponse copies one Content-Length-framed response verbatim into w.
func readRawResponse(br *bufio.Reader, w *bytes.Buffer) error {
	contentLen := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		w.WriteString(line)
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			break
		}
		if v, ok := strings.CutPrefix(trimmed, "Content-Length: "); ok {
			fmt.Sscanf(v, "%d", &contentLen)
		}
	}
	if contentLen < 0 {
		return fmt.Errorf("response without Content-Length")
	}
	body := make([]byte, contentLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return err
	}
	w.Write(body)
	return nil
}

// TestClientPipelineSharesConn: once warm, a pipelined client multiplexes
// concurrent exchanges over a single connection instead of dialing per
// concurrent call.
func TestClientPipelineSharesConn(t *testing.T) {
	gate := make(chan struct{})
	addr, _ := startPipelinedServer(t, 16, func(_ context.Context, req *Request) *Response {
		<-gate
		return NewResponse(200, req.Body)
	})
	var dials atomic.Int32
	c := &Client{
		Dial: func() (net.Conn, error) {
			dials.Add(1)
			return net.Dial("tcp", addr)
		},
		KeepAlive:  true,
		Pipeline:   true,
		MaxPerConn: 8,
		Timeout:    5 * time.Second,
	}
	defer c.Close()

	// Warm up one connection so the burst has something to share.
	go func() { gate <- struct{}{} }()
	if _, err := c.Post("/x", "text/plain", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("call-%d", i)
			resp, err := c.Post("/x", "text/plain", []byte(body))
			if err != nil {
				errs[i] = err
				return
			}
			if string(resp.Body) != body {
				errs[i] = fmt.Errorf("body = %q, want %q (FIFO mismatch)", resp.Body, body)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let all 8 enqueue on the shared conn
	for i := 0; i < n; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if d := dials.Load(); d != 1 {
		t.Fatalf("dialed %d connections for 8 concurrent calls at window 8, want 1", d)
	}
}

// TestClientPipelineSurvivesConnDrop: a server that closes the connection
// after every response must not surface errors — the stale-connection
// retry (or a fresh dial) absorbs each drop.
func TestClientPipelineSurvivesConnDrop(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				req, err := ReadRequest(br, 0)
				if err != nil {
					return
				}
				WriteResponse(conn, NewResponse(200, req.Body), false)
				// Silently drop the connection: the next exchange on it
				// fails and must be retried elsewhere.
			}(conn)
		}
	}()

	c := &Client{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) },
		KeepAlive: true,
		Pipeline:  true,
		Timeout:   5 * time.Second,
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf("drop-%d", i)
		resp, err := c.Post("/x", "text/plain", []byte(body))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp.Body) != body {
			t.Fatalf("call %d body = %q, want %q", i, resp.Body, body)
		}
	}
}

// TestClientPipelineCancelAbandonsSlot: a cancelled caller abandons its
// FIFO slot; the connection stays healthy for later exchanges.
func TestClientPipelineCancelAbandonsSlot(t *testing.T) {
	release := make(chan struct{})
	addr, _ := startPipelinedServer(t, 8, func(_ context.Context, req *Request) *Response {
		if string(req.Body) == "block" {
			<-release
		}
		return NewResponse(200, req.Body)
	})
	c := &Client{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		KeepAlive: true,
		Pipeline:  true,
		Timeout:   5 * time.Second,
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		req := NewRequest("POST", "/x", []byte("block"))
		req.Header.Set("Content-Type", "text/plain")
		_, err := c.DoCtx(ctx, req)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request hit the wire
	cancel()
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "exchange aborted") {
		t.Fatalf("cancelled call error = %v, want exchange aborted", err)
	}
	close(release) // let the server answer the abandoned slot

	resp, err := c.Post("/x", "text/plain", []byte("after"))
	if err != nil {
		t.Fatalf("call after cancel: %v", err)
	}
	if string(resp.Body) != "after" {
		t.Fatalf("body = %q, want %q (FIFO misaligned after abandon)", resp.Body, "after")
	}
}

// TestClientPipelineTimeoutKillsConn: the wheel watchdog fails the whole
// connection when an exchange overruns Client.Timeout.
func TestClientPipelineTimeoutKillsConn(t *testing.T) {
	addr, _ := startPipelinedServer(t, 8, func(_ context.Context, req *Request) *Response {
		time.Sleep(time.Second)
		return NewResponse(200, req.Body)
	})
	c := &Client{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
		KeepAlive: true,
		Pipeline:  true,
		Timeout:   50 * time.Millisecond,
	}
	defer c.Close()
	_, err := c.Post("/x", "text/plain", []byte("slow"))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want pipelined exchange timeout", err)
	}
	st := c.PoolStats()
	if st.Idle != 0 {
		t.Fatalf("timed-out connection still pooled: %+v", st)
	}
}
