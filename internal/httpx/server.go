package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Handler processes one request and returns the response to send. Handlers
// run on the connection's protocol goroutine — the paper's "protocol
// processing thread" — so a handler that fans work out to other goroutines
// (as the SPI server does) blocks here until the response is assembled,
// exactly mirroring the sleep/wake protocol-thread behaviour of §3.3.
type Handler func(req *Request) *Response

// Server serves HTTP/1.1 connections from a listener.
type Server struct {
	// Handler is required.
	Handler Handler
	// ReadTimeout bounds reading one full request; zero means no timeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one full response; zero means no timeout.
	WriteTimeout time.Duration
	// MaxBodyBytes caps request bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// DisableKeepAlive forces Connection: close on every response.
	DisableKeepAlive bool
	// ChunkedThreshold, when > 0, sends responses with bodies at least
	// this large using chunked transfer-encoding instead of
	// Content-Length, in 8 KiB chunks (streaming-shaped traffic, after
	// Chiu et al. [2]).
	ChunkedThreshold int
	// AccessLog, if set, observes every completed exchange.
	AccessLog func(remote net.Addr, req *Request, status int, elapsed time.Duration)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	active   int // exchanges currently being handled
	idleCond *sync.Cond
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpx: server closed")

// Serve accepts connections until the listener fails or Close is called.
func (s *Server) Serve(l net.Listener) error {
	if s.Handler == nil {
		return errors.New("httpx: Serve with nil Handler")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains gracefully: it stops the listener, lets in-flight
// exchanges finish (up to the timeout), then closes remaining connections.
// Idle keep-alive connections are closed immediately.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	l := s.listener
	if s.idleCond == nil {
		s.idleCond = sync.NewCond(&s.mu)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		if s.idleCond != nil {
			s.idleCond.Broadcast()
		}
		s.mu.Unlock()
	})
	defer timer.Stop()

	s.mu.Lock()
	for s.active > 0 && time.Now().Before(deadline) {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
	return s.Close()
}

// Close stops the listener, closes all active connections and waits for
// connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
		if errors.Is(err, net.ErrClosed) {
			// Shutdown already closed the listener.
			err = nil
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs the read-dispatch-write loop for one connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(conn)
	defer conn.Close()

	br := bufio.NewReaderSize(conn, 16<<10)
	for {
		if s.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		req, err := ReadRequest(br, s.MaxBodyBytes)
		if err != nil {
			if err == io.EOF {
				return // peer closed between requests: normal keep-alive end
			}
			var pe *ProtocolError
			if errors.As(err, &pe) {
				resp := NewResponse(400, []byte(pe.Msg+"\n"))
				resp.Header.Set("Content-Type", "text/plain")
				_ = WriteResponse(conn, resp, true)
			}
			return
		}

		start := time.Now()
		s.mu.Lock()
		s.active++
		s.mu.Unlock()

		resp := s.callHandler(req)
		if resp == nil {
			resp = NewResponse(500, []byte("nil response\n"))
		}

		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		closeAfter := s.DisableKeepAlive || draining || wantsClose(req.Proto, &req.Header)
		if s.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		var werr error
		if s.ChunkedThreshold > 0 && len(resp.Body) >= s.ChunkedThreshold {
			werr = WriteResponseChunked(conn, resp, closeAfter, 0)
		} else {
			werr = WriteResponse(conn, resp, closeAfter)
		}

		s.mu.Lock()
		s.active--
		if s.idleCond != nil {
			s.idleCond.Broadcast()
		}
		s.mu.Unlock()
		if s.AccessLog != nil {
			s.AccessLog(conn.RemoteAddr(), req, resp.StatusCode, time.Since(start))
		}
		if werr != nil || closeAfter {
			return
		}
	}
}

// callHandler invokes the handler, converting a panic into a 500 so one bad
// request cannot take the connection goroutine (and with it the server) down.
func (s *Server) callHandler(req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = NewResponse(500, []byte(fmt.Sprintf("handler panic: %v\n", r)))
			resp.Header.Set("Content-Type", "text/plain")
		}
	}()
	return s.Handler(req)
}
