package httpx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Handler processes one request and returns the response to send. Handlers
// run on the connection's protocol goroutine — the paper's "protocol
// processing thread" — so a handler that fans work out to other goroutines
// (as the SPI server does) blocks here until the response is assembled,
// exactly mirroring the sleep/wake protocol-thread behaviour of §3.3.
//
// ctx is cancelled when the server shuts down, and — on connections that
// will close after this exchange (Connection: close, the paper's
// dial-per-message mode) — when the peer disconnects mid-exchange, so a
// handler fanning work out can stop early once nobody is left to read the
// response. On keep-alive connections peer disconnection cannot be
// observed without stealing bytes from the next request, so there ctx only
// reflects server shutdown.
//
// Because each in-flight exchange owns its connection's goroutine, a
// handler may also park — block awaiting an event produced by a different
// connection's exchange — without stalling any read loop; there is none
// shared between connections. The gateway's cross-client coalescer relies
// on this: single calls park in a forming batch while companion calls
// arrive on other connections' goroutines.
//
// req.Body is served from a recycled buffer pool: a handler (and any
// AccessLog observer) must not retain req.Body or sub-slices of it past
// its return — copy out anything that must survive the exchange.
type Handler func(ctx context.Context, req *Request) *Response

// Server serves HTTP/1.1 connections from a listener.
type Server struct {
	// Handler is required.
	Handler Handler
	// ReadTimeout bounds reading one full request; zero means no timeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one full response; zero means no timeout.
	WriteTimeout time.Duration
	// MaxBodyBytes caps request bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// DisableKeepAlive forces Connection: close on every response.
	DisableKeepAlive bool
	// ChunkedThreshold, when > 0, sends responses with bodies at least
	// this large using chunked transfer-encoding instead of
	// Content-Length, in 8 KiB chunks (streaming-shaped traffic, after
	// Chiu et al. [2]).
	ChunkedThreshold int
	// MaxPipeline, when > 1, enables HTTP/1.1 pipelining: if a keep-alive
	// client sends request N+1 before the response to N is written, the
	// connection switches to a pipelined loop that decodes ahead and runs
	// up to MaxPipeline handlers concurrently, emitting responses strictly
	// in request order. 0 or 1 keeps the serial one-exchange-per-conn
	// loop. Clients that never pipeline stay on the serial fast path
	// either way, so enabling this costs them one buffered-byte check per
	// exchange.
	MaxPipeline int
	// AccessLog, if set, observes every completed exchange.
	AccessLog func(remote net.Addr, req *Request, status int, elapsed time.Duration)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	active   int // exchanges currently being handled
	idleCond *sync.Cond
	closed   bool
	draining bool
	wg       sync.WaitGroup
	baseCtx  context.Context // cancelled on Close; parent of handler contexts
	baseStop context.CancelFunc
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpx: server closed")

// Serve accepts connections until the listener fails or Close is called.
func (s *Server) Serve(l net.Listener) error {
	if s.Handler == nil {
		return errors.New("httpx: Serve with nil Handler")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	if s.baseCtx == nil {
		s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains gracefully: it stops the listener, lets in-flight
// exchanges finish (up to the timeout), then closes remaining connections.
// Idle keep-alive connections are closed immediately.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	l := s.listener
	if s.idleCond == nil {
		s.idleCond = sync.NewCond(&s.mu)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	// The timeout alarm only exists to wake the drain wait below; stop it
	// the moment the wait ends (drain done or deadline hit) rather than
	// leaving it armed through Close's own wait — short-lived servers in
	// tests shut down thousands of times and must not accumulate pending
	// timers. Scheduled on the shared wheel so tests can assert exactly
	// that via Wheel.Pending.
	deadline := time.Now().Add(timeout)
	alarm := DefaultWheel().Schedule(timeout, func() {
		s.mu.Lock()
		if s.idleCond != nil {
			s.idleCond.Broadcast()
		}
		s.mu.Unlock()
	})

	s.mu.Lock()
	for s.active > 0 && time.Now().Before(deadline) {
		s.idleCond.Wait()
	}
	s.mu.Unlock()
	alarm.Stop()
	return s.Close()
}

// Close stops the listener, closes all active connections and waits for
// connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	stop := s.baseStop
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	var err error
	if l != nil {
		err = l.Close()
		if errors.Is(err, net.ErrClosed) {
			// Shutdown already closed the listener.
			err = nil
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs the read-dispatch-write loop for one connection.
//
// It starts in the serial one-exchange-at-a-time mode every connection has
// always had; when pipelining is enabled and the client is observed to
// pipeline (bytes of request N+1 already buffered when N was parsed), the
// connection hands off to servePipelined for the rest of its life.
//
// Per-request read/write deadlines are watchdogs on the shared timing
// wheel that close the connection on expiry, replacing the two
// SetDeadline syscalls-worth of runtime timer traffic per exchange the
// serial loop used to pay.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(conn)
	defer conn.Close()

	br := acquireConnReader(conn)
	defer releaseConnReader(br)

	for {
		var readAlarm *WheelTimer
		if s.ReadTimeout > 0 {
			readAlarm = DefaultWheel().Schedule(s.ReadTimeout, func() { conn.Close() })
		}
		req, release, err := ReadRequestPooled(br, s.MaxBodyBytes)
		if readAlarm != nil {
			readAlarm.Stop()
		}
		if err != nil {
			if err == io.EOF {
				return // peer closed between requests: normal keep-alive end
			}
			var pe *ProtocolError
			if errors.As(err, &pe) {
				resp := NewResponse(400, []byte(pe.Msg+"\n"))
				resp.Header.Set("Content-Type", "text/plain")
				_ = WriteResponse(conn, resp, true)
			}
			return
		}

		start := time.Now()
		willClose := s.DisableKeepAlive || wantsClose(req.Proto, &req.Header)

		if !willClose && s.MaxPipeline > 1 && br.Buffered() > 0 {
			// The peer pipelines: request N+1's bytes arrived before
			// request N was dispatched. Hand the connection to the
			// pipelined loop, which owns it until it closes.
			s.servePipelined(conn, br, req, release, start)
			return
		}

		s.mu.Lock()
		s.active++
		baseCtx := s.baseCtx
		s.mu.Unlock()
		if baseCtx == nil {
			baseCtx = context.Background()
		}

		// On a connection that closes after this exchange no further
		// request bytes are expected, so a background read can detect the
		// peer abandoning the exchange and cancel the handler's context —
		// "the client gave up" propagated into the dispatcher.
		reqCtx := baseCtx
		var cancelReq context.CancelFunc
		var watcherDone chan struct{}
		if willClose {
			reqCtx, cancelReq = context.WithCancel(baseCtx)
			watcherDone = make(chan struct{})
			go func(cancel context.CancelFunc) {
				// Peek blocks until the peer sends (unexpected) data,
				// disconnects, or the connection is closed after the
				// response is written; only a disconnect-style error
				// cancels. serveConn joins on watcherDone before its exit
				// recycles br — the pool must never receive a reader
				// another goroutine is still blocked in.
				defer close(watcherDone)
				if _, err := br.Peek(1); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
					cancel()
				}
			}(cancelReq)
		}

		resp := s.callHandler(reqCtx, req)
		if resp == nil {
			resp = NewResponse(500, []byte("nil response\n"))
		}

		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		closeAfter := willClose || draining
		var writeAlarm *WheelTimer
		if s.WriteTimeout > 0 {
			writeAlarm = DefaultWheel().Schedule(s.WriteTimeout, func() { conn.Close() })
		}
		var werr error
		if s.ChunkedThreshold > 0 && len(resp.Body) >= s.ChunkedThreshold {
			werr = WriteResponseChunked(conn, resp, closeAfter, 0)
		} else {
			werr = WriteResponse(conn, resp, closeAfter)
		}
		if writeAlarm != nil {
			writeAlarm.Stop()
		}

		s.mu.Lock()
		s.active--
		if s.idleCond != nil {
			s.idleCond.Broadcast()
		}
		s.mu.Unlock()
		if s.AccessLog != nil {
			s.AccessLog(conn.RemoteAddr(), req, resp.StatusCode, time.Since(start))
		}
		// The exchange is fully over (response written, observers ran):
		// recycle the request body buffer and any pooled storage backing
		// the response.
		release()
		resp.Release()
		if cancelReq != nil {
			cancelReq()
		}
		if werr != nil || closeAfter {
			if watcherDone != nil {
				conn.Close() // unblock the watcher's Peek
				<-watcherDone
			}
			return
		}
	}
}

// callHandler invokes the handler, converting a panic into a 500 so one bad
// request cannot take the connection goroutine (and with it the server) down.
func (s *Server) callHandler(ctx context.Context, req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = NewResponse(500, []byte(fmt.Sprintf("handler panic: %v\n", r)))
			resp.Header.Set("Content-Type", "text/plain")
		}
	}()
	return s.Handler(ctx, req)
}
