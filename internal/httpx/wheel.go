package httpx

import (
	"context"
	"sync"
	"time"
)

// Wheel is a coarse-grained hashed timing wheel: timers land in one of
// nslots buckets hashed by expiry tick and a single goroutine advances the
// wheel once per granularity, firing every timer whose tick has passed.
// Scheduling and cancelling are O(1) under one mutex, and — unlike
// time.AfterFunc — a cancelled timer leaves nothing behind in the runtime
// timer heap. That is the trade the transport tier wants: per-request
// read/write/watchdog deadlines are scheduled and cancelled millions of
// times but almost never fire, so they should cost two list operations,
// not two runtime heap operations, and their expiry may be late by up to
// one granularity without anyone noticing.
//
// The wheel goroutine parks when no timers are pending (the advance loop
// blocks on a wake channel instead of ticking), so an idle wheel costs
// nothing. Ticks are derived from wall-clock elapsed time rather than
// counted, so parking and ticker jitter never skew expiry.
type Wheel struct {
	gran  time.Duration
	epoch time.Time

	mu      sync.Mutex
	slots   []wheelList // ring of per-tick timer lists, indexed by tick % len
	cur     uint64      // last tick fully processed
	pending int
	started bool
	stopped bool
	wake    chan struct{} // buffered(1): nudges a parked wheel goroutine
	done    chan struct{}
}

// wheelList is a doubly-linked list head; links live in the timers so
// Stop unlinks in O(1).
type wheelList struct {
	head, tail *WheelTimer
}

// WheelTimer is one scheduled callback. Stop cancels it if it has not
// fired yet. Nodes are deliberately not pooled: a deferred Stop may run
// after the timer fired, and recycling would let that late Stop unlink a
// stranger's timer. One 64-byte allocation per Schedule is the price of
// making Stop always safe; it is still far cheaper than a runtime
// timer-heap insert/delete pair.
type WheelTimer struct {
	wheel      *Wheel
	fn         func()
	tick       uint64
	linked     bool
	prev, next *WheelTimer
}

// NewWheel builds a wheel with the given tick granularity and slot count
// (rounded up to a power of two). The wheel goroutine starts lazily on the
// first Schedule.
func NewWheel(granularity time.Duration, slots int) *Wheel {
	if granularity <= 0 {
		granularity = 5 * time.Millisecond
	}
	n := 1
	for n < slots || n < 8 {
		n <<= 1
	}
	return &Wheel{
		gran:  granularity,
		epoch: time.Now(),
		slots: make([]wheelList, n),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

var (
	defaultWheelOnce sync.Once
	defaultWheel     *Wheel
)

// DefaultWheel returns the process-wide shared wheel (5ms granularity,
// 1024 slots) used by Server, Client and the SPI watchdogs. It is created
// on first use and never stopped.
func DefaultWheel() *Wheel {
	defaultWheelOnce.Do(func() { defaultWheel = NewWheel(5*time.Millisecond, 1024) })
	return defaultWheel
}

// Granularity reports the wheel's tick size — the worst-case lateness of
// any expiry it fires.
func (w *Wheel) Granularity() time.Duration { return w.gran }

// Pending reports how many timers are currently scheduled. Test seam: a
// server that shut down cleanly must leave this at its prior value.
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// tickAt converts an absolute time to a wheel tick (rounding up, so a
// timer never fires early).
func (w *Wheel) tickAt(t time.Time) uint64 {
	d := t.Sub(w.epoch)
	if d <= 0 {
		return 0
	}
	return uint64((d + w.gran - 1) / w.gran)
}

// Schedule runs fn once after at least d has elapsed (late by at most one
// granularity plus scheduler noise). fn runs on the wheel goroutine and
// must not block; closing a net.Conn or cancelling a context is the
// intended shape. The returned timer's Stop cancels it.
func (w *Wheel) Schedule(d time.Duration, fn func()) *WheelTimer {
	t := &WheelTimer{wheel: w, fn: fn}
	t.tick = w.tickAt(time.Now().Add(d)) + 1 // +1: current tick may be mostly spent

	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		// A stopped wheel degrades to the runtime timer it replaced.
		time.AfterFunc(d, fn)
		return t
	}
	slot := &w.slots[t.tick&uint64(len(w.slots)-1)]
	t.linked = true
	t.prev = slot.tail
	t.next = nil
	if slot.tail != nil {
		slot.tail.next = t
	} else {
		slot.head = t
	}
	slot.tail = t
	w.pending++
	if !w.started {
		w.started = true
		go w.run()
	}
	w.mu.Unlock()

	select {
	case w.wake <- struct{}{}:
	default:
	}
	return t
}

// Stop cancels the timer, reporting whether it did (false means the timer
// already fired or was already stopped). Safe to call any number of times,
// including after the timer fired.
func (t *WheelTimer) Stop() bool {
	w := t.wheel
	w.mu.Lock()
	if !t.linked {
		w.mu.Unlock()
		return false
	}
	w.unlink(t)
	w.mu.Unlock()
	t.fn, t.prev, t.next = nil, nil, nil
	return true
}

// unlink removes t from its slot list. Caller holds w.mu.
func (w *Wheel) unlink(t *WheelTimer) {
	slot := &w.slots[t.tick&uint64(len(w.slots)-1)]
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		slot.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		slot.tail = t.prev
	}
	t.linked = false
	w.pending--
}

// Stop halts the wheel goroutine. Pending timers never fire; timers
// scheduled afterwards fall back to runtime timers. Only tests and
// short-lived private wheels call this — the default wheel runs for the
// process lifetime.
func (w *Wheel) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	started := w.started
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	if started {
		<-w.done
	}
}

// run is the wheel goroutine: tick while timers are pending, park when
// none are.
func (w *Wheel) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.gran)
	defer ticker.Stop()
	for {
		w.mu.Lock()
		if w.stopped {
			w.mu.Unlock()
			return
		}
		idle := w.pending == 0
		w.mu.Unlock()
		if idle {
			<-w.wake // park: no timers, nothing to advance
			continue
		}
		select {
		case <-ticker.C:
			w.advance(time.Now())
		case <-w.wake:
			// New timer or Stop; loop re-checks state. No advance needed:
			// a freshly scheduled timer is at least one tick away.
		}
	}
}

// advance fires every timer whose tick is <= the tick of now. Fired
// callbacks run on the wheel goroutine, outside the lock.
func (w *Wheel) advance(now time.Time) {
	nowTick := w.tickAt(now)
	var fired []func()
	w.mu.Lock()
	if nowTick > w.cur+uint64(len(w.slots)) {
		// Parked (or stalled) past a full rotation: every slot is due at
		// most once, so scan the ring once instead of tick-by-tick.
		w.cur = nowTick - uint64(len(w.slots))
	}
	for w.cur < nowTick {
		w.cur++
		slot := &w.slots[w.cur&uint64(len(w.slots)-1)]
		t := slot.head
		for t != nil {
			next := t.next
			if t.tick <= nowTick {
				w.unlink(t)
				fired = append(fired, t.fn)
				t.fn, t.prev, t.next = nil, nil, nil
			}
			t = next
		}
	}
	w.mu.Unlock()
	for _, fn := range fired {
		fn()
	}
}

// wheelCtx is a context whose deadline is enforced by a Wheel instead of a
// runtime timer. Its observable behaviour matches context.WithTimeout —
// Err returns context.DeadlineExceeded after expiry and context.Canceled
// after cancel — so fault classification built on those sentinel errors
// (the SPI watchdog's pinned Server.Timeout texts) is unaffected by the
// swap.
type wheelCtx struct {
	parent   context.Context
	deadline time.Time
	done     chan struct{}

	mu         sync.Mutex
	err        error
	timer      *WheelTimer
	stopParent func() bool
}

// WheelTimeout is context.WithTimeout with the deadline tracked on w:
// scheduling and cancelling cost two list operations on the wheel instead
// of two runtime timer-heap operations, and expiry may be late by up to
// one wheel granularity. The CancelFunc must be called to release the
// timer, exactly as with context.WithTimeout.
func WheelTimeout(parent context.Context, w *Wheel, d time.Duration) (context.Context, context.CancelFunc) {
	c := &wheelCtx{
		parent:   parent,
		deadline: time.Now().Add(d),
		done:     make(chan struct{}),
	}
	// The wheel can fire the callback before Schedule's result is even
	// assigned, so the timer is published under the mutex; if cancel
	// already won the race the timer is stopped here instead (a no-op
	// after fire). The parent watcher gets the same treatment.
	timer := w.Schedule(d, func() { c.cancel(context.DeadlineExceeded) })
	c.mu.Lock()
	if c.err == nil {
		c.timer, timer = timer, nil
	}
	c.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if parent.Done() != nil {
		stop := context.AfterFunc(parent, func() { c.cancel(parent.Err()) })
		c.mu.Lock()
		if c.err == nil {
			c.stopParent, stop = stop, nil
		}
		c.mu.Unlock()
		if stop != nil {
			stop()
		}
	}
	return c, func() { c.cancel(context.Canceled) }
}

func (c *wheelCtx) cancel(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	timer, stopParent := c.timer, c.stopParent
	c.timer, c.stopParent = nil, nil
	close(c.done)
	c.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if stopParent != nil {
		stopParent()
	}
}

// Deadline implements context.Context.
func (c *wheelCtx) Deadline() (time.Time, bool) {
	if pd, ok := c.parent.Deadline(); ok && pd.Before(c.deadline) {
		return pd, true
	}
	return c.deadline, true
}

// Done implements context.Context.
func (c *wheelCtx) Done() <-chan struct{} { return c.done }

// Err implements context.Context.
func (c *wheelCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Value implements context.Context.
func (c *wheelCtx) Value(key any) any { return c.parent.Value(key) }
