package httpx

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWheelFires: a scheduled timer fires, roughly on time (never early by
// more than scheduler noise, late by at most a tick plus noise).
func TestWheelFires(t *testing.T) {
	w := NewWheel(2*time.Millisecond, 64)
	defer w.Stop()
	start := time.Now()
	ch := make(chan time.Duration, 1)
	w.Schedule(20*time.Millisecond, func() { ch <- time.Since(start) })
	select {
	case late := <-ch:
		if late < 15*time.Millisecond {
			t.Fatalf("fired after %v, want >= ~20ms", late)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending after fire = %d, want 0", n)
	}
}

// TestWheelStop: a stopped timer never fires and Pending drops to zero.
func TestWheelStop(t *testing.T) {
	w := NewWheel(2*time.Millisecond, 64)
	defer w.Stop()
	var fired atomic.Int32
	tm := w.Schedule(10*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop returned false for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending after Stop = %d, want 0", n)
	}
	time.Sleep(40 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
}

// TestWheelStopAfterFire: calling Stop on an already-fired timer is safe
// and must not disturb other timers (the reason timer nodes aren't pooled).
func TestWheelStopAfterFire(t *testing.T) {
	w := NewWheel(time.Millisecond, 64)
	defer w.Stop()
	done := make(chan struct{})
	tm := w.Schedule(2*time.Millisecond, func() { close(done) })
	<-done
	var other atomic.Int32
	w.Schedule(30*time.Millisecond, func() { other.Add(1) })
	if tm.Stop() {
		t.Fatal("Stop returned true for a fired timer")
	}
	time.Sleep(60 * time.Millisecond)
	if other.Load() != 1 {
		t.Fatalf("unrelated timer fired %d times, want 1", other.Load())
	}
}

// TestWheelManyTimers: hundreds of timers across several rotations all
// fire exactly once; stopped ones never do.
func TestWheelManyTimers(t *testing.T) {
	w := NewWheel(time.Millisecond, 16) // tiny ring: forces multi-rotation ticks
	defer w.Stop()
	const n = 400
	var fired atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n / 2)
	for i := 0; i < n; i++ {
		d := time.Duration(1+i%40) * time.Millisecond
		tm := w.Schedule(d, func() { fired.Add(1); wg.Done() })
		if i%2 == 1 {
			if !tm.Stop() {
				wg.Done() // raced with a fire: rare, but account for it
			}
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d timers fired", fired.Load())
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("Pending after all fired = %d, want 0", p)
	}
}

// TestWheelParksWhenIdle: after all timers resolve the wheel goroutine
// parks; a new Schedule wakes it and still fires.
func TestWheelParksWhenIdle(t *testing.T) {
	w := NewWheel(time.Millisecond, 64)
	defer w.Stop()
	ch := make(chan struct{}, 2)
	w.Schedule(2*time.Millisecond, func() { ch <- struct{}{} })
	<-ch
	time.Sleep(20 * time.Millisecond) // let it park
	w.Schedule(2*time.Millisecond, func() { ch <- struct{}{} })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("timer scheduled on a parked wheel never fired")
	}
}

// TestWheelTimeoutDeadlineExceeded: the wheel-backed context must yield
// exactly context.DeadlineExceeded — the sentinel the SPI watchdog fault
// classification switches on.
func TestWheelTimeoutDeadlineExceeded(t *testing.T) {
	w := NewWheel(2*time.Millisecond, 64)
	defer w.Stop()
	ctx, cancel := WheelTimeout(context.Background(), w, 10*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("wheel context never expired")
	}
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatal("errors.Is(Err, DeadlineExceeded) = false")
	}
	if d, ok := ctx.Deadline(); !ok || time.Until(d) > 10*time.Millisecond {
		t.Fatalf("Deadline() = %v, %v", d, ok)
	}
}

// TestWheelTimeoutCancel: the CancelFunc yields context.Canceled and
// releases the wheel timer.
func TestWheelTimeoutCancel(t *testing.T) {
	w := NewWheel(2*time.Millisecond, 64)
	defer w.Stop()
	ctx, cancel := WheelTimeout(context.Background(), w, time.Hour)
	cancel()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Done not closed after cancel")
	}
	if err := ctx.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending after cancel = %d, want 0 (timer leaked)", n)
	}
}

// TestWheelTimeoutParentCancel: cancelling the parent propagates the
// parent's error, as with context.WithTimeout.
func TestWheelTimeoutParentCancel(t *testing.T) {
	w := NewWheel(2*time.Millisecond, 64)
	defer w.Stop()
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel := WheelTimeout(parent, w, time.Hour)
	defer cancel()
	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("child never observed parent cancel")
	}
	if err := ctx.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

// TestShutdownStopsDrainAlarm: the satellite fix — a server whose drain
// completes early must leave no alarm pending on the shared wheel.
func TestShutdownStopsDrainAlarm(t *testing.T) {
	before := DefaultWheel().Pending()
	srv := &Server{Handler: func(ctx context.Context, req *Request) *Response {
		return NewResponse(200, []byte("ok"))
	}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	if err := srv.Shutdown(time.Hour); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The hour-long drain alarm must have been stopped the moment the
	// (instant) drain finished.
	deadline := time.Now().Add(time.Second)
	for DefaultWheel().Pending() > before {
		if time.Now().After(deadline) {
			t.Fatalf("wheel still holds %d pending timers (was %d): drain alarm leaked",
				DefaultWheel().Pending(), before)
		}
		time.Sleep(time.Millisecond)
	}
}
