package httpx

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// The pooled fast write path must emit exactly the bytes the framed path
// emits for every response the stack's SOAP layer produces, fall back when
// a response carries its own framing fields, and recycle header buffers
// without bleeding bytes between concurrent exchanges.

// framedBytes serializes r through the buffered reference path.
func framedBytes(t *testing.T, r *Response, closeConn bool) string {
	t.Helper()
	var buf bytes.Buffer
	if err := writeResponseFramed(&buf, r, closeConn, 0); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fastBytes serializes r through the pooled fast path.
func fastBytes(t *testing.T, r *Response, closeConn bool) string {
	t.Helper()
	var buf bytes.Buffer
	if err := writeResponseFast(&buf, r, closeConn); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteResponseFastParity(t *testing.T) {
	mk := func(status int, body string, hdr ...string) *Response {
		r := NewResponse(status, []byte(body))
		for i := 0; i+1 < len(hdr); i += 2 {
			r.Header.Set(hdr[i], hdr[i+1])
		}
		return r
	}
	cases := []*Response{
		mk(200, "<Envelope/>", "Content-Type", "text/xml; charset=utf-8"),
		mk(200, ""),
		mk(500, "response encoding failed\n", "Content-Type", "text/plain"),
		mk(404, "gone", "Content-Type", "text/plain", "X-Extra", "a, b"),
		mk(202, strings.Repeat("x", 9000)), // larger than the bufio writer's 8 KiB
	}
	// Unknown status code exercises the derived reason phrase; explicit
	// Status exercises the pass-through.
	odd := NewResponse(299, []byte("?"))
	cases = append(cases, odd)
	withStatus := NewResponse(200, []byte("ok"))
	withStatus.Status = "Fine"
	withStatus.Proto = "HTTP/1.0"
	cases = append(cases, withStatus)

	for i, r := range cases {
		for _, closeConn := range []bool{false, true} {
			want := framedBytes(t, r, closeConn)
			got := fastBytes(t, r, closeConn)
			if got != want {
				t.Errorf("case %d closeConn=%v:\nfast:   %q\nframed: %q", i, closeConn, got, want)
			}
		}
	}
}

// TestWriteResponseGate pins the dispatch in WriteResponse: responses that
// carry their own framing- or connection-related fields must take the
// cloning framed path (which overrides Content-Length), not the fast path
// (which would emit the field twice).
func TestWriteResponseGate(t *testing.T) {
	for _, name := range []string{"Content-Length", "Connection", "Transfer-Encoding"} {
		r := NewResponse(200, []byte("hello"))
		r.Header.Set("Content-Type", "text/plain")
		r.Header.Set(name, "sentinel")
		var buf bytes.Buffer
		if err := WriteResponse(&buf, r, false); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if strings.Count(out, "Content-Length:") != 1 {
			t.Errorf("%s pre-set: Content-Length appears %d times in %q",
				name, strings.Count(out, "Content-Length:"), out)
		}
		if name == "Content-Length" && strings.Contains(out, "sentinel") {
			t.Errorf("pre-set Content-Length not overridden by framing: %q", out)
		}
	}

	// No framing fields: WriteResponse must match the framed reference.
	r := NewResponse(200, []byte("fast"))
	r.Header.Set("Content-Type", "text/plain")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, r, true); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), framedBytes(t, r, true); got != want {
		t.Errorf("WriteResponse fast path diverges:\ngot:  %q\nwant: %q", got, want)
	}
}

// TestWriteRequestFastParity pins the request fast path to the framed
// reference, and the gate that keeps self-framed requests off it.
func TestWriteRequestFastParity(t *testing.T) {
	framed := func(r *Request, closeConn bool) string {
		var buf bytes.Buffer
		if err := writeRequestFramed(&buf, r, closeConn); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []*Request{
		NewRequest("POST", "/services/Echo", []byte("<Envelope/>")),
		NewRequest("GET", "/services/Echo?wsdl", nil),
		NewRequest("POST", "/services", []byte(strings.Repeat("y", 9000))),
	}
	cases[0].Header.Set("Content-Type", "text/xml; charset=utf-8")
	cases[0].Header.Set("SOAPAction", `""`)
	proto10 := NewRequest("POST", "/x", []byte("b"))
	proto10.Proto = "HTTP/1.0"
	cases = append(cases, proto10)

	for i, r := range cases {
		for _, closeConn := range []bool{false, true} {
			var buf bytes.Buffer
			if err := WriteRequest(&buf, r, closeConn); err != nil {
				t.Fatal(err)
			}
			if got, want := buf.String(), framed(r, closeConn); got != want {
				t.Errorf("case %d closeConn=%v:\nfast:   %q\nframed: %q", i, closeConn, got, want)
			}
		}
	}

	// A request carrying its own Connection field must use the cloning path
	// (the fast path would emit Connection twice when closeConn is set).
	r := NewRequest("POST", "/x", []byte("b"))
	r.Header.Set("Connection", "keep-alive")
	var buf bytes.Buffer
	if err := WriteRequest(&buf, r, true); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "Connection:") != 1 {
		t.Errorf("pre-set Connection duplicated: %q", buf.String())
	}
}

func TestResponseReleaseIdempotent(t *testing.T) {
	var calls int
	r := NewResponse(200, nil)
	r.Release() // no hook: must be a no-op
	r.SetRelease(func() { calls++ })
	r.Release()
	r.Release()
	if calls != 1 {
		t.Errorf("release hook ran %d times, want 1", calls)
	}
}

// TestResponseHeaderPoolRecycling drives the pooled header buffers from
// many goroutines with distinct responses; every serialization must carry
// exactly its own status and headers. Run with -race.
func TestResponseHeaderPoolRecycling(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tag := fmt.Sprintf("g%d-i%d", g, i)
				r := NewResponse(200, []byte("body-"+tag))
				r.Header.Set("X-Tag", tag)
				want := framedBytes(t, r, i%2 == 0)
				got := fastBytes(t, r, i%2 == 0)
				if got != want {
					t.Errorf("%s: fast path diverged under concurrency:\ngot:  %q\nwant: %q", tag, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWriteResponseFastOversizedNotPooled exercises the pool cap: a header
// block past maxPooledResponseHeader must still serialize correctly (and
// simply not be recycled).
func TestWriteResponseFastOversizedNotPooled(t *testing.T) {
	r := NewResponse(200, []byte("x"))
	r.Header.Set("X-Big", strings.Repeat("v", maxPooledResponseHeader))
	if got, want := fastBytes(t, r, false), framedBytes(t, r, false); got != want {
		t.Error("oversized header block diverged from framed path")
	}
}
