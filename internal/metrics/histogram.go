package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram accumulates duration samples into power-of-two buckets. Unlike
// Recorder it never allocates per sample and every operation is a handful
// of atomic adds, so it is safe to leave on a hot path (the per-stage
// latency instrumentation records into histograms on every hop). Bucket i
// holds samples whose nanosecond count has bit length i, i.e. the range
// [2^(i-1), 2^i); quantiles are therefore exact to within a factor of two,
// which is enough to tell a 100µs parse stage from a 10ms one.
//
// The zero value is ready. Safe for concurrent use.
type Histogram struct {
	counts [65]atomic.Int64 // index = bits.Len64(nanoseconds)
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // nanoseconds + 1, so 0 means "no samples yet"
	max    atomic.Int64
}

// Observe adds one sample. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.counts[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if (cur != 0 && cur <= ns+1) || h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSummary is a point-in-time digest of a Histogram. Quantiles are
// bucket upper bounds (within 2x of the true value).
type HistogramSummary struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot digests the samples observed so far.
func (h *Histogram) Snapshot() HistogramSummary {
	var counts [65]int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	s := HistogramSummary{Count: h.count.Load(), Sum: time.Duration(h.sum.Load())}
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(s.Count)
	if mn := h.min.Load(); mn > 0 {
		s.Min = time.Duration(mn - 1)
	}
	s.Max = time.Duration(h.max.Load())
	s.P50 = quantile(&counts, s.Count, 0.50, s.Max)
	s.P95 = quantile(&counts, s.Count, 0.95, s.Max)
	s.P99 = quantile(&counts, s.Count, 0.99, s.Max)
	return s
}

// quantile returns the upper bound of the bucket containing the p-quantile
// sample (nearest rank), clamped to the observed maximum.
func quantile(counts *[65]int64, total int64, p float64, max time.Duration) time.Duration {
	rank := int64(p*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := time.Duration(int64(1) << uint(i))
			if i >= 63 || upper > max {
				return max
			}
			return upper
		}
	}
	return max
}

// Gauge is a last-value metric (queue depth, worker count). All methods are
// nil-safe so a disabled observability layer can hand out nil gauges and
// callers pay only the nil check. The zero value is ready.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set records the current value, updating the running peak.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	for {
		cur := g.peak.Load()
		if cur >= n || g.peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Add adjusts the current value by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	n := g.v.Add(delta)
	for {
		cur := g.peak.Load()
		if cur >= n || g.peak.CompareAndSwap(cur, n) {
			return n
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Peak returns the largest value the gauge has held.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}
