package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 ||
		s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot not all-zero: %+v", s)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	samples := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond,
		300 * time.Microsecond, 400 * time.Microsecond}
	for _, d := range samples {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if want := 1000 * time.Microsecond; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if want := 250 * time.Microsecond; s.Mean != want {
		t.Errorf("Mean = %v, want %v", s.Mean, want)
	}
	if s.Min != 100*time.Microsecond {
		t.Errorf("Min = %v, want 100µs", s.Min)
	}
	if s.Max != 400*time.Microsecond {
		t.Errorf("Max = %v, want 400µs", s.Max)
	}
}

func TestHistogramZeroSampleMin(t *testing.T) {
	// A genuine zero-duration sample must register as Min = 0, which the
	// min-as-ns+1 encoding has to distinguish from "no samples".
	var h Histogram
	h.Observe(0)
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Min != 0 {
		t.Errorf("Min = %v, want 0", s.Min)
	}
	if s.Count != 2 {
		t.Errorf("Count = %d, want 2", s.Count)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("negative sample not clamped to zero: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 100 samples at ~1ms and one outlier at ~100ms: P50 must stay in the
	// 1ms bucket (upper bound within 2x), P99+ must see the outlier region.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.P50 < time.Millisecond || s.P50 > 2*time.Millisecond {
		t.Errorf("P50 = %v, want within [1ms, 2ms]", s.P50)
	}
	if s.P99 > 2*time.Millisecond {
		t.Errorf("P99 = %v, want <= 2ms (outlier is past the 99th rank)", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", s.Max)
	}
}

func TestHistogramQuantileClampedToMax(t *testing.T) {
	// A single sample: every quantile is that sample's bucket, clamped to
	// the observed max rather than the bucket's theoretical upper bound.
	var h Histogram
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	for name, q := range map[string]time.Duration{"P50": s.P50, "P95": s.P95, "P99": s.P99} {
		if q != 3*time.Millisecond {
			t.Errorf("%s = %v, want clamped to max 3ms", name, q)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Min != 0 || s.Max != 999*time.Microsecond {
		t.Errorf("Min/Max = %v/%v, want 0/999µs", s.Min, s.Max)
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Set(5)
	if g.Add(3) != 0 || g.Load() != 0 || g.Peak() != 0 {
		t.Error("nil gauge methods must be no-ops returning zero")
	}
}

func TestGaugePeakTracking(t *testing.T) {
	g := &Gauge{}
	g.Set(3)
	g.Set(10)
	g.Set(4)
	if g.Load() != 4 {
		t.Errorf("Load = %d, want 4", g.Load())
	}
	if g.Peak() != 10 {
		t.Errorf("Peak = %d, want 10", g.Peak())
	}
	if n := g.Add(8); n != 12 {
		t.Errorf("Add = %d, want 12", n)
	}
	if g.Peak() != 12 {
		t.Errorf("Peak after Add = %d, want 12", g.Peak())
	}
}
