// Package metrics provides the latency bookkeeping the experiment harness
// uses: duration recorders with summary statistics, matching the
// measurements the paper reports (run time in milliseconds per
// configuration, averaged over repeated runs), plus the resilience
// counters (retries, timeouts, cancellations, shed requests) the
// client/server failure paths feed.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for
// concurrent use. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Resilience groups the failure-handling counters shared by the client
// and server resilience layers. Embed one and count into its fields; take
// a Snapshot for reporting. The zero value is ready.
type Resilience struct {
	// Retries counts retry attempts made after a failed exchange.
	Retries Counter
	// Timeouts counts work abandoned because a deadline expired: expired
	// call/batch contexts on the client, per-item or per-operation
	// deadline faults on the server.
	Timeouts Counter
	// Cancellations counts work abandoned because a context was cancelled
	// before its deadline.
	Cancellations Counter
	// Shed counts requests rejected at admission because the application
	// stage queue stayed full past the admission timeout.
	Shed Counter
}

// ResilienceSummary is a point-in-time copy of a Resilience counter set.
type ResilienceSummary struct {
	// Retries is the number of retry attempts.
	Retries int64
	// Timeouts is the number of deadline expirations.
	Timeouts int64
	// Cancellations is the number of context cancellations.
	Cancellations int64
	// Shed is the number of admission rejections.
	Shed int64
}

// Snapshot copies the current counter values.
func (r *Resilience) Snapshot() ResilienceSummary {
	return ResilienceSummary{
		Retries:       r.Retries.Load(),
		Timeouts:      r.Timeouts.Load(),
		Cancellations: r.Cancellations.Load(),
		Shed:          r.Shed.Load(),
	}
}

// String formats the summary compactly for experiment logs.
func (s ResilienceSummary) String() string {
	return fmt.Sprintf("retries=%d timeouts=%d cancellations=%d shed=%d",
		s.Retries, s.Timeouts, s.Cancellations, s.Shed)
}

// StageIO accumulates the byte and time volume of one pipeline stage
// (e.g. response encoding), cheap enough for per-message hot paths: two
// atomic adds per observation, no locks, no samples retained. The zero
// value is ready.
type StageIO struct {
	bytes atomic.Int64
	nanos atomic.Int64
}

// Observe adds one stage execution that processed n bytes in d.
func (s *StageIO) Observe(n int, d time.Duration) {
	s.bytes.Add(int64(n))
	s.nanos.Add(int64(d))
}

// Snapshot copies the current totals.
func (s *StageIO) Snapshot() StageIOSummary {
	return StageIOSummary{Bytes: s.bytes.Load(), Ns: s.nanos.Load()}
}

// StageIOSummary is a point-in-time copy of a StageIO counter pair.
type StageIOSummary struct {
	// Bytes is the total payload volume the stage processed.
	Bytes int64 `json:"bytes"`
	// Ns is the total time the stage spent, in nanoseconds.
	Ns int64 `json:"ns"`
}

// String formats the summary compactly for experiment logs.
func (s StageIOSummary) String() string {
	return fmt.Sprintf("bytes=%d ns=%d", s.Bytes, s.Ns)
}

// Recorder accumulates duration samples. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Time runs fn and records its wall-clock duration.
func (r *Recorder) Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	r.Record(d)
	return d
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// Summary is a statistical digest of the recorded samples.
type Summary struct {
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot computes the summary of the samples recorded so far.
func (r *Recorder) Snapshot() Summary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return Summarize(samples)
}

// Summarize computes a Summary over a sample set.
func Summarize(samples []time.Duration) Summary {
	s := Summary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		s.Total += d
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Mean = s.Total / time.Duration(len(sorted))
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile returns the p-quantile of an ascending sample set using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SummaryExport is the cross-process shape of a Summary: integer
// microseconds instead of time.Duration, so a snapshot survives a trip
// through a SOAP envelope or a JSON document without losing the unit. It
// is the per-operation latency digest the Admin control-plane service
// advertises and the exporter scrapes.
type SummaryExport struct {
	// Count is the number of samples behind the digest.
	Count int64 `json:"count"`
	// MeanUs, P50Us, P90Us, P99Us and MaxUs are the corresponding Summary
	// statistics in integer microseconds.
	MeanUs int64 `json:"mean_us"`
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`
}

// Export converts the summary to its wire shape.
func (s Summary) Export() SummaryExport {
	return SummaryExport{
		Count:  int64(s.Count),
		MeanUs: int64(s.Mean / time.Microsecond),
		P50Us:  int64(s.P50 / time.Microsecond),
		P90Us:  int64(s.P90 / time.Microsecond),
		P99Us:  int64(s.P99 / time.Microsecond),
		MaxUs:  int64(s.Max / time.Microsecond),
	}
}

// Millis renders a duration as fractional milliseconds, the unit of the
// paper's figures.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// String formats the summary compactly for experiment logs.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.3fms min=%.3fms p50=%.3fms p90=%.3fms max=%.3fms",
		s.Count, Millis(s.Mean), Millis(s.Min), Millis(s.P50), Millis(s.P90), Millis(s.Max))
}
