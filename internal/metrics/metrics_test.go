package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySummary(t *testing.T) {
	var r Recorder
	s := r.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.String() != "no samples" {
		t.Errorf("String = %q", s.String())
	}
}

func TestBasicStats(t *testing.T) {
	var r Recorder
	for _, ms := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		r.Record(time.Duration(ms) * time.Millisecond)
	}
	s := r.Snapshot()
	if s.Count != 10 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 10*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 5500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 5*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.Total != 55*time.Millisecond {
		t.Errorf("total = %v", s.Total)
	}
}

func TestTime(t *testing.T) {
	var r Recorder
	d := r.Time(func() { time.Sleep(5 * time.Millisecond) })
	if d < 5*time.Millisecond {
		t.Errorf("timed %v", d)
	}
	if r.Snapshot().Count != 1 {
		t.Error("sample not recorded")
	}
}

func TestReset(t *testing.T) {
	var r Recorder
	r.Record(time.Second)
	r.Reset()
	if r.Snapshot().Count != 0 {
		t.Error("reset did not clear")
	}
}

func TestConcurrentRecording(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Count; got != 1000 {
		t.Errorf("count = %d", got)
	}
}

func TestMillis(t *testing.T) {
	if got := Millis(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("Millis = %v", got)
	}
}

// Property: percentiles are ordered and bounded by min/max.
func TestQuickPercentileInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Intn(1_000_000)) * time.Microsecond
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Count == n
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if got := c.Load(); got != 8005 {
		t.Errorf("Load = %d, want 8005", got)
	}
}

func TestResilienceSnapshot(t *testing.T) {
	var r Resilience
	r.Retries.Inc()
	r.Retries.Inc()
	r.Timeouts.Inc()
	r.Shed.Add(3)
	s := r.Snapshot()
	if s.Retries != 2 || s.Timeouts != 1 || s.Cancellations != 0 || s.Shed != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	want := "retries=2 timeouts=1 cancellations=0 shed=3"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}
