package msgcache

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/soapenc"
)

// randomScalar draws one cacheable value, biased toward the nasty corners:
// XML-significant characters, empty strings, integer class boundaries,
// negative zero and extreme floats.
func randomScalar(r *rand.Rand) soapenc.Value {
	switch r.Intn(6) {
	case 0: // strings, often with markup characters and quotes
		alphabet := []rune(`<>&"' abcXYZ;=/-_.` + "\té漢")
		n := r.Intn(20)
		runes := make([]rune, n)
		for i := range runes {
			runes[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(runes)
	case 1: // int32-range ints, including the exact boundaries
		boundaries := []int64{0, 1, -1, math.MaxInt32, math.MinInt32}
		if r.Intn(2) == 0 {
			return boundaries[r.Intn(len(boundaries))]
		}
		return int64(int32(r.Uint32()))
	case 2: // ints just past the int32 boundary (xsd:long territory)
		if r.Intn(2) == 0 {
			return int64(math.MaxInt32) + 1 + int64(r.Intn(1000))
		}
		return int64(math.MinInt32) - 1 - int64(r.Intn(1000))
	case 3: // floats
		floats := []float64{0, math.Copysign(0, -1), 1.5, -2.25, 1e-300, 1e300, math.MaxFloat64}
		if r.Intn(2) == 0 {
			return floats[r.Intn(len(floats))]
		}
		return r.NormFloat64() * 1e6
	case 4:
		return r.Intn(2) == 0
	default:
		return int32(r.Uint32())
	}
}

func TestDifferentialRenderMatchesFullSerialization(t *testing.T) {
	// Property: for randomized cacheable parameter lists, the template
	// cache's spliced output is byte-identical to the full serializer —
	// on the template-building miss AND on the cached-template hit.
	r := rand.New(rand.NewSource(7))
	cache := New()
	const rounds = 400
	for round := 0; round < rounds; round++ {
		op := fmt.Sprintf("op%d", r.Intn(8))
		ns := "urn:spi:Diff"
		n := r.Intn(5)
		params := make([]soapenc.Field, n)
		for i := range params {
			params[i] = soapenc.F(fmt.Sprintf("p%d", i), randomScalar(r))
		}
		wantDoc := fullSerialize(t, ns, op, params)
		for pass := 0; pass < 2; pass++ { // pass 0 may build, pass 1 must hit
			got, ok, err := cache.Render("Diff", ns, op, params)
			if err != nil {
				t.Fatalf("round %d pass %d: Render error: %v (params %+v)", round, pass, err, params)
			}
			if !ok {
				t.Fatalf("round %d: scalar-only params reported uncacheable: %+v", round, params)
			}
			if !bytes.Equal(got, wantDoc) {
				t.Fatalf("round %d pass %d: template output diverged\nparams: %+v\n got: %s\nwant: %s",
					round, pass, params, got, wantDoc)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("differential run exercised no cache hit/miss split: %+v", st)
	}
}

func TestDifferentialUncacheableShapes(t *testing.T) {
	cache := New()
	for _, params := range [][]soapenc.Field{
		{soapenc.F("arr", []soapenc.Value{int32(1), int32(2)})},
		{soapenc.F("nested", &soapenc.Struct{Fields: []soapenc.Field{soapenc.F("x", int32(1))}})},
		{soapenc.F("nil", nil)},
	} {
		_, ok, err := cache.Render("Diff", "urn:spi:Diff", "op", params)
		if err != nil {
			t.Fatalf("uncacheable shape errored instead of declining: %v", err)
		}
		if ok {
			t.Errorf("non-scalar shape claimed cacheable: %+v", params)
		}
	}
	if st := cache.Stats(); st.Uncached != 3 {
		t.Errorf("Uncached = %d, want 3", st.Uncached)
	}
}
