// Package msgcache implements the client-side message-caching
// optimizations the paper surveys in §2.2 and positions itself against:
//
//   - Devaram & Andresen, "SOAP Optimization via Parameterized Client-Side
//     Caching" (PDCS 2003) — reference [1]: cache a serialized request
//     message and only substitute the parameter values on subsequent
//     sends;
//   - Abu-Ghazaleh, Lewis & Govindaraju, "Differential Serialization for
//     Optimized SOAP Performance" (HPDC-13) — reference [3]: bypass the
//     serialization step for messages similar to previously-sent ones.
//
// The paper argues these techniques are orthogonal to SPI — they cut
// per-message CPU cost while SPI cuts the number of messages — and the
// experiment harness uses this package to measure exactly that: template
// caching accelerates serialization dramatically yet leaves the
// per-message network overhead untouched, so packing still dominates for
// many small requests.
//
// A Template is the serialized request envelope split at the parameter
// value positions. Rendering a call with new values is a byte splice — no
// DOM construction, no tree walking, no tag writing.
package msgcache

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// placeholder is spliced into the template where parameter values go. It
// contains characters that escape differently in text and attributes, so
// it can never collide with a real escaped value.
const placeholder = "\x00spi-param\x00"

// Key identifies one template: the operation plus the parameter shape.
// Two calls share a template exactly when they target the same operation
// with the same parameter names and scalar types in the same order —
// Devaram's "parameterized" condition.
type Key struct {
	Service string
	Op      string
	Shape   string
}

// ShapeOf computes the parameter-shape component of a key. Values outside
// the scalar set (arrays, structs, nil) make the call uncacheable because
// their serialized form is not a single splice point. Integers split into
// two shape classes because the wire type (xsd:int vs xsd:long) depends on
// the value's range, and the template bakes the xsi:type in.
func ShapeOf(params []soapenc.Field) (string, bool) {
	var b strings.Builder
	for _, p := range params {
		var t string
		switch v := p.Value.(type) {
		case string:
			t = "s"
		case int64:
			t = intShape(v)
		case int:
			t = intShape(int64(v))
		case int32:
			t = "i32"
		case float64:
			t = "f"
		case bool:
			t = "b"
		default:
			return "", false
		}
		b.WriteString(p.Name)
		b.WriteByte(':')
		b.WriteString(t)
		b.WriteByte(';')
	}
	return b.String(), true
}

func intShape(n int64) string {
	if n >= math.MinInt32 && n <= math.MaxInt32 {
		return "i32"
	}
	return "i64"
}

// Template is a pre-serialized request envelope with holes at the
// parameter value positions.
type Template struct {
	segments [][]byte // len(params)+1 segments around the holes
}

// Render splices the parameter values into the template. Values are
// escaped for text content exactly as the full serializer would.
func (t *Template) Render(params []soapenc.Field) ([]byte, error) {
	if len(params) != len(t.segments)-1 {
		return nil, fmt.Errorf("msgcache: template has %d holes, got %d params",
			len(t.segments)-1, len(params))
	}
	size := 0
	for _, s := range t.segments {
		size += len(s)
	}
	out := make([]byte, 0, size+len(params)*16)
	for i, seg := range t.segments {
		out = append(out, seg...)
		if i < len(params) {
			text, err := scalarText(params[i].Value)
			if err != nil {
				return nil, err
			}
			out = append(out, xmltext.EscapeText(text)...)
		}
	}
	return out, nil
}

// scalarText renders a scalar value exactly the way soapenc does, by
// encoding into a scratch element and extracting the text. Going through
// soapenc keeps the two formats locked together.
func scalarText(v soapenc.Value) (string, error) {
	scratch := xmldom.NewElement(xmltext.Name{Local: "scratch"})
	enc, err := soapenc.Encode(scratch, "v", v)
	if err != nil {
		return "", err
	}
	return enc.Text(), nil
}

// Stats counts cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Uncached  int64 // calls whose shape is not cacheable
	Templates int
}

// Cache holds templates keyed by operation and parameter shape. Safe for
// concurrent use.
type Cache struct {
	mu        sync.RWMutex
	templates map[Key]*Template
	hits      int64
	misses    int64
	uncached  int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{templates: make(map[Key]*Template)}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{Hits: c.hits, Misses: c.misses, Uncached: c.uncached, Templates: len(c.templates)}
}

// Render produces the serialized request envelope for a call, using a
// cached template when one exists. ok reports whether the call was
// cacheable at all; when ok is false the caller must serialize normally.
func (c *Cache) Render(service, namespace, op string, params []soapenc.Field) (doc []byte, ok bool, err error) {
	shape, cacheable := ShapeOf(params)
	if !cacheable {
		c.mu.Lock()
		c.uncached++
		c.mu.Unlock()
		return nil, false, nil
	}
	key := Key{Service: service, Op: op, Shape: shape}
	c.mu.RLock()
	tmpl := c.templates[key]
	c.mu.RUnlock()
	if tmpl == nil {
		tmpl, err = buildTemplate(namespace, op, params)
		if err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		c.templates[key] = tmpl
		c.misses++
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	out, err := tmpl.Render(params)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// buildTemplate serializes the envelope once with placeholder values and
// splits it at the placeholders.
func buildTemplate(namespace, op string, params []soapenc.Field) (*Template, error) {
	// Build the request with placeholder values of the same types, so the
	// xsi:type annotations in the template are correct.
	marked := make([]soapenc.Field, len(params))
	for i, p := range params {
		marked[i] = soapenc.F(p.Name, p.Value)
	}
	env := soap.New()
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", namespace)
	for _, p := range marked {
		child, err := soapenc.Encode(el, p.Name, p.Value)
		if err != nil {
			return nil, err
		}
		child.SetText(placeholder)
	}
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		return nil, err
	}
	raw := buf.Bytes()

	escaped := []byte(xmltext.EscapeText(placeholder))
	parts := bytes.Split(raw, escaped)
	if len(parts) != len(params)+1 {
		return nil, fmt.Errorf("msgcache: expected %d holes, found %d", len(params), len(parts)-1)
	}
	segments := make([][]byte, len(parts))
	for i, p := range parts {
		segments[i] = append([]byte(nil), p...)
	}
	return &Template{segments: segments}, nil
}
