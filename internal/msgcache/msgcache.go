// Package msgcache implements the client-side message-caching
// optimizations the paper surveys in §2.2 and positions itself against:
//
//   - Devaram & Andresen, "SOAP Optimization via Parameterized Client-Side
//     Caching" (PDCS 2003) — reference [1]: cache a serialized request
//     message and only substitute the parameter values on subsequent
//     sends;
//   - Abu-Ghazaleh, Lewis & Govindaraju, "Differential Serialization for
//     Optimized SOAP Performance" (HPDC-13) — reference [3]: bypass the
//     serialization step for messages similar to previously-sent ones.
//
// The paper argues these techniques are orthogonal to SPI — they cut
// per-message CPU cost while SPI cuts the number of messages — and the
// experiment harness uses this package to measure exactly that: template
// caching accelerates serialization dramatically yet leaves the
// per-message network overhead untouched, so packing still dominates for
// many small requests.
//
// A Template is the serialized request envelope split at the parameter
// value positions. Rendering a call with new values is a byte splice — no
// DOM construction, no tree walking, no tag writing.
package msgcache

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// placeholder is spliced into the template where parameter values go. It
// contains characters that escape differently in text and attributes, so
// it can never collide with a real escaped value.
const placeholder = "\x00spi-param\x00"

// Key identifies one template: the operation plus the parameter shape.
// Two calls share a template exactly when they target the same operation
// with the same parameter names and scalar types in the same order —
// Devaram's "parameterized" condition.
type Key struct {
	Service string
	Op      string
	Shape   string
}

// ShapeOf computes the parameter-shape component of a key. Values outside
// the scalar set (arrays, structs, nil) make the call uncacheable because
// their serialized form is not a single splice point. Integers split into
// two shape classes because the wire type (xsd:int vs xsd:long) depends on
// the value's range, and the template bakes the xsi:type in.
func ShapeOf(params []soapenc.Field) (string, bool) {
	b, ok := appendShape(nil, params)
	if !ok {
		return "", false
	}
	return string(b), true
}

// appendShape is ShapeOf in append form, so the cache's hit path can build
// the shape into a stack scratch buffer instead of allocating a string per
// call.
func appendShape(dst []byte, params []soapenc.Field) ([]byte, bool) {
	for _, p := range params {
		var t string
		switch v := p.Value.(type) {
		case string:
			t = "s"
		case int64:
			t = intShape(v)
		case int:
			t = intShape(int64(v))
		case int32:
			t = "i32"
		case float64:
			t = "f"
		case bool:
			t = "b"
		default:
			return nil, false
		}
		dst = append(dst, p.Name...)
		dst = append(dst, ':')
		dst = append(dst, t...)
		dst = append(dst, ';')
	}
	return dst, true
}

func intShape(n int64) string {
	if n >= math.MinInt32 && n <= math.MaxInt32 {
		return "i32"
	}
	return "i64"
}

// Template is a pre-serialized request envelope with holes at the
// parameter value positions.
type Template struct {
	segments [][]byte // len(params)+1 segments around the holes
}

// Render splices the parameter values into the template. Values are
// escaped for text content exactly as the full serializer would.
func (t *Template) Render(params []soapenc.Field) ([]byte, error) {
	em := xmltext.AcquireEmitter()
	defer xmltext.ReleaseEmitter(em)
	if err := t.RenderTo(em, params); err != nil {
		return nil, err
	}
	return append([]byte(nil), em.Bytes()...), nil
}

// RenderTo splices the parameter values into the template directly onto an
// emitter — the allocation-free form of Render: segments are appended
// verbatim and scalars are formatted into a stack scratch buffer, exactly
// as soapenc's streaming encoder writes them, so the bytes match a full
// serialization. The rendered document is em.Bytes(), valid until the
// emitter is released or reused.
func (t *Template) RenderTo(em *xmltext.Emitter, params []soapenc.Field) error {
	if len(params) != len(t.segments)-1 {
		return fmt.Errorf("msgcache: template has %d holes, got %d params",
			len(t.segments)-1, len(params))
	}
	var tmp [32]byte
	for i, seg := range t.segments {
		em.Raw(seg)
		if i >= len(params) {
			break
		}
		switch v := params[i].Value.(type) {
		case string:
			em.RawText(v)
		case int64:
			em.Raw(strconv.AppendInt(tmp[:0], v, 10))
		case int:
			em.Raw(strconv.AppendInt(tmp[:0], int64(v), 10))
		case int32:
			em.Raw(strconv.AppendInt(tmp[:0], int64(v), 10))
		case float64:
			em.Raw(soapenc.AppendDouble(tmp[:0], v))
		case bool:
			if v {
				em.RawString("true")
			} else {
				em.RawString("false")
			}
		default:
			// ShapeOf admits only the scalars above; anything else means
			// the template and the call disagree.
			return fmt.Errorf("msgcache: unsupported scalar type %T", v)
		}
	}
	return em.Err()
}

// Stats counts cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Uncached  int64 // calls whose shape is not cacheable
	Templates int
}

// Cache holds templates keyed by operation and parameter shape. Safe for
// concurrent use.
type Cache struct {
	mu        sync.RWMutex
	templates map[Key]*Template
	// shapes interns shape strings: the hit path builds the shape into a
	// stack buffer and resolves it here with an allocation-free
	// map[string(bytes)] lookup, so rendering a cached call never allocates.
	shapes   map[string]string
	hits     int64
	misses   int64
	uncached int64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		templates: make(map[Key]*Template),
		shapes:    make(map[string]string),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{Hits: c.hits, Misses: c.misses, Uncached: c.uncached, Templates: len(c.templates)}
}

// Render produces the serialized request envelope for a call, using a
// cached template when one exists. ok reports whether the call was
// cacheable at all; when ok is false the caller must serialize normally.
func (c *Cache) Render(service, namespace, op string, params []soapenc.Field) (doc []byte, ok bool, err error) {
	tmpl, err := c.lookup(service, namespace, op, params)
	if tmpl == nil || err != nil {
		return nil, false, err
	}
	out, err := tmpl.Render(params)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// RenderTo is Render onto a caller-supplied emitter — with a pooled
// emitter the steady-state hit path allocates nothing. ok reports whether
// the call was cacheable; when false nothing was written and the caller
// must serialize normally.
func (c *Cache) RenderTo(em *xmltext.Emitter, service, namespace, op string, params []soapenc.Field) (ok bool, err error) {
	tmpl, err := c.lookup(service, namespace, op, params)
	if tmpl == nil || err != nil {
		return false, err
	}
	if err := tmpl.RenderTo(em, params); err != nil {
		return false, err
	}
	return true, nil
}

// lookup resolves (building on miss) the template for a call, maintaining
// the counters. A nil template with nil error means the call is uncacheable.
// The hit path is allocation-free: the shape is appended into a stack
// scratch buffer and interned through the shapes map, so the Key is built
// entirely from strings that already exist.
func (c *Cache) lookup(service, namespace, op string, params []soapenc.Field) (*Template, error) {
	var scratch [96]byte
	shapeBuf, cacheable := appendShape(scratch[:0], params)
	if !cacheable {
		c.mu.Lock()
		c.uncached++
		c.mu.Unlock()
		return nil, nil
	}
	c.mu.RLock()
	shape, seen := c.shapes[string(shapeBuf)] // no-copy map probe
	var tmpl *Template
	if seen {
		tmpl = c.templates[Key{Service: service, Op: op, Shape: shape}]
	}
	c.mu.RUnlock()
	if tmpl == nil {
		var err error
		tmpl, err = buildTemplate(namespace, op, params)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		if !seen {
			shape = string(shapeBuf)
			c.shapes[shape] = shape
		}
		c.templates[Key{Service: service, Op: op, Shape: shape}] = tmpl
		c.misses++
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	return tmpl, nil
}

// buildTemplate serializes the envelope once with placeholder values and
// splits it at the placeholders.
func buildTemplate(namespace, op string, params []soapenc.Field) (*Template, error) {
	// Build the request with placeholder values of the same types, so the
	// xsi:type annotations in the template are correct.
	marked := make([]soapenc.Field, len(params))
	for i, p := range params {
		marked[i] = soapenc.F(p.Name, p.Value)
	}
	env := soap.New()
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", namespace)
	for _, p := range marked {
		child, err := soapenc.Encode(el, p.Name, p.Value)
		if err != nil {
			return nil, err
		}
		child.SetText(placeholder)
	}
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		return nil, err
	}
	raw := buf.Bytes()

	escaped := []byte(xmltext.EscapeText(placeholder))
	parts := bytes.Split(raw, escaped)
	if len(parts) != len(params)+1 {
		return nil, fmt.Errorf("msgcache: expected %d holes, found %d", len(params), len(parts)-1)
	}
	segments := make([][]byte, len(parts))
	for i, p := range parts {
		segments[i] = append([]byte(nil), p...)
	}
	return &Template{segments: segments}, nil
}
