package msgcache

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// fullSerialize is the reference path: DOM construction + envelope encode.
func fullSerialize(t testing.TB, namespace, op string, params []soapenc.Field) []byte {
	t.Helper()
	env := soap.New()
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", namespace)
	if err := soapenc.EncodeParams(el, params); err != nil {
		t.Fatal(err)
	}
	env.AddBody(el)
	var buf bytes.Buffer
	if err := env.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTemplateMatchesFullSerialization(t *testing.T) {
	c := New()
	paramSets := [][]soapenc.Field{
		{soapenc.F("city", "Beijing"), soapenc.F("days", int64(3))},
		{soapenc.F("city", "Shanghai"), soapenc.F("days", int64(7))},
		{soapenc.F("city", "text with <markup> & \"entities\""), soapenc.F("days", int64(-1))},
		{soapenc.F("city", ""), soapenc.F("days", int64(0))},
	}
	for i, params := range paramSets {
		got, ok, err := c.Render("Weather", "urn:w", "GetWeather", params)
		if err != nil || !ok {
			t.Fatalf("render %d: ok=%v err=%v", i, ok, err)
		}
		want := fullSerialize(t, "urn:w", "GetWeather", params)
		if string(got) != string(want) {
			t.Errorf("set %d:\ncache: %s\nfull:  %s", i, got, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 3 || st.Templates != 1 {
		t.Errorf("stats = %+v, want 1 miss, 3 hits, 1 template", st)
	}
}

func TestScalarTypesRoundTrip(t *testing.T) {
	c := New()
	cases := [][]soapenc.Field{
		{soapenc.F("s", "x")},
		{soapenc.F("i", int64(42))},
		{soapenc.F("big", int64(math.MaxInt64))},
		{soapenc.F("f", 3.25)},
		{soapenc.F("f", math.Inf(1))},
		{soapenc.F("b", true)},
		{soapenc.F("b", false)},
		{soapenc.F("gi", int(7))},
		{soapenc.F("g32", int32(-7))},
	}
	for _, params := range cases {
		got, ok, err := c.Render("S", "urn:s", "op", params)
		if err != nil || !ok {
			t.Fatalf("render %v: ok=%v err=%v", params, ok, err)
		}
		want := fullSerialize(t, "urn:s", "op", params)
		if string(got) != string(want) {
			t.Errorf("params %v:\ncache: %s\nfull:  %s", params, got, want)
		}
	}
}

func TestIntWidthGetsDistinctTemplates(t *testing.T) {
	c := New()
	small := []soapenc.Field{soapenc.F("n", int64(1))}
	big := []soapenc.Field{soapenc.F("n", int64(math.MaxInt32)+1)}
	g1, _, err := c.Render("S", "urn:s", "op", small)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := c.Render("S", "urn:s", "op", big)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(g1), "xsd:int") || !strings.Contains(string(g2), "xsd:long") {
		t.Errorf("wrong xsi types:\n%s\n%s", g1, g2)
	}
	if c.Stats().Templates != 2 {
		t.Errorf("templates = %d, want 2 (separate int widths)", c.Stats().Templates)
	}
}

func TestUncacheableShapes(t *testing.T) {
	c := New()
	for _, params := range [][]soapenc.Field{
		{soapenc.F("arr", soapenc.Array{"x"})},
		{soapenc.F("st", soapenc.NewStruct(soapenc.F("a", "b")))},
		{soapenc.F("nil", nil)},
		{soapenc.F("bytes", []byte("x"))},
	} {
		_, ok, err := c.Render("S", "urn:s", "op", params)
		if err != nil {
			t.Fatalf("render: %v", err)
		}
		if ok {
			t.Errorf("params %v should be uncacheable", params)
		}
	}
	if st := c.Stats(); st.Uncached != 4 {
		t.Errorf("uncached = %d", st.Uncached)
	}
}

func TestDistinctOperationsDistinctTemplates(t *testing.T) {
	c := New()
	c.Render("A", "urn:a", "op1", []soapenc.Field{soapenc.F("x", "1")})
	c.Render("A", "urn:a", "op2", []soapenc.Field{soapenc.F("x", "1")})
	c.Render("B", "urn:b", "op1", []soapenc.Field{soapenc.F("x", "1")})
	c.Render("A", "urn:a", "op1", []soapenc.Field{soapenc.F("y", "1")}) // different name
	if st := c.Stats(); st.Templates != 4 {
		t.Errorf("templates = %d, want 4", st.Templates)
	}
}

func TestRenderedDocumentParses(t *testing.T) {
	c := New()
	params := []soapenc.Field{soapenc.F("q", "a<b&c"), soapenc.F("n", int64(9))}
	doc, ok, err := c.Render("S", "urn:s", "op", params)
	if err != nil || !ok {
		t.Fatal(err)
	}
	env, err := soap.Decode(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("rendered doc does not parse: %v\n%s", err, doc)
	}
	got, err := soapenc.DecodeParams(env.Body[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !soapenc.Equal(got[0].Value, "a<b&c") || !soapenc.Equal(got[1].Value, int64(9)) {
		t.Errorf("decoded params = %v", got)
	}
}

func TestConcurrentRender(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				params := []soapenc.Field{soapenc.F("x", strings.Repeat("y", i+1))}
				if _, ok, err := c.Render("S", "urn:s", "op", params); err != nil || !ok {
					t.Errorf("render: ok=%v err=%v", ok, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Templates != 1 || st.Hits+st.Misses != 800 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: for random scalar parameter lists, the cache render always
// equals the full serialization.
func TestQuickCacheEqualsFull(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New()
		n := 1 + r.Intn(4)
		for round := 0; round < 3; round++ {
			params := make([]soapenc.Field, n)
			for i := range params {
				name := string(rune('a' + i))
				switch r.Intn(4) {
				case 0:
					params[i] = soapenc.F(name, randText(r))
				case 1:
					params[i] = soapenc.F(name, int64(r.Intn(1000)))
				case 2:
					params[i] = soapenc.F(name, float64(r.Intn(1000))/8)
				default:
					params[i] = soapenc.F(name, r.Intn(2) == 0)
				}
			}
			got, ok, err := c.Render("S", "urn:s", "op", params)
			if err != nil || !ok {
				return false
			}
			want := fullSerialize(t, "urn:s", "op", params)
			if string(got) != string(want) {
				t.Logf("mismatch:\ncache: %s\nfull:  %s", got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randText(r *rand.Rand) string {
	letters := []rune("ab<>&\"'中 \t")
	out := make([]rune, r.Intn(10))
	for i := range out {
		out[i] = letters[r.Intn(len(letters))]
	}
	return string(out)
}

func BenchmarkFullSerialization(b *testing.B) {
	params := []soapenc.Field{soapenc.F("city", "Beijing"), soapenc.F("days", int64(3))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fullSerialize(b, "urn:w", "GetWeather", params)
	}
}

func BenchmarkTemplateRender(b *testing.B) {
	c := New()
	params := []soapenc.Field{soapenc.F("city", "Beijing"), soapenc.F("days", int64(3))}
	if _, ok, err := c.Render("Weather", "urn:w", "GetWeather", params); err != nil || !ok {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Render("Weather", "urn:w", "GetWeather", params); err != nil {
			b.Fatal(err)
		}
	}
}
