package netsim

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestFailDialsCountdown(t *testing.T) {
	link := NewLink(Fast())
	defer link.Close()
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	link.FailDials(2)
	for i := 0; i < 2; i++ {
		if _, err := link.Dial(); !errors.Is(err, ErrDialFault) {
			t.Fatalf("dial %d: err = %v, want ErrDialFault", i, err)
		}
	}
	c, err := link.Dial()
	if err != nil {
		t.Fatalf("dial after countdown: %v", err)
	}
	c.Close()
}

func TestDialFaultHook(t *testing.T) {
	boom := errors.New("injected connect refusal")
	refuse := true
	cfg := Fast()
	cfg.DialFault = func() error {
		if refuse {
			return boom
		}
		return nil
	}
	link := NewLink(cfg)
	defer link.Close()
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	if _, err := link.Dial(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected error", err)
	}
	refuse = false
	c, err := link.Dial()
	if err != nil {
		t.Fatalf("dial after hook cleared: %v", err)
	}
	c.Close()
}

func TestExtraLatencyInjection(t *testing.T) {
	client, server, link := pair(t, Fast())
	defer client.Close()
	defer server.Close()

	echo := func() time.Duration {
		start := time.Now()
		if _, err := client.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := readFull(server, buf); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	base := echo()

	link.SetExtraLatency(50 * time.Millisecond)
	slow := echo()
	if slow < base+30*time.Millisecond {
		t.Errorf("injected latency not observed: base %v, slow %v", base, slow)
	}

	link.SetExtraLatency(0)
	fast := echo()
	if fast > 30*time.Millisecond {
		t.Errorf("latency lingered after clearing: %v", fast)
	}
}

// readFull reads exactly len(buf) bytes.
func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
