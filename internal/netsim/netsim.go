// Package netsim simulates the paper's testbed network in memory.
//
// The evaluation in the paper runs a client and a server on two hosts joined
// by a 100 Mbit Ethernet link. Its central result — packing M requests into
// one SOAP message wins when payloads are small and loses when they are
// huge — is entirely a function of per-message costs (TCP connection setup,
// HTTP and SOAP headers) versus payload transfer time. This package models
// exactly those quantities:
//
//   - connection establishment costs one round trip plus a configurable
//     accept overhead (the TCP handshake);
//   - every byte written is serialized through a shared per-direction
//     token-bucket "wire", so concurrent connections contend for bandwidth
//     the way they do on a real link (full duplex: the two directions are
//     independent);
//   - framing overhead (Ethernet + IP + TCP headers per MTU-sized segment)
//     is charged on the wire, so many small messages are proportionally
//     more expensive than one large one;
//   - delivery is delayed by the one-way propagation latency.
//
// Link produces net.Listener / net.Conn values, so the whole HTTP + SOAP
// stack runs over it unmodified, and the same experiments can also run over
// real TCP by swapping the dialer.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one simulated link.
type Config struct {
	// PropagationDelay is the one-way latency. Zero means instantaneous.
	PropagationDelay time.Duration
	// Bandwidth is the capacity of each direction in bytes per second.
	// Zero means unlimited.
	Bandwidth int64
	// AcceptOverhead is extra time charged to every connection
	// establishment beyond the handshake round trip, modelling kernel
	// accept-queue and socket setup costs.
	AcceptOverhead time.Duration
	// MTU is the segment size used for framing-overhead accounting.
	// Zero means 1460 (Ethernet TCP MSS).
	MTU int
	// FrameOverhead is the number of header bytes charged per segment.
	// Zero means 58 (Ethernet 14 + IP 20 + TCP 20 + checksum/preamble 4).
	FrameOverhead int

	// DialFault, if set, is consulted before every connection attempt; a
	// non-nil return refuses that dial with the given error (connect
	// failure injection for resilience tests). It runs in addition to the
	// countdown armed by Link.FailDials.
	DialFault func() error
	// ExtraLatency, if set, returns additional one-way delay applied to
	// every write (latency degradation/jitter injection). It is called
	// once per write quantum.
	ExtraLatency func() time.Duration
}

// IsZero reports whether the configuration is entirely unset, i.e. the
// zero value (Config is not comparable because of the injection hooks).
func (c Config) IsZero() bool {
	return c.PropagationDelay == 0 && c.Bandwidth == 0 && c.AcceptOverhead == 0 &&
		c.MTU == 0 && c.FrameOverhead == 0 && c.DialFault == nil && c.ExtraLatency == nil
}

// LAN100 returns the configuration used throughout the experiments: a
// 100 Mbit switched Ethernet with a typical ~0.3 ms round-trip time,
// matching the paper's testbed ("the server and client communicated through
// the Megabit Ethernet link").
func LAN100() Config {
	return Config{
		PropagationDelay: 150 * time.Microsecond,
		Bandwidth:        100_000_000 / 8, // 100 Mbit/s
		AcceptOverhead:   100 * time.Microsecond,
		MTU:              1460,
		FrameOverhead:    58,
	}
}

// WAN returns a wide-area configuration: 10 Mbit/s with a 20 ms one-way
// delay (a 2006-era inter-site link). Web services are motivated by
// "representing and accessing services in wide area network environment"
// (the paper's opening sentence); under WAN latency the per-message
// round-trip cost grows and packing wins even harder.
func WAN() Config {
	return Config{
		PropagationDelay: 20 * time.Millisecond,
		Bandwidth:        10_000_000 / 8, // 10 Mbit/s
		AcceptOverhead:   200 * time.Microsecond,
		MTU:              1460,
		FrameOverhead:    58,
	}
}

// Fast returns a configuration with no artificial delays, for unit tests
// that only need conn semantics.
func Fast() Config { return Config{} }

// Stats is a snapshot of link counters, used by experiments to verify
// message accounting (e.g. that the packed approach really dialed once).
type Stats struct {
	Dials         int64 // connections established
	BytesUp       int64 // payload bytes client->server
	BytesDown     int64 // payload bytes server->client
	WireBytesUp   int64 // payload+framing bytes client->server
	WireBytesDown int64 // payload+framing bytes server->client
}

// Link is one simulated point-to-point link.
type Link struct {
	cfg  Config
	up   *wire // client -> server
	down *wire // server -> client

	dials         atomic.Int64
	bytesUp       atomic.Int64
	bytesDown     atomic.Int64
	wireBytesUp   atomic.Int64
	wireBytesDown atomic.Int64

	failDials  atomic.Int64 // countdown armed by FailDials
	extraDelay atomic.Int64 // nanoseconds, set by SetExtraLatency

	mu       sync.Mutex
	accept   chan *conn
	done     chan struct{} // closed by Close
	listener *Listener
	closed   bool
}

// NewLink creates a link with the given configuration.
func NewLink(cfg Config) *Link {
	if cfg.MTU <= 0 {
		cfg.MTU = 1460
	}
	if cfg.FrameOverhead < 0 {
		cfg.FrameOverhead = 0
	} else if cfg.FrameOverhead == 0 {
		cfg.FrameOverhead = 58
	}
	return &Link{
		cfg:    cfg,
		up:     newWire(cfg.Bandwidth),
		down:   newWire(cfg.Bandwidth),
		accept: make(chan *conn, 128),
		done:   make(chan struct{}),
	}
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() Stats {
	return Stats{
		Dials:         l.dials.Load(),
		BytesUp:       l.bytesUp.Load(),
		BytesDown:     l.bytesDown.Load(),
		WireBytesUp:   l.wireBytesUp.Load(),
		WireBytesDown: l.wireBytesDown.Load(),
	}
}

// ResetStats zeroes the counters (between experiment runs).
func (l *Link) ResetStats() {
	l.dials.Store(0)
	l.bytesUp.Store(0)
	l.bytesDown.Store(0)
	l.wireBytesUp.Store(0)
	l.wireBytesDown.Store(0)
}

// wireSize returns the on-the-wire size of n payload bytes including
// per-segment framing.
func (l *Link) wireSize(n int) int {
	segments := (n + l.cfg.MTU - 1) / l.cfg.MTU
	return n + segments*l.cfg.FrameOverhead
}

// Listen returns the server side of the link. A link has one listener.
func (l *Link) Listen() (*Listener, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("netsim: link closed")
	}
	if l.listener != nil {
		return nil, errors.New("netsim: link already has a listener")
	}
	l.listener = &Listener{link: l}
	return l.listener, nil
}

// ErrDialFault is the error injected dial failures wrap, so tests and
// retry policies can recognize them with errors.Is.
var ErrDialFault = errors.New("netsim: connection refused (injected fault)")

// FailDials arms the link to refuse the next n connection attempts with
// ErrDialFault — the "lossy link" injection used by the resilience tests
// and the fault-injection experiment. It is cumulative with Config.DialFault.
func (l *Link) FailDials(n int64) {
	l.failDials.Store(n)
}

// SetExtraLatency adds d of one-way delay to every subsequent write in
// both directions (slow-link injection); zero removes it. It composes
// with Config.ExtraLatency.
func (l *Link) SetExtraLatency(d time.Duration) {
	l.extraDelay.Store(int64(d))
}

// injectedDelay returns the currently injected one-way write delay.
func (l *Link) injectedDelay() time.Duration {
	d := time.Duration(l.extraDelay.Load())
	if l.cfg.ExtraLatency != nil {
		d += l.cfg.ExtraLatency()
	}
	return d
}

// Dial establishes a connection to the link's listener, charging the
// handshake round trip (plus accept overhead) and a handshake's worth of
// wire bytes.
func (l *Link) Dial() (net.Conn, error) {
	l.mu.Lock()
	lis := l.listener
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, errors.New("netsim: link closed")
	}
	if lis == nil {
		return nil, errors.New("netsim: connection refused (no listener)")
	}
	for {
		remaining := l.failDials.Load()
		if remaining <= 0 {
			break
		}
		if l.failDials.CompareAndSwap(remaining, remaining-1) {
			return nil, ErrDialFault
		}
	}
	if l.cfg.DialFault != nil {
		if err := l.cfg.DialFault(); err != nil {
			return nil, err
		}
	}

	// SYN and ACK consume wire time in each direction plus a full round
	// trip of propagation before data can flow.
	const handshakeFrame = 66 // TCP SYN segment with options
	l.up.transmit(handshakeFrame)
	l.down.transmit(handshakeFrame)
	sleep(2*l.cfg.PropagationDelay + l.cfg.AcceptOverhead)

	client, server := l.newConnPair()
	select {
	case l.accept <- server:
	case <-l.done:
		return nil, errors.New("netsim: link closed")
	default:
		// Accept backlog full: the connection is refused, as a SYN queue
		// overflow would.
		return nil, errors.New("netsim: accept backlog full")
	}
	l.dials.Add(1)
	return client, nil
}

// newConnPair wires two conn halves together through the link.
func (l *Link) newConnPair() (client, server *conn) {
	c2s := newPipeBuf()
	s2c := newPipeBuf()
	client = &conn{
		link: l, in: s2c, out: c2s, wire: l.up,
		payload: &l.bytesUp, wireBytes: &l.wireBytesUp,
		local: addr("client"), remote: addr("server"),
	}
	server = &conn{
		link: l, in: c2s, out: s2c, wire: l.down,
		payload: &l.bytesDown, wireBytes: &l.wireBytesDown,
		local: addr("server"), remote: addr("client"),
	}
	client.peer, server.peer = server, client
	return client, server
}

// Close shuts the link down; pending and future operations fail.
func (l *Link) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.done)
	return nil
}

// Listener implements net.Listener over the link.
type Listener struct {
	link   *Link
	closed atomic.Bool
}

// Accept waits for the next inbound connection.
func (ln *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-ln.link.accept:
		if ln.closed.Load() {
			return nil, errors.New("netsim: listener closed")
		}
		return c, nil
	case <-ln.link.done:
		return nil, errors.New("netsim: listener closed")
	}
}

// Close stops the listener. Established connections are unaffected.
func (ln *Listener) Close() error {
	if ln.closed.CompareAndSwap(false, true) {
		ln.link.Close()
	}
	return nil
}

// Addr implements net.Listener.
func (ln *Listener) Addr() net.Addr { return addr("server") }

// addr is a trivial net.Addr.
type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// sleep waits for d with sub-millisecond precision. Kernel timers on many
// hosts round time.Sleep up to ~1 ms, which would swamp the microsecond
// LAN delays this simulation models, so the final stretch is spin-waited.
// It is a seam for tests.
var sleep = func(d time.Duration) {
	if d <= 0 {
		return
	}
	sleepUntil(time.Now().Add(d))
}

// spinThreshold is the window within which waiting spins instead of
// sleeping. It is chosen above the observed oversleep of coarse kernel
// timers.
const spinThreshold = 2 * time.Millisecond

// sleepUntil blocks until the deadline, trading a short CPU spin for
// timer precision.
func sleepUntil(deadline time.Time) {
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return
		}
		if d > 2*spinThreshold {
			time.Sleep(d - 2*spinThreshold)
			continue
		}
		runtime.Gosched()
	}
}

// writeQuantum bounds how many bytes one Write serializes through the wire
// at once, so concurrent connections interleave fairly instead of one large
// message monopolizing the link.
const writeQuantum = 64 << 10

// conn is one endpoint of a simulated connection.
type conn struct {
	link      *Link
	peer      *conn
	in        *pipeBuf // data we read
	out       *pipeBuf // data the peer reads
	wire      *wire    // the direction we transmit on
	payload   *atomic.Int64
	wireBytes *atomic.Int64
	local     addr
	remote    addr

	readDeadline  atomicTime
	writeDeadline atomicTime
	closed        atomic.Bool
}

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) {
	return c.in.read(p, c.readDeadline.Load())
}

// Write implements net.Conn: it charges wire time for the bytes (shared
// with all other connections transmitting in the same direction), then
// delivers them to the peer after the propagation delay.
func (c *conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, errors.New("netsim: write on closed connection")
	}
	total := 0
	for len(p) > 0 {
		if dl := c.writeDeadline.Load(); !dl.IsZero() && time.Now().After(dl) {
			return total, os.ErrDeadlineExceeded
		}
		n := len(p)
		if n > writeQuantum {
			n = writeQuantum
		}
		wireN := c.link.wireSize(n)
		c.wire.transmit(wireN)
		c.payload.Add(int64(n))
		c.wireBytes.Add(int64(wireN))
		deliverAt := time.Now().Add(c.link.cfg.PropagationDelay + c.link.injectedDelay())
		if err := c.out.write(p[:n], deliverAt); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Close implements net.Conn. Both directions shut down, as with TCP's
// close-then-RST behaviour for simplicity; in-flight bytes already written
// remain readable (FIN semantics).
func (c *conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.out.closeWrite()
	c.in.closeRead()
	return nil
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *conn) SetDeadline(t time.Time) error {
	c.readDeadline.Store(t)
	c.writeDeadline.Store(t)
	c.in.kick()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.readDeadline.Store(t)
	c.in.kick()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.Store(t)
	return nil
}

// atomicTime is an atomically updatable time.Time.
type atomicTime struct {
	mu sync.Mutex
	t  time.Time
}

func (a *atomicTime) Load() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}

func (a *atomicTime) Store(t time.Time) {
	a.mu.Lock()
	a.t = t
	a.mu.Unlock()
}

// wire serializes transmissions in one direction through a shared line:
// each transmit occupies the line for size/bandwidth seconds, FIFO. The
// caller sleeps until its transmission completes, which is how bandwidth
// contention between concurrent connections arises.
type wire struct {
	mu        sync.Mutex
	bandwidth float64 // bytes per second; 0 = infinite
	busyUntil time.Time
}

func newWire(bandwidth int64) *wire {
	return &wire{bandwidth: float64(bandwidth)}
}

func (w *wire) transmit(n int) {
	if w.bandwidth <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / w.bandwidth * float64(time.Second))
	w.mu.Lock()
	now := time.Now()
	start := w.busyUntil
	if start.Before(now) {
		start = now
	}
	finish := start.Add(d)
	w.busyUntil = finish
	w.mu.Unlock()
	sleep(finish.Sub(now))
}

// pipeBuf is a time-aware byte queue: chunks become readable only once
// their delivery time arrives.
type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []chunk
	wEOF   bool // writer closed: EOF after draining
	rDead  bool // reader closed: further ops fail
}

type chunk struct {
	data []byte
	at   time.Time
}

func newPipeBuf() *pipeBuf {
	b := &pipeBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuf) write(p []byte, at time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rDead || b.wEOF {
		return fmt.Errorf("netsim: connection closed")
	}
	data := make([]byte, len(p))
	copy(data, p)
	b.chunks = append(b.chunks, chunk{data: data, at: at})
	b.cond.Broadcast()
	return nil
}

func (b *pipeBuf) read(p []byte, deadline time.Time) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.rDead {
			return 0, fmt.Errorf("netsim: read on closed connection")
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(b.chunks) > 0 {
			now := time.Now()
			first := &b.chunks[0]
			if !first.at.After(now) {
				n := copy(p, first.data)
				if n == len(first.data) {
					b.chunks = b.chunks[1:]
				} else {
					first.data = first.data[n:]
				}
				return n, nil
			}
			// Data exists but is still "in flight": wait precisely for its
			// arrival (releasing the lock), bounded by the deadline.
			wake := first.at
			if !deadline.IsZero() && deadline.Before(wake) {
				wake = deadline
			}
			b.mu.Unlock()
			sleepUntil(wake)
			b.mu.Lock()
			continue
		}
		if b.wEOF {
			return 0, io.EOF
		}
		if !deadline.IsZero() {
			b.wakeAt(deadline, deadline)
			continue
		}
		b.cond.Wait()
	}
}

// wakeAt blocks (releasing the lock) until roughly time t, the deadline, or
// a broadcast, whichever comes first.
func (b *pipeBuf) wakeAt(t, deadline time.Time) {
	wake := t
	if !deadline.IsZero() && deadline.Before(wake) {
		wake = deadline
	}
	d := time.Until(wake)
	if d <= 0 {
		return
	}
	timer := time.AfterFunc(d, b.cond.Broadcast)
	b.cond.Wait()
	timer.Stop()
}

func (b *pipeBuf) closeWrite() {
	b.mu.Lock()
	b.wEOF = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *pipeBuf) closeRead() {
	b.mu.Lock()
	// Keep buffered data readable (FIN semantics) but mark EOF; a reader
	// blocked with no data wakes with EOF.
	b.wEOF = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *pipeBuf) kick() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}
