package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pair establishes a connected client/server pair over a fresh link.
func pair(t *testing.T, cfg Config) (client, server net.Conn, link *Link) {
	t.Helper()
	link = NewLink(cfg)
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { link.Close() })

	done := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			done <- nil
			return
		}
		done <- c
	}()
	client, err = link.Dial()
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("no server conn")
	}
	return client, server, link
}

func TestConnBasicExchange(t *testing.T) {
	client, server, _ := pair(t, Fast())
	go func() {
		client.Write([]byte("hello"))
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("server read %q", buf)
	}
	go server.Write([]byte("world"))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("client read %q", buf)
	}
}

func TestConnLargeTransfer(t *testing.T) {
	client, server, _ := pair(t, Fast())
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64<<10/16*3) // 192 KiB
	go func() {
		client.Write(payload)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("large transfer corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestCloseGivesEOF(t *testing.T) {
	client, server, _ := pair(t, Fast())
	go func() {
		client.Write([]byte("bye"))
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bye" {
		t.Errorf("read %q", got)
	}
	if _, err := client.Write([]byte("after close")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestDialWithoutListener(t *testing.T) {
	link := NewLink(Fast())
	if _, err := link.Dial(); err == nil {
		t.Error("dial with no listener succeeded")
	}
	link.Close()
	if _, err := link.Dial(); err == nil {
		t.Error("dial on closed link succeeded")
	}
}

func TestSecondListenerRejected(t *testing.T) {
	link := NewLink(Fast())
	defer link.Close()
	if _, err := link.Listen(); err != nil {
		t.Fatal(err)
	}
	if _, err := link.Listen(); err == nil {
		t.Error("second listener accepted")
	}
}

func TestPropagationDelay(t *testing.T) {
	cfg := Fast()
	cfg.PropagationDelay = 20 * time.Millisecond
	client, server, _ := pair(t, cfg)

	start := time.Now()
	go client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("one byte arrived in %v, want >= ~20ms propagation", elapsed)
	}
}

func TestDialCostsRoundTrip(t *testing.T) {
	cfg := Fast()
	cfg.PropagationDelay = 10 * time.Millisecond
	cfg.AcceptOverhead = 5 * time.Millisecond
	link := NewLink(cfg)
	defer link.Close()
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
	start := time.Now()
	if _, err := link.Dial(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Errorf("dial took %v, want >= 2*prop + accept = 25ms", elapsed)
	}
}

func TestBandwidthPacing(t *testing.T) {
	cfg := Config{Bandwidth: 1_000_000, FrameOverhead: 1} // ~1 MB/s, negligible framing
	client, server, _ := pair(t, cfg)

	payload := make([]byte, 200_000) // should take ~200 ms at 1 MB/s
	done := make(chan struct{})
	go func() {
		io.ReadAll(server)
		close(done)
	}()
	start := time.Now()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("200 KB at 1 MB/s took %v, want >= ~200ms", elapsed)
	}
	if elapsed > 600*time.Millisecond {
		t.Errorf("200 KB at 1 MB/s took %v, far too slow", elapsed)
	}
}

func TestBandwidthSharedAcrossConnections(t *testing.T) {
	cfg := Config{Bandwidth: 1_000_000, FrameOverhead: 1}
	link := NewLink(cfg)
	defer link.Close()
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	// Two connections each sending 100 KB must share the 1 MB/s line:
	// total ~200 ms, not ~100 ms.
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := link.Dial()
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.Write(make([]byte, 100_000))
			c.Close()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("two writers finished in %v, want >= ~200ms (shared line)", elapsed)
	}
}

func TestFullDuplex(t *testing.T) {
	cfg := Config{Bandwidth: 1_000_000, FrameOverhead: 1}
	client, server, _ := pair(t, cfg)

	// 100 KB in each direction simultaneously should take ~100 ms total,
	// not ~200 ms, because directions are independent.
	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	go func() {
		defer wg.Done()
		client.Write(make([]byte, 100_000))
	}()
	go func() {
		defer wg.Done()
		server.Write(make([]byte, 100_000))
	}()
	go io.Copy(io.Discard, client)
	go io.Copy(io.Discard, server)
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 180*time.Millisecond {
		t.Errorf("full-duplex transfer took %v, want ~100ms", elapsed)
	}
}

func TestReadDeadline(t *testing.T) {
	client, _, _ := pair(t, Fast())
	client.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err := client.Read(buf)
	if err != os.ErrDeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("deadline massively overshot")
	}
	// Clearing the deadline makes reads work again.
	client.SetReadDeadline(time.Time{})
}

func TestStatsAccounting(t *testing.T) {
	client, server, link := pair(t, Fast())
	go client.Write(make([]byte, 1000))
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Dials != 1 {
		t.Errorf("dials = %d", st.Dials)
	}
	if st.BytesUp != 1000 {
		t.Errorf("bytesUp = %d", st.BytesUp)
	}
	if st.WireBytesUp <= st.BytesUp {
		t.Errorf("wire bytes (%d) should exceed payload bytes (%d)", st.WireBytesUp, st.BytesUp)
	}
	link.ResetStats()
	if link.Stats().Dials != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestWireSizeFraming(t *testing.T) {
	link := NewLink(LAN100())
	if got := link.wireSize(1); got != 1+58 {
		t.Errorf("wireSize(1) = %d", got)
	}
	if got := link.wireSize(1460); got != 1460+58 {
		t.Errorf("wireSize(1460) = %d", got)
	}
	if got := link.wireSize(1461); got != 1461+2*58 {
		t.Errorf("wireSize(1461) = %d", got)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	link := NewLink(Fast())
	defer link.Close()
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 64)
				n, _ := c.Read(buf)
				c.Write(buf[:n])
				c.Close()
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := link.Dial()
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			msg := fmt.Sprintf("conn-%d", i)
			c.Write([]byte(msg))
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("conn %d read: %v", i, err)
				return
			}
			if string(buf) != msg {
				t.Errorf("conn %d got %q", i, buf)
			}
		}(i)
	}
	wg.Wait()
}

func TestWANConfig(t *testing.T) {
	cfg := WAN()
	if cfg.PropagationDelay != 20*time.Millisecond || cfg.Bandwidth != 1_250_000 {
		t.Errorf("WAN config = %+v", cfg)
	}
	client, server, _ := pair(t, cfg)
	start := time.Now()
	go client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("WAN byte arrived in %v, want ~20ms", elapsed)
	}
}

func TestWriteDeadline(t *testing.T) {
	cfg := Config{Bandwidth: 1000, FrameOverhead: 1} // 1 KB/s: writes take seconds
	client, _, _ := pair(t, cfg)
	client.SetWriteDeadline(time.Now().Add(-time.Second)) // already past
	if _, err := client.Write(make([]byte, 100_000)); err != os.ErrDeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	link := NewLink(Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := lis.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	lis.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Accept returned a conn after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock on close")
	}
}

func TestAddrs(t *testing.T) {
	client, server, _ := pair(t, Fast())
	if client.LocalAddr().String() != "client" || client.RemoteAddr().String() != "server" {
		t.Error("client addrs wrong")
	}
	if server.LocalAddr().String() != "server" || server.RemoteAddr().String() != "client" {
		t.Error("server addrs wrong")
	}
	if client.LocalAddr().Network() != "netsim" {
		t.Error("network name wrong")
	}
}
