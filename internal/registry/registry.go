// Package registry implements the service container: the mapping from
// (service, operation) to executable handlers.
//
// It plays the role of the Axis deployment registry in the paper's stack.
// Crucially for the paper's design, handlers are plain functions over typed
// parameters with no knowledge of transport, packing or threading — "our
// technique requires no change to services code": the same handler is
// invoked whether its request arrived alone in an envelope or as one entry
// of a packed Parallel_Method message, on whatever worker thread the
// dispatcher chose.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
)

// Context carries per-invocation information into a handler.
type Context struct {
	// Service and Operation identify the invocation target.
	Service   string
	Operation string
	// RequestHeaders exposes the SOAP header blocks of the incoming
	// envelope (shared across all requests packed into that envelope).
	RequestHeaders []*xmldom.Element
	// Ctx is the invocation's context.Context: it is cancelled when the
	// caller gives up (propagated client deadline, peer disconnect,
	// server shutdown) or when a per-operation deadline expires.
	// Long-running handlers should watch Ctx.Done() and abort early; the
	// dispatcher degrades abandoned packed items to per-item timeout
	// faults regardless. Nil in handlers invoked outside a dispatcher;
	// use the Context method for nil-safe access.
	Ctx context.Context

	mu              sync.Mutex
	responseHeaders []*xmldom.Element
}

// Context returns the invocation context, or context.Background when none
// was attached.
func (c *Context) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// AddResponseHeader schedules a header block to be attached to the response
// envelope. Safe for concurrent use (packed requests share an envelope).
func (c *Context) AddResponseHeader(block *xmldom.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.responseHeaders = append(c.responseHeaders, block)
}

// ResponseHeaders returns the accumulated response header blocks.
func (c *Context) ResponseHeaders() []*xmldom.Element {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*xmldom.Element(nil), c.responseHeaders...)
}

// Handler executes one service operation: named parameters in, named
// results out. Returning a *soap.Fault propagates it verbatim; any other
// error becomes a Server fault.
type Handler func(ctx *Context, params []soapenc.Field) ([]soapenc.Field, error)

// Operation is one registered operation of a service.
type Operation struct {
	Service string
	Name    string
	Doc     string
	Handler Handler
	// Idempotent declares that re-executing the operation is safe, which
	// widens what clients and the gateway may retry or fail over after a
	// response was lost in flight.
	Idempotent bool
}

// Service is a named collection of operations sharing a namespace.
type Service struct {
	Name      string
	Namespace string
	Doc       string

	mu  sync.RWMutex
	ops map[string]*Operation
}

// Register adds an operation to the service.
func (s *Service) Register(name string, h Handler, doc string) error {
	if name == "" {
		return fmt.Errorf("registry: empty operation name on service %q", s.Name)
	}
	if h == nil {
		return fmt.Errorf("registry: nil handler for %s.%s", s.Name, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ops[name]; dup {
		return fmt.Errorf("registry: operation %s.%s already registered", s.Name, name)
	}
	s.ops[name] = &Operation{Service: s.Name, Name: name, Doc: doc, Handler: h}
	return nil
}

// MustRegister is Register that panics on error, for static wiring.
func (s *Service) MustRegister(name string, h Handler, doc string) {
	if err := s.Register(name, h, doc); err != nil {
		panic(err)
	}
}

// MarkIdempotent flags the named operations as safe to re-execute.
// Unknown names are ignored, so services can mark optimistically.
func (s *Service) MarkIdempotent(names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		if op, ok := s.ops[name]; ok {
			op.Idempotent = true
		}
	}
}

// Idempotent reports whether (service, operation) is registered and marked
// safe to re-execute. Unknown targets are not idempotent: a retry of a
// request the container cannot even route gains nothing.
func (c *Container) Idempotent(service, operation string) bool {
	s, ok := c.Service(service)
	if !ok {
		return false
	}
	op, ok := s.Operation(operation)
	return ok && op.Idempotent
}

// Operation looks up one operation by name.
func (s *Service) Operation(name string) (*Operation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	op, ok := s.ops[name]
	return op, ok
}

// Operations returns the operations sorted by name.
func (s *Service) Operations() []*Operation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Operation, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Container holds every deployed service.
type Container struct {
	mu       sync.RWMutex
	services map[string]*Service
}

// NewContainer returns an empty container.
func NewContainer() *Container {
	return &Container{services: make(map[string]*Service)}
}

// AddService deploys a new named service. The namespace is the XML
// namespace its request/response elements live in.
func (c *Container) AddService(name, namespace, doc string) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: empty service name")
	}
	if namespace == "" {
		return nil, fmt.Errorf("registry: service %q needs a namespace", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.services[name]; dup {
		return nil, fmt.Errorf("registry: service %q already deployed", name)
	}
	s := &Service{Name: name, Namespace: namespace, Doc: doc, ops: make(map[string]*Operation)}
	c.services[name] = s
	return s, nil
}

// MustAddService is AddService that panics on error.
func (c *Container) MustAddService(name, namespace, doc string) *Service {
	s, err := c.AddService(name, namespace, doc)
	if err != nil {
		panic(err)
	}
	return s
}

// Service looks up a deployed service by name.
func (c *Container) Service(name string) (*Service, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.services[name]
	return s, ok
}

// ServiceByNamespace looks up a deployed service by its namespace URI.
func (c *Container) ServiceByNamespace(ns string) (*Service, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.services {
		if s.Namespace == ns {
			return s, true
		}
	}
	return nil, false
}

// Services returns all deployed services sorted by name.
func (c *Container) Services() []*Service {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Service, 0, len(c.services))
	for _, s := range c.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves (service, operation) to a handler. A missing service or
// operation is a Client fault, since the requester named a bad target.
func (c *Container) Lookup(service, operation string) (*Operation, *soap.Fault) {
	s, ok := c.Service(service)
	if !ok {
		return nil, soap.ClientFault("no such service %q", service)
	}
	op, ok := s.Operation(operation)
	if !ok {
		return nil, soap.ClientFault("service %q has no operation %q", service, operation)
	}
	return op, nil
}

// Invoke runs an operation with panic isolation: a panicking handler yields
// a Server fault instead of tearing down the worker.
func Invoke(op *Operation, ctx *Context, params []soapenc.Field) (results []soapenc.Field, fault *soap.Fault) {
	defer func() {
		if r := recover(); r != nil {
			results = nil
			fault = soap.ServerFault("operation %s.%s panicked: %v", op.Service, op.Name, r)
		}
	}()
	out, err := op.Handler(ctx, params)
	if err != nil {
		return nil, soap.AsFault(err)
	}
	return out, nil
}
